//! E25 fleet-chaos properties: for *arbitrary* seeded fault schedules
//! the chaos-on fleet is byte-identical across `--threads {1, 2, 4}`
//! and across reruns, a zero-intensity schedule is byte-identical to
//! the chaos-off fleet, and every recovered run passes
//! [`check_fleet_trace`] with zero violations.
//!
//! Uses a synthetic [`HomeWorld`] (the outcome digest mixes seed and
//! intel length) so a property case costs microseconds — the chaos
//! machinery under test lives entirely in the coordinator's barrier,
//! which real and synthetic scenarios share.

use iotsec_fleet::fleet::{HomeOutcome, HomeWorld};
use iotsec_fleet::{
    check_fleet_trace, Fleet, FleetChaos, FleetConfig, FleetTraceSpec, RecoveryPolicy,
};
use iotsec_repro::iotlearn::signature::{Matcher, Severity};
use iotsec_repro::iotlearn::AttackSignature;
use iotsec_repro::trace::{TraceConfig, Tracer};
use proptest::prelude::*;
use trace::digest::Fnv64;
use trace::event::TraceEvent;

/// Synthetic home: attacked while intel is empty; home 0 discovers.
struct Synthetic;

impl HomeWorld for Synthetic {
    type Resident = ();

    fn run_home(&self, _home: u32, seed: u64, intel: &[AttackSignature]) -> HomeOutcome {
        let mut h = Fnv64::new();
        h.write_u64(seed);
        h.write_u64(intel.len() as u64);
        let attacked = intel.is_empty();
        HomeOutcome {
            digest: h.finish(),
            compromised: u32::from(attacked),
            leaked: 0,
            blocks: u64::from(!attacked),
            events: 3,
            discovered: attacked,
            flagged: 0,
        }
    }

    fn discovery(&self, home: u32) -> Option<AttackSignature> {
        (home == 0).then(|| {
            AttackSignature::new(
                iotsec_repro::iotdev::registry::Sku::new("v", "cam", "1"),
                "default-credentials",
                Matcher::MatchAll,
                Severity::Medium,
            )
        })
    }
}

fn run_chaos(
    cfg: FleetConfig,
    chaos: Option<FleetChaos>,
    rounds: u32,
) -> (iotsec_fleet::FleetReport, Vec<(u64, TraceEvent)>, bool) {
    let tracer = Tracer::new(TraceConfig::control_only());
    let mut fleet = match chaos {
        Some(c) => Fleet::with_chaos(Synthetic, cfg, c, tracer.clone()),
        None => Fleet::with_tracer(Synthetic, cfg, tracer.clone()),
    };
    fleet.run(rounds);
    (fleet.report(), tracer.events(), fleet.converged())
}

/// An arbitrary fault schedule: every axis `0..=1000`‰, short horizons
/// and partition lengths so recovery windows open within the run.
fn arb_chaos() -> impl Strategy<Value = FleetChaos> {
    (
        (any::<u64>(), 0u32..1001, 0u32..1001, 0u32..1001),
        (0u32..1001, 0u32..1001, 1u32..4, 0u32..1001),
        1u32..8,
    )
        .prop_map(
            |(
                (seed, drop_pm, dup_pm, reorder_pm),
                (crash_pm, partition_pm, partition_rounds, delay_pm),
                horizon,
            )| {
                FleetChaos {
                    drop_pm,
                    dup_pm,
                    reorder_pm,
                    crash_pm,
                    partition_pm,
                    partition_rounds,
                    delay_pm,
                    ..FleetChaos::new(seed)
                }
                .with_horizon(horizon)
            },
        )
}

const ROUNDS: u32 = 16;

proptest! {
    /// The acceptance property: arbitrary schedule, arbitrary shape —
    /// the chaos-on report (digest, fault/recovery counters, totals) is
    /// byte-identical across serial, rerun, 2- and 4-thread runs.
    #[test]
    fn prop_chaos_runs_are_thread_invariant(
        seed in any::<u64>(),
        homes in 1u32..25,
        neighborhood in 1u32..7,
        chunk in 1u32..5,
        chaos in arb_chaos(),
    ) {
        let cfg = FleetConfig { homes, neighborhood, chunk, threads: 1, seed };
        let (reference, events, _) = run_chaos(cfg, Some(chaos), ROUNDS);
        let (rerun, rerun_events, _) = run_chaos(cfg, Some(chaos), ROUNDS);
        prop_assert_eq!(&rerun, &reference);
        prop_assert_eq!(&rerun_events, &events);
        for threads in [2usize, 4] {
            let (par, par_events, _) =
                run_chaos(cfg.with_threads(threads), Some(chaos), ROUNDS);
            prop_assert_eq!(&par, &reference);
            prop_assert_eq!(&par_events, &events);
        }
    }

    /// Chaos-off equivalence: a zero-intensity schedule leaves digest
    /// and totals byte-identical to running with no schedule at all.
    #[test]
    fn prop_zero_intensity_schedule_is_the_clean_fleet(
        seed in any::<u64>(),
        chaos_seed in any::<u64>(),
        homes in 1u32..25,
        neighborhood in 1u32..7,
    ) {
        let calm = FleetChaos {
            drop_pm: 0,
            dup_pm: 0,
            reorder_pm: 0,
            crash_pm: 0,
            partition_pm: 0,
            delay_pm: 0,
            ..FleetChaos::new(chaos_seed)
        };
        let cfg = FleetConfig { homes, neighborhood, chunk: 3, threads: 1, seed };
        let (clean, _, _) = run_chaos(cfg, None, ROUNDS);
        let (calm_report, _, converged) = run_chaos(cfg, Some(calm), ROUNDS);
        prop_assert_eq!(calm_report.digest, clean.digest);
        prop_assert_eq!(calm_report.faults, 0);
        prop_assert_eq!(calm_report.installs, clean.installs);
        prop_assert!(converged);
    }

    /// Soundness of the full recovery stack: whenever a run converges,
    /// the trace checker finds nothing to complain about.
    #[test]
    fn prop_recovered_runs_pass_the_checker(
        seed in any::<u64>(),
        homes in 1u32..25,
        neighborhood in 1u32..7,
        chaos in arb_chaos(),
    ) {
        let cfg = FleetConfig { homes, neighborhood, chunk: 3, threads: 1, seed };
        let (_, events, converged) = run_chaos(cfg, Some(chaos), ROUNDS);
        if converged {
            let spec = FleetTraceSpec {
                homes,
                rounds: ROUNDS,
                staleness_budget: chaos.policy.staleness_budget,
                grace: 2,
            };
            let violations = check_fleet_trace(&events, &spec);
            prop_assert!(violations.is_empty(), "{:?}", violations);
        }
    }

    /// The degraded contract: a fleet that converges within budget never
    /// declares degraded mode; one that declares it is genuinely behind
    /// (the checker's `degraded-unjustified` never fires either way).
    #[test]
    fn prop_degraded_declarations_are_justified(
        seed in any::<u64>(),
        homes in 1u32..17,
        chaos in arb_chaos(),
    ) {
        let cfg = FleetConfig { homes, neighborhood: 4, chunk: 3, threads: 1, seed };
        let (_, events, _) = run_chaos(cfg, Some(chaos), ROUNDS);
        let spec = FleetTraceSpec {
            homes,
            rounds: ROUNDS,
            staleness_budget: chaos.policy.staleness_budget,
            grace: 2,
        };
        let violations = check_fleet_trace(&events, &spec);
        prop_assert!(
            violations.iter().all(|v| v.invariant != "degraded-unjustified"),
            "{:?}",
            violations
        );
    }
}

/// The weakened arms are not hypothetical: fixed schedules catching each
/// seeded weakness, mirroring the repro corpus in `tests/repros/`.
#[test]
fn weakened_policies_are_caught_by_the_checker() {
    let cfg = FleetConfig { homes: 24, neighborhood: 4, chunk: 3, threads: 1, seed: 7 };
    // no-retry: total flush loss loses the sentinel's discovery.
    let drop_all = FleetChaos {
        drop_pm: 1000,
        dup_pm: 0,
        reorder_pm: 0,
        crash_pm: 0,
        partition_pm: 0,
        delay_pm: 0,
        ..FleetChaos::new(5)
    };
    let weak = drop_all.with_policy(RecoveryPolicy::no_retry());
    let (_, events, converged) = run_chaos(cfg, Some(weak), ROUNDS);
    assert!(!converged);
    let spec = FleetTraceSpec {
        homes: cfg.homes,
        rounds: ROUNDS,
        staleness_budget: weak.policy.staleness_budget,
        grace: 2,
    };
    let violations = check_fleet_trace(&events, &spec);
    assert!(
        violations.iter().any(|v| v.invariant == "lost-discovery"),
        "expected lost-discovery, got {violations:?}"
    );
}
