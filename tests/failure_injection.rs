//! Failure injection: the unhappy paths the paper's enforcement story
//! has to survive — boot windows, dead links, and resource exhaustion.

use iotsec_repro::iotdev::proto::{ControlAction, MgmtCommand};
use iotsec_repro::iotnet::addr::NodeId;
use iotsec_repro::iotnet::time::SimDuration;
use iotsec_repro::iotsec::defense::{Defense, IoTSecConfig};
use iotsec_repro::iotsec::deployment::{Deployment, DeviceSetup, StepSpec};
use iotsec_repro::iotsec::world::World;
use iotsec_repro::umbox::lifecycle::VmKind;

/// The protection gap: with slow full-VM µmboxes (the paper's own
/// Ubuntu-VM prototype!), an attack that races the boot window lands;
/// pooled unikernels close the gap. This is E9's agility argument made
/// concrete.
#[test]
fn slow_umbox_boot_leaves_a_protection_gap() {
    let run = |vm_kind: VmKind| {
        let mut d = Deployment::new();
        let cam = d.device(DeviceSetup::table1_row(1));
        d.campaign(vec![
            // Strike immediately, within a full VM's 15 s boot window.
            StepSpec::DictionaryLogin(cam),
            StepSpec::Mgmt(cam, MgmtCommand::GetImage),
        ]);
        d.defend_with(Defense::IoTSec(IoTSecConfig { vm_kind, ..IoTSecConfig::default() }));
        let mut w = World::new(&d);
        w.run_until_attack_done(SimDuration::from_secs(60));
        w.report()
    };
    let pooled = run(VmKind::UnikernelPooled);
    assert!(!pooled.attack_reached_target(), "pooled boots in ~1.5ms: {}", pooled.summary());
    let fullvm = run(VmKind::FullVm);
    assert!(
        fullvm.attack_reached_target(),
        "a 15s VM boot must lose the race against an immediate strike: {}",
        fullvm.summary()
    );
}

/// After the boot window closes, even the full VM protects: the gap is
/// transient, not structural.
#[test]
fn full_vm_protects_once_booted() {
    let mut d = Deployment::new();
    let cam = d.device(DeviceSetup::table1_row(1));
    d.campaign(vec![
        StepSpec::Wait(SimDuration::from_secs(30)), // let the VM boot
        StepSpec::DictionaryLogin(cam),
        StepSpec::Mgmt(cam, MgmtCommand::GetImage),
    ]);
    d.defend_with(Defense::IoTSec(IoTSecConfig {
        vm_kind: VmKind::FullVm,
        ..IoTSecConfig::default()
    }));
    let mut w = World::new(&d);
    w.run_until_attack_done(SimDuration::from_secs(120));
    let m = w.report();
    assert!(!m.attack_reached_target(), "{}", m.summary());
}

/// A failed device uplink makes the device unreachable — for the
/// attacker too. The attack times out rather than succeeding.
#[test]
fn dead_uplink_blackholes_the_attack() {
    let mut d = Deployment::new();
    let cam = d.device(DeviceSetup::table1_row(1));
    d.campaign(vec![StepSpec::DictionaryLogin(cam)]);
    let mut w = World::new(&d);
    // Fail the camera's wire (endpoint 0 attaches to switch 0).
    w.net.topology_mut().fail_wire(
        NodeId::Endpoint(iotsec_repro::iotnet::addr::EndpointId(0)),
        NodeId::Switch(iotsec_repro::iotnet::addr::SwitchId(0)),
    );
    w.run_until_attack_done(SimDuration::from_secs(60));
    let m = w.report();
    assert!(!m.campaign_succeeded());
    assert!(!m.attack_reached_target());
    assert!(w.net.stats.dropped_loss > 0);
}

/// Resource exhaustion: full-VM µmboxes are so heavy that the home
/// router can host only four — in a seven-flaw home, some devices stay
/// unprotected. Lightweight µmboxes cover everyone. This is the paper's
/// resource-management challenge (§5.2) made measurable.
#[test]
fn heavy_umboxes_exhaust_the_router() {
    let build = |vm_kind: VmKind| {
        let mut d = Deployment::new();
        // Seven vulnerable cameras, all needing a proxy.
        let cams: Vec<_> = (0..7).map(|_| d.device(DeviceSetup::table1_row(1))).collect();
        // Let even the slow VMs finish booting: the gap under test is
        // *capacity*, not the boot race (covered above).
        let mut steps = vec![StepSpec::Wait(SimDuration::from_secs(30))];
        for c in &cams {
            steps.push(StepSpec::DictionaryLogin(*c));
            steps.push(StepSpec::Mgmt(*c, MgmtCommand::GetImage));
        }
        d.campaign(steps);
        d.defend_with(Defense::IoTSec(IoTSecConfig { vm_kind, ..IoTSecConfig::default() }));
        d
    };
    // Full VMs: 512 MiB each, router has 2 GiB → 4 fit, 3 devices naked.
    let mut w = World::new(&build(VmKind::FullVm));
    w.run_until_attack_done(SimDuration::from_secs(600));
    let heavy = w.report();
    assert!(heavy.attack_reached_target(), "3 unprotected cameras must leak: {}", heavy.summary());
    assert!(heavy.privacy_leaked.len() <= 3, "{}", heavy.summary());
    // Pooled unikernels: 8 MiB each → everyone is covered.
    let mut w = World::new(&build(VmKind::UnikernelPooled));
    w.run_until_attack_done(SimDuration::from_secs(600));
    let light = w.report();
    assert!(!light.attack_reached_target(), "{}", light.summary());
}

/// Reactive reconfiguration under sustained attack: the IDS ruleset
/// swap and posture changes never take the device's protection down
/// (make-before-break) — no strike lands *after* the first blocked one.
/// The chaos layer meanwhile flaps two decoy uplinks (not on the attack
/// path) throughout, so the guarantee holds while the fault scheduler
/// churns the topology and the delivery channel carries the directives.
#[test]
fn reconfiguration_never_drops_protection() {
    use iotsec_repro::iotdev::device::DeviceClass;
    use iotsec_repro::iotnet::time::SimTime;
    use iotsec_repro::iotsec::chaos::ChaosConfig;

    let mut d = Deployment::new();
    let light = d.device(DeviceSetup::table1_row(5));
    let decoy_a = d.device(DeviceSetup::clean(DeviceClass::Camera));
    let decoy_b = d.device(DeviceSetup::clean(DeviceClass::SmartPlug));
    let mut steps = Vec::new();
    for i in 0..10 {
        steps.push(StepSpec::Control(
            light,
            ControlAction::SetPhase((i % 3) as u8),
            iotsec_repro::iotdev::attacker::AttackAuth::None,
        ));
        steps.push(StepSpec::Wait(SimDuration::from_secs(2)));
    }
    d.campaign(steps);
    d.defend_with(Defense::iotsec());
    let mut chaos = ChaosConfig::new();
    for i in 0..5u64 {
        let at = SimTime::from_secs(2 + 4 * i);
        chaos = chaos.flap(decoy_a, at, at + SimDuration::from_secs(2)).flap(
            decoy_b,
            at + SimDuration::from_secs(1),
            at + SimDuration::from_secs(3),
        );
    }
    d.chaos(chaos);
    let mut w = World::new(&d);
    w.run_until_attack_done(SimDuration::from_secs(300));
    let m = w.report();
    // The decoy flaps all fired (a down and a heal each)...
    assert_eq!(m.faults_injected, 20);
    // ...and every control strike is still blocked; the posture churn
    // (suspicious → reconfigure) never opens a window.
    let strikes: Vec<_> =
        m.attack_outcomes.iter().filter(|o| o.label.starts_with("control")).collect();
    assert_eq!(strikes.len(), 10);
    assert!(strikes.iter().all(|o| !o.success), "{strikes:?}");
    assert!(!m.attack_reached_target(), "{}", m.summary());
}
