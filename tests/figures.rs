//! Integration tests reproducing the paper's Figures 3–5 end to end:
//! real packets through the simulated network, real device FSMs, the
//! real controller and µmbox chains.

use iotsec_repro::iotdev::device::DeviceId;
use iotsec_repro::iotnet::time::SimDuration;
use iotsec_repro::iotsec::defense::Defense;
use iotsec_repro::iotsec::scenario;
use iotsec_repro::iotsec::world::World;

// ---------------------------------------------------------------------
// Figure 4: the IoT security gateway (password proxy).
// ---------------------------------------------------------------------

#[test]
fn fig4_current_world_attacker_reads_camera() {
    let (d, cam) = scenario::figure4(Defense::None);
    let mut w = World::new(&d);
    w.run_until_attack_done(SimDuration::from_secs(120));
    let m = w.report();
    assert!(
        m.campaign_succeeded(),
        "the 'current world' side of Figure 4: {:?}",
        m.attack_outcomes
    );
    assert!(m.privacy_leaked.contains(&cam));
}

#[test]
fn fig4_with_iotsec_camera_is_patched_in_the_network() {
    let (d, cam) = scenario::figure4(Defense::iotsec());
    let mut w = World::new(&d);
    w.run_until_attack_done(SimDuration::from_secs(120));
    let m = w.report();
    assert!(!m.campaign_succeeded());
    assert!(!m.privacy_leaked.contains(&cam));
    // The device itself is untouched — the *network* was patched, which
    // is the whole point of Figure 4.
    assert!(!w.device(cam).compromised);
    // The attack was actually absorbed by the data plane, not by luck.
    assert!(m.umbox_drops + m.umbox_intercepts + m.policy_drops > 0);
}

#[test]
fn fig4_owner_still_works_under_iotsec() {
    // The proxy must not lock the owner out: their strong credentials
    // pass through. We verify via the hub's recipe actuation path in
    // Figure 5's test below; here we check the proxy chain exists and
    // the device never saw the default-cred login.
    let (d, cam) = scenario::figure4(Defense::iotsec());
    let mut w = World::new(&d);
    w.run_until_attack_done(SimDuration::from_secs(120));
    assert!(!w.device(cam).privacy_leaked);
}

// ---------------------------------------------------------------------
// Figure 5: the cross-device policy (context gate).
// ---------------------------------------------------------------------

#[test]
fn fig5_current_world_backdoor_controls_the_oven_plug() {
    let (d, wemo, _) = scenario::figure5(Defense::None);
    let mut w = World::new(&d);
    w.env.occupied = false; // nobody home
    w.run_until_attack_done(SimDuration::from_secs(120));
    let m = w.report();
    assert!(m.campaign_succeeded(), "{:?}", m.attack_outcomes);
    assert!(m.compromised.contains(&wemo));
    // The oven's power is attacker-controlled while the house is empty.
    assert!(w.device(wemo).logic.is_on().unwrap());
}

#[test]
fn fig5_iotsec_blocks_on_when_nobody_home() {
    let (d, wemo, _) = scenario::figure5(Defense::iotsec());
    let mut w = World::new(&d);
    w.env.occupied = false;
    w.run_until_attack_done(SimDuration::from_secs(180));
    let m = w.report();
    // The backdoor "ON" was dropped by the context gate (and the cloud
    // block): the plug never turned back on.
    assert!(!w.device(wemo).logic.is_on().unwrap() || m.compromised.is_empty());
    assert!(!m.campaign_succeeded(), "{:?}", m.attack_outcomes);
}

#[test]
fn fig5_perimeter_cannot_express_the_policy() {
    // The Wemo's cloud channel has a pinhole (that's row 7's exposure),
    // so the perimeter passes the backdoor traffic: the attack succeeds.
    let (d, wemo, _) = scenario::figure5(Defense::Perimeter);
    let mut w = World::new(&d);
    w.env.occupied = false;
    w.run_until_attack_done(SimDuration::from_secs(120));
    let m = w.report();
    assert!(m.compromised.contains(&wemo), "{:?}", m.attack_outcomes);
}

// ---------------------------------------------------------------------
// Figure 3: the FSM policy (context-dependent posture).
// ---------------------------------------------------------------------

#[test]
fn fig3_without_iotsec_backdoor_then_window_opens() {
    let (d, alarm, window) = scenario::figure3(Defense::None);
    let mut w = World::new(&d);
    w.env.occupied = false;
    w.run_until_attack_done(SimDuration::from_secs(120));
    let m = w.report();
    assert!(m.campaign_succeeded(), "{:?}", m.attack_outcomes);
    assert!(m.compromised.contains(&alarm));
    assert!(m.compromised.contains(&window));
    assert!(w.env.window_open);
    assert!(m.physical_breach);
}

#[test]
fn fig3_iotsec_blocks_open_after_backdoor_touch() {
    let (d, _alarm, window) = scenario::figure3(Defense::iotsec());
    let mut w = World::new(&d);
    w.env.occupied = false;
    w.run_until_attack_done(SimDuration::from_secs(180));
    let m = w.report();
    // The open message to the window must not take effect.
    assert!(!w.env.window_open, "window opened despite Figure 3 policy");
    assert!(!m.compromised.contains(&window));
    assert!(!m.physical_breach);
}

// ---------------------------------------------------------------------
// The §2.1 implicit-coupling break-in chain.
// ---------------------------------------------------------------------

#[test]
fn breakin_chain_succeeds_without_defense() {
    let (d, plug, _window) = scenario::breakin_chain(Defense::None);
    let mut w = World::new(&d);
    w.env.occupied = false;
    w.env.ambient_c = 35.0;
    w.run_until_attack_done(SimDuration::from_secs(3600));
    let m = w.report();
    assert!(m.compromised.contains(&plug));
    assert!(w.env.window_open, "the IFTTT recipe should have opened the window");
    assert!(m.physical_breach, "attacker achieved a physical breach without touching the window");
    assert!(m.recipes_fired >= 1);
}

#[test]
fn breakin_chain_stopped_by_iotsec() {
    let (d, plug, _window) = scenario::breakin_chain(Defense::iotsec());
    let mut w = World::new(&d);
    w.env.occupied = false;
    w.env.ambient_c = 35.0;
    w.run_until_attack_done(SimDuration::from_secs(3600));
    let m = w.report();
    // The cloud block kills stage 1: the plug stays on, the AC keeps
    // cooling, the recipe never fires.
    assert!(!m.compromised.contains(&plug), "{:?}", m.attack_outcomes);
    assert!(!w.env.window_open);
    assert!(!m.physical_breach);
}

#[test]
fn fig3_state_trace_matches_figure() {
    // Drive the Figure 3 FSM at the policy level and assert the exact
    // posture transitions the figure draws.
    use iotsec_repro::iotpolicy::context::SecurityContext;
    use iotsec_repro::iotpolicy::policy::figure3_policy;
    use iotsec_repro::iotpolicy::posture::{BlockClass, SecurityModule};

    let alarm = DeviceId(0);
    let window = DeviceId(1);
    let policy = figure3_policy(alarm, window);

    // State 1: <normal, ok> / <normal, close> — no posture.
    let s1 = policy.schema.initial_state();
    assert!(policy.posture_for(&s1, window).is_allow());

    // State 2: fire-alarm backdoor accessed → block "open" to window.
    let s2 = s1.clone().with_context(&policy.schema, alarm, SecurityContext::Suspicious);
    assert!(policy
        .posture_for(&s2, window)
        .contains(&SecurityModule::Block(BlockClass::OpenVerbs)));

    // State 3: window password brute-forced → robot check on window.
    let s3 = s1.with_context(&policy.schema, window, SecurityContext::Suspicious);
    assert!(policy.posture_for(&s3, window).contains(&SecurityModule::ChallengeLogins));
}
