//! Property pins for the E21 packed fast path (see DESIGN.md §11):
//!
//! 1. [`PackedHeaders`] pack↔unpack is a total bijection with the
//!    `(EthernetHeader, Ipv4Header, TransportHeader)` structs — including
//!    malformed combinations (IP protocol byte disagreeing with the
//!    transport variant) that only a field-faithful encoding preserves.
//! 2. [`PackedFlowKey`] equality mirrors equality of the seven matched
//!    header fields, in both directions.
//! 3. The packed word-compare flow lookup selects the same rule as the
//!    legacy struct-walking scan for arbitrary rule tables, packets and
//!    ingress ports — including after cookie removals, which must keep
//!    the struct-of-arrays pattern table index-aligned with the rules.
//! 4. [`EventArena`] generational handles turn use-after-free into a
//!    detected error: a stale handle yields `None`, never a different
//!    event, across arbitrary insert/remove interleavings.

use iotsec_repro::iotnet::addr::{Ipv4Addr, MacAddr, PortNo};
use iotsec_repro::iotnet::engine::{EventArena, EventHandle};
use iotsec_repro::iotnet::flow::{
    FlowAction, FlowMatch, FlowRule, FlowTable, PackedFlowKey, SteerId,
};
use iotsec_repro::iotnet::packet::{
    EthernetHeader, Ipv4Header, PackedHeaders, Packet, TcpFlags, TransportHeader,
};
use proptest::prelude::*;

fn mac() -> impl Strategy<Value = MacAddr> {
    any::<u64>().prop_map(|b| {
        let w = b.to_be_bytes();
        MacAddr([w[2], w[3], w[4], w[5], w[6], w[7]])
    })
}

fn transport() -> impl Strategy<Value = TransportHeader> {
    prop_oneof![
        (any::<u16>(), any::<u16>()).prop_map(|(s, d)| TransportHeader::udp(s, d)),
        (any::<u16>(), any::<u16>(), any::<u32>(), any::<u8>()).prop_map(|(s, d, seq, f)| {
            TransportHeader::tcp(
                s,
                d,
                seq,
                TcpFlags { syn: f & 1 != 0, ack: f & 2 != 0, fin: f & 4 != 0, rst: f & 8 != 0 },
            )
        }),
    ]
}

fn headers() -> impl Strategy<Value = (EthernetHeader, Ipv4Header, TransportHeader)> {
    (
        (mac(), mac(), any::<u16>()),
        ((any::<u32>(), any::<u32>()), (any::<u8>(), any::<u8>()), (any::<u8>(), any::<u16>())),
        transport(),
    )
        .prop_map(|((dst, src, ethertype), ((is, id), (proto, ttl), (dscp, total_len)), t)| {
            (
                EthernetHeader { dst, src, ethertype },
                Ipv4Header {
                    src: Ipv4Addr::from_u32(is),
                    dst: Ipv4Addr::from_u32(id),
                    // Deliberately independent of the transport variant:
                    // the packing keeps the protocol byte and the
                    // transport kind bit as separate fields.
                    protocol: proto,
                    ttl,
                    dscp,
                    total_len,
                },
                t,
            )
        })
}

/// Packets drawn from small per-field pools so the flow-key equality and
/// rule-match properties exercise both the equal and unequal cases.
fn pooled_packet() -> impl Strategy<Value = Packet> {
    ((0u32..3, 0u32..3), (0u8..3, 0u8..3), (0usize..3, 0usize..3, any::<bool>())).prop_map(
        |((ms, md), (is, id), (sp, dp, tcp))| {
            let ports = [7u16, 53, 5683];
            let t = if tcp {
                TransportHeader::tcp(ports[sp], ports[dp], 9, TcpFlags::SYN)
            } else {
                TransportHeader::udp(ports[sp], ports[dp])
            };
            Packet::new(
                MacAddr::from_index(ms),
                MacAddr::from_index(md),
                Ipv4Addr::new(10, 0, is, 1),
                Ipv4Addr::new(10, 0, id, 2),
                t,
                Default::default(),
            )
        },
    )
}

/// The seven fields [`PackedFlowKey`] packs, straight off the structs.
fn flow_fields(p: &Packet) -> (MacAddr, MacAddr, Ipv4Addr, Ipv4Addr, u8, u16, u16) {
    (
        p.eth.src,
        p.eth.dst,
        p.ip.src,
        p.ip.dst,
        p.ip.protocol,
        p.transport.src_port(),
        p.transport.dst_port(),
    )
}

fn opt_port() -> impl Strategy<Value = Option<PortNo>> {
    prop_oneof![Just(None), (0u16..3).prop_map(|p| Some(PortNo(p)))]
}

fn opt_mac() -> impl Strategy<Value = Option<MacAddr>> {
    prop_oneof![Just(None), (0u32..3).prop_map(|i| Some(MacAddr::from_index(i)))]
}

fn opt_prefix() -> impl Strategy<Value = Option<(Ipv4Addr, u8)>> {
    prop_oneof![
        Just(None),
        (0u8..3, prop_oneof![Just(0u8), Just(8), Just(24), Just(32)])
            .prop_map(|(o, len)| Some((Ipv4Addr::new(10, 0, o, 1), len))),
    ]
}

fn opt_proto() -> impl Strategy<Value = Option<u8>> {
    prop_oneof![Just(None), Just(Some(6u8)), Just(Some(17u8))]
}

fn opt_tport() -> impl Strategy<Value = Option<u16>> {
    prop_oneof![Just(None), prop_oneof![Just(7u16), Just(53), Just(5683)].prop_map(Some)]
}

fn flow_match() -> impl Strategy<Value = FlowMatch> {
    (
        (opt_port(), opt_mac(), opt_mac()),
        (opt_prefix(), opt_prefix(), opt_proto()),
        (opt_tport(), opt_tport()),
    )
        .prop_map(
            |((in_port, eth_src, eth_dst), (ip_src, ip_dst, ip_proto), (src_port, dst_port))| {
                FlowMatch {
                    in_port,
                    eth_src,
                    eth_dst,
                    ip_src,
                    ip_dst,
                    ip_proto,
                    src_port,
                    dst_port,
                }
            },
        )
}

fn flow_rule() -> impl Strategy<Value = FlowRule> {
    (0u16..4, flow_match(), 0u8..4, 0u64..2).prop_map(|(priority, matcher, action, cookie)| {
        let action = match action {
            0 => FlowAction::Normal,
            1 => FlowAction::Drop,
            2 => FlowAction::Mirror,
            _ => FlowAction::Steer(SteerId(1)),
        };
        FlowRule::new(priority, matcher, action).with_cookie(cookie)
    })
}

proptest! {
    /// Property 1: the packed-word encoding reconstructs the exact header
    /// structs — `unpack ∘ pack = id`, which also makes `pack` injective.
    #[test]
    fn packed_headers_roundtrip_is_identity(h in headers()) {
        let (eth, ip, t) = h;
        let packed = PackedHeaders::pack(&eth, &ip, &t);
        prop_assert_eq!(packed.unpack(), (eth, ip, t));
        // The word accessors agree with the struct fields.
        prop_assert_eq!(packed.dst_port(), t.dst_port());
        prop_assert_eq!(packed.ip_src(), ip.src);
        // Packing is stable: the same headers produce the same words.
        prop_assert_eq!(PackedHeaders::pack(&eth, &ip, &t), packed);
    }

    /// Property 2: two packets get equal flow keys iff every field the
    /// legacy struct key compared is equal — key equality is exactly
    /// seven-field equality, never a hash-style collision.
    #[test]
    fn flow_key_equality_iff_field_equality(a in pooled_packet(), b in pooled_packet()) {
        let keys_equal = PackedFlowKey::of(&a) == PackedFlowKey::of(&b);
        prop_assert_eq!(keys_equal, flow_fields(&a) == flow_fields(&b));
    }

    /// The key derived from pre-packed headers equals the one extracted
    /// from the packet — the switch's cached-key path and the direct path
    /// agree.
    #[test]
    fn flow_key_from_headers_matches_of(h in headers()) {
        let (eth, ip, t) = h;
        let p = Packet { eth, ip, transport: t, payload: Default::default() };
        prop_assert_eq!(
            PackedFlowKey::from_headers(&p.packed_headers()),
            PackedFlowKey::of(&p)
        );
    }

    /// Property 3: the packed word-compare probe and the legacy struct
    /// scan pick the same rule (same index, hence same priority/tie
    /// resolution) for every table, packet and ingress port — and keep
    /// agreeing after a cookie removal rewrites the pattern arrays.
    #[test]
    fn packed_lookup_equals_legacy_scan(
        rules in proptest::collection::vec(flow_rule(), 0..10),
        packets in proptest::collection::vec(pooled_packet(), 1..6),
        ports in proptest::collection::vec(0u16..3, 1..4),
    ) {
        let mut t = FlowTable::new();
        for r in &rules {
            t.install(r.clone());
        }
        let check = |t: &FlowTable| -> Result<(), TestCaseError> {
            for p in &packets {
                let key = PackedFlowKey::of(p);
                for &port in ports.iter().chain([PortNo::ANY.0].iter()) {
                    prop_assert_eq!(
                        t.lookup_index_packed(PortNo(port), key),
                        t.lookup_index_scan(PortNo(port), p)
                    );
                }
            }
            Ok(())
        };
        check(&t)?;
        // Structural change: removing by cookie must keep the compiled
        // struct-of-arrays patterns index-aligned with the rules.
        t.remove_by_cookie(1);
        check(&t)?;
    }

    /// The [`FlowTable::set_packed_lookup`] toggle is behaviour-neutral.
    #[test]
    fn lookup_engine_toggle_is_neutral(
        rules in proptest::collection::vec(flow_rule(), 0..10),
        p in pooled_packet(),
        port in 0u16..3,
    ) {
        let mut packed = FlowTable::new();
        let mut legacy = FlowTable::new();
        for r in &rules {
            packed.install(r.clone());
            legacy.install(r.clone());
        }
        legacy.set_packed_lookup(false);
        prop_assert_eq!(
            packed.lookup_index(PortNo(port), &p),
            legacy.lookup_index(PortNo(port), &p)
        );
    }

    /// Property 4: across arbitrary insert/remove interleavings, every
    /// live handle resolves to exactly the event it was issued for, and
    /// every stale handle is a detected error (`None` from both `get`
    /// and `remove`) — never a different event.
    #[test]
    fn arena_handles_are_generation_safe(
        ops in proptest::collection::vec((any::<bool>(), any::<u16>()), 1..80),
    ) {
        let mut arena: EventArena<u64> = EventArena::new();
        let mut live: Vec<(EventHandle, u64)> = Vec::new();
        let mut stale: Vec<EventHandle> = Vec::new();
        let mut next: u64 = 0;
        for (insert, sel) in ops {
            if insert || live.is_empty() {
                let h = arena.insert(next);
                live.push((h, next));
                next += 1;
            } else {
                let (h, v) = live.swap_remove(sel as usize % live.len());
                prop_assert_eq!(arena.remove(h), Some(v));
                stale.push(h);
            }
            prop_assert_eq!(arena.len(), live.len());
            for &(h, v) in &live {
                prop_assert_eq!(arena.get(h), Some(&v));
            }
            for &h in &stale {
                prop_assert_eq!(arena.get(h), None);
            }
        }
        // Stale removes are rejected without disturbing live events.
        for h in stale {
            prop_assert_eq!(arena.remove(h), None);
        }
        prop_assert_eq!(arena.len(), live.len());
    }
}

/// The recycling case spelled out: a slot reused after removal bumps its
/// generation, so the old handle observes `None` while the new handle
/// sees the new event — even though both name the same slot index.
#[test]
fn recycled_slot_invalidates_old_handle() {
    let mut arena: EventArena<&'static str> = EventArena::new();
    let old = arena.insert("first");
    assert_eq!(arena.remove(old), Some("first"));
    let new = arena.insert("second");
    assert_ne!(old.raw(), new.raw(), "recycled handle must differ");
    assert_eq!(old.raw() & 0x00ff_ffff, new.raw() & 0x00ff_ffff, "same slot index");
    assert_eq!(arena.get(old), None);
    assert_eq!(arena.remove(old), None);
    assert_eq!(arena.get(new), Some(&"second"));
}
