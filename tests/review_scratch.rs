//! Scratch test (review only — deleted before any commit).

use iotsec_repro::iotdev::proto::MgmtCommand;
use iotsec_repro::iotnet::time::SimDuration;
use iotsec_repro::iotsec::chaos::ChaosConfig;
use iotsec_repro::iotsec::defense::Defense;
use iotsec_repro::iotsec::deployment::{Deployment, DeviceSetup, StepSpec};
use iotsec_repro::iotsec::world::World;
use iotsec_repro::trace::{TraceConfig, Tracer};

fn sim_times(trace: &str) -> Vec<(u64, String)> {
    trace
        .lines()
        .map(|l| {
            let t = l
                .strip_prefix("{\"t\":")
                .and_then(|r| r.split(&[',', '}'][..]).next())
                .and_then(|n| n.parse().ok())
                .unwrap();
            (t, l.to_string())
        })
        .collect()
}

#[test]
fn probe_monotonicity_under_heavy_chaos() {
    let mut violations = 0;
    for seed in 0..20u64 {
        let mut d = Deployment::new();
        d.seed = seed;
        let cam = d.device(DeviceSetup::table1_row(1));
        let plug = d.device(DeviceSetup::table1_row(6));
        d.campaign(vec![
            StepSpec::Wait(SimDuration::from_secs(2)),
            StepSpec::DictionaryLogin(cam),
            StepSpec::Mgmt(cam, MgmtCommand::GetImage),
            StepSpec::DnsReflect { reflector: plug, queries: 20 },
        ]);
        d.defend_with(Defense::iotsec());
        d.chaos(
            ChaosConfig {
                link_flaps: 8,
                loss_bursts: 4,
                horizon: SimDuration::from_secs(30),
                flap_downtime: SimDuration::from_secs(1),
                ..ChaosConfig::default()
            }
            .with_seed(seed.wrapping_mul(7).wrapping_add(1)),
        );
        let tracer = Tracer::new(TraceConfig::full());
        let mut w = World::new_traced(&d, tracer.clone());
        w.env.occupied = true;
        w.run(SimDuration::from_secs(35));
        let trace = tracer.to_jsonl();
        let times = sim_times(&trace);
        for pair in times.windows(2) {
            if pair[0].0 > pair[1].0 {
                violations += 1;
                if violations <= 3 {
                    eprintln!("seed {seed}: OUT OF ORDER:\n  {}\n  {}", pair[0].1, pair[1].1);
                }
            }
        }
    }
    eprintln!("total out-of-order adjacent pairs: {violations}");
    assert_eq!(violations, 0, "trace not nondecreasing");
}
