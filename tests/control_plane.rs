//! Control-plane integration: hierarchical enforcement end-to-end in the
//! world, and the consistency window's effect on gate decisions (E8's
//! mechanism, verified at the packet level).

use iotsec_repro::iotdev::proto::ControlAction;
use iotsec_repro::iotnet::time::SimDuration;
use iotsec_repro::iotsec::defense::{Defense, IoTSecConfig};
use iotsec_repro::iotsec::deployment::{Deployment, DeviceSetup, StepSpec};
use iotsec_repro::iotsec::scenario;
use iotsec_repro::iotsec::world::World;

#[test]
fn hierarchical_controller_enforces_like_flat() {
    for hierarchical in [false, true] {
        let cfg = IoTSecConfig { hierarchical, ..IoTSecConfig::default() };
        let (d, cam) = scenario::figure4(Defense::IoTSec(cfg));
        let mut w = World::new(&d);
        w.run_until_attack_done(SimDuration::from_secs(120));
        let m = w.report();
        assert!(
            !m.privacy_leaked.contains(&cam),
            "hierarchical={hierarchical} must still protect the camera: {}",
            m.summary()
        );
    }
}

#[test]
fn hierarchical_smart_home_stops_the_sweep() {
    let cfg = IoTSecConfig { hierarchical: true, ..IoTSecConfig::default() };
    let (d, _) = scenario::smart_home(Defense::IoTSec(cfg), 7);
    let mut w = World::new(&d);
    w.env.occupied = true;
    w.run_until_attack_done(SimDuration::from_secs(300));
    let m = w.report();
    assert!(m.compromised.is_empty(), "{}", m.summary());
    assert!(m.privacy_leaked.is_empty(), "{}", m.summary());
    assert_eq!(m.ddos_bytes_at_victim, 0);
}

#[test]
fn undefended_smart_home_falls_to_the_sweep() {
    let (d, _) = scenario::smart_home(Defense::None, 7);
    let mut w = World::new(&d);
    w.env.occupied = true;
    w.run_until_attack_done(SimDuration::from_secs(300));
    let m = w.report();
    assert!(!m.compromised.is_empty());
    assert!(!m.privacy_leaked.is_empty());
    assert!(m.ddos_bytes_at_victim > 0);
}

/// The consistency window: with a large view-propagation delay, a
/// backdoor "ON" that races the occupancy change slips through the gate;
/// with strong consistency it cannot.
#[test]
fn stale_view_admits_a_racing_actuation() {
    let run = |propagation: SimDuration| {
        let mut d = Deployment::new();
        let wemo = d.device(
            DeviceSetup::table1_row(7).powering(iotsec_repro::iotdev::classes::PlugLoad::Oven),
        );
        let _cam = d.device(DeviceSetup::clean(iotsec_repro::iotdev::device::DeviceClass::Camera));
        d.gate(wemo, iotsec_repro::iotdev::env::EnvVar::Occupancy, "present");
        d.campaign(vec![
            StepSpec::Cloud(wemo, ControlAction::TurnOff),
            StepSpec::Cloud(wemo, ControlAction::TurnOn),
        ]);
        d.defend_with(Defense::IoTSec(IoTSecConfig {
            view_propagation: propagation,
            // The backdoor block must be off for this experiment to
            // isolate the *gate*: disable signatures so only the context
            // gate and the compiled cloud-block race matters. We keep
            // signatures off and rely on gates alone.
            signatures: false,
            ..IoTSecConfig::default()
        }));
        // Note: the compiled policy still blocks the cloud plane for a
        // backdoored device; to isolate the gate we attack a device that
        // looks clean to the compiler but still has the backdoor at
        // runtime. Deployment vulns drive both, so instead we measure
        // the *occupancy flip race*: the house empties right before the
        // attack.
        let mut w = World::new(&d);
        w.env.occupied = true;
        w.run(SimDuration::from_secs(10)); // view learns "present"
        w.env.occupied = false; // everyone leaves
        w.run(SimDuration::from_secs(1));
        w
    };
    // With strong consistency the gate sees "absent" almost immediately;
    // with a 10-minute-stale view it still believes "present". We check
    // the view value divergence directly — the packet-level consequence
    // is covered by the fig5 tests.
    let w_strong = run(SimDuration::ZERO);
    assert_eq!(
        w_strong.gate_view().get(iotsec_repro::iotdev::env::EnvVar::Occupancy),
        Some("absent")
    );
    let w_stale = run(SimDuration::from_secs(600));
    assert_ne!(
        w_stale.gate_view().get(iotsec_repro::iotdev::env::EnvVar::Occupancy),
        Some("absent"),
        "a 10-minute-stale view must not yet know the house emptied"
    );
}

#[test]
fn quarantine_after_compromise_contains_the_device() {
    // A no-auth traffic light gets hijacked once; after the controller
    // reacts, further control attempts die in the quarantine chain.
    let mut d = Deployment::new();
    let light = d.device(DeviceSetup::table1_row(5));
    d.campaign(vec![
        StepSpec::Control(
            light,
            ControlAction::SetPhase(2),
            iotsec_repro::iotdev::attacker::AttackAuth::None,
        ),
        StepSpec::Wait(SimDuration::from_secs(5)),
        StepSpec::Control(
            light,
            ControlAction::SetPhase(0),
            iotsec_repro::iotdev::attacker::AttackAuth::None,
        ),
    ]);
    // IoTSec but WITHOUT the standing signature mitigation: the first
    // strike lands, and we verify the *reactive* path (event →
    // suspicious/compromised → posture change) closes the door.
    d.defend_with(Defense::IoTSec(IoTSecConfig { signatures: false, ..IoTSecConfig::default() }));
    let mut w = World::new(&d);
    w.run_until_attack_done(SimDuration::from_secs(120));
    let m = w.report();
    // First phase change may have landed; the second must have been
    // blocked by the hardened posture.
    let outcomes = &m.attack_outcomes;
    assert_eq!(outcomes.len(), 3, "{outcomes:?}");
    assert!(!outcomes[2].success, "reactive enforcement must stop the second strike: {outcomes:?}");
    assert!(m.umbox_drops + m.umbox_intercepts + m.policy_drops > 0);
}
