//! E26 resident-world properties: for *arbitrary* fleet shapes, thread
//! counts and seeded fault schedules, the resident execution mode
//! (persistent per-worker worlds, `rebind_home` reuse, delta intel
//! installs) is byte-identical to the rebuild path — same cumulative
//! report (chained home-order digest included) and same trace event
//! stream — including mid-run aggregator crashes that drop resident
//! worlds and force cold rebuilds from `(home, seed, intel)`.
//!
//! Uses the real [`iotsec_fleet::FleetScenario`] (full home worlds),
//! not a synthetic: the resident machinery under test — world resets,
//! signature splicing, policy recompiles — only exists in real worlds.

use iotsec_fleet::{Fleet, FleetChaos, FleetConfig, FleetReport, FleetScenario};
use iotsec_repro::trace::event::TraceEvent;
use iotsec_repro::trace::{TraceConfig, Tracer};
use proptest::prelude::*;

/// Run one fleet to completion; resident mode and chaos optional.
fn run_fleet(
    cfg: FleetConfig,
    chaos: Option<FleetChaos>,
    resident: bool,
    rounds: u32,
) -> (FleetReport, Vec<(u64, TraceEvent)>) {
    let tracer = Tracer::new(TraceConfig::control_only());
    let scenario = FleetScenario::new(cfg.homes.max(1));
    let mut fleet = match chaos {
        Some(c) => Fleet::with_chaos(scenario, cfg, c, tracer.clone()),
        None => Fleet::with_tracer(scenario, cfg, tracer.clone()),
    };
    fleet.set_resident(resident);
    fleet.run(rounds);
    (fleet.report(), tracer.events())
}

/// An arbitrary fault schedule, crash axis included: aggregator crashes
/// drop the crashed worker's resident world mid-run, so recovery must
/// rebuild it cold and still match the rebuild path byte-for-byte.
fn arb_chaos() -> impl Strategy<Value = FleetChaos> {
    (
        (any::<u64>(), 0u32..1001, 0u32..1001, 0u32..1001),
        (0u32..1001, 0u32..1001, 1u32..4, 0u32..1001),
        1u32..4,
    )
        .prop_map(
            |(
                (seed, drop_pm, dup_pm, reorder_pm),
                (crash_pm, partition_pm, partition_rounds, delay_pm),
                horizon,
            )| {
                FleetChaos {
                    drop_pm,
                    dup_pm,
                    reorder_pm,
                    crash_pm,
                    partition_pm,
                    partition_rounds,
                    delay_pm,
                    ..FleetChaos::new(seed)
                }
                .with_horizon(horizon)
            },
        )
}

proptest! {
    /// The acceptance property (clean fleet): arbitrary shape, the
    /// resident fleet's report and trace stream are byte-identical to
    /// the rebuild path across `--threads {1, 2, 4}` and a rerun.
    #[test]
    fn prop_resident_equals_rebuild(
        seed in any::<u64>(),
        homes in 1u32..8,
        neighborhood in 1u32..5,
        chunk in 1u32..4,
        rounds in 1u32..4,
    ) {
        let cfg = FleetConfig { homes, neighborhood, chunk, threads: 1, seed };
        let (reference, events) = run_fleet(cfg, None, false, rounds);
        for threads in [1usize, 2, 4] {
            let (res, res_events) =
                run_fleet(cfg.with_threads(threads), None, true, rounds);
            prop_assert_eq!(&res, &reference);
            prop_assert_eq!(&res_events, &events);
        }
        let (rerun, rerun_events) = run_fleet(cfg, None, true, rounds);
        prop_assert_eq!(&rerun, &reference);
        prop_assert_eq!(&rerun_events, &events);
    }

    /// The chaos property: under arbitrary seeded fault schedules —
    /// including aggregator crashes, which evict the crashed worker's
    /// resident world mid-run — the resident fleet still reproduces the
    /// rebuild fleet's report and trace stream at every thread count.
    #[test]
    fn prop_resident_equals_rebuild_under_chaos(
        seed in any::<u64>(),
        homes in 1u32..8,
        neighborhood in 1u32..5,
        chaos in arb_chaos(),
        rounds in 2u32..5,
    ) {
        let cfg = FleetConfig { homes, neighborhood, chunk: 2, threads: 1, seed };
        let (reference, events) = run_fleet(cfg, Some(chaos), false, rounds);
        for threads in [1usize, 2, 4] {
            let (res, res_events) =
                run_fleet(cfg.with_threads(threads), Some(chaos), true, rounds);
            prop_assert_eq!(&res, &reference);
            prop_assert_eq!(&res_events, &events);
        }
    }
}

/// Crash recovery is not hypothetical: a stormy crash schedule evicts
/// resident worlds at barriers while retry/recovery still delivers the
/// discovery, so post-eviction rounds rebuild homes cold — and the
/// stream must not budge.
#[test]
fn crashes_evict_residents_without_changing_a_byte() {
    let crashy = FleetChaos {
        drop_pm: 0,
        dup_pm: 0,
        reorder_pm: 0,
        crash_pm: 500,
        partition_pm: 0,
        partition_rounds: 2,
        delay_pm: 0,
        ..FleetChaos::new(0xE26)
    }
    .with_horizon(3);
    let cfg = FleetConfig { homes: 6, neighborhood: 2, chunk: 2, threads: 2, seed: 9 };
    let (reference, events) = run_fleet(cfg, Some(crashy), false, 8);

    let tracer = Tracer::new(TraceConfig::control_only());
    let mut fleet = Fleet::with_chaos(FleetScenario::new(6), cfg, crashy, tracer.clone());
    fleet.set_resident(true);
    fleet.run(8);
    assert_eq!(fleet.report(), reference);
    assert_eq!(tracer.events(), events);
    let stats = fleet.resident_stats();
    assert!(stats.dropped > 0, "crashes must evict resident worlds: {stats:?}");
    assert!(stats.resident_runs > 0, "surviving worlds must still be reused: {stats:?}");
    assert_eq!(fleet.report().epoch, 1, "recovery must still land the discovery");
}
