//! Differential trace properties: identical seeds must yield
//! byte-identical JSONL traces whatever the execution strategy — heap
//! vs timer-wheel event queue, one sweep worker vs four. These are the
//! properties the golden files rest on; a failure here means an
//! emission site leaked execution-strategy state (wall-clock, queue
//! internals, map iteration order) into the trace.

use iotsec_bench::sweep::{run_sweep, sweep_worlds_traced, SweepScenario, WorldJob};
use iotsec_repro::iotdev::proto::MgmtCommand;
use iotsec_repro::iotnet::engine::QueueKind;
use iotsec_repro::iotnet::time::SimDuration;
use iotsec_repro::iotsec::defense::Defense;
use iotsec_repro::iotsec::deployment::{Deployment, DeviceSetup, StepSpec};
use iotsec_repro::iotsec::world::World;
use iotsec_repro::trace::{first_divergence, render_divergence, TraceConfig, Tracer};
use proptest::prelude::*;

/// A compact traced run — two Table 1 devices, full event mask, 30
/// simulated seconds — cheap enough to sample hundreds of times.
fn traced_run(seed: u64, queue: QueueKind, defended: bool, reflect: bool) -> String {
    let mut d = Deployment::new();
    d.seed = seed;
    d.queue = queue;
    let cam = d.device(DeviceSetup::table1_row(1));
    let plug = d.device(DeviceSetup::table1_row(6));
    let mut steps =
        vec![StepSpec::DictionaryLogin(cam), StepSpec::Mgmt(cam, MgmtCommand::GetImage)];
    if reflect {
        steps.push(StepSpec::DnsReflect { reflector: plug, queries: 20 });
    }
    d.campaign(steps);
    d.defend_with(if defended { Defense::iotsec() } else { Defense::None });
    let tracer = Tracer::new(TraceConfig::full());
    let mut w = World::new_traced(&d, tracer.clone());
    w.env.occupied = true;
    w.run(SimDuration::from_secs(30));
    tracer.to_jsonl()
}

fn assert_identical(label: &str, expected: &str, actual: &str) {
    if let Some(d) = first_divergence(expected, actual) {
        panic!("{label} diverged:\n{}", render_divergence(&d));
    }
}

proptest! {
    /// Heap-queue worlds trace byte-identically to timer-wheel worlds
    /// for arbitrary (seed, defense, campaign) cells.
    #[test]
    fn prop_heap_and_wheel_traces_are_identical(
        seed in any::<u64>(),
        defended in any::<bool>(),
        reflect in any::<bool>(),
    ) {
        let wheel = traced_run(seed, QueueKind::Wheel, defended, reflect);
        let heap = traced_run(seed, QueueKind::Heap, defended, reflect);
        assert_identical("heap-vs-wheel trace", &wheel, &heap);
        prop_assert!(!wheel.is_empty(), "a full-mask trace must record packet events");
    }

    /// A four-worker sweep returns, slot for slot, the traces the serial
    /// sweep does: merged traces are a pure function of the job list,
    /// never of which thread ran which world.
    #[test]
    fn prop_parallel_sweep_traces_match_serial(base in any::<u64>()) {
        let seeds: Vec<u64> = (0..4).map(|i| base.wrapping_add(i)).collect();
        let serial = run_sweep(seeds.clone(), 1, |_, s| {
            traced_run(*s, QueueKind::Wheel, true, false)
        });
        let parallel = run_sweep(seeds, 4, |_, s| {
            traced_run(*s, QueueKind::Wheel, true, false)
        });
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_identical(&format!("parallel-vs-serial trace (slot {i})"), a, b);
        }
    }
}

/// The full-size version of both properties on the real E16 sweep
/// machinery: three scaled-home jobs, run serial timer-wheel (the
/// reference), serial heap-queue, and four-worker timer-wheel. One run
/// each — the sampled coverage lives in the properties above.
#[test]
fn full_sweep_traces_are_strategy_invariant() {
    let jobs = vec![
        WorldJob { scenario: SweepScenario::HomeUndefended, seed: 42, population: 0 },
        WorldJob { scenario: SweepScenario::HomeIoTSec, seed: 42, population: 0 },
        WorldJob { scenario: SweepScenario::HomeIoTSec, seed: 43, population: 3 },
    ];
    let config = TraceConfig::full();
    let reference = sweep_worlds_traced(&jobs, 1, QueueKind::Wheel, config);
    let heap = sweep_worlds_traced(&jobs, 1, QueueKind::Heap, config);
    let parallel = sweep_worlds_traced(&jobs, 4, QueueKind::Wheel, config);
    for (i, (out, trace)) in reference.iter().enumerate() {
        assert_identical(&format!("heap-vs-wheel (job {i})"), trace, &heap[i].1);
        assert_identical(&format!("parallel-vs-serial (job {i})"), trace, &parallel[i].1);
        assert_eq!(out.digest(), heap[i].0.digest());
        assert_eq!(out.digest(), parallel[i].0.digest());
        assert!(!trace.is_empty());
    }
}
