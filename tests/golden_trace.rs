//! Golden-trace regression tests: the checked-in control-plane traces
//! for the canonical smart-home and enterprise seeds must reproduce
//! byte-for-byte on every commit.
//!
//! A divergence fails with a readable first-divergence diff — the
//! sim-time and event line where the traces split — never a blob
//! compare. To bless an intentional behavior change, regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! and review the golden-file diff like any other code change.

use iotsec_repro::iotnet::time::SimDuration;
use iotsec_repro::iotsec::defense::Defense;
use iotsec_repro::iotsec::deployment::Deployment;
use iotsec_repro::iotsec::scenario;
use iotsec_repro::iotsec::world::World;
use iotsec_repro::trace::{first_divergence, render_divergence, TraceConfig, Tracer};

/// The seed the golden traces were blessed at. Changing it invalidates
/// the checked-in files, so it is pinned here, not shared with other
/// test suites.
const GOLDEN_SEED: u64 = 42;

fn run_traced(d: &Deployment) -> String {
    // Goldens record the control plane only: directive lifecycle, µmbox
    // lifecycle, faults and failovers. Packet-class events would work —
    // they are just as deterministic — but would bloat the checked-in
    // files without adding regression surface the diff tests miss.
    let tracer = Tracer::new(TraceConfig::control_only());
    let mut w = World::new_traced(d, tracer.clone());
    w.env.occupied = true;
    w.run_until_attack_done(SimDuration::from_secs(120));
    tracer.to_jsonl()
}

fn check_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/golden/{name}.jsonl", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {path}: {e}\nbless it with UPDATE_GOLDEN=1 cargo test --test golden_trace"
        )
    });
    if let Some(d) = first_divergence(&expected, actual) {
        panic!(
            "golden trace '{name}' diverged.\n{}\nIf the change is intentional, regenerate with \
             UPDATE_GOLDEN=1 cargo test --test golden_trace and review the diff.",
            render_divergence(&d)
        );
    }
}

#[test]
fn smart_home_trace_matches_golden() {
    let (d, _) = scenario::smart_home(Defense::iotsec(), GOLDEN_SEED);
    check_golden("smart_home", &run_traced(&d));
}

#[test]
fn enterprise_trace_matches_golden() {
    let (d, _) = scenario::enterprise(Defense::iotsec(), GOLDEN_SEED);
    check_golden("enterprise", &run_traced(&d));
}

/// The chaos-on golden: the smart home with a scripted double crash on
/// the open-resolver plug and the safety layer armed. Its trace must
/// contain the full safety narrative — violations, a breaker trip, and
/// a quarantine install — and reproduce byte-for-byte like the quiet
/// goldens do.
fn chaos_smart_home() -> Deployment {
    use iotsec_repro::iotctl::safety::SafetyConfig;
    use iotsec_repro::iotdev::proto::MgmtCommand;
    use iotsec_repro::iotnet::time::SimTime;
    use iotsec_repro::iotsec::chaos::ChaosConfig;
    use iotsec_repro::iotsec::deployment::StepSpec;
    let (mut d, v) = scenario::smart_home(Defense::iotsec(), GOLDEN_SEED);
    let plug = v[5];
    let cam = v[0];
    // A reflection burst lands between the two crashes: the downed
    // fail-open chain leaks it (a recorded coverage violation) before
    // the second crash trips the breaker and quarantines the plug.
    d.campaign(vec![
        StepSpec::Wait(SimDuration::from_millis(3500)),
        StepSpec::DnsReflect { reflector: plug, queries: 10 },
        StepSpec::Wait(SimDuration::from_secs(2)),
        StepSpec::DictionaryLogin(cam),
        StepSpec::Mgmt(cam, MgmtCommand::GetImage),
        StepSpec::DnsReflect { reflector: plug, queries: 20 },
    ]);
    d.chaos(
        ChaosConfig::new()
            .with_seed(GOLDEN_SEED)
            .with_watchdog(SimDuration::from_secs(15))
            .crash(SimTime::from_secs(3), plug)
            .crash(SimTime::from_secs(5), plug),
    );
    d.safety(SafetyConfig::default());
    d
}

#[test]
fn chaos_smart_home_trace_matches_golden() {
    let trace = run_traced(&chaos_smart_home());
    for kind in ["safety-violation", "breaker-trip", "quarantine-install"] {
        assert!(
            trace.lines().any(|l| l.contains(&format!("\"e\":\"{kind}\""))),
            "chaos golden must contain a '{kind}' event:\n{trace}"
        );
    }
    check_golden("smart_home_chaos", &trace);
}

#[test]
fn golden_runs_are_reproducible_in_process() {
    // The golden contract rests on run-to-run determinism; pin it
    // directly so a failure here (not the checked-in file) points at a
    // nondeterministic emission site rather than a stale golden.
    let (d, _) = scenario::smart_home(Defense::iotsec(), GOLDEN_SEED);
    let first = run_traced(&d);
    let second = run_traced(&d);
    assert!(
        first_divergence(&first, &second).is_none(),
        "same deployment, same process, different traces:\n{}",
        render_divergence(&first_divergence(&first, &second).unwrap())
    );
    assert!(!first.is_empty(), "the iotsec smart home must emit control-plane events");
}
