//! E20 fleet properties: the sharded fleet engine is thread-count
//! invariant for arbitrary shapes, and a fleet of N homes is
//! observationally identical to N individually-run `World`s.

use iotsec_fleet::{home_seed, Fleet, FleetConfig, FleetScenario};
use iotsec_repro::iotsec::world::{HomeOverrides, World};
use proptest::prelude::*;

/// Rounds per property case: breach round + defended round is enough to
/// exercise discovery, the barrier, and the epoch-keyed memo.
const ROUNDS: u32 = 2;

fn run_fleet(cfg: FleetConfig, stride: u32, rounds: u32) -> Fleet<FleetScenario> {
    let mut fleet = Fleet::new(FleetScenario::new(stride), cfg);
    for _ in 0..rounds {
        fleet.round();
    }
    fleet
}

proptest! {
    /// The acceptance property: for an arbitrary fleet shape (seed, home
    /// count, neighborhood size, chunk size) the chained fleet digest is
    /// byte-identical across `--threads {1, 2, 4}` and across reruns.
    #[test]
    fn prop_fleet_digest_is_thread_invariant(
        seed in any::<u64>(),
        homes in 1u32..11,
        neighborhood in 1u32..7,
        chunk in 1u32..7,
    ) {
        let cfg = FleetConfig { homes, neighborhood, chunk, threads: 1, seed };
        let reference = run_fleet(cfg, 1, ROUNDS).report();
        prop_assert_eq!(&run_fleet(cfg, 1, ROUNDS).report(), &reference);
        for threads in [2usize, 4] {
            let par = run_fleet(cfg.with_threads(threads), 1, ROUNDS).report();
            prop_assert_eq!(&par, &reference);
        }
    }

    /// The fleet is just N homes: every per-home outcome equals running
    /// that home's world individually with the fleet's final intel
    /// snapshot (same derived seed, same borrowed signatures).
    #[test]
    fn prop_fleet_equals_individual_worlds(
        seed in any::<u64>(),
        homes in 1u32..7,
        chunk in 1u32..5,
    ) {
        let cfg = FleetConfig { homes, neighborhood: 3, chunk, threads: 1, seed };
        let fleet = run_fleet(cfg, 1, ROUNDS);
        let scenario = FleetScenario::new(1);
        let intel = fleet.intel().clone();
        for home in 0..homes {
            let hs = home_seed(seed, home);
            let overrides = HomeOverrides { seed: hs, extra_signatures: &intel };
            let mut w = World::new_home(scenario.template(), &overrides);
            w.run_until_attack_done(scenario.horizon());
            let solo = scenario.outcome_of(home, hs, &mut w);
            prop_assert_eq!(fleet.outcome(home), solo);
        }
    }

    /// Rounds past quiescence are pure memo replay: running extra rounds
    /// after the intel epoch stops moving executes zero homes and leaves
    /// every per-home outcome untouched.
    #[test]
    fn prop_quiesced_rounds_are_memo_hits(seed in any::<u64>(), homes in 1u32..9) {
        let cfg = FleetConfig { homes, neighborhood: 4, chunk: 3, threads: 1, seed };
        let mut fleet = Fleet::new(FleetScenario::new(1), cfg);
        fleet.round();
        fleet.round();
        let before: Vec<_> = (0..homes).map(|h| fleet.outcome(h)).collect();
        let r = fleet.round();
        prop_assert_eq!(r.executed, 0);
        prop_assert_eq!(r.memo_hits, homes);
        prop_assert_eq!(r.discoveries, 0);
        let after: Vec<_> = (0..homes).map(|h| fleet.outcome(h)).collect();
        prop_assert_eq!(after, before);
    }
}

/// Thread invariance at a shape where chunks, neighborhoods and the home
/// count are all mutually misaligned (37 = prime, nbhd 5, chunk 3), with
/// enough homes that the work-stealing path genuinely interleaves.
#[test]
fn misaligned_fleet_is_thread_invariant() {
    let cfg = FleetConfig { homes: 37, neighborhood: 5, chunk: 3, threads: 1, seed: 20151116 };
    let reference = run_fleet(cfg, 4, 3).report();
    assert!(reference.discoveries >= 1);
    assert_eq!(reference.epoch, 1);
    for threads in [2usize, 3, 4, 8] {
        let par = run_fleet(cfg.with_threads(threads), 4, 3).report();
        assert_eq!(par, reference, "threads {threads}");
    }
}
