//! Enterprise-site integration: the paper's second deployment model —
//! devices deep inside a multi-switch network with an on-premise NFV
//! cluster. The "deep inside" part is the point: the attacker may
//! already be on the LAN (the compromised-handheld-scanner story from
//! the paper's introduction), where a perimeter firewall sees nothing.

use iotsec_repro::iotdev::proto::MgmtCommand;
use iotsec_repro::iotnet::time::SimDuration;
use iotsec_repro::iotsec::defense::{Defense, IoTSecConfig};
use iotsec_repro::iotsec::deployment::{AttackerLocation, Deployment, DeviceSetup, Site, StepSpec};
use iotsec_repro::iotsec::world::World;

fn enterprise_deployment(defense: Defense, attacker: AttackerLocation) -> Deployment {
    let mut d = Deployment::new();
    d.site = Site::Enterprise { edges: 4 };
    d.attacker_location = attacker;
    // A dozen Table 1 cameras spread over four edge switches.
    let cams: Vec<_> = (0..12).map(|_| d.device(DeviceSetup::table1_row(1))).collect();
    d.campaign(vec![
        StepSpec::DictionaryLogin(cams[5]),
        StepSpec::Mgmt(cams[5], MgmtCommand::GetImage),
        StepSpec::DictionaryLogin(cams[10]),
        StepSpec::Mgmt(cams[10], MgmtCommand::GetImage),
    ]);
    d.defend_with(defense);
    d
}

#[test]
fn enterprise_devices_span_edge_switches() {
    let d = enterprise_deployment(Defense::None, AttackerLocation::Wan);
    let w = World::new(&d);
    let s0 = w.switch_of(iotsec_repro::iotdev::device::DeviceId(0));
    let s1 = w.switch_of(iotsec_repro::iotdev::device::DeviceId(1));
    assert_ne!(s0, s1, "round-robin must spread devices");
    assert_ne!(s0, w.core_switch());
}

#[test]
fn enterprise_undefended_falls_cross_switch() {
    let mut w = World::new(&enterprise_deployment(Defense::None, AttackerLocation::Wan));
    w.run_until_attack_done(SimDuration::from_secs(120));
    let m = w.report();
    assert!(m.campaign_succeeded(), "{:?}", m.attack_outcomes);
    assert_eq!(m.privacy_leaked.len(), 2);
}

#[test]
fn lan_attacker_walks_through_the_perimeter() {
    // The perimeter firewall guards the WAN port; an attacker already on
    // an edge switch never crosses it. This is the paper's "devices are
    // deep inside networks" argument.
    let mut w = World::new(&enterprise_deployment(Defense::Perimeter, AttackerLocation::Lan));
    w.run_until_attack_done(SimDuration::from_secs(120));
    let m = w.report();
    assert!(m.campaign_succeeded(), "{:?}", m.attack_outcomes);
    assert!(!m.privacy_leaked.is_empty());
}

#[test]
fn iotsec_protects_against_the_insider_too() {
    // Per-device µmboxes sit at the first hop, so LAN-resident attackers
    // hit them exactly like remote ones.
    let mut w = World::new(&enterprise_deployment(Defense::iotsec(), AttackerLocation::Lan));
    w.run_until_attack_done(SimDuration::from_secs(120));
    let m = w.report();
    assert!(!m.campaign_succeeded(), "{:?}", m.attack_outcomes);
    assert!(m.privacy_leaked.is_empty());
    assert!(m.umbox_drops + m.umbox_intercepts > 0);
}

#[test]
fn enterprise_cluster_hosts_heavy_umboxes() {
    // The on-premise cluster (4 × 8 GiB) hosts full-VM µmboxes for all
    // twelve devices — the home router could only fit four.
    let mut d = enterprise_deployment(
        Defense::IoTSec(IoTSecConfig {
            vm_kind: iotsec_repro::umbox::lifecycle::VmKind::FullVm,
            ..IoTSecConfig::default()
        }),
        AttackerLocation::Wan,
    );
    // Give the VMs time to boot before the strikes.
    d.campaign.insert(0, StepSpec::Wait(SimDuration::from_secs(30)));
    let mut w = World::new(&d);
    w.run_until_attack_done(SimDuration::from_secs(300));
    let m = w.report();
    assert!(m.privacy_leaked.is_empty(), "{}", m.summary());
}
