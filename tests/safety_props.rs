//! Safety-layer properties: the monitor is silent without faults, the
//! breaker state machine is execution-strategy invariant, and the
//! quarantine posture only ever *narrows* what a device may do.

use iotsec_bench::sweep::run_sweep;
use iotsec_repro::iotctl::safety::SafetyConfig;
use iotsec_repro::iotdev::device::DeviceClass;
use iotsec_repro::iotdev::proto::MgmtCommand;
use iotsec_repro::iotnet::engine::QueueKind;
use iotsec_repro::iotnet::time::{SimDuration, SimTime};
use iotsec_repro::iotpolicy::posture::{class_allowlist, quarantine_allowlist};
use iotsec_repro::iotsec::chaos::ChaosConfig;
use iotsec_repro::iotsec::defense::Defense;
use iotsec_repro::iotsec::deployment::{Deployment, DeviceSetup, StepSpec};
use iotsec_repro::iotsec::world::World;
use iotsec_repro::trace::{first_divergence, render_divergence, TraceConfig, Tracer};
use proptest::prelude::*;

/// The shared scenario: camera + open-resolver plug under the usual
/// campaign, with the safety layer armed. `crashes` schedules repeated
/// plug crashes inside the breaker window; zero crashes plus quiet
/// chaos is the zero-fault configuration the monitor must stay silent
/// on.
fn safety_world(seed: u64, queue: QueueKind, crashes: u32) -> Deployment {
    let mut d = Deployment::new();
    d.seed = seed;
    d.queue = queue;
    let cam = d.device(DeviceSetup::table1_row(1));
    let plug = d.device(DeviceSetup::table1_row(6));
    d.campaign(vec![
        StepSpec::Wait(SimDuration::from_secs(2)),
        StepSpec::DictionaryLogin(cam),
        StepSpec::Mgmt(cam, MgmtCommand::GetImage),
        StepSpec::DnsReflect { reflector: plug, queries: 30 },
    ]);
    d.defend_with(Defense::iotsec());
    let mut chaos = ChaosConfig::new().with_seed(seed).with_watchdog(SimDuration::from_secs(8));
    for i in 0..crashes {
        chaos = chaos.crash(SimTime::from_secs(3 + 2 * i as u64), plug);
    }
    d.chaos(chaos);
    d.safety(SafetyConfig::default());
    d
}

fn run_metrics(d: &Deployment, occupied: bool) -> String {
    let mut w = World::new(d);
    w.env.occupied = occupied;
    w.run(SimDuration::from_secs(30));
    format!("{:?}", w.report())
}

fn run_control_trace(d: &Deployment, occupied: bool) -> String {
    let tracer = Tracer::new(TraceConfig::control_only());
    let mut w = World::new_traced(d, tracer.clone());
    w.env.occupied = occupied;
    w.run(SimDuration::from_secs(30));
    tracer.to_jsonl()
}

proptest! {
    /// With chaos quiet (nothing scheduled), the armed safety layer
    /// must record zero violations, zero quarantines and zero breaker
    /// trips on every seed — attacks alone are not faults, and the
    /// monitor must never cry wolf over a healthy enforcement path.
    #[test]
    fn prop_no_faults_means_no_violations(seed in any::<u64>(), occupied in any::<bool>()) {
        let d = safety_world(seed, QueueKind::Wheel, 0);
        let mut w = World::new(&d);
        w.env.occupied = occupied;
        w.run(SimDuration::from_secs(30));
        let m = w.report();
        prop_assert_eq!(m.safety.violations, 0);
        prop_assert_eq!(m.safety.quarantines, 0);
        prop_assert_eq!(m.breaker_trips, 0);
        prop_assert_eq!(m.admission_shed, 0);
        prop_assert_eq!(m.delivery.shed_critical, 0);
        // And silence is not surrender: the campaign still never
        // reaches its target through the healthy enforcement path.
        prop_assert!(!m.attack_reached_target(), "{}", m.summary());
    }

    /// Breaker transitions (trip → half-open → reclose) and every other
    /// safety emission are a pure function of the seed: heap-queue and
    /// timer-wheel worlds produce byte-identical control traces and
    /// metrics.
    #[test]
    fn prop_breaker_transitions_are_queue_invariant(
        seed in any::<u64>(),
        crashes in 2u32..4,
    ) {
        let wheel = safety_world(seed, QueueKind::Wheel, crashes);
        let heap = safety_world(seed, QueueKind::Heap, crashes);
        let tw = run_control_trace(&wheel, true);
        let th = run_control_trace(&heap, true);
        if let Some(d) = first_divergence(&tw, &th) {
            panic!("heap-vs-wheel safety trace diverged:\n{}", render_divergence(&d));
        }
        prop_assert_eq!(run_metrics(&wheel, true), run_metrics(&heap, true));
        prop_assert!(
            tw.contains("\"e\":\"breaker-trip\""),
            "repeated crashes must trip the breaker:\n{}",
            tw
        );
    }
}

/// The same runs through the parallel sweep engine: four workers return,
/// slot for slot, the control traces the serial sweep does — breaker
/// cooldowns and quarantine escalations never sample wall-clock or
/// cross-thread state.
#[test]
fn parallel_sweep_preserves_breaker_determinism() {
    let seeds: Vec<u64> = (0..6).map(|i| 0x5AFE + i).collect();
    let serial = run_sweep(seeds.clone(), 1, |_, s| {
        run_control_trace(&safety_world(*s, QueueKind::Wheel, 3), true)
    });
    let parallel =
        run_sweep(seeds, 4, |_, s| run_control_trace(&safety_world(*s, QueueKind::Wheel, 3), true));
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        if let Some(d) = first_divergence(a, b) {
            panic!(
                "parallel-vs-serial safety trace diverged (slot {i}):\n{}",
                render_divergence(&d)
            );
        }
        assert!(a.contains("\"e\":\"breaker-trip\""), "slot {i} never tripped");
        assert!(a.contains("\"e\":\"quarantine-install\""), "slot {i} never quarantined");
    }
}

/// The quarantine posture is a strict narrowing: for every device
/// class, every service the quarantine allow-list admits is already in
/// the class's normal allow-list, and at least one normal service is
/// dropped.
#[test]
fn quarantine_posture_is_a_strict_subset_of_normal() {
    for class in DeviceClass::ALL {
        let normal = class_allowlist(class);
        let quarantine = quarantine_allowlist(class);
        for svc in &quarantine {
            assert!(
                normal.contains(svc),
                "{class:?}: quarantine admits {svc:?} which the normal posture does not"
            );
        }
        assert!(
            quarantine.len() < normal.len(),
            "{class:?}: quarantine must drop at least one normally-allowed service"
        );
    }
}
