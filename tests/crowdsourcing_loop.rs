//! The complete §4.1 loop, end to end with real packets:
//!
//! 1. Deployment A runs undefended (but mirroring) and gets hit through
//!    the Wemo cloud backdoor.
//! 2. A mines a signature from its capture — never sharing the raw
//!    trace — and publishes it to the crowdsourced repository.
//! 3. The community votes; the repository publishes.
//! 4. Deployment B, subscribed to the same SKU, fetches the signature
//!    and deploys; the *same* campaign dies in B's IDS chain — even
//!    though B has **no local vulnerability knowledge at all**.

use iotsec_repro::iotdev::proto::ControlAction;
use iotsec_repro::iotlearn::mine::mine_signatures;
use iotsec_repro::iotlearn::repo::{RepoConfig, SignatureRepo};
use iotsec_repro::iotnet::flow::{FlowAction, FlowMatch, FlowRule};
use iotsec_repro::iotnet::time::{SimDuration, SimTime};
use iotsec_repro::iotsec::defense::Defense;
use iotsec_repro::iotsec::deployment::{Deployment, DeviceSetup, StepSpec};
use iotsec_repro::iotsec::world::World;

fn wemo_deployment(defense: Defense) -> Deployment {
    let mut d = Deployment::new();
    // The backdoor is a zero-day: the operator deployed the Wemo
    // believing it clean, so no local policy anticipates the cloud plane.
    let wemo = d.device(DeviceSetup::table1_row_undisclosed(7));
    d.campaign(vec![StepSpec::Cloud(wemo, ControlAction::TurnOff)]);
    d.defend_with(defense);
    d
}

#[test]
fn attack_observed_at_a_protects_deployment_b() {
    // ---- 1. Deployment A: undefended, but its router mirrors the
    //         Wemo's traffic (forensics).
    let d_a = wemo_deployment(Defense::None);
    let mut world_a = World::new(&d_a);
    let wemo_ip = world_a.device(iotsec_repro::iotdev::device::DeviceId(0)).ip;
    let sku = world_a.device(iotsec_repro::iotdev::device::DeviceId(0)).sku.clone();
    world_a.net.install_rule(
        world_a.core_switch(),
        FlowRule::new(400, FlowMatch::to_host(wemo_ip), FlowAction::Mirror),
    );
    world_a.run_until_attack_done(SimDuration::from_secs(60));
    assert!(world_a.report().campaign_succeeded(), "A must actually be breached");
    assert!(!world_a.net.capture.is_empty(), "the mirror must have captured the attack");

    // ---- 2. Mine a signature from the capture (not the raw trace).
    let packets: Vec<_> = world_a.net.capture.iter().map(|c| c.packet.clone()).collect();
    let mined = mine_signatures(&packets, &sku);
    assert!(
        mined.iter().any(|s| s.vuln_id == "cloud-bypass-backdoor"),
        "mined: {:?}",
        mined.iter().map(|s| &s.vuln_id).collect::<Vec<_>>()
    );

    // ---- 3. Publish through the repository with community review.
    let mut repo = SignatureRepo::new(RepoConfig { quorum: 0.5, ..RepoConfig::default() });
    let reporter_a = repo.register();
    let voter = repo.register();
    let subscriber_b = repo.register();
    repo.subscribe(subscriber_b, &sku);
    for sig in mined {
        if let Some(sub) = repo.submit(reporter_a, sig) {
            repo.vote(voter, sub, true);
        }
    }
    repo.process(SimTime::ZERO);
    // B is a free-rider; the incentive lag applies.
    let fetched = repo.fetch(subscriber_b, SimTime::from_secs(3600));
    assert!(!fetched.is_empty(), "B must receive the published signature");

    // ---- 4. Deployment B: IoTSec with NO local vulnerability knowledge
    //         (signatures: false disables the vuln-derived rulesets) —
    //         only the subscription protects it.
    let mut d_b = wemo_deployment(Defense::iotsec());
    d_b.subscribed_signatures = fetched;
    let mut world_b = World::new(&d_b);
    world_b.run_until_attack_done(SimDuration::from_secs(60));
    let m = world_b.report();
    assert!(!m.campaign_succeeded(), "B must be protected: {:?}", m.attack_outcomes);
    assert!(m.compromised.is_empty());
    assert!(m.umbox_drops > 0, "the subscribed IDS must have dropped the backdoor packet");

    // ---- Control: an identical B without the subscription falls to
    //      the zero-day (IoTSec cannot mitigate a flaw nobody disclosed;
    //      it can only react after the fact).
    let d_c = wemo_deployment(Defense::iotsec());
    let mut world_c = World::new(&d_c);
    world_c.run_until_attack_done(SimDuration::from_secs(60));
    let m = world_c.report();
    assert!(
        m.attack_outcomes[0].success,
        "control run should show the unsubscribed deployment losing the first strike: {:?}",
        m.attack_outcomes
    );
}

#[test]
fn fingerprint_selects_the_signature_feed() {
    use iotsec_repro::iotdev::proto::{ports, TelemetryKind};
    use iotsec_repro::iotlearn::fingerprint::{Fingerprint, FingerprintDb};

    // A new device joins deployment B; passive observation fingerprints
    // it as the backdoored Wemo firmware, which tells B which feed to
    // subscribe to — SKU granularity, exactly what §4 demands.
    let db = FingerprintDb::with_table1();
    let mut observed = Fingerprint::default();
    observed
        .serve(ports::MGMT)
        .serve(ports::CONTROL)
        .serve(ports::CLOUD)
        .emit(TelemetryKind::Power);
    observed.period_s = 5;
    let id = db.identify(&observed, 0.8).expect("fingerprint should identify the SKU");
    assert_eq!(id.sku, iotsec_repro::iotdev::registry::Sku::new("belkin", "wemo", "1.1"));
}
