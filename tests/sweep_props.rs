//! Property tests for the performance architecture: the parallel sweep
//! engine must be thread-count invariant, and the timer-wheel event
//! queue must pop in exactly the order the reference binary heap does.

use iotsec_bench::sweep::{sweep_worlds, SweepScenario, WorldJob};
use iotsec_repro::iotctl::concurrent::SweepLedger;
use iotsec_repro::iotnet::engine::{EventQueue, HeapEventQueue};
use iotsec_repro::iotnet::time::SimTime;
use proptest::prelude::*;

/// The E16 acceptance property: for every (scenario, seed) cell the
/// parallel sweep's merged outcome digests are byte-identical to the
/// serial reference run.
#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let mut jobs = Vec::new();
    for scenario in [SweepScenario::HomeUndefended, SweepScenario::HomeIoTSec] {
        for seed in [11u64, 12, 13] {
            jobs.push(WorldJob { scenario, seed, population: 0 });
        }
    }
    let ledger = SweepLedger::new();
    let serial = sweep_worlds(&jobs, 1, &SweepLedger::new());
    let parallel = sweep_worlds(&jobs, 4, &ledger);
    let serial_digests: Vec<String> = serial.iter().map(|o| o.digest()).collect();
    let parallel_digests: Vec<String> = parallel.iter().map(|o| o.digest()).collect();
    assert_eq!(serial_digests, parallel_digests);
    assert_eq!(ledger.done(), jobs.len() as u64);
    assert!(ledger.events() > 0);
}

proptest! {
    /// The timer wheel is a drop-in for the reference heap: an arbitrary
    /// schedule (including duplicate timestamps, where insertion order
    /// must win) pops in exactly the same order from both.
    #[test]
    fn prop_timer_wheel_matches_reference_heap(
        times in prop::collection::vec(0u64..5_000_000_000, 1..200),
    ) {
        let mut wheel: EventQueue<u32> = EventQueue::new();
        let mut heap: HeapEventQueue<u32> = HeapEventQueue::new();
        for (i, t) in times.iter().enumerate() {
            wheel.schedule(SimTime::from_nanos(*t), i as u32);
            heap.schedule(SimTime::from_nanos(*t), i as u32);
        }
        prop_assert_eq!(wheel.len(), heap.len());
        loop {
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Same property under interleaved schedule/pop traffic: popping
    /// advances the clock, and late schedules (clamped to `now`) must
    /// still agree between the two implementations.
    #[test]
    fn prop_timer_wheel_matches_heap_interleaved(
        batches in prop::collection::vec(
            (prop::collection::vec(0u64..2_000_000_000, 1..20), 1usize..10),
            1..10,
        ),
    ) {
        let mut wheel: EventQueue<u32> = EventQueue::new();
        let mut heap: HeapEventQueue<u32> = HeapEventQueue::new();
        let mut next = 0u32;
        for (times, pops) in batches {
            for t in times {
                wheel.schedule(SimTime::from_nanos(t), next);
                heap.schedule(SimTime::from_nanos(t), next);
                next += 1;
            }
            for _ in 0..pops {
                prop_assert_eq!(wheel.pop(), heap.pop());
            }
        }
        while let Some(got) = wheel.pop() {
            prop_assert_eq!(Some(got), heap.pop());
        }
        prop_assert!(heap.pop().is_none());
    }
}
