//! E23 vet-layer properties: generated scenarios stay inside the
//! grammar, artifacts round-trip, and every weakened-defense violation
//! shrinks to a small, deterministic, replayable repro.

use iotsec_fuzz::{
    artifact, generate, run_oracle, shrink, GenConfig, ScenarioSpec, Verdict, Weakness,
};
use proptest::prelude::*;

fn weakened() -> GenConfig {
    GenConfig::weakened(Weakness::NoQuarantine)
}

/// The first weakened-family seed at or above `from` whose scenario the
/// oracle flags. The weakened family violates often (quarantine
/// escalation off, chains failing open), so the scan is short.
fn first_violating_seed(from: u64) -> (u64, ScenarioSpec) {
    let cfg = weakened();
    for seed in from..from + 64 {
        let spec = generate(seed, &cfg);
        if run_oracle(&spec).verdict == Verdict::Violation {
            return (seed, spec);
        }
    }
    panic!("no violating weakened scenario in seeds {from}..{}", from + 64);
}

proptest! {
    /// Every generated scenario — correct or weakened — renders to an
    /// artifact that parses back to the identical spec.
    #[test]
    fn prop_artifacts_round_trip(seed in any::<u64>(), weak in any::<bool>()) {
        let cfg = if weak { weakened() } else { GenConfig::default() };
        let spec = generate(seed, &cfg);
        let parsed = artifact::parse(&artifact::render(&spec)).expect("rendered artifact parses");
        prop_assert_eq!(parsed, spec);
    }

    /// Known-injected violations (the weakened family) always shrink to
    /// a small repro: at most 3 devices and at most 2 faults, and the
    /// minimal spec still round-trips through its artifact.
    #[test]
    fn prop_weakened_violations_shrink_small(seed in 0u64..1000) {
        let spec = generate(seed, &weakened());
        let Some(repro) = shrink(&spec) else {
            // This seed's scenario happens to survive the weakening;
            // nothing to minimize.
            return Ok(());
        };
        prop_assert!(
            repro.spec.devices.len() <= 3,
            "shrink left {} devices: {:?}",
            repro.spec.devices.len(),
            repro.spec
        );
        prop_assert!(
            repro.spec.faults.len() <= 2,
            "shrink left {} faults: {:?}",
            repro.spec.faults.len(),
            repro.spec
        );
        prop_assert!(!repro.violations.is_empty());
        // The artifact (minus its `# violation=` trailer comments)
        // parses back to exactly the minimal spec.
        let parsed = artifact::parse(&repro.artifact).expect("repro artifact parses");
        prop_assert_eq!(parsed, repro.spec);
    }
}

/// The shrinker is a pure function of the spec: the same violating
/// scenario minimizes to the byte-identical artifact on every rerun and
/// on every thread.
#[test]
fn shrinking_is_deterministic_across_threads() {
    let (_, spec) = first_violating_seed(0);
    let reference = shrink(&spec).expect("scenario violates").artifact;
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let spec = spec.clone();
            std::thread::spawn(move || shrink(&spec).expect("scenario violates").artifact)
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().expect("shrink thread"), reference);
    }
    assert_eq!(shrink(&spec).expect("scenario violates").artifact, reference);
}

/// A seeded vet batch run *as a fleet* (E20): each home is one
/// generated scenario's defense-on world, `flagged` carries its
/// invariant-violation count, and the fleet must agree with the
/// single-world oracle home-for-home at every thread count.
struct VetFleet {
    specs: Vec<ScenarioSpec>,
}

impl iotsec_fleet::HomeWorld for VetFleet {
    type Resident = ();

    fn run_home(
        &self,
        home: u32,
        seed: u64,
        _intel: &[iotsec_repro::iotlearn::AttackSignature],
    ) -> iotsec_fleet::HomeOutcome {
        let violations = iotsec_fuzz::oracle::defense_on_violations(&self.specs[home as usize]);
        let mut h = iotsec_repro::trace::Fnv64::new();
        h.write_u64(seed);
        for v in &violations {
            h.write_u64(v.at_ns);
            h.write_u32(v.device);
            h.write_bytes(v.invariant.as_bytes());
        }
        iotsec_fleet::HomeOutcome {
            digest: h.finish(),
            flagged: violations.len() as u32,
            ..Default::default()
        }
    }

    fn discovery(&self, _home: u32) -> Option<iotsec_repro::iotlearn::AttackSignature> {
        None
    }
}

/// Half the batch is the correct-defense family (must vet clean), half
/// is the weakened family (violations expected); the fleet's per-home
/// verdicts must match `run_oracle`, and the fleet digest must be
/// byte-identical serial vs parallel.
#[test]
fn fleet_vet_batch_matches_single_world_oracle() {
    use iotsec_fleet::{Fleet, FleetConfig};

    let mut specs = Vec::new();
    for seed in 0..4u64 {
        specs.push(generate(seed, &GenConfig::default()));
    }
    let (seed, violating) = first_violating_seed(0);
    specs.push(violating);
    for s in [seed + 1, seed + 2, seed + 3] {
        specs.push(generate(s, &weakened()));
    }
    let homes = specs.len() as u32;

    let run_batch = |threads: usize| {
        let cfg = FleetConfig { homes, neighborhood: 3, chunk: 2, threads, seed: 7 };
        let mut fleet = Fleet::new(VetFleet { specs: specs.clone() }, cfg);
        fleet.round();
        let outcomes: Vec<_> = (0..homes).map(|h| fleet.outcome(h)).collect();
        (fleet.digest(), outcomes)
    };

    let (digest, outcomes) = run_batch(1);
    let (par_digest, par_outcomes) = run_batch(2);
    assert_eq!(par_digest, digest, "vet fleet must be thread-invariant");
    assert_eq!(par_outcomes, outcomes);

    let mut saw_violation = false;
    for (home, (spec, out)) in specs.iter().zip(&outcomes).enumerate() {
        let report = run_oracle(spec);
        assert_eq!(
            out.flagged > 0,
            report.verdict == Verdict::Violation,
            "home {home}: fleet flagged {} but oracle said {:?}",
            out.flagged,
            report.verdict
        );
        assert_eq!(out.flagged as usize, report.violations.len(), "home {home}");
        if home < 4 {
            assert_eq!(out.flagged, 0, "correct-defense home {home} must vet clean");
        }
        saw_violation |= out.flagged > 0;
    }
    assert!(saw_violation, "the weakened half of the batch must flag at least one home");
}

/// Distinct violating seeds each shrink deterministically (rerun equals
/// first run) — the minimality loop never samples anything outside the
/// spec.
#[test]
fn shrinking_is_deterministic_across_seeds() {
    let mut from = 0;
    for _ in 0..3 {
        let (seed, spec) = first_violating_seed(from);
        let a = shrink(&spec).expect("violates");
        let b = shrink(&spec).expect("violates");
        assert_eq!(a.artifact, b.artifact, "seed {seed}");
        assert_eq!(a.oracle_runs, b.oracle_runs, "seed {seed}");
        from = seed + 1;
    }
}
