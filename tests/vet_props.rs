//! E23 vet-layer properties: generated scenarios stay inside the
//! grammar, artifacts round-trip, and every weakened-defense violation
//! shrinks to a small, deterministic, replayable repro.

use iotsec_fuzz::{
    artifact, generate, run_oracle, shrink, GenConfig, ScenarioSpec, Verdict, Weakness,
};
use proptest::prelude::*;

fn weakened() -> GenConfig {
    GenConfig::weakened(Weakness::NoQuarantine)
}

/// The first weakened-family seed at or above `from` whose scenario the
/// oracle flags. The weakened family violates often (quarantine
/// escalation off, chains failing open), so the scan is short.
fn first_violating_seed(from: u64) -> (u64, ScenarioSpec) {
    let cfg = weakened();
    for seed in from..from + 64 {
        let spec = generate(seed, &cfg);
        if run_oracle(&spec).verdict == Verdict::Violation {
            return (seed, spec);
        }
    }
    panic!("no violating weakened scenario in seeds {from}..{}", from + 64);
}

proptest! {
    /// Every generated scenario — correct or weakened — renders to an
    /// artifact that parses back to the identical spec.
    #[test]
    fn prop_artifacts_round_trip(seed in any::<u64>(), weak in any::<bool>()) {
        let cfg = if weak { weakened() } else { GenConfig::default() };
        let spec = generate(seed, &cfg);
        let parsed = artifact::parse(&artifact::render(&spec)).expect("rendered artifact parses");
        prop_assert_eq!(parsed, spec);
    }

    /// Known-injected violations (the weakened family) always shrink to
    /// a small repro: at most 3 devices and at most 2 faults, and the
    /// minimal spec still round-trips through its artifact.
    #[test]
    fn prop_weakened_violations_shrink_small(seed in 0u64..1000) {
        let spec = generate(seed, &weakened());
        let Some(repro) = shrink(&spec) else {
            // This seed's scenario happens to survive the weakening;
            // nothing to minimize.
            return Ok(());
        };
        prop_assert!(
            repro.spec.devices.len() <= 3,
            "shrink left {} devices: {:?}",
            repro.spec.devices.len(),
            repro.spec
        );
        prop_assert!(
            repro.spec.faults.len() <= 2,
            "shrink left {} faults: {:?}",
            repro.spec.faults.len(),
            repro.spec
        );
        prop_assert!(!repro.violations.is_empty());
        // The artifact (minus its `# violation=` trailer comments)
        // parses back to exactly the minimal spec.
        let parsed = artifact::parse(&repro.artifact).expect("repro artifact parses");
        prop_assert_eq!(parsed, repro.spec);
    }
}

/// The shrinker is a pure function of the spec: the same violating
/// scenario minimizes to the byte-identical artifact on every rerun and
/// on every thread.
#[test]
fn shrinking_is_deterministic_across_threads() {
    let (_, spec) = first_violating_seed(0);
    let reference = shrink(&spec).expect("scenario violates").artifact;
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let spec = spec.clone();
            std::thread::spawn(move || shrink(&spec).expect("scenario violates").artifact)
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().expect("shrink thread"), reference);
    }
    assert_eq!(shrink(&spec).expect("scenario violates").artifact, reference);
}

/// Distinct violating seeds each shrink deterministically (rerun equals
/// first run) — the minimality loop never samples anything outside the
/// spec.
#[test]
fn shrinking_is_deterministic_across_seeds() {
    let mut from = 0;
    for _ in 0..3 {
        let (seed, spec) = first_violating_seed(from);
        let a = shrink(&spec).expect("violates");
        let b = shrink(&spec).expect("violates");
        assert_eq!(a.artifact, b.artifact, "seed {seed}");
        assert_eq!(a.oracle_runs, b.oracle_runs, "seed {seed}");
        from = seed + 1;
    }
}
