//! End-to-end learning pipeline (§4): an attack observed at one
//! deployment becomes a crowdsourced signature that protects another —
//! plus the model-based fuzz → attack-graph → policy loop.

use iotsec_repro::iotdev::classes::PlugLoad;
use iotsec_repro::iotdev::device::DeviceClass;
use iotsec_repro::iotdev::env::EnvVar;
use iotsec_repro::iotdev::model::AbstractModel;
use iotsec_repro::iotdev::registry::Sku;
use iotsec_repro::iotlearn::attack_graph::{breakin_deployment, AttackGraph, Fact};
use iotsec_repro::iotlearn::fuzz::{fuzz_interactions, ground_truth, Strategy};
use iotsec_repro::iotlearn::repo::{RepoConfig, SignatureRepo};
use iotsec_repro::iotlearn::signature::{AttackSignature, Matcher, Severity};
use iotsec_repro::iotnet::time::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn crowdsourced_signature_protects_a_second_deployment() {
    // Deployment A observes the Wemo backdoor and publishes a signature.
    let sku = Sku::new("belkin", "wemo", "1.1");
    let mut repo = SignatureRepo::new(RepoConfig { quorum: 1.0, ..RepoConfig::default() });
    let deployment_a = repo.register();
    let deployment_b = repo.register();
    let voter1 = repo.register();
    let voter2 = repo.register();
    repo.subscribe(deployment_b, &sku);

    let observed = AttackSignature::new(
        sku.clone(),
        "cloud-bypass-backdoor",
        Matcher::CloudCommand,
        Severity::High,
    );
    let sub = repo.submit(deployment_a, observed).unwrap();
    repo.vote(voter1, sub, true);
    repo.vote(voter2, sub, true);
    let published = repo.process(SimTime::from_secs(10));
    assert_eq!(published.len(), 1);

    // Deployment B is a free-rider: it sees the signature only after the
    // lag; then its IDS blocks the backdoor packet.
    assert!(repo.fetch(deployment_b, SimTime::from_secs(10)).is_empty());
    let sigs = repo.fetch(deployment_b, SimTime::from_secs(10 + 3601));
    assert_eq!(sigs.len(), 1);

    use iotsec_repro::iotdev::proto::{ports, AppMessage, ControlAction};
    use iotsec_repro::iotnet::addr::{Ipv4Addr, MacAddr};
    use iotsec_repro::iotnet::packet::{Packet, TransportHeader};
    use iotsec_repro::umbox::element::Element;
    use iotsec_repro::umbox::ids::SigIds;

    let mut ids = SigIds::new(iotsec_repro::iotdev::device::DeviceId(0), sigs);
    let backdoor_pkt = Packet::new(
        MacAddr::from_index(9),
        MacAddr::from_index(1),
        Ipv4Addr::new(100, 64, 0, 9),
        Ipv4Addr::new(10, 0, 0, 5),
        TransportHeader::tcp(40000, ports::CLOUD, 0, Default::default()),
        AppMessage::CloudCommand { action: ControlAction::TurnOff }.encode(),
    );
    let out = ids.process(SimTime::ZERO, backdoor_pkt);
    assert!(out.packet.is_none(), "deployment B's IDS must drop the backdoor");
    assert_eq!(ids.matches, 1);
}

#[test]
fn poisoning_campaign_is_contained_by_reputation() {
    // 20 honest reporters, 8 poisoners. Poisoners submit match-all
    // "signatures" (a DoS if published) and downvote honest submissions.
    let sku = Sku::new("belkin", "wemo", "1.0");
    let mut repo = SignatureRepo::new(RepoConfig::default());
    let honest: Vec<_> = (0..20).map(|_| repo.register()).collect();
    let poison: Vec<_> = (0..8).map(|_| repo.register()).collect();

    for round in 0..5u64 {
        // Poisoners spam garbage.
        for p in &poison {
            repo.submit(
                *p,
                AttackSignature::new(sku.clone(), "fake", Matcher::MatchAll, Severity::High),
            );
        }
        // One honest report per round, honestly voted.
        let sub = repo
            .submit(
                honest[round as usize],
                AttackSignature::new(
                    sku.clone(),
                    "open-dns-resolver",
                    Matcher::RecursiveDnsFromExternal,
                    Severity::Medium,
                ),
            )
            .unwrap();
        for h in &honest[10..] {
            repo.vote(*h, sub, true);
        }
        for p in &poison {
            repo.vote(*p, sub, false);
        }
        let published = repo.process(SimTime::from_secs(round * 60));
        for sig in published {
            // Ground truth: only the honest signature class is valid.
            repo.resolve(sig.id, sig.vuln_id == "open-dns-resolver");
        }
    }
    // No match-all garbage survived, honest signatures did.
    assert_eq!(repo.published_bad, 0);
    assert!(repo.published_count() >= 3, "published {}", repo.published_count());
    // Poisoners' reputations collapsed below the voting floor.
    for p in &poison {
        assert!(repo.reputation(*p) < 0.2, "poisoner rep {}", repo.reputation(*p));
    }
}

#[test]
fn fuzz_discovers_couplings_that_the_attack_graph_weaponizes() {
    // The §4.2 pipeline: abstract models → fuzz for interactions →
    // attack-graph search for a multi-stage path.
    let models = vec![
        AbstractModel::for_device(DeviceClass::SmartPlug, Some(PlugLoad::AirConditioner)),
        AbstractModel::for_device(DeviceClass::Thermostat, None),
        AbstractModel::for_device(DeviceClass::WindowActuator, None),
        AbstractModel::for_device(DeviceClass::FireAlarm, None),
    ];
    let truth = ground_truth(&models);
    let result =
        fuzz_interactions(&models, 5_000, Strategy::CoverageGuided, &mut StdRng::seed_from_u64(2));
    assert!(result.recall(&truth) >= 1.0);
    // The plug→thermostat coupling the fuzzer found is exactly the edge
    // the break-in attack graph rides.
    let (specs, recipes) = breakin_deployment();
    let graph = AttackGraph::build(specs, recipes);
    let path = graph.find_attack(Fact::Env(EnvVar::Window, "open")).expect("break-in path");
    assert!(path.stages() >= 3);
}

#[test]
fn anomaly_detector_flags_reflection_traffic() {
    use iotsec_repro::iotlearn::anomaly::{AnomalyConfig, AnomalyDetector, Plane, Window};
    use iotsec_repro::iotnet::addr::Ipv4Addr;

    let dev = iotsec_repro::iotdev::device::DeviceId(0);
    let mut det = AnomalyDetector::new(AnomalyConfig::default());
    // Train on normal Wemo behaviour: light telemetry to the hub.
    for _ in 0..100 {
        let mut w = Window::default();
        for _ in 0..3 {
            w.record(Plane::Telemetry, Ipv4Addr::new(10, 0, 200, 1));
        }
        det.train(dev, "present", &w);
    }
    det.seal();
    // A reflection burst: hundreds of DNS messages to a spoofed address.
    let mut attack = Window::default();
    for _ in 0..200 {
        attack.record(Plane::Dns, Ipv4Addr::new(203, 0, 113, 50));
    }
    let verdict = det.score(dev, "present", &attack);
    assert!(verdict.flagged, "{verdict:?}");
}
