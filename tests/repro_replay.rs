//! Regression replay of the checked-in minimal-repro corpus
//! (`tests/repros/*.repro`, written by the E23 shrinker).
//!
//! Each artifact is a weakened-defense scenario the vet oracle once
//! flagged, minimized by ddmin. Replaying it must (a) parse, (b) still
//! violate, and (c) reproduce exactly the invariant labels recorded in
//! the artifact's `# violation=` trailer — if a defense change ever
//! *fixes* one of these repros, this test fails and the artifact should
//! be regenerated or retired deliberately.

use iotsec_fuzz::artifact;
use iotsec_fuzz::oracle::defense_on_violations;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn corpus() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/repros");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/repros exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "repro"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "the repro corpus must not be empty");
    files
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).expect("repro file readable");
            (name, text)
        })
        .collect()
}

/// The invariant labels recorded in the artifact's trailer comments.
fn recorded_invariants(text: &str) -> BTreeSet<String> {
    text.lines()
        .filter_map(|l| l.strip_prefix("# violation="))
        .map(|rest| rest.split_whitespace().next().unwrap_or("").to_string())
        .collect()
}

#[test]
fn every_corpus_artifact_still_reproduces_its_violation() {
    for (name, text) in corpus() {
        let spec = artifact::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let violations = defense_on_violations(&spec);
        assert!(!violations.is_empty(), "{name}: repro no longer violates");
        let got: BTreeSet<String> = violations.iter().map(|v| v.invariant.to_string()).collect();
        let recorded = recorded_invariants(&text);
        assert!(!recorded.is_empty(), "{name}: artifact has no violation trailer");
        assert_eq!(got, recorded, "{name}: violation set drifted from the recorded trailer");
    }
}

#[test]
fn corpus_artifacts_are_minimal_scale() {
    // The shrinker's contract: a corpus repro is small enough to read.
    for (name, text) in corpus() {
        let spec = artifact::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(spec.devices.len() <= 3, "{name}: {} devices", spec.devices.len());
        assert!(spec.faults.len() <= 2, "{name}: {} faults", spec.faults.len());
    }
}
