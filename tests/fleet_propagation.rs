//! E20 propagation regression: one sentinel home's crowdsourced
//! discovery must reach *every* home in the fleet within the batching
//! bound (the next round barrier), through the home → neighborhood →
//! region hierarchy, with the install order pinned by a checked-in
//! golden fleet trace.
//!
//! Bless an intentional change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test fleet_propagation
//! ```

use iotsec_fleet::{Fleet, FleetConfig, FleetScenario};
use iotsec_repro::iotlearn::AttackSignature;
use iotsec_repro::trace::{first_divergence, render_divergence, TraceConfig, Tracer};

/// The seed the golden fleet trace was blessed at.
const GOLDEN_SEED: u64 = 42;
const HOMES: u32 = 12;
const NEIGHBORHOOD: u32 = 4;

fn fleet_cfg() -> FleetConfig {
    FleetConfig {
        homes: HOMES,
        neighborhood: NEIGHBORHOOD,
        chunk: 3,
        threads: 1,
        seed: GOLDEN_SEED,
    }
}

fn check_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/golden/{name}.jsonl", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {path}: {e}\nbless it with UPDATE_GOLDEN=1 cargo test --test \
             fleet_propagation"
        )
    });
    if let Some(d) = first_divergence(&expected, actual) {
        panic!(
            "golden fleet trace '{name}' diverged.\n{}\nIf the change is intentional, regenerate \
             with UPDATE_GOLDEN=1 cargo test --test fleet_propagation and review the diff.",
            render_divergence(&d)
        );
    }
}

/// The batching bound: a signature discovered in round R is installed in
/// every home at round R's barrier — by round R+1 every world runs
/// defended, and the ledger says so per home.
#[test]
fn discovery_reaches_every_home_within_one_barrier() {
    let mut fleet = Fleet::new(FleetScenario::new(HOMES), fleet_cfg());
    let r0 = fleet.round();
    assert_eq!(r0.discoveries, 1, "exactly one sentinel (home 0) publishes");
    assert_eq!(r0.epoch, 1, "the region epoch moves at the same barrier");
    assert_eq!(r0.installs, u64::from(HOMES), "every home gets the directive batch");
    for home in 0..HOMES {
        assert_eq!(fleet.installed_at(home), 1, "home {home} missed the install wave");
    }
    // The installed snapshot *is* the discovered signature: the canonical
    // Table 1 row 1 default-credential ruleset for the camera SKU.
    let scenario = FleetScenario::new(HOMES);
    let cam_sku = &scenario.template().devices[0].sku;
    let expected = AttackSignature::for_table1_row(1, cam_sku).expect("row 1 has a signature");
    assert_eq!(fleet.intel().as_ref(), &[expected][..]);

    // Round R+1: every home now runs with the signature in its ruleset —
    // the standing IDS blocks the campaign fleet-wide.
    fleet.round();
    for home in 0..HOMES {
        let o = fleet.outcome(home);
        assert_eq!(o.leaked, 0, "home {home} still leaks after the install wave: {o:?}");
        assert!(o.blocks > 0, "home {home} has the ruleset but never matched it: {o:?}");
    }
}

/// The region interns the snapshot once: 10¹ neighborhoods × 10¹ homes
/// all share the same `Arc` allocation, and the interner records exactly
/// one distinct snapshot for the whole propagation wave.
#[test]
fn installed_intel_is_one_shared_snapshot() {
    let mut fleet = Fleet::new(FleetScenario::new(HOMES), fleet_cfg());
    fleet.run(2);
    let report = fleet.report();
    assert_eq!(report.interned, 1, "one discovery must intern exactly one snapshot");
    assert_eq!(report.intel_len, 1);
    assert_eq!(report.installs, u64::from(HOMES));
    assert_eq!(
        report.batches,
        u64::from(HOMES.div_ceil(NEIGHBORHOOD)),
        "installs must flow as one batch per neighborhood"
    );
    // The snapshot handle is literally shared, not per-home copies.
    let a = fleet.intel().clone();
    let b = fleet.intel().clone();
    assert!(std::sync::Arc::ptr_eq(&a, &b));
}

/// The install order is pinned: discovery, then per-neighborhood batches
/// in neighborhood order, then per-home installs in home order — the
/// checked-in golden fleet trace is the regression surface.
#[test]
fn fleet_trace_matches_golden() {
    let tracer = Tracer::new(TraceConfig::control_only());
    let mut fleet = Fleet::with_tracer(FleetScenario::new(HOMES), fleet_cfg(), tracer.clone());
    fleet.run(3);
    let trace = tracer.to_jsonl();
    for kind in ["fleet-discovery", "fleet-batch", "fleet-install"] {
        assert!(
            trace.lines().any(|l| l.contains(&format!("\"e\":\"{kind}\""))),
            "fleet golden must contain a '{kind}' event:\n{trace}"
        );
    }
    // Quiesced rounds emit nothing: the trace is exactly the round-0
    // propagation wave (1 discovery + 3 batches + 12 installs).
    assert_eq!(trace.lines().count(), 1 + 3 + HOMES as usize);
    check_golden("fleet_propagation", &trace);
}
