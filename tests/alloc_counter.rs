//! Allocation accounting for the clone-churn work: world construction
//! interns per-device signature rulesets behind `Rc` slices, so handing
//! a ruleset to a chain must be allocation-free, and building the same
//! deployment twice must allocate exactly the same amount (no hidden
//! nondeterministic cloning).
//!
//! Lives here (not in `crates/core`) because a counting allocator needs
//! `unsafe impl GlobalAlloc` and the core crate is `#![forbid(unsafe_code)]`;
//! an integration test is its own crate, so the forbid does not apply.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations observed while running `f`. The test binary holds a
/// single test function, so no sibling test threads pollute the count.
fn allocs_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCS.load(Ordering::Relaxed) - before, result)
}

/// Bytes requested from the allocator while running `f`.
fn bytes_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = BYTES.load(Ordering::Relaxed);
    let result = f();
    (BYTES.load(Ordering::Relaxed) - before, result)
}

/// Minimum allocation count over `n` trials (absorbs one-off lazy-init
/// noise from the runtime or test harness).
fn min_allocs_over<R>(n: usize, mut f: impl FnMut() -> R) -> u64 {
    (0..n).map(|_| allocs_during(&mut f).0).min().unwrap()
}

#[test]
fn world_construction_allocation_profile() {
    use iotsec_repro::iotdev::device::DeviceId;
    use iotsec_repro::iotsec::defense::Defense;
    use iotsec_repro::iotsec::scenario;
    use iotsec_repro::iotsec::world::World;

    let (d, _) = scenario::smart_home(Defense::iotsec(), 42);

    // 1. Same deployment, same allocation count: World::new clones
    // nothing whose size depends on run-to-run state (the old code
    // cloned ChaosConfig plans and per-device vuln vectors it then
    // rebuilt anyway; any reintroduced clone shows up here as a count
    // change between builds).
    let first = min_allocs_over(3, || World::new(&d));
    let second = min_allocs_over(3, || World::new(&d));
    assert_eq!(first, second, "World::new must allocate deterministically");

    // 2. Handing out a device's signature ruleset is an Rc refcount
    // bump, not a Vec clone: zero allocations.
    let w = World::new(&d);
    let handout = min_allocs_over(5, || {
        for i in 0..7u32 {
            std::hint::black_box(w.signatures_for(DeviceId(i)));
        }
    });
    assert_eq!(handout, 0, "signatures_for must not clone the ruleset");

    // 3. The population axis scales world size but not per-device
    // signature cloning: 16 extra *clean* devices add bounded per-device
    // setup, far below what re-cloning the 7 vulnerable rulesets per
    // device would cost. Guard the ratio rather than an absolute count
    // so the bound survives allocator-agnostic refactors.
    let (big, _) = scenario::scaled_home(Defense::iotsec(), 42, 16);
    let big_count = min_allocs_over(3, || World::new(&big));
    assert!(
        big_count < first * 4,
        "scaled world ({big_count} allocs) must stay within 4x the base ({first})"
    );

    // 4. The packed state-space inner loop (E19) is allocation-free
    // once the memo tables are warm: odometer stepping is register
    // arithmetic and every rule-match set resolves to an already
    // interned posture class, so sweeping the whole space a second time
    // must not touch the allocator at all.
    use iotsec_repro::iotpolicy::packed::MemoPolicy;

    let policy = iotsec_bench::exp_policy::policy_for(6, 1);
    let mut memo = MemoPolicy::new(&policy).expect("E19 policy family packs");
    // Warm sweep: intern every posture class the space can produce.
    let mut cursor = Some(memo.layout().first());
    while let Some(p) = cursor {
        std::hint::black_box(memo.class_of(p));
        cursor = memo.layout().next(p);
    }
    let sweep = min_allocs_over(3, || {
        let mut quiet: u64 = 0;
        let mut cursor = Some(memo.layout().first());
        while let Some(p) = cursor {
            let class = memo.class_of(p);
            quiet += memo.is_quiet(class) as u64;
            cursor = memo.layout().next(p);
        }
        std::hint::black_box(quiet)
    });
    assert_eq!(sweep, 0, "warm packed sweep must not allocate");

    // 5. The warm fleet tick (E20): once a fleet's intel epoch stops
    // moving, a whole round is memo replay — every home's outcome is a
    // `(home, epoch)` memo hit, the merge writes Copy outcomes and folds
    // the digest in place, and the barrier flushes empty buffers into a
    // no-op absorb. A steady-state fleet round must not allocate at all.
    warm_fleet_round_is_allocation_free();

    // 6. The full engine tick (E21): schedule → fire → forward → verdict
    // through a steered IDS chain is allocation-free once warm. Event
    // payloads live in the generational arena, wheel slots and heaps
    // move Copy tickets, the decision cache is keyed by the packed flow
    // key, the IDS prefilter screens the benign traffic without a
    // payload decode, and pass/drop verdicts carry packets inline — so
    // a steady round never touches the allocator.
    steady_engine_tick_is_allocation_free();

    // 7. Recycled home builds (E25): a fleet worker runs thousands of
    // home worlds back to back, and each cold build's dominant cost is
    // its network heap (capture ring, event arena, delivery scratch —
    // roughly 400 KB per home, ~95% of the build's bytes).
    // `World::new_home_recycled` rebuilds out of the previous home's
    // reclaimed buffers: behaviorally identical, but a warm build must
    // request hundreds of kilobytes less.
    recycled_home_build_reuses_the_heap();

    // 8. Resident home rounds (E26): even a warm recycled build still
    // re-interns signatures, recompiles the policy and reconstructs
    // every device. A resident world serves the next home by resetting
    // in place (`rebind_home`), so a steady-state home-round must
    // allocate a small fraction of what a recycled build does.
    resident_rebind_amortizes_construction();
}

fn resident_rebind_amortizes_construction() {
    use iotsec_fleet::{FleetScenario, HomeWorld};
    use iotsec_repro::iotlearn::AttackSignature;
    use iotsec_repro::iotsec::world::{HomeOverrides, World, WorldScrap};
    use std::sync::Arc;

    let scenario = FleetScenario::new(1);
    let template = scenario.template();
    assert!(World::supports_resident(template), "the E20 home must support residency");
    let sig = scenario.discovery(0).expect("the E20 camera signature exists");
    let intel: Arc<[AttackSignature]> = vec![sig].into();
    let horizon = scenario.horizon();
    let seed = 42u64;

    // The resident machine, built once and carried across rounds.
    let mut scrap = WorldScrap::default();
    let mut w = World::new_home_resident(template, seed, 1, &intel, &mut scrap);
    w.run_until_attack_done(horizon);

    // Semantics first: a rebound resident run is byte-equal to a cold run.
    let cold = scenario.run_home(0, seed, &intel);
    w.rebind_home(seed);
    w.run_until_attack_done(horizon);
    assert_eq!(scenario.outcome_of(0, seed, &mut w), cold, "rebind must not change the outcome");

    // The from-scratch baseline the ROADMAP head-room notes point at:
    // every active home-round pays a full `World::new_home` build.
    let overrides = HomeOverrides { seed, extra_signatures: &intel };
    let cold_bytes = (0..3)
        .map(|_| {
            bytes_during(|| {
                let mut c = World::new_home(template, &overrides);
                c.run_until_attack_done(horizon);
            })
            .0
        })
        .min()
        .unwrap();
    // The E25 warm recycled build (its own scrap, warmed by one cycle):
    // rebind must never regress below the path it replaces.
    let mut rescrap = WorldScrap::default();
    {
        let r = World::new_home_recycled(template, &overrides, &mut rescrap);
        r.reclaim_into(&mut rescrap);
    }
    let recycled_bytes = (0..3)
        .map(|_| {
            bytes_during(|| {
                let mut r = World::new_home_recycled(template, &overrides, &mut rescrap);
                r.run_until_attack_done(horizon);
                r.reclaim_into(&mut rescrap);
            })
            .0
        })
        .min()
        .unwrap();
    let rebind_bytes = (0..3)
        .map(|_| {
            bytes_during(|| {
                w.rebind_home(seed);
                w.run_until_attack_done(horizon);
            })
            .0
        })
        .min()
        .unwrap();
    assert!(
        rebind_bytes * 5 <= cold_bytes,
        "a resident home-round must be >=5x lighter than a from-scratch build \
         (rebind {rebind_bytes} B, cold {cold_bytes} B)"
    );
    assert!(
        rebind_bytes <= recycled_bytes,
        "a resident home-round must not out-allocate the warm recycled build it replaces \
         (rebind {rebind_bytes} B, recycled {recycled_bytes} B)"
    );

    // A content-identical install is a no-op epoch bump: zero allocations.
    let same: Arc<[AttackSignature]> = intel.to_vec().into();
    let (allocs, delta) = allocs_during(|| w.apply_intel_delta(2, &same));
    assert!(delta.noop, "content-equal intel must install as a noop: {delta:?}");
    assert_eq!(allocs, 0, "a noop delta install must not allocate");
}

fn recycled_home_build_reuses_the_heap() {
    use iotsec_fleet::{FleetScenario, HomeWorld};
    use iotsec_repro::iotsec::world::{HomeOverrides, World, WorldScrap};

    let scenario = FleetScenario::new(1);
    let seed = 42u64;
    let sig = scenario.discovery(0).expect("the E20 camera signature exists");

    // Recycling is a capacity optimization, never a semantic one: the
    // recycled run returns exactly what the cold run returns — naked
    // (attacked) and defended alike, cold scrap and warm scrap alike.
    let mut scrap = WorldScrap::default();
    for intel in [&[][..], &[sig][..]] {
        let cold = scenario.run_home(0, seed, intel);
        let first = scenario.run_home_recycled(0, seed, intel, &mut scrap);
        assert_eq!(first, cold, "recycled run (cold scrap) must equal the cold run");
        let warm = scenario.run_home_recycled(0, seed, intel, &mut scrap);
        assert_eq!(warm, cold, "recycled run (warm scrap) must equal the cold run");
    }

    // The heap pin: a warm recycled build skips the big network buffers.
    let overrides = HomeOverrides { seed, extra_signatures: &[] };
    let template = scenario.template();
    let cold_bytes =
        (0..3).map(|_| bytes_during(|| World::new_home(template, &overrides)).0).min().unwrap();
    let warm_bytes = (0..3)
        .map(|_| {
            bytes_during(|| {
                let w = World::new_home_recycled(template, &overrides, &mut scrap);
                w.reclaim_into(&mut scrap);
            })
            .0
        })
        .min()
        .unwrap();
    assert!(
        warm_bytes + 300_000 <= cold_bytes,
        "a warm recycled build must save at least 300 KB over a cold one \
         (cold {cold_bytes} B, warm {warm_bytes} B)"
    );
}

/// Round spacing of the steady-state loop: 2^21 ns, an exact multiple of
/// the timer wheel's slot widths, so the wheel-slot usage pattern repeats
/// with a short period and the warm phase provably covers every slot the
/// measured phase touches (the same geometry as `bench::exp_engine`'s
/// steady probe; see DESIGN.md §11).
const STEADY_STEP_NS: u64 = 1 << 21;
/// One full level-2 slot lap (512 rounds) plus the first overflow
/// re-anchor crossing at the 2^30 ns boundary.
const STEADY_WARM: u64 = 576;
const STEADY_MEASURE: u64 = 64;

fn warm_fleet_round_is_allocation_free() {
    use iotsec_fleet::{Fleet, FleetConfig, FleetScenario};

    let cfg = FleetConfig { homes: 8, neighborhood: 3, chunk: 2, threads: 1, seed: 42 };
    let mut fleet = Fleet::new(FleetScenario::new(8), cfg);
    // Warm rounds: round 0 breaches and installs the discovered
    // signature (epoch 0 → 1), round 1 populates the epoch-1 memo,
    // round 2 proves the fleet has quiesced.
    fleet.run(3);
    let quiesced = fleet.report();
    assert_eq!(quiesced.epoch, 1, "the fleet must have quiesced before measuring");

    let allocs = min_allocs_over(3, || {
        let r = fleet.round();
        assert_eq!(r.executed, 0, "a quiesced round must be pure memo replay");
        assert_eq!(r.memo_hits, 8);
        std::hint::black_box(fleet.digest())
    });
    assert_eq!(allocs, 0, "warm fleet round (memo → merge → barrier) must not allocate");
}

fn steady_engine_tick_is_allocation_free() {
    use iotsec_repro::iotdev::device::{AdminCreds, DeviceId};
    use iotsec_repro::iotdev::proto::{ports, AppMessage, TelemetryKind};
    use iotsec_repro::iotdev::registry::Sku;
    use iotsec_repro::iotlearn::signature::{AttackSignature, Matcher, Severity};
    use iotsec_repro::iotnet::flow::{FlowAction, FlowMatch, FlowRule, SteerId};
    use iotsec_repro::iotnet::link::LinkParams;
    use iotsec_repro::iotnet::net::{Delivery, Network};
    use iotsec_repro::iotnet::packet::{Packet, TransportHeader};
    use iotsec_repro::iotnet::time::{SimDuration, SimTime};
    use iotsec_repro::iotnet::topology::TopologyBuilder;
    use iotsec_repro::iotpolicy::posture::{Posture, SecurityModule};
    use iotsec_repro::trace::tracer::Tracer;
    use iotsec_repro::umbox::chain::{build_chain, ChainConfig, FailureMode};
    use iotsec_repro::umbox::element::{EventSink, ViewHandle};

    let mut b = TopologyBuilder::new();
    let sw = b.add_switch();
    let a = b.attach_endpoint(sw, LinkParams::lan());
    let z = b.attach_endpoint(sw, LinkParams::lan());
    let mut net = Network::new(b.build(), 21);

    let signatures: Vec<AttackSignature> = vec![AttackSignature::new(
        Sku::new("belkin", "wemo", "1.1"),
        "cloud-bypass-backdoor",
        Matcher::CloudCommand,
        Severity::High,
    )];
    let config = ChainConfig {
        device: DeviceId(0),
        required_creds: AdminCreds::new("owner", "Str0ng!"),
        cleared_sources: Vec::new(),
        signatures: signatures.into(),
        view: ViewHandle::new(),
        events: EventSink::new(),
        failure_mode: FailureMode::FailOpen,
        tracer: Tracer::disabled(),
    };
    let chain = build_chain(&Posture::of(SecurityModule::Ids { ruleset: 1 }), &config);
    net.register_steer(SteerId(1), Box::new(chain), SimDuration::from_micros(200));
    net.install_rule(sw, FlowRule::new(100, FlowMatch::any(), FlowAction::Steer(SteerId(1))));

    let pkt = Packet::new(
        net.mac_of(a),
        net.mac_of(z),
        net.ip_of(a),
        net.ip_of(z),
        TransportHeader::udp(4000, ports::TELEMETRY),
        AppMessage::Telemetry { kind: TelemetryKind::Power, value: 21.0 }.encode(),
    );

    let mut buf: Vec<Delivery> = Vec::new();
    let round = |net: &mut Network, buf: &mut Vec<Delivery>, r: u64| {
        let t = SimTime::from_nanos(r * STEADY_STEP_NS);
        net.send(a, t, pkt.clone());
        buf.clear();
        net.step_until_into(SimTime::from_nanos((r + 1) * STEADY_STEP_NS), buf);
        buf.len() as u64
    };
    let mut delivered = 0u64;
    for r in 0..STEADY_WARM {
        delivered += round(&mut net, &mut buf, r);
    }
    assert_eq!(delivered, STEADY_WARM, "warm rounds must deliver one packet each");

    let events_before = net.events_processed();
    let (allocs, delivered) = allocs_during(|| {
        let mut delivered = 0u64;
        for r in STEADY_WARM..STEADY_WARM + STEADY_MEASURE {
            delivered += round(&mut net, &mut buf, r);
        }
        delivered
    });
    assert_eq!(delivered, STEADY_MEASURE);
    assert!(net.events_processed() > events_before, "the engine must have fired events");
    assert_eq!(allocs, 0, "warm engine tick (schedule→fire→forward→verdict) must not allocate");
}
