//! Allocation accounting for the clone-churn work: world construction
//! interns per-device signature rulesets behind `Rc` slices, so handing
//! a ruleset to a chain must be allocation-free, and building the same
//! deployment twice must allocate exactly the same amount (no hidden
//! nondeterministic cloning).
//!
//! Lives here (not in `crates/core`) because a counting allocator needs
//! `unsafe impl GlobalAlloc` and the core crate is `#![forbid(unsafe_code)]`;
//! an integration test is its own crate, so the forbid does not apply.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations observed while running `f`. The test binary holds a
/// single test function, so no sibling test threads pollute the count.
fn allocs_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCS.load(Ordering::Relaxed) - before, result)
}

/// Minimum allocation count over `n` trials (absorbs one-off lazy-init
/// noise from the runtime or test harness).
fn min_allocs_over<R>(n: usize, mut f: impl FnMut() -> R) -> u64 {
    (0..n).map(|_| allocs_during(&mut f).0).min().unwrap()
}

#[test]
fn world_construction_allocation_profile() {
    use iotsec_repro::iotdev::device::DeviceId;
    use iotsec_repro::iotsec::defense::Defense;
    use iotsec_repro::iotsec::scenario;
    use iotsec_repro::iotsec::world::World;

    let (d, _) = scenario::smart_home(Defense::iotsec(), 42);

    // 1. Same deployment, same allocation count: World::new clones
    // nothing whose size depends on run-to-run state (the old code
    // cloned ChaosConfig plans and per-device vuln vectors it then
    // rebuilt anyway; any reintroduced clone shows up here as a count
    // change between builds).
    let first = min_allocs_over(3, || World::new(&d));
    let second = min_allocs_over(3, || World::new(&d));
    assert_eq!(first, second, "World::new must allocate deterministically");

    // 2. Handing out a device's signature ruleset is an Rc refcount
    // bump, not a Vec clone: zero allocations.
    let w = World::new(&d);
    let handout = min_allocs_over(5, || {
        for i in 0..7u32 {
            std::hint::black_box(w.signatures_for(DeviceId(i)));
        }
    });
    assert_eq!(handout, 0, "signatures_for must not clone the ruleset");

    // 3. The population axis scales world size but not per-device
    // signature cloning: 16 extra *clean* devices add bounded per-device
    // setup, far below what re-cloning the 7 vulnerable rulesets per
    // device would cost. Guard the ratio rather than an absolute count
    // so the bound survives allocator-agnostic refactors.
    let (big, _) = scenario::scaled_home(Defense::iotsec(), 42, 16);
    let big_count = min_allocs_over(3, || World::new(&big));
    assert!(
        big_count < first * 4,
        "scaled world ({big_count} allocs) must stay within 4x the base ({first})"
    );

    // 4. The packed state-space inner loop (E19) is allocation-free
    // once the memo tables are warm: odometer stepping is register
    // arithmetic and every rule-match set resolves to an already
    // interned posture class, so sweeping the whole space a second time
    // must not touch the allocator at all.
    use iotsec_repro::iotpolicy::packed::MemoPolicy;

    let policy = iotsec_bench::exp_policy::policy_for(6, 1);
    let mut memo = MemoPolicy::new(&policy).expect("E19 policy family packs");
    // Warm sweep: intern every posture class the space can produce.
    let mut cursor = Some(memo.layout().first());
    while let Some(p) = cursor {
        std::hint::black_box(memo.class_of(p));
        cursor = memo.layout().next(p);
    }
    let sweep = min_allocs_over(3, || {
        let mut quiet: u64 = 0;
        let mut cursor = Some(memo.layout().first());
        while let Some(p) = cursor {
            let class = memo.class_of(p);
            quiet += memo.is_quiet(class) as u64;
            cursor = memo.layout().next(p);
        }
        std::hint::black_box(quiet)
    });
    assert_eq!(sweep, 0, "warm packed sweep must not allocate");
}
