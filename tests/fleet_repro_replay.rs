//! E25 fleet-chaos repro corpus: every artifact in `tests/repros/fleet/`
//! must replay to the exact violations its `# violation=` trailers
//! claim, stay minimal, and cover all three seeded weaknesses.
//!
//! Regenerate the corpus (after an intentional checker or chaos change)
//! with:
//!
//! ```text
//! FLEET_REPRO_BLESS=1 cargo test --test fleet_repro_replay
//! ```
//!
//! which re-runs the weakened-arm seed sweep, ddmin-shrinks the first
//! catch for each weakness and rewrites the three artifacts.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

use iotsec_fuzz::fleet::{
    fleet_violations, generate_fleet, parse_fleet, shrink_fleet, FleetWeakness,
};

/// The corpus contract: one artifact per seeded weakness, named by its
/// label, demonstrating the named invariant.
const CASES: [(FleetWeakness, &str); 3] = [
    (FleetWeakness::NoRetry, "lost-discovery"),
    (FleetWeakness::NoReconcile, "unrecovered"),
    (FleetWeakness::UnboundedStaleness, "staleness-budget"),
];

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/repros/fleet")
}

fn bless_corpus() {
    fs::create_dir_all(corpus_dir()).expect("create corpus dir");
    for (weakness, invariant) in CASES {
        let repro = (0..256u64)
            .map(|seed| generate_fleet(seed, weakness))
            .find(|spec| fleet_violations(spec).iter().any(|v| v.invariant == invariant))
            .and_then(|spec| shrink_fleet(&spec))
            .unwrap_or_else(|| panic!("{}: no seed tripped {invariant}", weakness.label()));
        assert!(
            repro.violations.iter().any(|v| v.invariant == invariant),
            "{}: shrink lost {invariant}",
            weakness.label()
        );
        let path = corpus_dir().join(format!("{}.repro", weakness.label()));
        fs::write(&path, &repro.artifact).expect("write artifact");
        eprintln!(
            "blessed {} ({} homes, {} rounds, {} oracle runs)",
            path.display(),
            repro.spec.homes,
            repro.spec.rounds,
            repro.oracle_runs
        );
    }
}

#[test]
fn fleet_repro_corpus_replays_and_stays_minimal() {
    if std::env::var("FLEET_REPRO_BLESS").is_ok() {
        bless_corpus();
    }
    let mut seen = BTreeSet::new();
    for entry in fs::read_dir(corpus_dir()).expect("tests/repros/fleet exists") {
        let path = entry.expect("read corpus entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("repro") {
            continue;
        }
        let name = path.file_stem().unwrap().to_str().unwrap().to_string();
        let text = fs::read_to_string(&path).expect("read artifact");

        // The artifact replays: parse back, re-run, and the produced
        // invariant set matches the `# violation=` trailers exactly.
        let spec = parse_fleet(&text)
            .unwrap_or_else(|e| panic!("{}: artifact no longer parses: {e}", path.display()));
        let produced: BTreeSet<&str> =
            fleet_violations(&spec).iter().map(|v| v.invariant).collect();
        let claimed: BTreeSet<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# violation="))
            .map(|l| l.split_whitespace().next().unwrap())
            .collect();
        assert!(!claimed.is_empty(), "{}: artifact claims no violations", path.display());
        assert_eq!(
            produced,
            claimed,
            "{}: replay produced a different violation set",
            path.display()
        );

        // The corpus stays minimal: ddmin has already run, so re-running
        // it must not find anything smaller.
        let repro = shrink_fleet(&spec).expect("violating artifact shrinks");
        assert_eq!(
            repro.spec,
            spec,
            "{}: artifact is not 1-minimal any more — re-bless with FLEET_REPRO_BLESS=1",
            path.display()
        );

        seen.insert(name);
    }
    let expected: BTreeSet<String> = CASES.iter().map(|(w, _)| w.label().to_string()).collect();
    assert_eq!(seen, expected, "corpus must hold exactly one artifact per seeded weakness");
    // Each artifact demonstrates its weakness's headline invariant.
    for (weakness, invariant) in CASES {
        let text =
            fs::read_to_string(corpus_dir().join(format!("{}.repro", weakness.label()))).unwrap();
        assert!(
            text.lines().any(|l| {
                l.strip_prefix("# violation=")
                    .is_some_and(|rest| rest.split_whitespace().next() == Some(invariant))
            }),
            "{}: artifact does not demonstrate {invariant}",
            weakness.label()
        );
    }
}
