//! The Table 1 matrix: every reported vulnerability row, attacked under
//! every defense. The expected shape (the headline of the reproduction):
//! without defense every exploit lands; the perimeter firewall changes
//! almost nothing (the devices are exposed through it — that is how
//! SHODAN found them); IoTSec's standing mitigations stop all seven.

use iotsec_repro::iotnet::time::SimDuration;
use iotsec_repro::iotsec::defense::Defense;
use iotsec_repro::iotsec::metrics::Metrics;
use iotsec_repro::iotsec::scenario;
use iotsec_repro::iotsec::world::World;

fn run_row(row: u8, defense: Defense) -> Metrics {
    let (d, _) = scenario::table1_row(row, defense);
    let mut w = World::new(&d);
    w.run_until_attack_done(SimDuration::from_secs(120));
    w.report()
}

/// Whether the row's exploit "landed" in the sense the paper reports it:
/// data exposure for rows 1–3, actuator control for 4–5 and 7, DDoS
/// amplification for row 6.
fn exploit_landed(row: u8, m: &Metrics) -> bool {
    match row {
        1..=3 => !m.privacy_leaked.is_empty(),
        4 | 5 | 7 => !m.compromised.is_empty(),
        6 => m.ddos_bytes_at_victim > 0,
        _ => unreachable!(),
    }
}

#[test]
fn undefended_all_seven_rows_fall() {
    for row in 1..=7 {
        let m = run_row(row, Defense::None);
        assert!(exploit_landed(row, &m), "row {row} should fall undefended: {}", m.summary());
    }
}

#[test]
fn perimeter_fails_on_every_exposed_row() {
    // All seven rows are Internet-exposed (pinholes); the perimeter
    // passes the exploit traffic for each.
    for row in 1..=7 {
        let m = run_row(row, Defense::Perimeter);
        assert!(
            exploit_landed(row, &m),
            "row {row} should still fall behind a pinholed perimeter: {}",
            m.summary()
        );
    }
}

#[test]
fn iotsec_stops_all_seven_rows() {
    for row in 1..=7 {
        let m = run_row(row, Defense::iotsec());
        assert!(
            !exploit_landed(row, &m),
            "row {row} should be mitigated by IoTSec: {}",
            m.summary()
        );
    }
}

#[test]
fn iotsec_mitigations_actually_interposed() {
    // Not just "the attack failed" — the data plane must show work.
    for row in [1, 5, 6, 7] {
        let m = run_row(row, Defense::iotsec());
        assert!(
            m.umbox_drops + m.umbox_intercepts > 0,
            "row {row}: expected µmbox interposition, got {}",
            m.summary()
        );
    }
}

#[test]
fn populations_scale_the_exposure() {
    // Table 1's population column: the registry reports >1.2M vulnerable
    // devices across the seven rows — the "billion devices" scale
    // argument in microcosm.
    let reg = iotsec_repro::iotdev::registry::SkuRegistry::table1();
    assert!(reg.total_population() > 1_200_000);
    // Each row's device class actually carries its row's flaw.
    for row in 1..=7 {
        let e = reg.by_row(row).unwrap();
        assert!(!e.vulns.is_empty());
    }
}
