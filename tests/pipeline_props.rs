//! Cross-crate property tests: invariants that span the substrate
//! boundaries (policy ↔ chain compilation, world determinism, codec
//! composition with devices).

use iotsec_repro::iotdev::device::{AdminCreds, DeviceId};
use iotsec_repro::iotdev::env::EnvVar;
use iotsec_repro::iotdev::proto::AppMessage;
use iotsec_repro::iotnet::addr::{Ipv4Addr, MacAddr};
use iotsec_repro::iotnet::packet::{Packet, TransportHeader};
use iotsec_repro::iotnet::time::{SimDuration, SimTime};
use iotsec_repro::iotpolicy::posture::{BlockClass, Posture, SecurityModule};
use iotsec_repro::umbox::chain::{build_chain, ChainConfig};
use iotsec_repro::umbox::element::{EventSink, ViewHandle};
use proptest::prelude::*;

fn arb_posture() -> impl Strategy<Value = Posture> {
    let modules = prop::collection::vec(
        prop_oneof![
            Just(SecurityModule::PasswordProxy),
            Just(SecurityModule::Ids { ruleset: 1 }),
            Just(SecurityModule::RateLimit { pps: 100 }),
            Just(SecurityModule::ProtocolWhitelist),
            Just(SecurityModule::Mirror),
            Just(SecurityModule::ChallengeLogins),
            Just(SecurityModule::Block(BlockClass::Cloud)),
            Just(SecurityModule::Block(BlockClass::OpenVerbs)),
            Just(SecurityModule::Block(BlockClass::DnsResponses)),
            Just(SecurityModule::ContextGate { var: EnvVar::Occupancy, value: "present" }),
        ],
        0..6,
    );
    modules.prop_map(|ms| {
        let mut p = Posture::allow();
        for m in ms {
            p.add(m);
        }
        p
    })
}

fn config() -> ChainConfig {
    ChainConfig {
        device: DeviceId(0),
        required_creds: AdminCreds::owner_default(),
        cleared_sources: vec![Ipv4Addr::new(10, 0, 200, 1)],
        signatures: Vec::new().into(),
        view: ViewHandle::new(),
        events: EventSink::new(),
        failure_mode: umbox::chain::FailureMode::FailOpen,
        tracer: trace::Tracer::disabled(),
    }
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..64)
}

proptest! {
    /// Chain compilation is total and order-canonical: any posture
    /// compiles, and the same posture always yields the same chain shape.
    #[test]
    fn prop_chain_compilation_deterministic(posture in arb_posture()) {
        let a = build_chain(&posture, &config());
        let b = build_chain(&posture, &config());
        prop_assert_eq!(a.len(), b.len());
        // Non-empty posture ⇒ non-empty chain; allow ⇒ empty chain.
        prop_assert_eq!(posture.is_allow(), a.is_empty());
    }

    /// Chains never panic and never *create* traffic from junk: any
    /// payload is either passed, dropped, or answered with a single
    /// well-formed reply.
    #[test]
    fn prop_chain_total_on_arbitrary_payloads(
        posture in arb_posture(),
        payload in arb_payload(),
        dst_port in prop_oneof![Just(8080u16), Just(49153), Just(53), Just(8443), Just(5683), any::<u16>()],
    ) {
        let cfg = config();
        let mut chain = build_chain(&posture, &cfg);
        let pkt = Packet::new(
            MacAddr::from_index(9),
            MacAddr::from_index(1),
            Ipv4Addr::new(100, 64, 0, 9),
            Ipv4Addr::new(10, 0, 0, 5),
            TransportHeader::udp(40000, dst_port),
            payload.into(),
        );
        let verdict = chain.run(SimTime::ZERO, pkt);
        prop_assert!(verdict.forward.len() <= 1);
        for p in &verdict.forward {
            // Anything the chain emits re-parses at the wire level.
            let wire = p.to_wire();
            prop_assert!(Packet::from_wire(&wire).is_ok());
        }
    }

    /// Posture merge is commutative with respect to compiled chain size.
    #[test]
    fn prop_posture_merge_commutes(a in arb_posture(), b in arb_posture()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(build_chain(&ab, &config()).len(), build_chain(&ba, &config()).len());
    }
}

/// The whole world is deterministic: two runs with the same seed produce
/// identical metrics, and a different seed still produces the same
/// security outcome (the result is seed-stable, not seed-lucky).
#[test]
fn world_runs_are_deterministic() {
    use iotsec_repro::iotsec::defense::Defense;
    use iotsec_repro::iotsec::scenario;
    use iotsec_repro::iotsec::world::World;

    let run = |seed: u64| {
        let (mut d, _) = scenario::smart_home(Defense::iotsec(), seed);
        d.seed = seed;
        let mut w = World::new(&d);
        w.env.occupied = true;
        w.run_until_attack_done(SimDuration::from_secs(300));
        let m = w.report();
        (
            m.compromised.len(),
            m.privacy_leaked.len(),
            m.ddos_bytes_at_victim,
            m.umbox_drops,
            m.attack_outcomes.iter().map(|o| o.success).collect::<Vec<_>>(),
        )
    };
    let a = run(1);
    let b = run(1);
    assert_eq!(a, b, "same seed, same world");
    let c = run(2);
    assert_eq!(a.0, c.0, "security outcome is seed-stable");
    assert_eq!(a.4, c.4);
}

/// Device + codec composition: every reply a device generates re-encodes
/// and re-decodes to itself (the world only ever ships wire bytes).
#[test]
fn device_replies_round_trip_on_the_wire() {
    use iotsec_repro::iotdev::device::{DeviceClass, IoTDevice};
    use iotsec_repro::iotdev::env::Environment;
    use iotsec_repro::iotdev::proto::ports;
    use iotsec_repro::iotdev::registry::Sku;
    use iotsec_repro::iotdev::vuln::Vulnerability;

    let mut dev = IoTDevice::new(
        DeviceId(0),
        Sku::new("avtech", "ip-cam", "1.3"),
        DeviceClass::Camera,
        Ipv4Addr::new(10, 0, 0, 5),
        vec![Vulnerability::default_admin_admin()],
    );
    let mut env = Environment::new();
    let msgs = [
        AppMessage::MgmtLogin { user: "admin".into(), pass: "admin".into() },
        AppMessage::MgmtLogin { user: "x".into(), pass: "y".into() },
        AppMessage::MgmtCommand {
            token: 1,
            command: iotsec_repro::iotdev::proto::MgmtCommand::GetImage,
        },
    ];
    for (i, m) in msgs.iter().enumerate() {
        let out = dev.handle_message(
            SimTime::from_secs(i as u64),
            Ipv4Addr::new(100, 64, 0, 9),
            40000,
            ports::MGMT,
            m.clone(),
            &mut env,
        );
        for reply in out.messages {
            let encoded = reply.msg.encode();
            let decoded = AppMessage::decode(&encoded).unwrap();
            assert_eq!(decoded, reply.msg);
        }
    }
}
