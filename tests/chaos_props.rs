//! Chaos determinism properties: a fault schedule is part of the run's
//! seed, so identical `(Deployment, ChaosConfig)` pairs must reproduce
//! byte-identical metrics — faults, crashes, outages, failovers and all.

use iotsec_repro::iotdev::proto::MgmtCommand;
use iotsec_repro::iotnet::time::{SimDuration, SimTime};
use iotsec_repro::iotsec::chaos::ChaosConfig;
use iotsec_repro::iotsec::defense::Defense;
use iotsec_repro::iotsec::deployment::{Deployment, DeviceSetup, StepSpec};
use iotsec_repro::iotsec::world::World;
use iotsec_repro::trace::{first_divergence, render_divergence, TraceConfig, Tracer};
use proptest::prelude::*;

fn chaos_run(chaos_seed: u64, flaps: u32, bursts: u32, crashes: u32, outages: u32) -> String {
    let mut d = Deployment::new();
    let cam = d.device(DeviceSetup::table1_row(1));
    let plug = d.device(DeviceSetup::table1_row(6));
    d.campaign(vec![
        StepSpec::Wait(SimDuration::from_secs(3)),
        StepSpec::DictionaryLogin(cam),
        StepSpec::Mgmt(cam, MgmtCommand::GetImage),
        StepSpec::DnsReflect { reflector: plug, queries: 20 },
    ]);
    d.defend_with(Defense::iotsec());
    d.chaos(
        ChaosConfig {
            link_flaps: flaps,
            loss_bursts: bursts,
            umbox_crashes: crashes,
            controller_outages: outages,
            outage_len: SimDuration::from_secs(5),
            horizon: SimDuration::from_secs(25),
            ..ChaosConfig::default()
        }
        .with_seed(chaos_seed)
        .crash(SimTime::from_secs(4), cam),
    );
    let mut w = World::new(&d);
    w.run(SimDuration::from_secs(30));
    format!("{:?}", w.report())
}

proptest! {
    /// Same chaos seed ⇒ byte-identical metrics, whatever the schedule.
    #[test]
    fn same_chaos_seed_reproduces_identical_metrics(
        seed in any::<u64>(),
        flaps in 0u32..4,
        bursts in 0u32..3,
        crashes in 0u32..3,
        outages in 0u32..2,
    ) {
        let a = chaos_run(seed, flaps, bursts, crashes, outages);
        let b = chaos_run(seed, flaps, bursts, crashes, outages);
        prop_assert_eq!(a, b);
    }
}

/// The schedule actually matters: the property above is not vacuous —
/// across a handful of seeds, at least one places its faults where they
/// change the observable outcome.
#[test]
fn chaos_schedule_is_seed_dependent() {
    let base = chaos_run(1, 3, 2, 2, 1);
    assert_eq!(base, chaos_run(1, 3, 2, 2, 1));
    assert!(
        (2..10).any(|seed| chaos_run(seed, 3, 2, 2, 1) != base),
        "every seed produced identical metrics — fault injection is inert"
    );
}

// --- trace coverage of the chaos path ---------------------------------

/// The base deployment the trace tests share: a camera under attack, an
/// IoTSec defense, and (optionally) a chaos schedule.
fn traced_deployment() -> (Deployment, iotsec_repro::iotdev::device::DeviceId) {
    let mut d = Deployment::new();
    let cam = d.device(DeviceSetup::table1_row(1));
    d.campaign(vec![
        StepSpec::Wait(SimDuration::from_secs(3)),
        StepSpec::DictionaryLogin(cam),
        StepSpec::Mgmt(cam, MgmtCommand::GetImage),
    ]);
    d.defend_with(Defense::iotsec());
    (d, cam)
}

fn run_traced(d: &Deployment, secs: u64) -> String {
    let tracer = Tracer::new(TraceConfig::full());
    let mut w = World::new_traced(d, tracer.clone());
    w.run(SimDuration::from_secs(secs));
    tracer.to_jsonl()
}

fn event_count(trace: &str, kind: &str) -> usize {
    let needle = format!("\"e\":\"{kind}\"");
    trace.lines().filter(|l| l.contains(&needle)).count()
}

fn sim_times(trace: &str) -> Vec<u64> {
    trace
        .lines()
        .map(|l| {
            l.strip_prefix("{\"t\":")
                .and_then(|r| r.split(&[',', '}'][..]).next())
                .and_then(|n| n.parse().ok())
                .unwrap_or_else(|| panic!("malformed trace line: {l}"))
        })
        .collect()
}

/// Fault fire/heal, µmbox crash/respawn, outage and failover events all
/// land in the trace, in deterministic order, with nondecreasing
/// sim-time keys — twice over, byte-identically.
#[test]
fn chaos_events_are_traced_in_deterministic_order() {
    let build = || {
        let (mut d, cam) = traced_deployment();
        d.chaos(
            ChaosConfig {
                link_flaps: 2,
                horizon: SimDuration::from_secs(20),
                flap_downtime: SimDuration::from_secs(2),
                ..ChaosConfig::default()
            }
            .with_seed(7)
            .with_standby()
            .with_watchdog(SimDuration::from_secs(5))
            .crash(SimTime::from_secs(4), cam)
            .outage(SimTime::from_secs(6), SimDuration::from_secs(30)),
        );
        d
    };
    let trace = run_traced(&build(), 40);
    assert_eq!(trace, run_traced(&build(), 40), "chaos traces must reproduce byte-identically");
    for kind in
        ["fault-fired", "fault-healed", "umbox-crash", "umbox-respawn", "ctl-outage", "failover"]
    {
        assert!(event_count(&trace, kind) > 0, "no '{kind}' event in trace:\n{trace}");
    }
    let times = sim_times(&trace);
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "sim-time keys must be nondecreasing");
}

/// Trace-time monotonicity under heavy chaos, across many seeds.
///
/// Fault events carry the *scheduled* fire time but are applied at the
/// next tick boundary, so a full-mask trace may step backwards where a
/// fault interleaves with that tick's packet events — by less than one
/// tick, never more. Control-class events (everything the goldens pin)
/// are stamped at tick boundaries and must be strictly nondecreasing.
#[test]
fn probe_monotonicity_under_heavy_chaos() {
    let tick_ns = SimDuration::from_millis(100).as_nanos();
    // The Packet class per `TraceEvent::class` — these carry intra-tick
    // packet times; everything else is stamped at tick boundaries.
    let packet_kinds = [
        "\"e\":\"cache-hit\"",
        "\"e\":\"cache-miss\"",
        "\"e\":\"policy-drop\"",
        "\"e\":\"umbox-enter\"",
        "\"e\":\"umbox-exit\"",
    ];
    for seed in 0..20u64 {
        let mut d = Deployment::new();
        d.seed = seed;
        let cam = d.device(DeviceSetup::table1_row(1));
        let plug = d.device(DeviceSetup::table1_row(6));
        d.campaign(vec![
            StepSpec::Wait(SimDuration::from_secs(2)),
            StepSpec::DictionaryLogin(cam),
            StepSpec::Mgmt(cam, MgmtCommand::GetImage),
            StepSpec::DnsReflect { reflector: plug, queries: 20 },
        ]);
        d.defend_with(Defense::iotsec());
        d.chaos(
            ChaosConfig {
                link_flaps: 8,
                loss_bursts: 4,
                horizon: SimDuration::from_secs(30),
                flap_downtime: SimDuration::from_secs(1),
                ..ChaosConfig::default()
            }
            .with_seed(seed.wrapping_mul(7).wrapping_add(1)),
        );
        let tracer = Tracer::new(TraceConfig::full());
        let mut w = World::new_traced(&d, tracer.clone());
        w.env.occupied = true;
        w.run(SimDuration::from_secs(35));
        let trace = tracer.to_jsonl();
        let times = sim_times(&trace);
        for (i, pair) in times.windows(2).enumerate() {
            assert!(
                pair[0] <= pair[1] + tick_ns,
                "seed {seed}: trace stepped back more than one tick at line {i}: \
                 {} then {}",
                pair[0],
                pair[1]
            );
        }
        let control_times: Vec<u64> = trace
            .lines()
            .zip(&times)
            .filter(|(l, _)| !packet_kinds.iter().any(|k| l.contains(k)))
            .map(|(_, t)| *t)
            .collect();
        assert!(
            control_times.windows(2).all(|w| w[0] <= w[1]),
            "seed {seed}: control-class events out of order"
        );
    }
}

/// A chaos config with nothing scheduled is *observably* chaos disabled:
/// the hardened delivery channel and the degradation accounting must not
/// leave a fingerprint in the trace.
#[test]
fn zero_fault_chaos_traces_identically_to_chaos_disabled() {
    let (plain, _) = traced_deployment();
    let (mut quiet, _) = traced_deployment();
    quiet.chaos(ChaosConfig::new());
    let without = run_traced(&plain, 30);
    let with = run_traced(&quiet, 30);
    if let Some(d) = first_divergence(&without, &with) {
        panic!("zero-fault chaos left a trace fingerprint:\n{}", render_divergence(&d));
    }
    assert!(!without.is_empty());
}
