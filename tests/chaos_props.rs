//! Chaos determinism properties: a fault schedule is part of the run's
//! seed, so identical `(Deployment, ChaosConfig)` pairs must reproduce
//! byte-identical metrics — faults, crashes, outages, failovers and all.

use iotsec_repro::iotdev::proto::MgmtCommand;
use iotsec_repro::iotnet::time::{SimDuration, SimTime};
use iotsec_repro::iotsec::chaos::ChaosConfig;
use iotsec_repro::iotsec::defense::Defense;
use iotsec_repro::iotsec::deployment::{Deployment, DeviceSetup, StepSpec};
use iotsec_repro::iotsec::world::World;
use proptest::prelude::*;

fn chaos_run(chaos_seed: u64, flaps: u32, bursts: u32, crashes: u32, outages: u32) -> String {
    let mut d = Deployment::new();
    let cam = d.device(DeviceSetup::table1_row(1));
    let plug = d.device(DeviceSetup::table1_row(6));
    d.campaign(vec![
        StepSpec::Wait(SimDuration::from_secs(3)),
        StepSpec::DictionaryLogin(cam),
        StepSpec::Mgmt(cam, MgmtCommand::GetImage),
        StepSpec::DnsReflect { reflector: plug, queries: 20 },
    ]);
    d.defend_with(Defense::iotsec());
    d.chaos(
        ChaosConfig {
            link_flaps: flaps,
            loss_bursts: bursts,
            umbox_crashes: crashes,
            controller_outages: outages,
            outage_len: SimDuration::from_secs(5),
            horizon: SimDuration::from_secs(25),
            ..ChaosConfig::default()
        }
        .with_seed(chaos_seed)
        .crash(SimTime::from_secs(4), cam),
    );
    let mut w = World::new(&d);
    w.run(SimDuration::from_secs(30));
    format!("{:?}", w.report())
}

proptest! {
    /// Same chaos seed ⇒ byte-identical metrics, whatever the schedule.
    #[test]
    fn same_chaos_seed_reproduces_identical_metrics(
        seed in any::<u64>(),
        flaps in 0u32..4,
        bursts in 0u32..3,
        crashes in 0u32..3,
        outages in 0u32..2,
    ) {
        let a = chaos_run(seed, flaps, bursts, crashes, outages);
        let b = chaos_run(seed, flaps, bursts, crashes, outages);
        prop_assert_eq!(a, b);
    }
}

/// The schedule actually matters: the property above is not vacuous —
/// across a handful of seeds, at least one places its faults where they
/// change the observable outcome.
#[test]
fn chaos_schedule_is_seed_dependent() {
    let base = chaos_run(1, 3, 2, 2, 1);
    assert_eq!(base, chaos_run(1, 3, 2, 2, 1));
    assert!(
        (2..10).any(|seed| chaos_run(seed, 3, 2, 2, 1) != base),
        "every seed produced identical metrics — fault injection is inert"
    );
}
