//! Property tests for the packed-state engine (E19): the bitfield
//! encoding must be a bijection onto the legacy representation, packed
//! odometer iteration must replay the legacy iterator byte-for-byte,
//! and every engine — naive, packed-serial, packed-parallel — must
//! agree on counts, digests, BFS shells and reachable conflicts.

use iotsec_repro::iotdev::device::{DeviceClass, DeviceId};
use iotsec_repro::iotdev::env::EnvVar;
use iotsec_repro::iotpolicy::conflict::{
    find_reachable_rule_conflicts, find_reachable_rule_conflicts_naive,
};
use iotsec_repro::iotpolicy::context::SecurityContext;
use iotsec_repro::iotpolicy::explore::{bfs_naive, bfs_packed, explore_naive, explore_packed};
use iotsec_repro::iotpolicy::packed::PackedLayout;
use iotsec_repro::iotpolicy::state_space::StateSchema;
use iotsec_repro::trace::tracer::Tracer;
use proptest::prelude::*;

/// Build a schema from raw generator output: each device picks a class
/// and a domain that is a distinct-value prefix of the context space
/// (length 1–4, so >2-valued domains and degenerate 1-valued domains
/// are both exercised); env vars draw from the full [`EnvVar`] list
/// (duplicates collapse, exactly as the builder promises).
fn schema_from(devices: &[(u8, u8)], envs: &[u8]) -> StateSchema {
    let mut schema = StateSchema::new();
    for (i, (class, nctx)) in devices.iter().enumerate() {
        let class = DeviceClass::ALL[*class as usize % DeviceClass::ALL.len()];
        let n = (*nctx as usize % SecurityContext::ALL.len()) + 1;
        schema.add_device_with(DeviceId(i as u32), class, SecurityContext::ALL[..n].to_vec());
    }
    for e in envs {
        schema.add_env(EnvVar::ALL[*e as usize % EnvVar::ALL.len()]);
    }
    schema
}

proptest! {
    /// Packed encode/decode is a bijection: every legacy state maps to
    /// a distinct word and back to itself, and the odometer
    /// rank/from_rank pair inverts on every state.
    #[test]
    fn prop_packed_roundtrip_is_bijective(
        devices in prop::collection::vec((0u8..13, 0u8..4), 0..5),
        envs in prop::collection::vec(0u8..7, 0..4),
    ) {
        let schema = schema_from(&devices, &envs);
        let layout = PackedLayout::of(&schema).expect("small schemas always pack");
        prop_assert_eq!(layout.size(), schema.size());
        let mut seen = std::collections::HashSet::new();
        for (rank, state) in schema.iter_states().enumerate() {
            let p = layout.encode(&schema, &state);
            prop_assert!(seen.insert(p), "encode must be injective");
            prop_assert_eq!(&layout.decode(&schema, p), &state);
            prop_assert_eq!(layout.rank(p), rank as u128);
            prop_assert_eq!(layout.from_rank(rank as u128), p);
        }
        prop_assert_eq!(seen.len() as u128, layout.size());
    }

    /// The packed odometer (`first`/`next`) replays the legacy iterator
    /// in exactly its order — the identity every digest in the repo
    /// leans on.
    #[test]
    fn prop_packed_iteration_matches_legacy_order(
        devices in prop::collection::vec((0u8..13, 0u8..4), 0..5),
        envs in prop::collection::vec(0u8..7, 0..4),
    ) {
        let schema = schema_from(&devices, &envs);
        let layout = PackedLayout::of(&schema).expect("small schemas always pack");
        let mut cursor = Some(layout.first());
        let mut count: u128 = 0;
        for state in schema.iter_states() {
            let p = cursor.expect("packed iteration ended early");
            prop_assert_eq!(&layout.decode(&schema, p), &state);
            cursor = layout.next(p);
            count += 1;
        }
        prop_assert!(cursor.is_none(), "packed iteration ran long");
        prop_assert_eq!(count, schema.size());
    }

    /// All three exhaustive engines agree on the E1/E19 policy family:
    /// identical state counts, class counts and order-independent
    /// digests, serial vs parallel vs naive.
    #[test]
    fn prop_engines_agree_on_policy_family(
        n in 2u32..7,
        pairs in 0u32..3,
        threads in 2usize..4,
    ) {
        let policy = iotsec_bench::exp_policy::policy_for(n, pairs);
        let naive = explore_naive(&policy);
        let serial = explore_packed(&policy, 1).expect("policy family packs");
        let parallel = explore_packed(&policy, threads).expect("policy family packs");
        prop_assert_eq!(naive.digest(), serial.digest());
        prop_assert_eq!(serial.digest(), parallel.digest());
        prop_assert_eq!(serial.states, policy.schema.size());
    }

    /// BFS agrees the same way: the packed frontier search visits the
    /// same shells as the naive clone-heavy search, and the parallel
    /// expansion is byte-identical to serial (digest included).
    #[test]
    fn prop_bfs_shells_and_parallel_identity(
        n in 2u32..6,
        pairs in 0u32..3,
        threads in 2usize..4,
    ) {
        let policy = iotsec_bench::exp_policy::policy_for(n, pairs);
        let tracer = Tracer::disabled();
        let serial = bfs_packed(&policy, 1, &tracer).expect("policy family packs");
        let parallel = bfs_packed(&policy, threads, &tracer).expect("policy family packs");
        prop_assert_eq!(serial.histogram(), parallel.histogram());
        prop_assert_eq!(serial.frontier_digest, parallel.frontier_digest);
        prop_assert_eq!(bfs_naive(&policy).histogram(), serial.histogram());
        prop_assert_eq!(serial.visited, policy.schema.size());
    }

    /// The packed co-activation conflict scan equals the exhaustive
    /// witness search on every policy in the family.
    #[test]
    fn prop_reachable_conflicts_match_witness_search(
        n in 2u32..7,
        pairs in 0u32..3,
    ) {
        let policy = iotsec_bench::exp_policy::policy_for(n, pairs);
        let packed = find_reachable_rule_conflicts(&policy);
        let naive = find_reachable_rule_conflicts_naive(&policy, 1 << 20)
            .expect("family fits under the witness-scan limit");
        prop_assert_eq!(packed, naive);
    }
}
