//! Quickstart: build a tiny smart home, attack it, defend it.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! This walks the shortest path through the public API: describe a
//! deployment declaratively, run the same attack campaign with and
//! without IoTSec, and compare the ground-truth outcomes.

use iotsec_repro::iotdev::proto::MgmtCommand;
use iotsec_repro::iotnet::time::SimDuration;
use iotsec_repro::iotsec::defense::Defense;
use iotsec_repro::iotsec::deployment::{Deployment, DeviceSetup, StepSpec};
use iotsec_repro::iotsec::world::World;

fn main() {
    println!("== IoTSec quickstart ==\n");

    for defense in [Defense::None, Defense::Perimeter, Defense::iotsec()] {
        // One Avtech-style camera with the unfixable admin/admin account
        // (Table 1, row 1), and the canonical attack against it.
        let mut deployment = Deployment::new();
        let camera = deployment.device(DeviceSetup::table1_row(1));
        deployment.campaign(vec![
            StepSpec::DictionaryLogin(camera),
            StepSpec::Mgmt(camera, MgmtCommand::GetImage),
        ]);
        let label = format!("{defense:?}");
        deployment.defend_with(defense);

        let mut world = World::new(&deployment);
        world.run_until_attack_done(SimDuration::from_secs(120));
        let report = world.report();

        println!("defense = {label}");
        for outcome in &report.attack_outcomes {
            println!(
                "  step {:<28} -> {}",
                outcome.label,
                if outcome.success { "SUCCEEDED" } else { "blocked" }
            );
        }
        println!(
            "  camera image stolen: {}\n",
            if report.privacy_leaked.contains(&camera) { "YES" } else { "no" }
        );
    }

    println!("The camera firmware is identical in all three runs — only the network changed.");
}
