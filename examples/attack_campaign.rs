//! The paper's §2.1 multi-stage, cyber-physical break-in — and the
//! attack-graph search that predicts it before it happens.
//!
//! ```text
//! cargo run --example attack_campaign
//! ```
//!
//! Stage 1: the attacker flips the AC's smart plug off through the Wemo
//! cloud backdoor. Stage 2: physics — the room heats up. Stage 3: the
//! homeowner's own IFTTT recipe ("open the windows to cool down") opens
//! the window. Nobody ever sent the window a packet.

use iotsec_repro::iotdev::env::EnvVar;
use iotsec_repro::iotlearn::attack_graph::{breakin_deployment, AttackGraph, Fact};
use iotsec_repro::iotnet::time::SimDuration;
use iotsec_repro::iotsec::defense::Defense;
use iotsec_repro::iotsec::scenario;
use iotsec_repro::iotsec::world::World;

fn main() {
    println!("== The implicit-coupling break-in chain ==\n");

    // ---- prediction: the attack-graph search (paper §4.2) -------------
    let (specs, recipes) = breakin_deployment();
    let graph = AttackGraph::build(specs, recipes);
    println!("Attack-graph search predicts the chain before deployment:");
    match graph.find_attack(Fact::Env(EnvVar::Window, "open")) {
        Some(path) => {
            for (i, step) in path.steps.iter().enumerate() {
                println!("  stage {}: {:?}", i + 1, step);
            }
        }
        None => println!("  (no path found)"),
    }
    println!();

    // ---- execution: the same chain in the packet-level world ----------
    for (label, defense) in [("Current world", Defense::None), ("With IoTSec", Defense::iotsec())] {
        let (deployment, plug, _window) = scenario::breakin_chain(defense);
        let mut world = World::new(&deployment);
        world.env.occupied = false;
        world.env.ambient_c = 35.0;
        world.run_until_attack_done(SimDuration::from_secs(3600));
        let m = world.report();
        println!("--- {label} ---");
        println!("  plug compromised:  {}", m.compromised.contains(&plug));
        println!("  room temperature:  {:.1} C", world.env.temperature_c);
        println!("  window ended open: {}", world.env.window_open);
        println!("  recipes fired:     {}", m.recipes_fired);
        println!("  PHYSICAL BREACH:   {}\n", m.physical_breach);
    }

    println!("IoTSec blocks stage 1 (the backdoor), so the physical chain");
    println!("never starts: the AC keeps running and the recipe stays quiet.");
}
