//! A full smart home under attack: all seven Table 1 vulnerability
//! classes in one deployment, swept by one campaign, under each defense.
//!
//! ```text
//! cargo run --example smart_home
//! ```

use iotsec_repro::iotnet::time::SimDuration;
use iotsec_repro::iotsec::defense::{Defense, IoTSecConfig};
use iotsec_repro::iotsec::scenario;
use iotsec_repro::iotsec::world::World;

fn main() {
    println!("== Smart home: 11 devices, 7 Table 1 flaws, 1 campaign ==\n");
    println!(
        "{:<28} {:>11} {:>7} {:>12} {:>10}",
        "defense", "compromised", "leaks", "ddos bytes", "steps ok"
    );

    let defenses: Vec<(&str, Defense)> = vec![
        ("none", Defense::None),
        ("perimeter firewall", Defense::Perimeter),
        ("IoTSec (flat)", Defense::iotsec()),
        (
            "IoTSec (hierarchical)",
            Defense::IoTSec(IoTSecConfig { hierarchical: true, ..IoTSecConfig::default() }),
        ),
    ];

    for (label, defense) in defenses {
        let (deployment, _) = scenario::smart_home(defense, 7);
        let mut world = World::new(&deployment);
        world.env.occupied = true;
        world.run_until_attack_done(SimDuration::from_secs(300));
        let m = world.report();
        println!(
            "{:<28} {:>11} {:>7} {:>12} {:>7}/{}",
            label,
            m.compromised.len(),
            m.privacy_leaked.len(),
            m.ddos_bytes_at_victim,
            m.steps_succeeded(),
            m.attack_outcomes.len(),
        );
    }

    println!("\nThe perimeter changes little: every vulnerable device is exposed");
    println!("through a UPnP pinhole (that is how SHODAN found them). IoTSec's");
    println!("per-device umboxes absorb the whole sweep.");
}
