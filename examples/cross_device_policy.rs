//! Figure 5 of the paper, end to end: cross-device policy enforcement.
//!
//! ```text
//! cargo run --example cross_device_policy
//! ```
//!
//! A Belkin Wemo with the cloud backdoor powers a smart oven. The
//! IoTSec policy — straight from an IFTTT recipe — says the oven's plug
//! may be turned ON only while the camera sees somebody home. A remote
//! attacker hits the backdoor while the house is empty.

use iotsec_repro::iotnet::time::SimDuration;
use iotsec_repro::iotsec::defense::Defense;
use iotsec_repro::iotsec::scenario;
use iotsec_repro::iotsec::world::World;

fn run(defense: Defense, label: &str) {
    let (deployment, wemo, _camera) = scenario::figure5(defense);
    let mut world = World::new(&deployment);
    world.env.occupied = false; // nobody home
    world.run_until_attack_done(SimDuration::from_secs(180));
    let report = world.report();

    println!("--- {label} ---");
    for outcome in &report.attack_outcomes {
        println!(
            "  {:<32} {}",
            outcome.label,
            if outcome.success { "SUCCEEDED" } else { "blocked" }
        );
    }
    let plug_on = world.device(wemo).logic.is_on().unwrap_or(false);
    println!("  oven plug ended up ON:  {plug_on}");
    println!("  wemo compromised:       {}", report.compromised.contains(&wemo));
    println!("  umbox drops:            {}\n", report.umbox_drops);
}

fn main() {
    println!("== Figure 5: enforce cross-device policy ==\n");
    println!("Policy: allow \"ON\" to the Wemo only if the camera reports a");
    println!("person at home. The attacker uses the no-credential cloud");
    println!("backdoor while the house is empty.\n");

    run(Defense::None, "Current world");
    run(Defense::iotsec(), "With IoTSec (context-gate umbox)");

    println!("The gate consults the controller's global view (occupancy from");
    println!("the camera) — per-flow state no firewall rule could express.");
}
