//! Figure 4 of the paper, end to end: the IoT security gateway.
//!
//! ```text
//! cargo run --example security_gateway
//! ```
//!
//! "We use a µmbox (a customized proxy) to serve as a gateway that
//! interposes on all traffic to the camera. By interposing on traffic,
//! the µmbox can enforce the use of a new administrator-chosen password
//! to access the camera's management interface."

use iotsec_repro::iotnet::time::SimDuration;
use iotsec_repro::iotsec::defense::Defense;
use iotsec_repro::iotsec::scenario;
use iotsec_repro::iotsec::world::World;

fn run(defense: Defense, label: &str) {
    let (deployment, camera) = scenario::figure4(defense);
    let mut world = World::new(&deployment);
    world.run_until_attack_done(SimDuration::from_secs(120));
    let report = world.report();

    println!("--- {label} ---");
    for outcome in &report.attack_outcomes {
        println!(
            "  {:<32} {}",
            outcome.label,
            if outcome.success { "SUCCEEDED" } else { "blocked" }
        );
    }
    println!("  privacy leaked:   {}", report.privacy_leaked.contains(&camera));
    println!("  proxy intercepts: {}", report.umbox_intercepts);
    println!("  device untouched: {}\n", !world.device(camera).compromised);
}

fn main() {
    println!("== Figure 4: patching an exposed password in the network ==\n");
    println!("The camera ships with hardcoded admin/admin that the user has");
    println!("no interface to delete. The attacker runs a default-credential");
    println!("dictionary and then pulls images and the Wi-Fi config.\n");

    run(Defense::None, "Current world (red lines in the figure)");
    run(Defense::iotsec(), "With IoTSec (password-proxy umbox)");

    println!("Same firmware, same flaw, same attack — the proxy enforces the");
    println!("administrator-chosen password, so the burned-in account is dead");
    println!("on the wire. The device itself was never modified.");
}
