//! Workspace root crate for the IoTSec reproduction.
//!
//! This crate only re-exports the member crates so that the top-level
//! `examples/` and `tests/` directories can exercise the whole platform
//! through a single dependency. All functionality lives in the member
//! crates under `crates/`.

pub use iotctl;
pub use iotdev;
pub use iotlearn;
pub use iotnet;
pub use iotpolicy;
pub use iotsec;
pub use trace;
pub use umbox;
