//! Posture → µmbox chain compilation, and the network attachment.
//!
//! The controller expresses *what* a device's traffic must traverse as a
//! [`Posture`]; this module compiles it into an ordered chain of
//! elements and adapts the chain to [`iotnet::net::InlineProcessor`] so
//! a flow rule can steer traffic through it.

use crate::element::{Element, ElementOutcome, EventSink, ViewHandle};
use crate::filters::{BlockFilter, MirrorTap, ProtocolWhitelist, RateLimiter};
use crate::gate::ContextGate;
use crate::ids::{DnsGuard, SigIds};
use crate::proxy::{LoginChallenger, PasswordProxy};
use iotdev::device::{AdminCreds, DeviceId};
use iotlearn::signature::AttackSignature;
use iotnet::addr::Ipv4Addr;
use iotnet::net::{InlineProcessor, InlineVerdict};
use iotnet::packet::Packet;
use iotnet::time::{SimDuration, SimTime};
use iotpolicy::posture::{Posture, SecurityModule};
use serde::Serialize;
use trace::{TraceEvent, Tracer};

/// One slot in a chain. A closed enum (rather than trait objects all the
/// way down) so rulesets can be hot-swapped without downcasting; the
/// `Custom` escape hatch keeps the platform extensible, as the paper's
/// "extensible programming platform" requires.
pub enum Slot {
    /// Block filter.
    Block(BlockFilter),
    /// Protocol whitelist.
    Whitelist(ProtocolWhitelist),
    /// Rate limiter.
    Rate(RateLimiter),
    /// DNS guard.
    Dns(DnsGuard),
    /// Signature IDS.
    Ids(SigIds),
    /// Context gate.
    Gate(ContextGate),
    /// Login challenger.
    Challenger(LoginChallenger),
    /// Password proxy.
    Proxy(PasswordProxy),
    /// Mirror tap.
    Mirror(MirrorTap),
    /// A user-supplied element.
    Custom(Box<dyn Element>),
}

impl Slot {
    fn as_element(&mut self) -> &mut dyn Element {
        match self {
            Slot::Block(e) => e,
            Slot::Whitelist(e) => e,
            Slot::Rate(e) => e,
            Slot::Dns(e) => e,
            Slot::Ids(e) => e,
            Slot::Gate(e) => e,
            Slot::Challenger(e) => e,
            Slot::Proxy(e) => e,
            Slot::Mirror(e) => e,
            Slot::Custom(e) => e.as_mut(),
        }
    }

    /// The slot's label.
    pub fn label(&mut self) -> &'static str {
        match self {
            Slot::Custom(_) => "custom",
            other => other.as_element().label(),
        }
    }
}

/// What a chain does with traffic while its µmbox instance is down
/// (crashed and awaiting watchdog respawn, or disruptively rebooting).
///
/// The trade-off is the classic one: `FailOpen` preserves availability
/// but leaves the device unprotected for the outage window; `FailClosed`
/// preserves the security invariant but blackholes the device. The chaos
/// experiment (E15) quantifies both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum FailureMode {
    /// Pass traffic unfiltered while down (availability over security).
    /// The default, matching the implicit semantics of the boot window
    /// before a chain's steer rule is installed.
    #[default]
    FailOpen,
    /// Drop traffic while down (security over availability).
    FailClosed,
}

/// Everything the compiler needs besides the posture itself.
#[derive(Debug, Clone)]
pub struct ChainConfig {
    /// The protected device.
    pub device: DeviceId,
    /// Credentials the password proxy enforces.
    pub required_creds: AdminCreds,
    /// Sources pre-cleared through login challenges (the owner's app).
    pub cleared_sources: Vec<Ipv4Addr>,
    /// The active signature ruleset for this device's SKU, interned so
    /// every chain protecting the same SKU shares one allocation.
    pub signatures: std::rc::Rc<[AttackSignature]>,
    /// The controller's environment view (context gates read this).
    pub view: ViewHandle,
    /// Where the chain reports security events.
    pub events: EventSink,
    /// What the chain does with traffic while its instance is down.
    pub failure_mode: FailureMode,
    /// Packet-class trace emission (µmbox enter/exit; disabled by default).
    pub tracer: Tracer,
}

/// A compiled chain attached (or attachable) to a steer point.
pub struct UmboxChain {
    /// The protected device.
    pub device: DeviceId,
    slots: Vec<Slot>,
    events: EventSink,
    /// Packets that entered the chain.
    pub processed: u64,
    /// Packets the chain dropped.
    pub dropped: u64,
    /// Packets the chain answered on the device's behalf (proxy denials).
    pub intercepted: u64,
    /// Accumulated processing time.
    pub busy: SimDuration,
    /// What to do with traffic while the backing instance is down.
    pub failure_mode: FailureMode,
    /// Whether the backing instance is currently down (set by the
    /// simulation loop from the lifecycle manager's serving state).
    pub down: bool,
    /// Packets passed unfiltered because the chain was down fail-open.
    pub fail_open_passed: u64,
    /// Packets dropped because the chain was down fail-closed.
    pub fail_closed_dropped: u64,
    /// Packet-class trace emission (disabled by default).
    tracer: Tracer,
}

impl UmboxChain {
    /// An empty chain (passes everything).
    pub fn empty(device: DeviceId, events: EventSink) -> UmboxChain {
        UmboxChain {
            device,
            slots: Vec::new(),
            events,
            processed: 0,
            dropped: 0,
            intercepted: 0,
            busy: SimDuration::ZERO,
            failure_mode: FailureMode::default(),
            down: false,
            fail_open_passed: 0,
            fail_closed_dropped: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Append a slot.
    pub fn push(&mut self, slot: Slot) {
        self.slots.push(slot);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the chain has no elements.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Hot-swap the IDS ruleset (if the chain has an IDS); returns the
    /// new generation, or `None` if no IDS is present. No packets are
    /// dropped by the swap — the paper's availability requirement.
    pub fn update_signatures(
        &mut self,
        signatures: impl Into<std::rc::Rc<[AttackSignature]>>,
    ) -> Option<u16> {
        for slot in &mut self.slots {
            if let Slot::Ids(ids) = slot {
                ids.update_signatures(signatures);
                return Some(ids.generation);
            }
        }
        None
    }

    /// Run a packet through the chain (the core of the inline adapter).
    ///
    /// While the backing instance is down, the packet never reaches the
    /// elements: it is passed unfiltered (`FailOpen`) or dropped
    /// (`FailClosed`) at zero processing cost.
    pub fn run(&mut self, now: SimTime, packet: Packet) -> InlineVerdict {
        self.tracer.emit(now.as_nanos(), TraceEvent::UmboxEnter { device: self.device.0 });
        if self.down {
            return match self.failure_mode {
                FailureMode::FailOpen => {
                    self.fail_open_passed += 1;
                    self.exit_trace(now, "fail-open");
                    InlineVerdict::pass(packet, SimDuration::ZERO)
                }
                FailureMode::FailClosed => {
                    self.fail_closed_dropped += 1;
                    self.exit_trace(now, "fail-closed");
                    InlineVerdict::drop(SimDuration::ZERO)
                }
            };
        }
        self.processed += 1;
        let mut cost = SimDuration::ZERO;
        let mut current = packet;
        for slot in &mut self.slots {
            let ElementOutcome { packet, replies, events, cost: c } =
                slot.as_element().process(now, current);
            cost += c;
            self.events.push_all(events);
            if !replies.is_empty() {
                // The element answered on the device's behalf.
                self.intercepted += 1;
                self.busy += cost;
                self.exit_trace(now, "intercept");
                return InlineVerdict { forward: replies.into(), latency: cost };
            }
            match packet {
                Some(p) => current = p,
                None => {
                    self.dropped += 1;
                    self.busy += cost;
                    self.exit_trace(now, "drop");
                    return InlineVerdict::drop(cost);
                }
            }
        }
        self.busy += cost;
        self.exit_trace(now, "pass");
        InlineVerdict::pass(current, cost)
    }

    /// Emit the chain-exit trace event with the packet's verdict.
    fn exit_trace(&self, now: SimTime, verdict: &'static str) {
        self.tracer.emit(now.as_nanos(), TraceEvent::UmboxExit { device: self.device.0, verdict });
    }
}

impl InlineProcessor for UmboxChain {
    fn process(&mut self, now: SimTime, pkt: Packet) -> InlineVerdict {
        self.run(now, pkt)
    }

    fn label(&self) -> &str {
        "umbox-chain"
    }
}

/// Compile a posture into a chain. Element order is fixed and security-
/// relevant: cheap drops first (block/whitelist/rate), then inspection
/// (DNS guard, IDS), then context and credential interposition, with the
/// mirror tap last so it sees exactly what the device would.
pub fn build_chain(posture: &Posture, config: &ChainConfig) -> UmboxChain {
    let mut chain = UmboxChain::empty(config.device, config.events.clone());
    chain.failure_mode = config.failure_mode;
    chain.tracer = config.tracer.clone();
    use iotpolicy::posture::BlockClass;

    for module in posture.modules() {
        if let SecurityModule::Block(BlockClass::All) = module {
            chain.push(Slot::Block(BlockFilter::new(config.device, BlockClass::All)));
        }
    }
    if posture.contains(&SecurityModule::ProtocolWhitelist) {
        chain.push(Slot::Whitelist(ProtocolWhitelist::standard()));
    }
    for module in posture.modules() {
        if let SecurityModule::RateLimit { pps } = module {
            chain.push(Slot::Rate(RateLimiter::new(*pps)));
        }
    }
    for module in posture.modules() {
        match module {
            SecurityModule::Block(BlockClass::All) => {} // already first
            SecurityModule::Block(BlockClass::DnsResponses) => {
                chain.push(Slot::Dns(DnsGuard::new(config.device)));
            }
            SecurityModule::Block(class) => {
                chain.push(Slot::Block(BlockFilter::new(config.device, *class)));
            }
            _ => {}
        }
    }
    for module in posture.modules() {
        if let SecurityModule::Ids { .. } = module {
            // `Rc::clone` — a refcount bump, not a ruleset copy.
            chain.push(Slot::Ids(SigIds::new(config.device, config.signatures.clone())));
        }
    }
    for module in posture.modules() {
        if let SecurityModule::ContextGate { var, value } = module {
            chain.push(Slot::Gate(ContextGate::new(
                config.device,
                *var,
                value,
                config.view.clone(),
            )));
        }
    }
    if posture.contains(&SecurityModule::ChallengeLogins) {
        chain.push(Slot::Challenger(LoginChallenger::new(
            config.device,
            config.cleared_sources.clone(),
        )));
    }
    if posture.contains(&SecurityModule::PasswordProxy) {
        chain.push(Slot::Proxy(PasswordProxy::new(config.device, config.required_creds.clone())));
    }
    if posture.contains(&SecurityModule::Mirror) {
        chain.push(Slot::Mirror(MirrorTap::new(1024)));
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotdev::env::EnvVar;
    use iotdev::proto::{ports, AppMessage, ControlAction, ControlAuth};
    use iotnet::addr::MacAddr;
    use iotnet::packet::TransportHeader;
    use iotpolicy::posture::BlockClass;

    fn config() -> ChainConfig {
        ChainConfig {
            device: DeviceId(0),
            required_creds: AdminCreds::new("owner", "Str0ng!"),
            cleared_sources: vec![Ipv4Addr::new(10, 0, 0, 2)],
            signatures: Vec::new().into(),
            view: ViewHandle::new(),
            events: EventSink::new(),
            failure_mode: FailureMode::FailOpen,
            tracer: Tracer::disabled(),
        }
    }

    fn pkt(dst_port: u16, msg: &AppMessage) -> Packet {
        Packet::new(
            MacAddr::from_index(9),
            MacAddr::from_index(1),
            Ipv4Addr::new(100, 64, 0, 9),
            Ipv4Addr::new(10, 0, 0, 5),
            TransportHeader::udp(4000, dst_port),
            msg.encode(),
        )
    }

    #[test]
    fn empty_posture_builds_empty_chain() {
        let chain = build_chain(&Posture::allow(), &config());
        assert!(chain.is_empty());
    }

    #[test]
    fn quarantine_chain_drops_everything() {
        let cfg = config();
        let mut chain = build_chain(&Posture::quarantine(), &cfg);
        let out = chain.run(
            SimTime::ZERO,
            pkt(
                ports::TELEMETRY,
                &AppMessage::Telemetry { kind: iotdev::proto::TelemetryKind::Status, value: 0.0 },
            ),
        );
        assert!(out.forward.is_empty());
        assert_eq!(chain.dropped, 1);
    }

    #[test]
    fn full_posture_chain_composes_in_order() {
        let posture = Posture::of(SecurityModule::PasswordProxy)
            .with(SecurityModule::Ids { ruleset: 1 })
            .with(SecurityModule::RateLimit { pps: 100 })
            .with(SecurityModule::ProtocolWhitelist)
            .with(SecurityModule::Mirror)
            .with(SecurityModule::ContextGate { var: EnvVar::Occupancy, value: "present" })
            .with(SecurityModule::Block(BlockClass::Cloud));
        let cfg = config();
        let mut chain = build_chain(&posture, &cfg);
        assert_eq!(chain.len(), 7);
        let mut labels = Vec::new();
        for slot in &mut chain.slots {
            labels.push(slot.label());
        }
        assert_eq!(
            labels,
            vec![
                "protocol-whitelist",
                "rate-limiter",
                "block-filter",
                "sig-ids",
                "context-gate",
                "password-proxy",
                "mirror-tap"
            ]
        );
    }

    #[test]
    fn chain_accumulates_cost_and_events() {
        let cfg = config();
        let posture = Posture::of(SecurityModule::PasswordProxy);
        let mut chain = build_chain(&posture, &cfg);
        let login =
            pkt(ports::MGMT, &AppMessage::MgmtLogin { user: "admin".into(), pass: "admin".into() });
        for _ in 0..3 {
            let out = chain.run(SimTime::ZERO, login.clone());
            // Proxy answers with a denial on the device's behalf.
            assert_eq!(out.forward.len(), 1);
            assert!(out.latency > SimDuration::ZERO);
        }
        assert_eq!(cfg.events.len(), 1); // batched: 1 per 3 blocked
        assert!(chain.busy > SimDuration::ZERO);
    }

    #[test]
    fn hot_swap_reaches_embedded_ids() {
        use iotdev::registry::Sku;
        use iotlearn::signature::{Matcher, Severity};
        let cfg = config();
        let mut chain = build_chain(&Posture::of(SecurityModule::Ids { ruleset: 1 }), &cfg);
        let backdoor =
            pkt(ports::CLOUD, &AppMessage::CloudCommand { action: ControlAction::TurnOff });
        assert_eq!(chain.run(SimTime::ZERO, backdoor.clone()).forward.len(), 1);
        let gen = chain.update_signatures(vec![AttackSignature::new(
            Sku::new("belkin", "wemo", "1.1"),
            "cloud-bypass-backdoor",
            Matcher::CloudCommand,
            Severity::High,
        )]);
        assert_eq!(gen, Some(2));
        assert!(chain.run(SimTime::ZERO, backdoor).forward.is_empty());
        // Chains without an IDS report None.
        let mut plain = build_chain(&Posture::allow(), &config());
        assert_eq!(plain.update_signatures(vec![]), None);
    }

    #[test]
    fn down_chain_fails_open_or_closed() {
        let posture = Posture::quarantine(); // would drop everything if up
        let mut open = build_chain(&posture, &config());
        open.down = true;
        let p = pkt(
            ports::TELEMETRY,
            &AppMessage::Telemetry { kind: iotdev::proto::TelemetryKind::Status, value: 0.0 },
        );
        let out = open.run(SimTime::ZERO, p.clone());
        // Fail-open: the quarantine is bypassed while down.
        assert_eq!(out.forward.len(), 1);
        assert_eq!(open.fail_open_passed, 1);
        assert_eq!(open.processed, 0);

        let mut cfg = config();
        cfg.failure_mode = FailureMode::FailClosed;
        let mut closed = build_chain(&Posture::allow(), &cfg); // would pass if up
        closed.down = true;
        assert!(closed.run(SimTime::ZERO, p.clone()).forward.is_empty());
        assert_eq!(closed.fail_closed_dropped, 1);

        // Back up: normal processing resumes.
        closed.down = false;
        assert_eq!(closed.run(SimTime::ZERO, p).forward.len(), 1);
        assert_eq!(closed.processed, 1);
    }

    #[test]
    fn gate_in_chain_respects_view() {
        let cfg = config();
        cfg.view.set(EnvVar::Occupancy, "absent");
        let posture =
            Posture::of(SecurityModule::ContextGate { var: EnvVar::Occupancy, value: "present" });
        let mut chain = build_chain(&posture, &cfg);
        let on = pkt(
            ports::CONTROL,
            &AppMessage::Control { action: ControlAction::TurnOn, auth: ControlAuth::None },
        );
        assert!(chain.run(SimTime::ZERO, on.clone()).forward.is_empty());
        cfg.view.set(EnvVar::Occupancy, "present");
        assert_eq!(chain.run(SimTime::ZERO, on).forward.len(), 1);
    }
}
