//! The element processing model.
//!
//! A µmbox is a chain of small elements, in the spirit of Click (the
//! paper proposes "a lightweight Click version akin to TinyOS" as the
//! programming platform). Each element sees one packet and produces an
//! [`ElementOutcome`]: keep/transform/drop the packet, optionally reply
//! on the device's behalf, report security events, and account its
//! processing cost.

use iotdev::env::EnvVar;
use iotdev::events::SecurityEvent;
use iotnet::packet::Packet;
use iotnet::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// What an element did with a packet.
#[derive(Debug)]
pub struct ElementOutcome {
    /// The packet to hand to the next element (`None` = dropped).
    pub packet: Option<Packet>,
    /// Packets to emit instead/in addition (proxy replies). These skip
    /// the rest of the chain.
    pub replies: Vec<Packet>,
    /// Security events to report to the controller.
    pub events: Vec<SecurityEvent>,
    /// Processing cost.
    pub cost: SimDuration,
}

impl ElementOutcome {
    /// Pass the packet through unchanged.
    pub fn pass(packet: Packet, cost: SimDuration) -> ElementOutcome {
        ElementOutcome { packet: Some(packet), replies: Vec::new(), events: Vec::new(), cost }
    }

    /// Drop the packet.
    pub fn drop(cost: SimDuration) -> ElementOutcome {
        ElementOutcome { packet: None, replies: Vec::new(), events: Vec::new(), cost }
    }

    /// Drop the packet and reply on the device's behalf.
    pub fn reply(reply: Packet, cost: SimDuration) -> ElementOutcome {
        ElementOutcome { packet: None, replies: vec![reply], events: Vec::new(), cost }
    }

    /// Attach an event.
    pub fn with_event(mut self, event: SecurityEvent) -> ElementOutcome {
        self.events.push(event);
        self
    }
}

/// One packet-processing element.
pub trait Element {
    /// Process a packet at simulated time `now`.
    fn process(&mut self, now: SimTime, packet: Packet) -> ElementOutcome;

    /// Short label for reports.
    fn label(&self) -> &'static str;
}

/// A shared sink through which chains deliver security events to the
/// simulation loop (and onward to the controller). Single-threaded
/// simulation ⇒ `Rc<RefCell<_>>`.
#[derive(Debug, Clone, Default)]
pub struct EventSink(Rc<RefCell<Vec<SecurityEvent>>>);

impl EventSink {
    /// A fresh sink.
    pub fn new() -> EventSink {
        EventSink::default()
    }

    /// Append events.
    pub fn push_all(&self, events: impl IntoIterator<Item = SecurityEvent>) {
        self.0.borrow_mut().extend(events);
    }

    /// Drain all pending events.
    pub fn drain(&self) -> Vec<SecurityEvent> {
        self.0.borrow_mut().drain(..).collect()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }
}

/// A shared, controller-maintained view of the discrete environment,
/// read by context-gate elements (Figure 5's "global state identifies a
/// person in the room").
#[derive(Debug, Clone, Default)]
pub struct ViewHandle(Rc<RefCell<HashMap<EnvVar, &'static str>>>);

impl ViewHandle {
    /// A fresh, empty view.
    pub fn new() -> ViewHandle {
        ViewHandle::default()
    }

    /// Controller-side: set a variable.
    pub fn set(&self, var: EnvVar, value: &'static str) {
        self.0.borrow_mut().insert(var, value);
    }

    /// Gate-side: read a variable.
    pub fn get(&self, var: EnvVar) -> Option<&'static str> {
        self.0.borrow().get(&var).copied()
    }
}

/// Canonical per-packet costs for the element library, in the spirit of
/// the lightweight functions the paper expects ("the actual computation
/// that each micro-middlebox performs will be lightweight").
pub mod costs {
    use iotnet::time::SimDuration;

    /// Password proxy: TCP interpose + credential rewrite.
    pub const PROXY: SimDuration = SimDuration::from_micros(50);
    /// Signature IDS fixed cost per packet.
    pub const IDS_BASE: SimDuration = SimDuration::from_micros(15);
    /// Signature IDS per-signature marginal cost.
    pub const IDS_PER_SIG: SimDuration = SimDuration::from_micros(2);
    /// Rate limiter.
    pub const RATE_LIMIT: SimDuration = SimDuration::from_micros(2);
    /// Protocol whitelist / block filter.
    pub const FILTER: SimDuration = SimDuration::from_micros(3);
    /// Context gate (one shared-view lookup).
    pub const GATE: SimDuration = SimDuration::from_micros(5);
    /// Mirror (copy).
    pub const MIRROR: SimDuration = SimDuration::from_micros(8);
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotdev::device::DeviceId;
    use iotdev::events::SecurityEventKind;

    #[test]
    fn event_sink_roundtrip() {
        let sink = EventSink::new();
        assert!(sink.is_empty());
        sink.push_all([SecurityEvent::new(
            SimTime::ZERO,
            DeviceId(1),
            SecurityEventKind::SmokeAlarm,
        )]);
        assert_eq!(sink.len(), 1);
        let drained = sink.drain();
        assert_eq!(drained.len(), 1);
        assert!(sink.is_empty());
        // Clones share state.
        let clone = sink.clone();
        clone.push_all([SecurityEvent::new(
            SimTime::ZERO,
            DeviceId(2),
            SecurityEventKind::SmokeAlarm,
        )]);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn view_handle_shares_state() {
        let view = ViewHandle::new();
        let reader = view.clone();
        assert_eq!(reader.get(EnvVar::Occupancy), None);
        view.set(EnvVar::Occupancy, "present");
        assert_eq!(reader.get(EnvVar::Occupancy), Some("present"));
        view.set(EnvVar::Occupancy, "absent");
        assert_eq!(reader.get(EnvVar::Occupancy), Some("absent"));
    }
}
