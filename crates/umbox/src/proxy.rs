//! The password-proxy µmbox (Figure 4) and the login challenger
//! (Figure 3's "Robot Check").
//!
//! Figure 4's scenario: a camera ships with `admin`/`admin` hardcoded
//! and no way to remove it. The proxy interposes on the management
//! plane and enforces an *administrator-chosen* credential: logins that
//! present it are forwarded; every other login — including the burned-in
//! default — is answered with a denial **by the proxy**, so the
//! vulnerable firmware never even sees the attempt. The device is
//! patched without touching it.

use crate::element::{costs, Element, ElementOutcome};
use iotdev::device::{AdminCreds, DeviceId};
use iotdev::events::{SecurityEvent, SecurityEventKind};
use iotdev::proto::{ports, AppMessage};
use iotnet::packet::{Packet, TransportHeader};
use iotnet::time::SimTime;

/// Build a denial the proxy sends on the device's behalf.
fn reply_for(original: &Packet, msg: AppMessage) -> Packet {
    let transport = match original.transport {
        TransportHeader::Tcp { src_port, dst_port, .. } => {
            TransportHeader::tcp(dst_port, src_port, 0, Default::default())
        }
        TransportHeader::Udp { src_port, dst_port } => TransportHeader::udp(dst_port, src_port),
    };
    Packet::new(
        original.eth.dst, // as if from the device
        original.eth.src,
        original.ip.dst,
        original.ip.src,
        transport,
        msg.encode(),
    )
}

/// The Figure 4 password proxy — an authenticating gateway for the whole
/// device, not just the login exchange.
///
/// * Management logins must present the administrator-chosen
///   credentials; everything else is denied *by the proxy* (the
///   vulnerable firmware never sees the attempt).
/// * Management commands are forwarded only for sources that logged in
///   through the proxy (a wide-open interface behind the proxy is no
///   longer wide open).
/// * Control-plane actuations must carry the enforced credentials or
///   come from an authorized source — this is the "network patch" for
///   `no-auth-control` devices like the Table 1 traffic lights.
#[derive(Debug)]
pub struct PasswordProxy {
    /// The protected device.
    pub device: DeviceId,
    /// The administrator-chosen credentials the proxy enforces.
    pub required: AdminCreds,
    /// Sources that have authenticated through the proxy.
    authorized: std::collections::BTreeSet<iotnet::addr::Ipv4Addr>,
    /// Logins denied at the proxy.
    pub blocked_logins: u64,
    /// Logins forwarded.
    pub allowed_logins: u64,
    /// Management commands denied (unvetted session).
    pub blocked_commands: u64,
    /// Control actuations denied.
    pub blocked_controls: u64,
}

impl PasswordProxy {
    /// A proxy enforcing `required` in front of `device`.
    pub fn new(device: DeviceId, required: AdminCreds) -> PasswordProxy {
        PasswordProxy {
            device,
            required,
            authorized: std::collections::BTreeSet::new(),
            blocked_logins: 0,
            blocked_commands: 0,
            blocked_controls: 0,
            allowed_logins: 0,
        }
    }

    fn creds_ok(&self, user: &str, pass: &str) -> bool {
        user == self.required.user && pass == self.required.pass
    }

    fn deny(&mut self, now: SimTime, packet: &Packet, msg: AppMessage) -> ElementOutcome {
        let event = SecurityEvent::new(now, self.device, SecurityEventKind::AuthFailureBurst)
            .from_remote(packet.ip.src);
        let total_blocked = self.blocked_logins + self.blocked_commands + self.blocked_controls;
        let reply = reply_for(packet, msg);
        let mut out = ElementOutcome::reply(reply, costs::PROXY);
        // One event per blocked attempt is too chatty for the controller;
        // report every third (burst semantics).
        if total_blocked.is_multiple_of(3) {
            out = out.with_event(event);
        }
        out
    }
}

impl Element for PasswordProxy {
    fn process(&mut self, now: SimTime, packet: Packet) -> ElementOutcome {
        match (packet.transport.dst_port(), AppMessage::decode(&packet.payload)) {
            (ports::MGMT, Ok(AppMessage::MgmtLogin { user, pass })) => {
                if self.creds_ok(&user, &pass) {
                    self.allowed_logins += 1;
                    self.authorized.insert(packet.ip.src);
                    ElementOutcome::pass(packet, costs::PROXY)
                } else {
                    self.blocked_logins += 1;
                    self.deny(now, &packet, AppMessage::MgmtDenied)
                }
            }
            (ports::MGMT, Ok(AppMessage::MgmtCommand { .. })) => {
                if self.authorized.contains(&packet.ip.src) {
                    ElementOutcome::pass(packet, costs::PROXY)
                } else {
                    self.blocked_commands += 1;
                    self.deny(now, &packet, AppMessage::MgmtDenied)
                }
            }
            (ports::CONTROL, Ok(AppMessage::Control { auth, .. })) => {
                let ok = match &auth {
                    iotdev::proto::ControlAuth::Password { user, pass } => {
                        self.creds_ok(user, pass)
                    }
                    _ => self.authorized.contains(&packet.ip.src),
                };
                if ok {
                    ElementOutcome::pass(packet, costs::PROXY)
                } else {
                    self.blocked_controls += 1;
                    self.deny(now, &packet, AppMessage::ControlAck { ok: false })
                }
            }
            // Telemetry/DNS/cloud planes are out of the proxy's scope.
            _ => ElementOutcome::pass(packet, costs::PROXY),
        }
    }

    fn label(&self) -> &'static str {
        "password-proxy"
    }
}

/// Figure 3's login challenger: during suspicion, management logins must
/// come from a source that has solved a challenge. The simulation models
/// the challenge as an allowlist the controller can seed (the owner's
/// app passes; a bot does not).
#[derive(Debug)]
pub struct LoginChallenger {
    /// The protected device.
    pub device: DeviceId,
    /// Sources that have passed the challenge.
    pub cleared: Vec<iotnet::addr::Ipv4Addr>,
    /// Challenged (dropped) logins.
    pub challenged: u64,
}

impl LoginChallenger {
    /// A challenger with a pre-cleared source set.
    pub fn new(device: DeviceId, cleared: Vec<iotnet::addr::Ipv4Addr>) -> LoginChallenger {
        LoginChallenger { device, cleared, challenged: 0 }
    }
}

impl Element for LoginChallenger {
    fn process(&mut self, now: SimTime, packet: Packet) -> ElementOutcome {
        if packet.transport.dst_port() != ports::MGMT {
            return ElementOutcome::pass(packet, costs::FILTER);
        }
        if matches!(AppMessage::decode(&packet.payload), Ok(AppMessage::MgmtLogin { .. }))
            && !self.cleared.contains(&packet.ip.src)
        {
            self.challenged += 1;
            let reply = reply_for(&packet, AppMessage::MgmtDenied);
            return ElementOutcome::reply(reply, costs::FILTER).with_event(
                SecurityEvent::new(now, self.device, SecurityEventKind::AuthFailureBurst)
                    .from_remote(packet.ip.src),
            );
        }
        ElementOutcome::pass(packet, costs::FILTER)
    }

    fn label(&self) -> &'static str {
        "login-challenger"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use iotnet::addr::{Ipv4Addr, MacAddr};

    fn login_pkt(user: &str, pass: &str) -> Packet {
        Packet::new(
            MacAddr::from_index(9),
            MacAddr::from_index(1),
            Ipv4Addr::new(100, 64, 0, 9),
            Ipv4Addr::new(10, 0, 0, 5),
            TransportHeader::tcp(40000, ports::MGMT, 1, Default::default()),
            AppMessage::MgmtLogin { user: user.into(), pass: pass.into() }.encode(),
        )
    }

    #[test]
    fn proxy_blocks_default_creds() {
        let mut proxy = PasswordProxy::new(DeviceId(0), AdminCreds::new("owner", "Str0ng!"));
        let out = proxy.process(SimTime::ZERO, login_pkt("admin", "admin"));
        assert!(out.packet.is_none(), "default creds must not reach the device");
        assert_eq!(out.replies.len(), 1);
        let reply = AppMessage::decode(&out.replies[0].payload).unwrap();
        assert_eq!(reply, AppMessage::MgmtDenied);
        assert_eq!(proxy.blocked_logins, 1);
    }

    #[test]
    fn proxy_forwards_strong_creds() {
        let mut proxy = PasswordProxy::new(DeviceId(0), AdminCreds::new("owner", "Str0ng!"));
        let out = proxy.process(SimTime::ZERO, login_pkt("owner", "Str0ng!"));
        assert!(out.packet.is_some());
        assert!(out.replies.is_empty());
        assert_eq!(proxy.allowed_logins, 1);
    }

    #[test]
    fn proxy_reply_is_addressed_to_the_attacker() {
        let mut proxy = PasswordProxy::new(DeviceId(0), AdminCreds::new("owner", "Str0ng!"));
        let pkt = login_pkt("admin", "admin");
        let out = proxy.process(SimTime::ZERO, pkt.clone());
        let reply = &out.replies[0];
        assert_eq!(reply.ip.dst, pkt.ip.src);
        assert_eq!(reply.ip.src, pkt.ip.dst); // appears to come from the device
        assert_eq!(reply.transport.dst_port(), pkt.transport.src_port());
    }

    #[test]
    fn proxy_events_are_batched() {
        let mut proxy = PasswordProxy::new(DeviceId(0), AdminCreds::new("owner", "Str0ng!"));
        let mut events = 0;
        for _ in 0..9 {
            events += proxy.process(SimTime::ZERO, login_pkt("admin", "admin")).events.len();
        }
        assert_eq!(events, 3);
    }

    #[test]
    fn proxy_gates_mgmt_commands_by_session() {
        use iotdev::proto::MgmtCommand;
        let mut proxy = PasswordProxy::new(DeviceId(0), AdminCreds::new("owner", "Str0ng!"));
        let cmd = Packet::new(
            MacAddr::from_index(9),
            MacAddr::from_index(1),
            Ipv4Addr::new(100, 64, 0, 9),
            Ipv4Addr::new(10, 0, 0, 5),
            TransportHeader::tcp(40000, ports::MGMT, 1, Default::default()),
            AppMessage::MgmtCommand { token: 0, command: MgmtCommand::GetConfig }.encode(),
        );
        // Unvetted source: denied even though the device behind would
        // accept anything (open-mgmt-access).
        let out = proxy.process(SimTime::ZERO, cmd.clone());
        assert!(out.packet.is_none());
        assert_eq!(proxy.blocked_commands, 1);
        // After a proper login the same source's commands pass.
        proxy.process(SimTime::ZERO, login_pkt("owner", "Str0ng!"));
        let out = proxy.process(SimTime::ZERO, cmd);
        assert!(out.packet.is_some());
    }

    #[test]
    fn proxy_gates_control_plane() {
        use iotdev::proto::{ControlAction, ControlAuth};
        let mut proxy = PasswordProxy::new(DeviceId(0), AdminCreds::new("owner", "Str0ng!"));
        let ctl = |auth: ControlAuth| {
            Packet::new(
                MacAddr::from_index(9),
                MacAddr::from_index(1),
                Ipv4Addr::new(100, 64, 0, 9),
                Ipv4Addr::new(10, 0, 0, 5),
                TransportHeader::udp(40000, ports::CONTROL),
                AppMessage::Control { action: ControlAction::SetPhase(2), auth }.encode(),
            )
        };
        // Unauthenticated actuation (the traffic-light exploit): denied
        // with a spoofed negative ack.
        let out = proxy.process(SimTime::ZERO, ctl(ControlAuth::None));
        assert!(out.packet.is_none());
        assert_eq!(out.replies.len(), 1);
        assert_eq!(
            AppMessage::decode(&out.replies[0].payload).unwrap(),
            AppMessage::ControlAck { ok: false }
        );
        // Owner-credentialed actuation (the hub) passes.
        let out = proxy.process(
            SimTime::ZERO,
            ctl(ControlAuth::Password { user: "owner".into(), pass: "Str0ng!".into() }),
        );
        assert!(out.packet.is_some());
        assert_eq!(proxy.blocked_controls, 1);
    }

    #[test]
    fn proxy_ignores_other_planes() {
        let mut proxy = PasswordProxy::new(DeviceId(0), AdminCreds::new("owner", "Str0ng!"));
        let mut pkt = login_pkt("admin", "admin");
        pkt.transport = TransportHeader::udp(40000, ports::TELEMETRY);
        let out = proxy.process(SimTime::ZERO, pkt);
        assert!(out.packet.is_some());
    }

    #[test]
    fn challenger_blocks_uncleared_sources() {
        let owner = Ipv4Addr::new(10, 0, 0, 2);
        let mut ch = LoginChallenger::new(DeviceId(0), vec![owner]);
        // Attacker challenged.
        let out = ch.process(SimTime::ZERO, login_pkt("owner", "Str0ng!"));
        assert!(out.packet.is_none());
        assert_eq!(ch.challenged, 1);
        // Owner passes.
        let mut pkt = login_pkt("owner", "Str0ng!");
        pkt.ip.src = owner;
        let out = ch.process(SimTime::ZERO, pkt);
        assert!(out.packet.is_some());
    }
}
