//! Generic filtering elements: block filters, protocol whitelist, token
//! bucket rate limiter, and the mirror tap.

use crate::element::{costs, Element, ElementOutcome};
use iotdev::device::DeviceId;
use iotdev::events::{SecurityEvent, SecurityEventKind};
use iotdev::proto::{ports, AppMessage, ControlAction};
use iotnet::packet::Packet;
use iotnet::time::{SimDuration, SimTime};
use iotpolicy::posture::BlockClass;
use std::collections::BTreeSet;

/// Drops packets in a [`BlockClass`].
#[derive(Debug)]
pub struct BlockFilter {
    /// Protected device.
    pub device: DeviceId,
    /// What to block.
    pub class: BlockClass,
    /// Packets dropped.
    pub dropped: u64,
}

impl BlockFilter {
    /// A filter for one block class.
    pub fn new(device: DeviceId, class: BlockClass) -> BlockFilter {
        BlockFilter { device, class, dropped: 0 }
    }

    fn blocks(&self, packet: &Packet) -> bool {
        let msg = AppMessage::decode(&packet.payload).ok();
        match self.class {
            BlockClass::All => true,
            BlockClass::Actuation => {
                matches!(msg, Some(AppMessage::Control { .. } | AppMessage::CloudCommand { .. }))
            }
            BlockClass::OpenVerbs => matches!(
                msg,
                Some(AppMessage::Control {
                    action: ControlAction::Open | ControlAction::Unlock,
                    ..
                }) | Some(AppMessage::CloudCommand {
                    action: ControlAction::Open | ControlAction::Unlock,
                })
            ),
            BlockClass::OnVerbs => matches!(
                msg,
                Some(AppMessage::Control { action: ControlAction::TurnOn, .. })
                    | Some(AppMessage::CloudCommand { action: ControlAction::TurnOn })
            ),
            BlockClass::Cloud => packet.transport.dst_port() == ports::CLOUD,
            BlockClass::DnsResponses => {
                packet.transport.dst_port() == ports::DNS
                    && matches!(msg, Some(AppMessage::DnsQuery { recursion: true, .. }))
                    && !packet.ip.src.is_private()
            }
        }
    }
}

impl Element for BlockFilter {
    fn process(&mut self, now: SimTime, packet: Packet) -> ElementOutcome {
        if self.blocks(&packet) {
            self.dropped += 1;
            let mut out = ElementOutcome::drop(costs::FILTER);
            if matches!(self.class, BlockClass::Cloud) {
                out = out.with_event(
                    SecurityEvent::new(now, self.device, SecurityEventKind::BackdoorAccessed)
                        .from_remote(packet.ip.src),
                );
            }
            out
        } else {
            ElementOutcome::pass(packet, costs::FILTER)
        }
    }

    fn label(&self) -> &'static str {
        "block-filter"
    }
}

/// Only the device's declared protocol planes get through.
#[derive(Debug)]
pub struct ProtocolWhitelist {
    /// Allowed destination ports.
    pub allowed: BTreeSet<u16>,
    /// Dropped packets.
    pub dropped: u64,
}

impl ProtocolWhitelist {
    /// Whitelist the given ports.
    pub fn new(allowed: impl IntoIterator<Item = u16>) -> ProtocolWhitelist {
        ProtocolWhitelist { allowed: allowed.into_iter().collect(), dropped: 0 }
    }

    /// The standard plane set for a well-behaved device (no DNS, no
    /// cloud).
    pub fn standard() -> ProtocolWhitelist {
        ProtocolWhitelist::new([ports::MGMT, ports::CONTROL, ports::TELEMETRY])
    }
}

impl Element for ProtocolWhitelist {
    fn process(&mut self, _now: SimTime, packet: Packet) -> ElementOutcome {
        if self.allowed.contains(&packet.transport.dst_port()) {
            ElementOutcome::pass(packet, costs::FILTER)
        } else {
            self.dropped += 1;
            ElementOutcome::drop(costs::FILTER)
        }
    }

    fn label(&self) -> &'static str {
        "protocol-whitelist"
    }
}

/// A token-bucket rate limiter.
#[derive(Debug)]
pub struct RateLimiter {
    /// Sustained packets per second.
    pub pps: u32,
    /// Bucket depth (burst tolerance).
    pub burst: u32,
    tokens: f64,
    last_refill: SimTime,
    /// Dropped packets.
    pub dropped: u64,
}

impl RateLimiter {
    /// A limiter at `pps` with a burst of the same size.
    pub fn new(pps: u32) -> RateLimiter {
        RateLimiter {
            pps,
            burst: pps.max(1),
            tokens: pps.max(1) as f64,
            last_refill: SimTime::ZERO,
            dropped: 0,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed = now.duration_since(self.last_refill);
        self.last_refill = now;
        self.tokens =
            (self.tokens + elapsed.as_secs_f64() * self.pps as f64).min(self.burst as f64);
    }
}

impl Element for RateLimiter {
    fn process(&mut self, now: SimTime, packet: Packet) -> ElementOutcome {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            ElementOutcome::pass(packet, costs::RATE_LIMIT)
        } else {
            self.dropped += 1;
            ElementOutcome::drop(costs::RATE_LIMIT)
        }
    }

    fn label(&self) -> &'static str {
        "rate-limiter"
    }
}

/// A mirror tap: keeps (bounded) copies for forensics and passes the
/// packet on. The retention buffer is a ring (`VecDeque`), so evicting
/// the oldest copy is O(1) rather than shifting the whole buffer on
/// every packet once full.
#[derive(Debug)]
pub struct MirrorTap {
    /// Retained copies, oldest first.
    pub taps: std::collections::VecDeque<Packet>,
    capacity: usize,
    /// Total packets seen.
    pub seen: u64,
}

impl MirrorTap {
    /// A tap retaining up to `capacity` packets.
    pub fn new(capacity: usize) -> MirrorTap {
        MirrorTap { taps: std::collections::VecDeque::new(), capacity, seen: 0 }
    }
}

impl Element for MirrorTap {
    fn process(&mut self, _now: SimTime, packet: Packet) -> ElementOutcome {
        self.seen += 1;
        if self.taps.len() == self.capacity {
            self.taps.pop_front();
        }
        self.taps.push_back(packet.clone());
        ElementOutcome::pass(packet, costs::MIRROR)
    }

    fn label(&self) -> &'static str {
        "mirror-tap"
    }
}

/// Convenience: the combined per-packet latency of a set of element
/// costs (used by E10's analytical checks).
pub fn chain_cost(costs: &[SimDuration]) -> SimDuration {
    costs.iter().fold(SimDuration::ZERO, |acc, c| acc + *c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotdev::proto::ControlAuth;
    use iotnet::addr::{Ipv4Addr, MacAddr};
    use iotnet::packet::TransportHeader;

    fn pkt(dst_port: u16, msg: &AppMessage) -> Packet {
        Packet::new(
            MacAddr::from_index(9),
            MacAddr::from_index(1),
            Ipv4Addr::new(100, 64, 0, 9),
            Ipv4Addr::new(10, 0, 0, 5),
            TransportHeader::udp(4000, dst_port),
            msg.encode(),
        )
    }

    fn open_msg() -> AppMessage {
        AppMessage::Control { action: ControlAction::Open, auth: ControlAuth::None }
    }

    fn close_msg() -> AppMessage {
        AppMessage::Control { action: ControlAction::Close, auth: ControlAuth::None }
    }

    #[test]
    fn open_verbs_block_is_selective() {
        let mut f = BlockFilter::new(DeviceId(0), BlockClass::OpenVerbs);
        assert!(f.process(SimTime::ZERO, pkt(ports::CONTROL, &open_msg())).packet.is_none());
        assert!(f.process(SimTime::ZERO, pkt(ports::CONTROL, &close_msg())).packet.is_some());
        // Unlock is an open-verb too.
        let unlock = AppMessage::Control { action: ControlAction::Unlock, auth: ControlAuth::None };
        assert!(f.process(SimTime::ZERO, pkt(ports::CONTROL, &unlock)).packet.is_none());
        assert_eq!(f.dropped, 2);
    }

    #[test]
    fn on_verbs_and_cloud_blocks() {
        let mut on = BlockFilter::new(DeviceId(0), BlockClass::OnVerbs);
        let turn_on =
            AppMessage::Control { action: ControlAction::TurnOn, auth: ControlAuth::None };
        let cloud_on = AppMessage::CloudCommand { action: ControlAction::TurnOn };
        assert!(on.process(SimTime::ZERO, pkt(ports::CONTROL, &turn_on)).packet.is_none());
        assert!(on.process(SimTime::ZERO, pkt(ports::CLOUD, &cloud_on)).packet.is_none());
        let mut cloud = BlockFilter::new(DeviceId(0), BlockClass::Cloud);
        let out = cloud.process(SimTime::ZERO, pkt(ports::CLOUD, &cloud_on));
        assert!(out.packet.is_none());
        assert_eq!(out.events[0].kind, SecurityEventKind::BackdoorAccessed);
        assert!(cloud.process(SimTime::ZERO, pkt(ports::CONTROL, &turn_on)).packet.is_some());
    }

    #[test]
    fn block_all_blocks_everything() {
        let mut f = BlockFilter::new(DeviceId(0), BlockClass::All);
        assert!(f
            .process(
                SimTime::ZERO,
                pkt(
                    ports::TELEMETRY,
                    &AppMessage::Event { kind: iotdev::proto::EventKind::SmokeAlarm }
                )
            )
            .packet
            .is_none());
    }

    #[test]
    fn whitelist_drops_undeclared_planes() {
        let mut w = ProtocolWhitelist::standard();
        assert!(w
            .process(
                SimTime::ZERO,
                pkt(ports::CLOUD, &AppMessage::CloudCommand { action: ControlAction::TurnOn })
            )
            .packet
            .is_none());
        assert!(w
            .process(
                SimTime::ZERO,
                pkt(ports::DNS, &AppMessage::DnsQuery { name: "x".into(), recursion: true })
            )
            .packet
            .is_none());
        assert!(w.process(SimTime::ZERO, pkt(ports::CONTROL, &close_msg())).packet.is_some());
        assert_eq!(w.dropped, 2);
    }

    #[test]
    fn rate_limiter_enforces_rate() {
        let mut rl = RateLimiter::new(10);
        let mut passed = 0;
        // 100 packets at t=0: only the burst (10) passes.
        for _ in 0..100 {
            if rl.process(SimTime::ZERO, pkt(ports::TELEMETRY, &close_msg())).packet.is_some() {
                passed += 1;
            }
        }
        assert_eq!(passed, 10);
        // After a second, ~10 more tokens.
        let mut passed = 0;
        for _ in 0..100 {
            if rl
                .process(SimTime::from_secs(1), pkt(ports::TELEMETRY, &close_msg()))
                .packet
                .is_some()
            {
                passed += 1;
            }
        }
        assert_eq!(passed, 10);
        assert_eq!(rl.dropped, 180);
    }

    #[test]
    fn mirror_keeps_bounded_copies() {
        let mut m = MirrorTap::new(3);
        for i in 0..5u16 {
            let mut p = pkt(ports::TELEMETRY, &close_msg());
            p.transport = TransportHeader::udp(i, ports::TELEMETRY);
            assert!(m.process(SimTime::ZERO, p).packet.is_some());
        }
        assert_eq!(m.taps.len(), 3);
        assert_eq!(m.seen, 5);
        assert_eq!(m.taps[0].transport.src_port(), 2);
    }

    #[test]
    fn chain_cost_sums() {
        let total = chain_cost(&[costs::PROXY, costs::FILTER, costs::RATE_LIMIT]);
        assert_eq!(total.as_micros(), 55);
    }
}
