//! Resource management for the µmbox substrate.
//!
//! The paper's two deployment models, both expressible here:
//! an enterprise "well-provisioned on-premise cluster with a pool of
//! commodity server machines", and a home "upgraded version of an IoT
//! router (e.g., Google OnHub) with compute capabilities" — i.e. a
//! single small node.

use crate::lifecycle::VmKind;
use iotdev::device::DeviceId;
use serde::Serialize;

/// Placement policy across servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PlacementPolicy {
    /// First server with room.
    FirstFit,
    /// Server with the most free memory.
    LeastLoaded,
}

/// One server (or the IoT router).
#[derive(Debug, Clone, Serialize)]
pub struct Server {
    /// Memory capacity in MiB.
    pub capacity_mib: u32,
    /// Memory in use.
    pub used_mib: u32,
    /// Placements on this server: (device, kind).
    pub placements: Vec<(DeviceId, VmKind)>,
}

impl Server {
    fn free(&self) -> u32 {
        self.capacity_mib.saturating_sub(self.used_mib)
    }
}

/// A placement error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct NoCapacity {
    /// MiB requested.
    pub requested_mib: u32,
    /// Largest free block available.
    pub largest_free_mib: u32,
}

/// The compute substrate µmboxes run on.
#[derive(Debug, Clone, Serialize)]
pub struct Cluster {
    servers: Vec<Server>,
    policy: PlacementPolicy,
    /// Placements rejected for capacity.
    pub rejections: u64,
}

impl Cluster {
    /// An enterprise cluster of `n` servers with `mib` MiB each.
    pub fn enterprise(n: usize, mib: u32, policy: PlacementPolicy) -> Cluster {
        Cluster {
            servers: (0..n)
                .map(|_| Server { capacity_mib: mib, used_mib: 0, placements: Vec::new() })
                .collect(),
            policy,
            rejections: 0,
        }
    }

    /// A home IoT router: one node, 2 GiB.
    pub fn iot_router() -> Cluster {
        Cluster::enterprise(1, 2048, PlacementPolicy::FirstFit)
    }

    /// Place a µmbox for `device`; returns the server index.
    pub fn place(&mut self, device: DeviceId, kind: VmKind) -> Result<usize, NoCapacity> {
        let need = kind.footprint_mib();
        let candidate = match self.policy {
            PlacementPolicy::FirstFit => self.servers.iter().position(|s| s.free() >= need),
            PlacementPolicy::LeastLoaded => {
                let mut best: Option<(usize, u32)> = None;
                for (i, s) in self.servers.iter().enumerate() {
                    if s.free() >= need && best.is_none_or(|(_, f)| s.free() > f) {
                        best = Some((i, s.free()));
                    }
                }
                best.map(|(i, _)| i)
            }
        };
        match candidate {
            Some(i) => {
                self.servers[i].used_mib += need;
                self.servers[i].placements.push((device, kind));
                Ok(i)
            }
            None => {
                self.rejections += 1;
                Err(NoCapacity {
                    requested_mib: need,
                    largest_free_mib: self.servers.iter().map(|s| s.free()).max().unwrap_or(0),
                })
            }
        }
    }

    /// Release a device's placements (all of them).
    pub fn release(&mut self, device: DeviceId) {
        for server in &mut self.servers {
            let mut i = 0;
            while i < server.placements.len() {
                if server.placements[i].0 == device {
                    let (_, kind) = server.placements.remove(i);
                    server.used_mib = server.used_mib.saturating_sub(kind.footprint_mib());
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Overall memory utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let cap: u64 = self.servers.iter().map(|s| s.capacity_mib as u64).sum();
        let used: u64 = self.servers.iter().map(|s| s.used_mib as u64).sum();
        if cap == 0 {
            0.0
        } else {
            used as f64 / cap as f64
        }
    }

    /// How many µmboxes of `kind` this cluster can still host.
    pub fn remaining_slots(&self, kind: VmKind) -> u32 {
        self.servers.iter().map(|s| s.free() / kind.footprint_mib().max(1)).sum()
    }

    /// Total placements.
    pub fn placement_count(&self) -> usize {
        self.servers.iter().map(|s| s.placements.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_hosts_many_unikernels_but_few_vms() {
        let router = Cluster::iot_router();
        assert_eq!(router.remaining_slots(VmKind::Unikernel), 256);
        assert_eq!(router.remaining_slots(VmKind::FullVm), 4);
        assert_eq!(router.remaining_slots(VmKind::Monolithic), 0);
    }

    #[test]
    fn first_fit_fills_in_order() {
        let mut c = Cluster::enterprise(2, 128, PlacementPolicy::FirstFit);
        for i in 0..16 {
            assert_eq!(c.place(DeviceId(i), VmKind::Unikernel).unwrap(), 0);
        }
        assert_eq!(c.place(DeviceId(99), VmKind::Unikernel).unwrap(), 1);
    }

    #[test]
    fn least_loaded_balances() {
        let mut c = Cluster::enterprise(2, 128, PlacementPolicy::LeastLoaded);
        let a = c.place(DeviceId(0), VmKind::Unikernel).unwrap();
        let b = c.place(DeviceId(1), VmKind::Unikernel).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn rejection_when_full() {
        let mut c = Cluster::enterprise(1, 16, PlacementPolicy::FirstFit);
        assert!(c.place(DeviceId(0), VmKind::Unikernel).is_ok());
        assert!(c.place(DeviceId(1), VmKind::Unikernel).is_ok());
        let err = c.place(DeviceId(2), VmKind::Container).unwrap_err();
        assert_eq!(err.requested_mib, 64);
        assert_eq!(c.rejections, 1);
    }

    #[test]
    fn release_frees_capacity() {
        let mut c = Cluster::enterprise(1, 64, PlacementPolicy::FirstFit);
        c.place(DeviceId(0), VmKind::Unikernel).unwrap();
        c.place(DeviceId(0), VmKind::Unikernel).unwrap();
        c.place(DeviceId(1), VmKind::Unikernel).unwrap();
        assert_eq!(c.placement_count(), 3);
        c.release(DeviceId(0));
        assert_eq!(c.placement_count(), 1);
        assert!((c.utilization() - 8.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_tracks_usage() {
        let mut c = Cluster::enterprise(2, 64, PlacementPolicy::FirstFit);
        assert_eq!(c.utilization(), 0.0);
        c.place(DeviceId(0), VmKind::Container).unwrap();
        assert!((c.utilization() - 0.5).abs() < 1e-9);
    }
}
