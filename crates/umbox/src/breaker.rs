//! Per-µmbox circuit breakers.
//!
//! The chaos layer (PR 1) respawns a crashed µmbox after a fixed
//! watchdog delay — which is the right reflex for a one-off fault, but
//! under a crash *storm* it turns the lifecycle manager into a fork
//! bomb: every respawn burns a pooled unikernel slot, boots, and
//! crashes again, while the device's chain flaps between protected and
//! down. The breaker is the standard remedy, made deterministic:
//!
//! ```text
//!            crash ≥ trip_after within window
//!   Closed ──────────────────────────────────► Open
//!     ▲                                          │ cooldown elapses
//!     │ trial window clean                       ▼
//!     └────────────────────────────────────── HalfOpen
//!                 (a crash in HalfOpen re-opens immediately)
//! ```
//!
//! While open, the device's chain serves its [`crate::chain::FailureMode`]
//! fallback (fail-open pass-through or fail-closed drop) and the
//! watchdog respawn is held until the cooldown expires
//! ([`crate::lifecycle::LifecycleManager::hold_respawn`]). Every
//! transition is a pure function of sim-time and the crash schedule, so
//! breaker behavior is pinned by the golden-trace harness like any
//! other enforcement-path event.

use iotdev::device::DeviceId;
use iotnet::time::{SimDuration, SimTime};
use serde::Serialize;
use std::collections::BTreeMap;

/// Breaker tuning knobs (all sim-time; no wall-clock anywhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BreakerConfig {
    /// Master switch; disabled breakers never leave `Closed`.
    pub enabled: bool,
    /// Crashes within [`BreakerConfig::window`] that trip the breaker.
    pub trip_after: u32,
    /// Sliding window over which crashes are counted.
    pub window: SimDuration,
    /// How long the breaker stays open before probing again.
    pub cooldown: SimDuration,
    /// Clean serving time required in half-open before re-closing.
    pub trial: SimDuration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            enabled: true,
            trip_after: 2,
            window: SimDuration::from_secs(30),
            cooldown: SimDuration::from_secs(15),
            trial: SimDuration::from_secs(5),
        }
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BreakerState {
    /// Healthy: crashes are counted but the chain serves normally.
    Closed,
    /// Tripped: the chain serves its failure-mode fallback and respawns
    /// are held until the stored instant.
    Open {
        /// When the cooldown expires and the breaker half-opens.
        until: SimTime,
    },
    /// Probing: one respawned instance serves a trial window; a crash
    /// re-opens, a clean window re-closes.
    HalfOpen {
        /// When the trial window began.
        since: SimTime,
    },
}

/// A state transition worth tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerEvent {
    /// Closed/half-open → open.
    Tripped,
    /// Open → half-open (cooldown expired).
    HalfOpened,
    /// Half-open → closed (clean trial).
    Reclosed,
}

/// One device's breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    /// Current state.
    pub state: BreakerState,
    /// Crash instants still inside the sliding window.
    recent: Vec<SimTime>,
    /// Times this breaker has tripped.
    pub trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker { cfg, state: BreakerState::Closed, recent: Vec::new(), trips: 0 }
    }

    /// Whether the breaker is open at `now` (chain must serve its
    /// fallback).
    pub fn is_open(&self) -> bool {
        matches!(self.state, BreakerState::Open { .. })
    }

    /// The hold deadline while open.
    pub fn open_until(&self) -> Option<SimTime> {
        match self.state {
            BreakerState::Open { until } => Some(until),
            _ => None,
        }
    }

    /// Record a crash at `now`. Returns `Some(Tripped)` exactly when
    /// this crash opens the breaker.
    pub fn on_crash(&mut self, now: SimTime) -> Option<BreakerEvent> {
        if !self.cfg.enabled {
            return None;
        }
        match self.state {
            BreakerState::Open { .. } => None,
            BreakerState::HalfOpen { .. } => {
                // The probe instance crashed: straight back to open.
                self.trip(now);
                Some(BreakerEvent::Tripped)
            }
            BreakerState::Closed => {
                let horizon =
                    SimTime::from_nanos(now.as_nanos().saturating_sub(self.cfg.window.as_nanos()));
                self.recent.retain(|&t| t >= horizon);
                self.recent.push(now);
                if self.recent.len() as u32 >= self.cfg.trip_after {
                    self.trip(now);
                    Some(BreakerEvent::Tripped)
                } else {
                    None
                }
            }
        }
    }

    /// Advance the state machine at `now`; `serving` is whether the
    /// device's instance currently serves traffic (half-open trials only
    /// count clean time while an instance is actually up).
    pub fn tick(&mut self, now: SimTime, serving: bool) -> Option<BreakerEvent> {
        if !self.cfg.enabled {
            return None;
        }
        match self.state {
            BreakerState::Open { until } if now >= until => {
                self.state = BreakerState::HalfOpen { since: now };
                Some(BreakerEvent::HalfOpened)
            }
            BreakerState::HalfOpen { since } if serving && now >= since + self.cfg.trial => {
                self.state = BreakerState::Closed;
                self.recent.clear();
                Some(BreakerEvent::Reclosed)
            }
            _ => None,
        }
    }

    fn trip(&mut self, now: SimTime) {
        self.state = BreakerState::Open { until: now + self.cfg.cooldown };
        self.recent.clear();
        self.trips += 1;
    }
}

/// The per-device breaker bank the world consults. Devices get a
/// breaker lazily on their first crash; a `BTreeMap` keeps every
/// iteration (and therefore every trace emission order) deterministic.
#[derive(Debug)]
pub struct BreakerBank {
    cfg: BreakerConfig,
    breakers: BTreeMap<DeviceId, CircuitBreaker>,
}

impl BreakerBank {
    /// An empty bank.
    pub fn new(cfg: BreakerConfig) -> BreakerBank {
        BreakerBank { cfg, breakers: BTreeMap::new() }
    }

    /// Record a crash for `device` at `now`.
    pub fn on_crash(&mut self, device: DeviceId, now: SimTime) -> Option<BreakerEvent> {
        if !self.cfg.enabled {
            return None;
        }
        self.breakers.entry(device).or_insert_with(|| CircuitBreaker::new(self.cfg)).on_crash(now)
    }

    /// Advance `device`'s breaker (no-op for devices that never
    /// crashed).
    pub fn tick(&mut self, device: DeviceId, now: SimTime, serving: bool) -> Option<BreakerEvent> {
        self.breakers.get_mut(&device).and_then(|b| b.tick(now, serving))
    }

    /// Whether `device`'s breaker is open.
    pub fn is_open(&self, device: DeviceId) -> bool {
        self.breakers.get(&device).is_some_and(|b| b.is_open())
    }

    /// The respawn hold deadline for `device` while its breaker is
    /// open.
    pub fn open_until(&self, device: DeviceId) -> Option<SimTime> {
        self.breakers.get(&device).and_then(|b| b.open_until())
    }

    /// Total trips across all devices.
    pub fn trips(&self) -> u64 {
        self.breakers.values().map(|b| b.trips).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            enabled: true,
            trip_after: 2,
            window: SimDuration::from_secs(30),
            cooldown: SimDuration::from_secs(15),
            trial: SimDuration::from_secs(5),
        }
    }

    #[test]
    fn trips_on_repeated_crashes_within_window() {
        let mut b = CircuitBreaker::new(cfg());
        assert_eq!(b.on_crash(SimTime::from_secs(1)), None);
        assert_eq!(b.on_crash(SimTime::from_secs(2)), Some(BreakerEvent::Tripped));
        assert!(b.is_open());
        assert_eq!(b.open_until(), Some(SimTime::from_secs(17)));
        assert_eq!(b.trips, 1);
        // Further crashes while open neither re-trip nor extend.
        assert_eq!(b.on_crash(SimTime::from_secs(3)), None);
        assert_eq!(b.open_until(), Some(SimTime::from_secs(17)));
    }

    #[test]
    fn crashes_outside_the_window_do_not_trip() {
        let mut b = CircuitBreaker::new(cfg());
        assert_eq!(b.on_crash(SimTime::from_secs(1)), None);
        assert_eq!(b.on_crash(SimTime::from_secs(40)), None);
        assert_eq!(b.on_crash(SimTime::from_secs(41)), Some(BreakerEvent::Tripped));
    }

    #[test]
    fn full_cycle_open_halfopen_closed() {
        let mut b = CircuitBreaker::new(cfg());
        b.on_crash(SimTime::from_secs(1));
        b.on_crash(SimTime::from_secs(2));
        assert!(b.is_open());
        // Cooldown not yet over.
        assert_eq!(b.tick(SimTime::from_secs(10), false), None);
        // Cooldown over: half-open.
        assert_eq!(b.tick(SimTime::from_secs(17), false), Some(BreakerEvent::HalfOpened));
        assert!(!b.is_open());
        // Trial time only counts; not serving yet.
        assert_eq!(b.tick(SimTime::from_secs(22), false), None);
        // Serving through the trial: re-close.
        assert_eq!(b.tick(SimTime::from_secs(23), true), Some(BreakerEvent::Reclosed));
        assert_eq!(b.state, BreakerState::Closed);
        // The window reset with the close: one crash does not re-trip.
        assert_eq!(b.on_crash(SimTime::from_secs(24)), None);
    }

    #[test]
    fn crash_during_half_open_reopens() {
        let mut b = CircuitBreaker::new(cfg());
        b.on_crash(SimTime::from_secs(1));
        b.on_crash(SimTime::from_secs(2));
        b.tick(SimTime::from_secs(17), false);
        assert_eq!(b.on_crash(SimTime::from_secs(18)), Some(BreakerEvent::Tripped));
        assert_eq!(b.open_until(), Some(SimTime::from_secs(33)));
        assert_eq!(b.trips, 2);
    }

    #[test]
    fn disabled_breaker_never_leaves_closed() {
        let mut b = CircuitBreaker::new(BreakerConfig { enabled: false, ..cfg() });
        for s in 0..10 {
            assert_eq!(b.on_crash(SimTime::from_secs(s)), None);
        }
        assert_eq!(b.state, BreakerState::Closed);
        assert_eq!(b.trips, 0);
    }

    #[test]
    fn bank_tracks_devices_independently() {
        let mut bank = BreakerBank::new(cfg());
        let (a, b) = (DeviceId(0), DeviceId(1));
        bank.on_crash(a, SimTime::from_secs(1));
        bank.on_crash(b, SimTime::from_secs(1));
        assert_eq!(bank.on_crash(a, SimTime::from_secs(2)), Some(BreakerEvent::Tripped));
        assert!(bank.is_open(a));
        assert!(!bank.is_open(b));
        assert_eq!(bank.open_until(a), Some(SimTime::from_secs(17)));
        assert_eq!(bank.open_until(b), None);
        assert_eq!(bank.trips(), 1);
        // Untouched devices tick as a no-op.
        assert_eq!(bank.tick(DeviceId(9), SimTime::from_secs(5), true), None);
    }
}
