//! The signature IDS µmbox (the "modified Snort" of the paper's
//! prototype) and the DNS guard.
//!
//! The IDS executes crowdsourced [`AttackSignature`]s from the
//! repository against wire packets; rulesets are hot-swappable without
//! dropping traffic (the paper's "frequent reconfiguration without
//! impacting availability" requirement — the E9 experiment measures
//! exactly this).

use crate::element::{costs, Element, ElementOutcome};
use iotdev::device::DeviceId;
use iotdev::events::{SecurityEvent, SecurityEventKind};
use iotdev::proto::{ports, AppMessage};
use iotlearn::signature::{AttackSignature, Prefilter};
use iotnet::packet::Packet;
use iotnet::time::{SimDuration, SimTime};
use std::rc::Rc;

/// The signature IDS element.
#[derive(Debug)]
pub struct SigIds {
    /// Protected device.
    pub device: DeviceId,
    /// Active ruleset, shared (`Rc`) with every other IDS protecting the
    /// same SKU — the controller interns one ruleset per SKU instead of
    /// cloning signature vectors per chain.
    signatures: Rc<[AttackSignature]>,
    /// One compiled [`Prefilter`] per signature (same order), rebuilt on
    /// every ruleset swap. Each is a *necessary* condition for its
    /// matcher, so skipping screened-out signatures cannot change which
    /// signature fires first — counters and events stay byte-identical.
    prefilters: Vec<Prefilter>,
    /// Ruleset generation (bumped on every swap).
    pub generation: u16,
    /// Matches so far.
    pub matches: u64,
    /// Packets inspected.
    pub inspected: u64,
}

fn compile_prefilters(signatures: &[AttackSignature]) -> Vec<Prefilter> {
    signatures.iter().map(|s| s.matcher.prefilter()).collect()
}

impl SigIds {
    /// An IDS with an initial ruleset (a `Vec` or an interned `Rc` slice).
    pub fn new(device: DeviceId, signatures: impl Into<Rc<[AttackSignature]>>) -> SigIds {
        let signatures = signatures.into();
        let prefilters = compile_prefilters(&signatures);
        SigIds { device, signatures, prefilters, generation: 1, matches: 0, inspected: 0 }
    }

    /// Hot-swap the ruleset (no packets dropped; the next packet sees
    /// the new rules).
    pub fn update_signatures(&mut self, signatures: impl Into<Rc<[AttackSignature]>>) {
        self.signatures = signatures.into();
        self.prefilters = compile_prefilters(&self.signatures);
        self.generation += 1;
    }

    /// Active rule count.
    pub fn rule_count(&self) -> usize {
        self.signatures.len()
    }

    fn per_packet_cost(&self) -> SimDuration {
        costs::IDS_BASE + costs::IDS_PER_SIG * self.signatures.len() as u64
    }
}

impl Element for SigIds {
    fn process(&mut self, now: SimTime, packet: Packet) -> ElementOutcome {
        self.inspected += 1;
        let cost = self.per_packet_cost();
        // One packed-header computation serves every signature's screen;
        // only signatures whose prefilter admits pay for a payload decode.
        let headers = packet.packed_headers();
        for (sig, pf) in self.signatures.iter().zip(self.prefilters.iter()) {
            if pf.admits(&headers, &packet.payload) && sig.matcher.matches(&packet) {
                self.matches += 1;
                return ElementOutcome::drop(cost).with_event(
                    SecurityEvent::new(now, self.device, SecurityEventKind::SignatureMatch)
                        .from_remote(packet.ip.src),
                );
            }
        }
        ElementOutcome::pass(packet, cost)
    }

    fn label(&self) -> &'static str {
        "sig-ids"
    }
}

/// The DNS guard: stops the open-resolver reflection vector (Table 1
/// row 6) by dropping recursive queries that did not originate on the
/// LAN, and rate-capping responses the device emits.
#[derive(Debug)]
pub struct DnsGuard {
    /// Protected device.
    pub device: DeviceId,
    /// Queries dropped.
    pub dropped_queries: u64,
}

impl DnsGuard {
    /// A fresh guard.
    pub fn new(device: DeviceId) -> DnsGuard {
        DnsGuard { device, dropped_queries: 0 }
    }
}

impl Element for DnsGuard {
    fn process(&mut self, now: SimTime, packet: Packet) -> ElementOutcome {
        if packet.transport.dst_port() == ports::DNS {
            if let Ok(AppMessage::DnsQuery { recursion: true, .. }) =
                AppMessage::decode(&packet.payload)
            {
                // Reflection queries carry a spoofed (victim) source,
                // which is almost never on this LAN.
                if !packet.ip.src.is_private() {
                    self.dropped_queries += 1;
                    return ElementOutcome::drop(costs::FILTER).with_event(
                        SecurityEvent::new(now, self.device, SecurityEventKind::OpenResolverQuery)
                            .from_remote(packet.ip.src),
                    );
                }
            }
        }
        ElementOutcome::pass(packet, costs::FILTER)
    }

    fn label(&self) -> &'static str {
        "dns-guard"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotdev::registry::Sku;
    use iotlearn::signature::{Matcher, Severity};
    use iotnet::addr::{Ipv4Addr, MacAddr};
    use iotnet::packet::TransportHeader;

    fn pkt(src: Ipv4Addr, dst_port: u16, msg: &AppMessage) -> Packet {
        Packet::new(
            MacAddr::from_index(9),
            MacAddr::from_index(1),
            src,
            Ipv4Addr::new(10, 0, 0, 5),
            TransportHeader::udp(4000, dst_port),
            msg.encode(),
        )
    }

    fn cloud_sig() -> AttackSignature {
        AttackSignature::new(
            Sku::new("belkin", "wemo", "1.1"),
            "cloud-bypass-backdoor",
            Matcher::CloudCommand,
            Severity::High,
        )
    }

    #[test]
    fn ids_drops_matching_traffic() {
        let mut ids = SigIds::new(DeviceId(0), vec![cloud_sig()]);
        let backdoor = pkt(
            Ipv4Addr::new(100, 64, 0, 9),
            ports::CLOUD,
            &AppMessage::CloudCommand { action: iotdev::proto::ControlAction::TurnOff },
        );
        let out = ids.process(SimTime::ZERO, backdoor);
        assert!(out.packet.is_none());
        assert_eq!(ids.matches, 1);
        assert_eq!(out.events[0].kind, SecurityEventKind::SignatureMatch);
    }

    #[test]
    fn ids_passes_clean_traffic() {
        let mut ids = SigIds::new(DeviceId(0), vec![cloud_sig()]);
        let telemetry = pkt(
            Ipv4Addr::new(10, 0, 0, 7),
            ports::TELEMETRY,
            &AppMessage::Telemetry { kind: iotdev::proto::TelemetryKind::Power, value: 5.0 },
        );
        let out = ids.process(SimTime::ZERO, telemetry);
        assert!(out.packet.is_some());
        assert_eq!(ids.matches, 0);
    }

    #[test]
    fn hot_swap_changes_behavior_without_drops() {
        let mut ids = SigIds::new(DeviceId(0), vec![]);
        let backdoor = pkt(
            Ipv4Addr::new(100, 64, 0, 9),
            ports::CLOUD,
            &AppMessage::CloudCommand { action: iotdev::proto::ControlAction::TurnOff },
        );
        assert!(ids.process(SimTime::ZERO, backdoor.clone()).packet.is_some());
        ids.update_signatures(vec![cloud_sig()]);
        assert_eq!(ids.generation, 2);
        assert!(ids.process(SimTime::ZERO, backdoor).packet.is_none());
    }

    #[test]
    fn ids_cost_scales_with_ruleset() {
        let small = SigIds::new(DeviceId(0), vec![cloud_sig()]);
        let big = SigIds::new(DeviceId(0), vec![cloud_sig(); 100]);
        assert!(big.per_packet_cost() > small.per_packet_cost());
    }

    #[test]
    fn dns_guard_blocks_external_recursion_only() {
        let mut guard = DnsGuard::new(DeviceId(0));
        let spoofed = pkt(
            Ipv4Addr::new(203, 0, 113, 50),
            ports::DNS,
            &AppMessage::DnsQuery { name: "amp.example".into(), recursion: true },
        );
        assert!(guard.process(SimTime::ZERO, spoofed).packet.is_none());
        assert_eq!(guard.dropped_queries, 1);
        // LAN query passes (a genuinely local resolver use).
        let local = pkt(
            Ipv4Addr::new(10, 0, 0, 3),
            ports::DNS,
            &AppMessage::DnsQuery { name: "printer.local".into(), recursion: true },
        );
        assert!(guard.process(SimTime::ZERO, local).packet.is_some());
        // Non-DNS traffic untouched.
        let other = pkt(
            Ipv4Addr::new(203, 0, 113, 50),
            ports::TELEMETRY,
            &AppMessage::Telemetry { kind: iotdev::proto::TelemetryKind::Status, value: 1.0 },
        );
        assert!(guard.process(SimTime::ZERO, other).packet.is_some());
    }
}
