//! µmbox lifecycle: instantiation, reconfiguration, teardown.
//!
//! §5.2: "we can create custom micro VMs that can be rapidly
//! booted/rebooted" (the paper cites ClickOS and Jitsu). The lifecycle
//! model carries the latency constants that make the agility experiment
//! (E9) meaningful:
//!
//! | kind                 | instantiation          | source |
//! |----------------------|------------------------|--------|
//! | pooled unikernel     | ~1.5 ms (attach)       | pre-booted pool |
//! | unikernel cold boot  | ~25 ms                 | ClickOS/Jitsu-class |
//! | container            | ~300 ms                | docker-class |
//! | full VM              | ~15 s                  | Ubuntu VM (the paper's own prototype used these) |
//! | monolithic appliance | ~15 min (procurement/provisioning) | traditional enterprise middlebox |
//!
//! Reconfiguration of a running µmbox (ruleset swap, gate retarget) is
//! in-place and non-disruptive; a full VM must instead be rebooted.

use iotdev::device::DeviceId;
use iotnet::stats::DurationHist;
use iotnet::time::{SimDuration, SimTime};
use serde::Serialize;
use std::collections::BTreeMap;

/// How a µmbox is realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum VmKind {
    /// Attach a pre-booted unikernel from the pool.
    UnikernelPooled,
    /// Cold-boot a unikernel.
    Unikernel,
    /// Start a container.
    Container,
    /// Boot a full VM (the paper's own Squid/Snort-in-Ubuntu prototype).
    FullVm,
    /// Provision a traditional monolithic appliance (the baseline the
    /// paper argues against).
    Monolithic,
}

impl VmKind {
    /// Instantiation latency.
    pub fn boot_latency(self) -> SimDuration {
        match self {
            VmKind::UnikernelPooled => SimDuration::from_micros(1_500),
            VmKind::Unikernel => SimDuration::from_millis(25),
            VmKind::Container => SimDuration::from_millis(300),
            VmKind::FullVm => SimDuration::from_secs(15),
            VmKind::Monolithic => SimDuration::from_secs(900),
        }
    }

    /// Reconfiguration latency, and whether reconfiguration interrupts
    /// service (`true` = traffic dropped during the window).
    pub fn reconfigure(self) -> (SimDuration, bool) {
        match self {
            VmKind::UnikernelPooled | VmKind::Unikernel => (SimDuration::from_micros(800), false),
            VmKind::Container => (SimDuration::from_millis(5), false),
            VmKind::FullVm => (SimDuration::from_secs(2), true),
            VmKind::Monolithic => (SimDuration::from_secs(60), true),
        }
    }

    /// Memory footprint in MiB (for the resource model).
    pub fn footprint_mib(self) -> u32 {
        match self {
            VmKind::UnikernelPooled | VmKind::Unikernel => 8,
            VmKind::Container => 64,
            VmKind::FullVm => 512,
            VmKind::Monolithic => 4096,
        }
    }
}

/// Lifecycle state of one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum UmboxState {
    /// Booting; ready at the stored time.
    Booting {
        /// When it becomes ready.
        ready_at: SimTime,
    },
    /// Serving traffic.
    Running,
    /// Reconfiguring; if `disruptive`, traffic drops until `done_at`.
    Reconfiguring {
        /// When reconfiguration completes.
        done_at: SimTime,
        /// Whether traffic is dropped meanwhile.
        disruptive: bool,
    },
    /// Crashed (fault injection); the watchdog begins a respawn at the
    /// stored time. Not serving meanwhile.
    Crashed {
        /// When the watchdog notices the crash and starts the respawn.
        restart_at: SimTime,
    },
    /// Destroyed.
    Dead,
}

/// Handle to a managed instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct UmboxId(pub u32);

/// One managed µmbox instance.
#[derive(Debug, Clone, Serialize)]
pub struct UmboxInstance {
    /// Handle.
    pub id: UmboxId,
    /// The device it protects.
    pub device: DeviceId,
    /// Realization.
    pub kind: VmKind,
    /// Current state.
    pub state: UmboxState,
    /// Boots performed (reboot-based reconfigs increment this).
    pub boots: u32,
    /// In-place reconfigurations performed.
    pub reconfigs: u32,
    /// Crashes suffered (fault injection).
    pub crashes: u32,
}

impl UmboxInstance {
    /// Whether the instance serves traffic at `now`.
    pub fn is_serving(&self, now: SimTime) -> bool {
        match self.state {
            UmboxState::Running => true,
            UmboxState::Booting { ready_at } => now >= ready_at,
            UmboxState::Reconfiguring { done_at, disruptive } => !disruptive || now >= done_at,
            UmboxState::Crashed { .. } => false,
            UmboxState::Dead => false,
        }
    }
}

/// The lifecycle manager: launch, reconfigure, retire; plus a pool of
/// pre-booted unikernels.
#[derive(Debug)]
pub struct LifecycleManager {
    // BTreeMap so watchdog respawns consume pool slots in id order — a
    // HashMap would make simultaneous respawns racy on the pool and break
    // the chaos layer's bit-for-bit reproducibility.
    instances: BTreeMap<UmboxId, UmboxInstance>,
    next_id: u32,
    /// Pre-booted unikernels available for instant attach.
    pub pool_available: u32,
    /// How long the watchdog takes to notice a crashed instance and start
    /// the respawn.
    pub watchdog_delay: SimDuration,
    /// Crashes injected so far.
    pub crashes: u64,
    /// Watchdog respawns performed so far.
    pub respawns: u64,
    /// Instantiation latencies observed.
    pub boot_hist: DurationHist,
    /// Reconfiguration latencies observed.
    pub reconfig_hist: DurationHist,
}

impl LifecycleManager {
    /// A manager with `pool` pre-booted unikernels.
    pub fn new(pool: u32) -> LifecycleManager {
        LifecycleManager {
            instances: BTreeMap::new(),
            next_id: 0,
            pool_available: pool,
            watchdog_delay: SimDuration::from_secs(5),
            crashes: 0,
            respawns: 0,
            boot_hist: DurationHist::new(),
            reconfig_hist: DurationHist::new(),
        }
    }

    /// Launch a µmbox for `device` as `kind` at time `now`. A pooled
    /// request falls back to a cold unikernel boot when the pool is dry.
    /// Returns the handle and the time the instance starts serving.
    pub fn launch(&mut self, device: DeviceId, kind: VmKind, now: SimTime) -> (UmboxId, SimTime) {
        let effective = if kind == VmKind::UnikernelPooled {
            if self.pool_available > 0 {
                self.pool_available -= 1;
                VmKind::UnikernelPooled
            } else {
                VmKind::Unikernel
            }
        } else {
            kind
        };
        let latency = effective.boot_latency();
        self.boot_hist.record(latency);
        let ready_at = now + latency;
        let id = UmboxId(self.next_id);
        self.next_id += 1;
        self.instances.insert(
            id,
            UmboxInstance {
                id,
                device,
                kind: effective,
                state: UmboxState::Booting { ready_at },
                boots: 1,
                reconfigs: 0,
                crashes: 0,
            },
        );
        (id, ready_at)
    }

    /// Crash an instance at `now` (fault injection). The instance stops
    /// serving immediately; the watchdog notices after
    /// [`LifecycleManager::watchdog_delay`] and respawns it from the pool
    /// (see [`LifecycleManager::advance`]). A crashed pooled slot is lost
    /// — it does not return to the pool. No-op on unknown/dead handles.
    pub fn crash(&mut self, id: UmboxId, now: SimTime) {
        if let Some(inst) = self.instances.get_mut(&id) {
            if inst.state == UmboxState::Dead {
                return;
            }
            inst.state = UmboxState::Crashed { restart_at: now + self.watchdog_delay };
            inst.crashes += 1;
            self.crashes += 1;
        }
    }

    /// Push a crashed instance's watchdog restart out to at least
    /// `until`. This is the circuit-breaker hold: while a device's
    /// breaker is open there is no point burning pool slots on respawns
    /// that will crash again, so the watchdog is deferred to the end of
    /// the cooldown. No-op unless the instance is currently crashed or
    /// the deadline already lies past `until`.
    pub fn hold_respawn(&mut self, id: UmboxId, until: SimTime) {
        if let Some(inst) = self.instances.get_mut(&id) {
            if let UmboxState::Crashed { restart_at } = inst.state {
                if until > restart_at {
                    inst.state = UmboxState::Crashed { restart_at: until };
                }
            }
        }
    }

    /// Reconfigure an instance at `now`; returns when the new
    /// configuration is active. Panics on unknown/dead handles (caller
    /// bug).
    pub fn reconfigure(&mut self, id: UmboxId, now: SimTime) -> SimTime {
        let inst = self.instances.get_mut(&id).expect("unknown umbox");
        assert!(inst.state != UmboxState::Dead, "reconfiguring a dead umbox");
        if let UmboxState::Crashed { restart_at } = inst.state {
            // A crashed instance can't apply the reconfig; the new
            // configuration goes live once the watchdog respawn completes.
            return restart_at + inst.kind.boot_latency();
        }
        let (latency, disruptive) = inst.kind.reconfigure();
        self.reconfig_hist.record(latency);
        let done_at = now + latency;
        inst.state = UmboxState::Reconfiguring { done_at, disruptive };
        inst.reconfigs += 1;
        done_at
    }

    /// Mark booting/reconfiguring instances whose deadline passed as
    /// running, and respawn crashed instances whose watchdog fired
    /// (called from the simulation loop).
    ///
    /// Returns the respawned instances as `(device, restart time)` in
    /// instance-id order — deterministic, so the caller can emit respawn
    /// trace events in a stable order.
    pub fn advance(&mut self, now: SimTime) -> Vec<(DeviceId, SimTime)> {
        // Watchdog pass: respawn due crashed instances in id order so the
        // pool is consumed deterministically.
        let due: Vec<(UmboxId, SimTime)> = self
            .instances
            .values()
            .filter_map(|i| match i.state {
                UmboxState::Crashed { restart_at } if now >= restart_at => Some((i.id, restart_at)),
                _ => None,
            })
            .collect();
        let mut respawned = Vec::with_capacity(due.len());
        for (id, restart_at) in due {
            let kind = self.instances[&id].kind;
            let effective = if kind == VmKind::UnikernelPooled {
                if self.pool_available > 0 {
                    self.pool_available -= 1;
                    VmKind::UnikernelPooled
                } else {
                    VmKind::Unikernel
                }
            } else {
                kind
            };
            let latency = effective.boot_latency();
            self.boot_hist.record(latency);
            let inst = self.instances.get_mut(&id).expect("respawn of known instance");
            inst.kind = effective;
            inst.state = UmboxState::Booting { ready_at: restart_at + latency };
            inst.boots += 1;
            self.respawns += 1;
            respawned.push((inst.device, restart_at));
        }
        for inst in self.instances.values_mut() {
            match inst.state {
                UmboxState::Booting { ready_at } if now >= ready_at => {
                    inst.state = UmboxState::Running;
                }
                UmboxState::Reconfiguring { done_at, .. } if now >= done_at => {
                    inst.state = UmboxState::Running;
                }
                _ => {}
            }
        }
        respawned
    }

    /// Retire an instance; pooled/unikernel slots return to the pool.
    pub fn retire(&mut self, id: UmboxId) {
        if let Some(inst) = self.instances.get_mut(&id) {
            if matches!(inst.kind, VmKind::UnikernelPooled) {
                self.pool_available += 1;
            }
            inst.state = UmboxState::Dead;
        }
    }

    /// Look up an instance.
    pub fn get(&self, id: UmboxId) -> Option<&UmboxInstance> {
        self.instances.get(&id)
    }

    /// Instances currently serving at `now`.
    pub fn serving_count(&self, now: SimTime) -> usize {
        self.instances.values().filter(|i| i.is_serving(now)).count()
    }

    /// All live (non-dead) instances.
    pub fn live(&self) -> impl Iterator<Item = &UmboxInstance> {
        self.instances.values().filter(|i| i.state != UmboxState::Dead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_ordering_matches_the_papers_argument() {
        assert!(VmKind::UnikernelPooled.boot_latency() < VmKind::Unikernel.boot_latency());
        assert!(VmKind::Unikernel.boot_latency() < VmKind::Container.boot_latency());
        assert!(VmKind::Container.boot_latency() < VmKind::FullVm.boot_latency());
        assert!(VmKind::FullVm.boot_latency() < VmKind::Monolithic.boot_latency());
        // The headline ratio: pooled unikernel vs appliance is ~6 orders.
        let ratio = VmKind::Monolithic.boot_latency().as_nanos() as f64
            / VmKind::UnikernelPooled.boot_latency().as_nanos() as f64;
        assert!(ratio > 1e5, "ratio {ratio}");
    }

    #[test]
    fn pooled_launch_is_fast_until_pool_dries() {
        let mut mgr = LifecycleManager::new(2);
        let (_, t1) = mgr.launch(DeviceId(0), VmKind::UnikernelPooled, SimTime::ZERO);
        let (_, t2) = mgr.launch(DeviceId(1), VmKind::UnikernelPooled, SimTime::ZERO);
        let (id3, t3) = mgr.launch(DeviceId(2), VmKind::UnikernelPooled, SimTime::ZERO);
        assert_eq!(t1.as_micros(), 1500);
        assert_eq!(t2.as_micros(), 1500);
        assert_eq!(t3.as_millis(), 25); // fell back to a cold boot
        assert_eq!(mgr.get(id3).unwrap().kind, VmKind::Unikernel);
        assert_eq!(mgr.pool_available, 0);
    }

    #[test]
    fn instances_become_running_and_serve() {
        let mut mgr = LifecycleManager::new(1);
        let (id, ready) = mgr.launch(DeviceId(0), VmKind::UnikernelPooled, SimTime::ZERO);
        assert!(!mgr.get(id).unwrap().is_serving(SimTime::ZERO));
        assert!(mgr.get(id).unwrap().is_serving(ready));
        mgr.advance(ready);
        assert_eq!(mgr.get(id).unwrap().state, UmboxState::Running);
        assert_eq!(mgr.serving_count(ready), 1);
    }

    #[test]
    fn nondisruptive_reconfig_keeps_serving() {
        let mut mgr = LifecycleManager::new(1);
        let (id, ready) = mgr.launch(DeviceId(0), VmKind::UnikernelPooled, SimTime::ZERO);
        mgr.advance(ready);
        let done = mgr.reconfigure(id, ready);
        // Unikernel reconfig is non-disruptive: serving throughout.
        assert!(mgr.get(id).unwrap().is_serving(ready + SimDuration::from_micros(1)));
        mgr.advance(done);
        assert_eq!(mgr.get(id).unwrap().reconfigs, 1);
    }

    #[test]
    fn fullvm_reconfig_has_an_outage_window() {
        let mut mgr = LifecycleManager::new(0);
        let (id, ready) = mgr.launch(DeviceId(0), VmKind::FullVm, SimTime::ZERO);
        mgr.advance(ready);
        let done = mgr.reconfigure(id, ready);
        // During the window the full VM drops traffic.
        assert!(!mgr.get(id).unwrap().is_serving(ready + SimDuration::from_millis(1)));
        assert!(mgr.get(id).unwrap().is_serving(done));
    }

    #[test]
    fn retire_returns_pooled_slots() {
        let mut mgr = LifecycleManager::new(1);
        let (id, ready) = mgr.launch(DeviceId(0), VmKind::UnikernelPooled, SimTime::ZERO);
        assert_eq!(mgr.pool_available, 0);
        mgr.advance(ready);
        mgr.retire(id);
        assert_eq!(mgr.pool_available, 1);
        assert_eq!(mgr.serving_count(ready), 0);
        assert_eq!(mgr.live().count(), 0);
    }

    #[test]
    fn crash_stops_service_and_watchdog_respawns_from_pool() {
        let mut mgr = LifecycleManager::new(2);
        mgr.watchdog_delay = SimDuration::from_secs(5);
        let (id, ready) = mgr.launch(DeviceId(0), VmKind::UnikernelPooled, SimTime::ZERO);
        mgr.advance(ready);
        assert!(mgr.get(id).unwrap().is_serving(ready));

        let crash_at = SimTime::from_secs(10);
        mgr.crash(id, crash_at);
        assert!(!mgr.get(id).unwrap().is_serving(crash_at));
        assert_eq!(mgr.crashes, 1);
        assert_eq!(mgr.get(id).unwrap().crashes, 1);
        // The crashed pooled slot is lost, not returned.
        assert_eq!(mgr.pool_available, 1);

        // Before the watchdog fires nothing happens.
        mgr.advance(crash_at + SimDuration::from_secs(1));
        assert!(!mgr.get(id).unwrap().is_serving(crash_at + SimDuration::from_secs(1)));

        // Watchdog fires: respawn attaches a fresh pooled unikernel and
        // reports the respawned device keyed by the watchdog-fire instant.
        let restart = crash_at + mgr.watchdog_delay;
        assert_eq!(mgr.advance(restart), vec![(DeviceId(0), restart)]);
        let back = restart + VmKind::UnikernelPooled.boot_latency();
        assert!(mgr.get(id).unwrap().is_serving(back));
        assert_eq!(mgr.respawns, 1);
        assert_eq!(mgr.get(id).unwrap().boots, 2);
        assert_eq!(mgr.pool_available, 0);
    }

    #[test]
    fn hold_respawn_defers_the_watchdog() {
        let mut mgr = LifecycleManager::new(2);
        let (id, ready) = mgr.launch(DeviceId(0), VmKind::UnikernelPooled, SimTime::ZERO);
        mgr.advance(ready);
        mgr.crash(id, SimTime::from_secs(10));
        let normal_restart = SimTime::from_secs(10) + mgr.watchdog_delay;
        let hold_until = SimTime::from_secs(40);
        mgr.hold_respawn(id, hold_until);
        // The watchdog instant passes without a respawn.
        assert!(mgr.advance(normal_restart).is_empty());
        // An earlier hold never pulls the deadline back in.
        mgr.hold_respawn(id, SimTime::from_secs(20));
        assert!(mgr.advance(SimTime::from_secs(25)).is_empty());
        assert_eq!(mgr.advance(hold_until), vec![(DeviceId(0), hold_until)]);
        // Holding a running instance is a no-op.
        mgr.hold_respawn(id, SimTime::from_secs(99));
        assert!(matches!(mgr.get(id).unwrap().state, UmboxState::Booting { .. }));
    }

    #[test]
    fn respawn_falls_back_to_cold_boot_when_pool_is_dry() {
        let mut mgr = LifecycleManager::new(1);
        let (id, ready) = mgr.launch(DeviceId(0), VmKind::UnikernelPooled, SimTime::ZERO);
        mgr.advance(ready);
        assert_eq!(mgr.pool_available, 0);
        mgr.crash(id, SimTime::from_secs(1));
        let restart = SimTime::from_secs(1) + mgr.watchdog_delay;
        mgr.advance(restart);
        assert_eq!(mgr.get(id).unwrap().kind, VmKind::Unikernel);
        assert!(mgr.get(id).unwrap().is_serving(restart + VmKind::Unikernel.boot_latency()));
    }

    #[test]
    fn reconfigure_during_crash_defers_to_the_respawn() {
        let mut mgr = LifecycleManager::new(1);
        let (id, ready) = mgr.launch(DeviceId(0), VmKind::UnikernelPooled, SimTime::ZERO);
        mgr.advance(ready);
        mgr.crash(id, SimTime::from_secs(1));
        let done = mgr.reconfigure(id, SimTime::from_secs(2));
        // Still crashed; the new config activates with the respawn.
        assert!(matches!(mgr.get(id).unwrap().state, UmboxState::Crashed { .. }));
        assert!(done >= SimTime::from_secs(1) + mgr.watchdog_delay);
    }

    #[test]
    fn histograms_record() {
        let mut mgr = LifecycleManager::new(0);
        for i in 0..10 {
            mgr.launch(DeviceId(i), VmKind::Unikernel, SimTime::ZERO);
        }
        assert_eq!(mgr.boot_hist.count, 10);
        assert_eq!(mgr.boot_hist.median().as_millis(), 25);
    }
}
