//! The context gate (Figure 5).
//!
//! "Our µmbox's policy is set to allow the 'ON' messages to be sent to
//! Wemo only if the global state identifies a person in the room."
//!
//! The gate reads the controller-maintained [`ViewHandle`] — not the
//! physical environment directly — which is exactly the paper's
//! architecture (and what makes the control plane's consistency window,
//! experiment E8, observable: a stale view means a wrong gate decision).

use crate::element::{costs, Element, ElementOutcome, ViewHandle};
use iotdev::device::DeviceId;
use iotdev::env::EnvVar;
use iotdev::events::{SecurityEvent, SecurityEventKind};
use iotdev::proto::AppMessage;
use iotnet::packet::Packet;
use iotnet::time::SimTime;

/// The Figure 5 context gate.
#[derive(Debug)]
pub struct ContextGate {
    /// The gated device.
    pub device: DeviceId,
    /// The variable the gate checks.
    pub var: EnvVar,
    /// The value required for actuation to pass.
    pub required: &'static str,
    /// The controller's view.
    view: ViewHandle,
    /// Actuations blocked.
    pub blocked: u64,
    /// Actuations allowed.
    pub allowed: u64,
}

impl ContextGate {
    /// A gate requiring `var == required` on `view`.
    pub fn new(
        device: DeviceId,
        var: EnvVar,
        required: &'static str,
        view: ViewHandle,
    ) -> ContextGate {
        ContextGate { device, var, required, view, blocked: 0, allowed: 0 }
    }

    /// Only hazard-increasing verbs are gated (turning things ON, opening,
    /// unlocking). Safe-direction verbs (off/close/lock) always pass, so
    /// the "turn the Wemo off when nobody is home" recipe keeps working
    /// while the Figure 5 "ON only when someone is home" policy holds.
    fn is_gated_actuation(packet: &Packet) -> bool {
        use iotdev::proto::ControlAction::*;
        match AppMessage::decode(&packet.payload) {
            Ok(AppMessage::Control { action, .. }) | Ok(AppMessage::CloudCommand { action }) => {
                matches!(action, TurnOn | Open | Unlock)
            }
            _ => false,
        }
    }
}

impl Element for ContextGate {
    fn process(&mut self, now: SimTime, packet: Packet) -> ElementOutcome {
        if !Self::is_gated_actuation(&packet) {
            return ElementOutcome::pass(packet, costs::GATE);
        }
        if self.view.get(self.var) == Some(self.required) {
            self.allowed += 1;
            ElementOutcome::pass(packet, costs::GATE)
        } else {
            self.blocked += 1;
            ElementOutcome::drop(costs::GATE).with_event(
                SecurityEvent::new(now, self.device, SecurityEventKind::BlockedActuation)
                    .from_remote(packet.ip.src),
            )
        }
    }

    fn label(&self) -> &'static str {
        "context-gate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotdev::proto::{ports, ControlAction, ControlAuth};
    use iotnet::addr::{Ipv4Addr, MacAddr};
    use iotnet::packet::TransportHeader;

    fn control_pkt(action: ControlAction) -> Packet {
        Packet::new(
            MacAddr::from_index(9),
            MacAddr::from_index(1),
            Ipv4Addr::new(100, 64, 0, 9),
            Ipv4Addr::new(10, 0, 0, 5),
            TransportHeader::udp(4000, ports::CONTROL),
            AppMessage::Control { action, auth: ControlAuth::None }.encode(),
        )
    }

    #[test]
    fn fig5_blocks_on_when_nobody_home() {
        let view = ViewHandle::new();
        view.set(EnvVar::Occupancy, "absent");
        let mut gate = ContextGate::new(DeviceId(0), EnvVar::Occupancy, "present", view.clone());
        let out = gate.process(SimTime::ZERO, control_pkt(ControlAction::TurnOn));
        assert!(out.packet.is_none());
        assert_eq!(gate.blocked, 1);
        assert_eq!(out.events[0].kind, SecurityEventKind::BlockedActuation);
        // Somebody comes home: the same message passes.
        view.set(EnvVar::Occupancy, "present");
        let out = gate.process(SimTime::ZERO, control_pkt(ControlAction::TurnOn));
        assert!(out.packet.is_some());
        assert_eq!(gate.allowed, 1);
    }

    #[test]
    fn unknown_view_fails_closed() {
        let gate_view = ViewHandle::new(); // controller never wrote it
        let mut gate = ContextGate::new(DeviceId(0), EnvVar::Occupancy, "present", gate_view);
        let out = gate.process(SimTime::ZERO, control_pkt(ControlAction::TurnOn));
        assert!(out.packet.is_none());
    }

    #[test]
    fn non_actuation_traffic_passes() {
        let view = ViewHandle::new();
        view.set(EnvVar::Occupancy, "absent");
        let mut gate = ContextGate::new(DeviceId(0), EnvVar::Occupancy, "present", view);
        // SetColor is tuning, not actuation.
        let out = gate.process(SimTime::ZERO, control_pkt(ControlAction::SetColor(1)));
        assert!(out.packet.is_some());
        // Telemetry is not gated either.
        let telemetry = Packet::new(
            MacAddr::from_index(9),
            MacAddr::from_index(1),
            Ipv4Addr::new(10, 0, 0, 7),
            Ipv4Addr::new(10, 0, 0, 5),
            TransportHeader::udp(4000, ports::TELEMETRY),
            AppMessage::Telemetry { kind: iotdev::proto::TelemetryKind::Power, value: 1.0 }
                .encode(),
        );
        let out = gate.process(SimTime::ZERO, telemetry);
        assert!(out.packet.is_some());
    }

    #[test]
    fn cloud_backdoor_actuation_is_also_gated() {
        let view = ViewHandle::new();
        view.set(EnvVar::Occupancy, "absent");
        let mut gate = ContextGate::new(DeviceId(0), EnvVar::Occupancy, "present", view);
        let backdoor = Packet::new(
            MacAddr::from_index(9),
            MacAddr::from_index(1),
            Ipv4Addr::new(100, 64, 0, 9),
            Ipv4Addr::new(10, 0, 0, 5),
            TransportHeader::tcp(4000, ports::CLOUD, 0, Default::default()),
            AppMessage::CloudCommand { action: ControlAction::TurnOn }.encode(),
        );
        assert!(gate.process(SimTime::ZERO, backdoor).packet.is_none());
    }
}
