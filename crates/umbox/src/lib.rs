//! `umbox` — the IoTSec data plane (paper §5.2).
//!
//! "Unlike traditional IT deployments with a single firewall/IDS for the
//! enterprise, we envision many micro-middleboxes (µmboxes), each
//! customized for a specific device type, rapidly instantiated and
//! frequently reconfigured."
//!
//! * [`element`] — the Click-inspired processing model: small
//!   [`element::Element`]s composed into per-device chains, each with an
//!   explicit per-packet cost so the data-plane overhead experiment
//!   (E10) measures the modelled system.
//! * [`proxy`], [`ids`], [`filters`], [`gate`] — the µmbox library: the
//!   Figure 4 password proxy, the signature IDS fed by the crowdsourced
//!   repository, rate limiters / protocol whitelists / block filters,
//!   and the Figure 5 context gate.
//! * [`chain`] — posture → chain compilation and the
//!   [`iotnet::InlineProcessor`] adapter that attaches a chain to a
//!   switch steer point.
//! * [`breaker`] — per-µmbox circuit breakers (closed → open →
//!   half-open, deterministic sim-time cooldowns) that route a
//!   crash-looping chain to its failure-mode fallback instead of
//!   hammering the watchdog respawn loop.
//! * [`lifecycle`] — the micro-VM lifecycle (pooled unikernels vs cold
//!   boots vs monolithic appliances) with boot/reconfigure latency
//!   models calibrated to the ClickOS/Jitsu numbers the paper cites
//!   (experiment E9).
//! * [`resource`] — the on-premise cluster / upgraded IoT router
//!   resource model (placement, capacity, utilization).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod chain;
pub mod element;
pub mod filters;
pub mod gate;
pub mod ids;
pub mod lifecycle;
pub mod proxy;
pub mod resource;

pub use breaker::{BreakerBank, BreakerConfig, BreakerEvent, BreakerState, CircuitBreaker};
pub use chain::{build_chain, ChainConfig, FailureMode, UmboxChain};
pub use element::{Element, ElementOutcome, EventSink, ViewHandle};
pub use lifecycle::{LifecycleManager, UmboxInstance, UmboxState, VmKind};
pub use resource::{Cluster, PlacementPolicy};
