//! `iotsec-fleet` — the metro/ISP-scale fleet tier (E20, paper §5.1).
//!
//! "A logically centralized IoTSec controller" only earns the paper's
//! billion-device framing if one controller architecture serves a
//! *population* of homes. This crate runs 10⁴–10⁶ independent home
//! worlds as one fleet:
//!
//! * [`fleet`] — the [`fleet::Fleet`] engine: homes sharded into chunks
//!   across work-stealing worker threads (the E16 deque triple), a
//!   64-shard memo keyed by `(home, intel epoch)` (the E19 pattern) so
//!   quiesced rounds re-serve outcomes without rebuilding worlds, a
//!   hierarchical home → neighborhood → region intel path with batched
//!   directive installs, and a chained FNV digest merged in home order
//!   so `--threads N` is byte-identical to serial. The E26 resident
//!   mode ([`fleet::Fleet::set_resident`]) keeps one persistent world
//!   per worker, rebinding it to each home and delta-installing intel
//!   epochs instead of rebuilding from scratch.
//! * [`scenario`] — the canonical E20 home template: a zero-day camera
//!   only crowdsourced signatures can defend, so one sentinel home's
//!   discovery flips the whole fleet from breached to protected.
//! * [`chaos`] — the E25 fault-tolerance layer: a seeded
//!   [`chaos::FleetChaos`] schedule that drops/duplicates/reorders
//!   flushes, crashes aggregators, partitions neighborhoods and delays
//!   install waves, paired with a [`chaos::RecoveryPolicy`]
//!   (bounded-backoff retries, rejoin reconciliation, degraded-mode
//!   declaration). Inert when absent; deterministic when present.
//! * [`safety`] — [`safety::check_fleet_trace`]: the pure fleet-scale
//!   trace checker (the E23 `check_trace` pattern) verifying epoch
//!   monotonicity, no lost discoveries, bounded install staleness and
//!   post-fault convergence from the trace stream alone.
//!
//! `World` is deliberately single-threaded, so the unit of parallelism
//! is one whole home world, built and run inside whichever worker
//! claims its chunk; everything cross-thread is `Copy` outcomes, shared
//! read-only intel (`Arc<[AttackSignature]>`), and slot writes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod fleet;
pub mod safety;
pub mod scenario;

pub use chaos::{FleetChaos, RecoveryPolicy};
pub use fleet::{
    home_seed, Fleet, FleetConfig, FleetReport, HomeOutcome, HomeWorld, ResidentStats, RoundSummary,
};
pub use safety::{check_fleet_trace, FleetTraceSpec, FleetViolation};
pub use scenario::FleetScenario;
