//! The fleet-tier chaos schedule and recovery policy (E25).
//!
//! E15 proved the single-home enforcement path under adversity; this
//! module aims the same discipline at the aggregation tier. A
//! [`FleetChaos`] is a *schedule*, not a process: every fault decision
//! is a pure function of `(seed, round, neighborhood, salt)` rolled on
//! the serial coordinator, so a chaos-on run is byte-identical across
//! `--threads {1,2,4}` and reruns for free — workers never see the
//! chaos at all. `None` chaos is inert by construction: the fleet takes
//! the exact branch structure it takes today and emits the exact same
//! trace, which is what keeps `BENCH_E20.json` and every existing
//! golden byte-for-byte unchanged.
//!
//! The fault vocabulary matches the ISSUE's threat model for the
//! home → neighborhood → region hierarchy:
//!
//! * **flush-drop** — a neighborhood's upward flush is lost in transit;
//!   countered by idempotent bounded-backoff retries
//!   ([`RecoveryPolicy::retry`], the E15 `DeliveryChannel` pattern
//!   lifted to batches).
//! * **flush-dup** — the flush arrives *and* a duplicate lands one
//!   round later (at-least-once delivery); absorbed harmlessly by the
//!   [`iotctl::aggregate::RegionIntel`] epoch contract.
//! * **flush-reorder** — this round's surviving flushes reach the
//!   region in rotated order; a pure metamorphic fault, since the
//!   region unions into a canonical set.
//! * **agg-crash** — a neighborhood aggregator loses its unflushed
//!   buffer and respawns by replaying the checkpointed
//!   [`iotctl::aggregate::RegionLog`]; the lost reports' source homes
//!   re-publish from their memoized outcomes.
//! * **partition** — a whole neighborhood is cut from the region for
//!   [`FleetChaos::partition_rounds`] rounds (no flushes up, no install
//!   waves down); on rejoin, reconciliation fast-forwards it to the
//!   current epoch in one wave ([`RecoveryPolicy::reconcile`]).
//! * **install-delay** — a due install wave slips one round; delayed
//!   waves land unconditionally the next round, so the slip is bounded.
//!
//! Probabilities are per-mille (`0..=1000`) per neighborhood per round.
//! [`RecoveryPolicy`] exists separately so the seeded *weaknesses* the
//! acceptance criteria demand (retry disabled, reconciliation disabled,
//! degraded declaration disabled) are one-flag mutations the fuzz
//! oracle and repro corpus can name.

/// Bounded-backoff / reconciliation / degraded-mode switches — the
/// recovery half of the fault model, separated so weakened arms are
/// single-flag mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retry dropped flushes with bounded exponential backoff. Off is
    /// the `no-retry` seeded weakness: a dropped flush is lost forever
    /// and `check_fleet_trace` reports `lost-discovery`.
    pub retry: bool,
    /// Fast-forward behind neighborhoods (rejoined partitions, missed
    /// waves) to the current epoch each barrier. Off is the
    /// `no-reconcile` seeded weakness: a rejoined neighborhood only
    /// catches up if fresh intel happens to be absorbed later, and
    /// `check_fleet_trace` reports `unrecovered`.
    pub reconcile: bool,
    /// Rounds a published discovery may wait before every home has
    /// installed its epoch; past this the fleet must either have
    /// converged or be declaring degraded mode every round.
    pub staleness_budget: u32,
    /// Declare `fleet-degraded` when overdue. Off is the
    /// `unbounded-staleness` seeded weakness: the fleet silently blows
    /// the budget and `check_fleet_trace` reports `staleness-budget`.
    pub declare_degraded: bool,
    /// Retry backoff cap in rounds (the bounded half of
    /// bounded-backoff).
    pub max_backoff: u32,
}

impl RecoveryPolicy {
    /// The full recovery stack: retries, reconciliation, degraded
    /// declarations, a 4-round backoff cap and an 8-round staleness
    /// budget.
    pub fn standard() -> RecoveryPolicy {
        RecoveryPolicy {
            retry: true,
            reconcile: true,
            staleness_budget: 8,
            declare_degraded: true,
            max_backoff: 4,
        }
    }

    /// The `no-retry` seeded weakness.
    pub fn no_retry() -> RecoveryPolicy {
        RecoveryPolicy { retry: false, ..RecoveryPolicy::standard() }
    }

    /// The `no-reconcile` seeded weakness.
    pub fn no_reconcile() -> RecoveryPolicy {
        RecoveryPolicy { reconcile: false, ..RecoveryPolicy::standard() }
    }

    /// The `unbounded-staleness` seeded weakness.
    pub fn unbounded_staleness() -> RecoveryPolicy {
        RecoveryPolicy { declare_degraded: false, ..RecoveryPolicy::standard() }
    }

    /// Backoff (in rounds) before retry `attempt` (1-based):
    /// `min(2^(attempt-1), max_backoff)`, at least 1.
    pub fn backoff(&self, attempt: u32) -> u32 {
        1u32.checked_shl(attempt.saturating_sub(1)).unwrap_or(u32::MAX).min(self.max_backoff.max(1))
    }
}

/// A deterministic fleet fault schedule. See the module docs for the
/// fault vocabulary; all probabilities are per-mille per neighborhood
/// per round, rolled on the coordinator only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetChaos {
    /// Chaos seed (independent of the fleet seed, so the same fleet can
    /// face many schedules).
    pub seed: u64,
    /// P(flush dropped) per non-empty flush.
    pub drop_pm: u32,
    /// P(flush duplicated into the next round) per surviving flush.
    pub dup_pm: u32,
    /// P(this round's surviving flushes reach the region rotated) per
    /// round.
    pub reorder_pm: u32,
    /// P(aggregator crash) per neighborhood per round.
    pub crash_pm: u32,
    /// P(partition begins) per connected neighborhood per round.
    pub partition_pm: u32,
    /// Rounds a partition lasts once begun (clamped to ≥ 1).
    pub partition_rounds: u32,
    /// P(due install wave delayed one round) per neighborhood.
    pub delay_pm: u32,
    /// Fault-injection window: faults are only injected in rounds
    /// `0..horizon` (`u32::MAX` = forever). Recovery machinery — retry
    /// pumps, partition expiry, delayed waves — keeps running past the
    /// horizon, so a bounded window is how a run demonstrates (and the
    /// checker judges) post-fault convergence: weather, then calm, then
    /// every home back at the region epoch.
    pub horizon: u32,
    /// The recovery half of the model.
    pub policy: RecoveryPolicy,
}

impl FleetChaos {
    /// A mild default schedule at `seed`: every fault axis enabled at
    /// low intensity, full recovery stack.
    pub fn new(seed: u64) -> FleetChaos {
        FleetChaos {
            seed,
            drop_pm: 150,
            dup_pm: 150,
            reorder_pm: 100,
            crash_pm: 60,
            partition_pm: 60,
            partition_rounds: 2,
            delay_pm: 100,
            horizon: u32::MAX,
            policy: RecoveryPolicy::standard(),
        }
    }

    /// Same schedule, different recovery policy (the weakened arms).
    pub fn with_policy(mut self, policy: RecoveryPolicy) -> FleetChaos {
        self.policy = policy;
        self
    }

    /// Same schedule, faults confined to rounds `0..horizon`.
    pub fn with_horizon(mut self, horizon: u32) -> FleetChaos {
        self.horizon = horizon;
        self
    }

    /// The deterministic per-decision roll: a splitmix64 finalizer over
    /// `(seed, round, lane, salt)`. Pure, so any replay — same seed,
    /// same round structure — rolls identically regardless of thread
    /// count or host.
    fn roll(&self, round: u32, lane: u32, salt: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(round) + 1))
            .wrapping_add(0xD1B5_4A32_D192_ED03u64.wrapping_mul(u64::from(lane) + 1))
            .wrapping_add(salt.wrapping_mul(0x8CB9_2BA7_2F3D_8DD7));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Roll a per-mille probability. Never fires past the horizon.
    fn chance(&self, pm: u32, round: u32, lane: u32, salt: u64) -> bool {
        round < self.horizon
            && pm > 0
            && self.roll(round, lane, salt) % 1000 < u64::from(pm.min(1000))
    }

    /// Does neighborhood `n`'s flush get dropped this `attempt`
    /// (0 = first try, 1.. = retries — each retry faces the weather
    /// independently)?
    pub fn drops_flush(&self, round: u32, n: u32, attempt: u32) -> bool {
        self.chance(self.drop_pm, round, n, 0x1000 + u64::from(attempt))
    }

    /// Does neighborhood `n`'s surviving flush also land a duplicate
    /// next round?
    pub fn dups_flush(&self, round: u32, n: u32) -> bool {
        self.chance(self.dup_pm, round, n, 0x2000)
    }

    /// Rotation amount for this round's surviving flush list (`0` = in
    /// order); `len` is the number of flushes that survived.
    pub fn reorders(&self, round: u32, len: usize) -> usize {
        if len < 2 || !self.chance(self.reorder_pm, round, 0, 0x3000) {
            return 0;
        }
        (self.roll(round, 1, 0x3001) as usize) % len
    }

    /// Does neighborhood `n`'s aggregator crash at this barrier?
    pub fn crashes_agg(&self, round: u32, n: u32) -> bool {
        self.chance(self.crash_pm, round, n, 0x4000)
    }

    /// Does a partition cut neighborhood `n` off starting this barrier?
    pub fn partition_begins(&self, round: u32, n: u32) -> bool {
        self.chance(self.partition_pm, round, n, 0x5000)
    }

    /// Is neighborhood `n`'s due install wave delayed one round?
    pub fn delays_install(&self, round: u32, n: u32) -> bool {
        self.chance(self.delay_pm, round, n, 0x6000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_the_inputs() {
        let c = FleetChaos::new(7);
        for round in 0..20 {
            for n in 0..10 {
                assert_eq!(c.drops_flush(round, n, 0), c.drops_flush(round, n, 0));
                assert_eq!(c.crashes_agg(round, n), c.crashes_agg(round, n));
                assert_eq!(c.partition_begins(round, n), c.partition_begins(round, n));
            }
        }
    }

    #[test]
    fn zero_pm_never_fires_and_full_pm_always_fires() {
        let calm = FleetChaos {
            drop_pm: 0,
            dup_pm: 0,
            reorder_pm: 0,
            crash_pm: 0,
            partition_pm: 0,
            delay_pm: 0,
            ..FleetChaos::new(1)
        };
        let storm = FleetChaos {
            drop_pm: 1000,
            dup_pm: 1000,
            crash_pm: 1000,
            partition_pm: 1000,
            delay_pm: 1000,
            ..FleetChaos::new(1)
        };
        for round in 0..50 {
            for n in 0..8 {
                assert!(!calm.drops_flush(round, n, 0));
                assert!(!calm.crashes_agg(round, n));
                assert!(!calm.dups_flush(round, n));
                assert!(!calm.partition_begins(round, n));
                assert!(!calm.delays_install(round, n));
                assert!(storm.drops_flush(round, n, 0));
                assert!(storm.crashes_agg(round, n));
                assert!(storm.dups_flush(round, n));
                assert!(storm.partition_begins(round, n));
                assert!(storm.delays_install(round, n));
            }
        }
        assert_eq!(calm.reorders(3, 10), 0);
    }

    #[test]
    fn retries_face_independent_weather() {
        // At 50% drop, some (round, n) must drop the first attempt and
        // pass a retry — otherwise retries would be pointless.
        let c = FleetChaos { drop_pm: 500, ..FleetChaos::new(3) };
        let mut recovered = false;
        for round in 0..64 {
            if c.drops_flush(round, 0, 0) && !c.drops_flush(round, 0, 1) {
                recovered = true;
            }
        }
        assert!(recovered);
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        let p = RecoveryPolicy::standard();
        assert_eq!(p.backoff(1), 1);
        assert_eq!(p.backoff(2), 2);
        assert_eq!(p.backoff(3), 4);
        assert_eq!(p.backoff(4), 4, "capped at max_backoff");
        assert_eq!(p.backoff(40), 4, "shift overflow saturates to the cap");
        let zero = RecoveryPolicy { max_backoff: 0, ..p };
        assert_eq!(zero.backoff(1), 1, "cap clamps to at least one round");
    }

    #[test]
    fn weakened_arms_flip_exactly_one_flag() {
        let s = RecoveryPolicy::standard();
        assert_eq!(RecoveryPolicy::no_retry(), RecoveryPolicy { retry: false, ..s });
        assert_eq!(RecoveryPolicy::no_reconcile(), RecoveryPolicy { reconcile: false, ..s });
        assert_eq!(
            RecoveryPolicy::unbounded_staleness(),
            RecoveryPolicy { declare_degraded: false, ..s }
        );
    }

    #[test]
    fn no_fault_fires_at_or_past_the_horizon() {
        let c = FleetChaos {
            drop_pm: 1000,
            dup_pm: 1000,
            reorder_pm: 1000,
            crash_pm: 1000,
            partition_pm: 1000,
            delay_pm: 1000,
            ..FleetChaos::new(3)
        }
        .with_horizon(5);
        assert!(c.drops_flush(4, 0, 0), "inside the window the weather still rages");
        for round in 5..40 {
            for n in 0..8 {
                assert!(!c.drops_flush(round, n, 0));
                assert!(!c.drops_flush(round, n, 3), "retries are calm past the horizon too");
                assert!(!c.dups_flush(round, n));
                assert!(!c.crashes_agg(round, n));
                assert!(!c.partition_begins(round, n));
                assert!(!c.delays_install(round, n));
            }
            assert_eq!(c.reorders(round, 5), 0);
        }
    }

    #[test]
    fn reorder_rotation_is_within_bounds() {
        let c = FleetChaos { reorder_pm: 1000, ..FleetChaos::new(9) };
        for round in 0..32 {
            let r = c.reorders(round, 5);
            assert!(r < 5);
        }
        assert_eq!(c.reorders(0, 1), 0, "singleton lists cannot be reordered");
        assert_eq!(c.reorders(0, 0), 0);
    }
}
