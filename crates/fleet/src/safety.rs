//! Fleet-scale trace checking (E25).
//!
//! [`check_fleet_trace`] is the E23 `check_trace` pattern lifted to the
//! aggregation tier: a **pure** function over the fleet's trace stream
//! — no access to the `Fleet`'s internal state — that verifies the
//! recovery invariants the chaos layer is supposed to uphold. Because
//! it reads only `(round, TraceEvent)` pairs, it judges a live run, a
//! replayed repro artifact and a fuzzer-generated schedule identically,
//! and a weakened [`crate::RecoveryPolicy`] cannot hide: the fleet that
//! silently dropped a discovery simply never emits the absorb/install
//! events the checker demands.
//!
//! Invariants checked (each names the violation it reports):
//!
//! * `epoch-regression` — a home's installed epoch moved backwards or
//!   stalled across two `fleet-install` events. Installs are idempotent
//!   advances; the engine only emits them for homes actually moving.
//! * `absorb-regression` — the region's epoch went backwards across
//!   `fleet-absorb` events. The region log is dense and append-only.
//! * `install-of-unabsorbed-epoch` — a home installed an epoch the
//!   region never announced via `fleet-absorb`. Installs must be
//!   downstream of absorption, never invented.
//! * `lost-discovery` — a `fleet-discovery` whose signature never shows
//!   up in any `fleet-absorb`, judged only once the trace extends
//!   `staleness_budget + grace` rounds past the discovery (a discovery
//!   near the end of a short trace is *pending*, not lost). Degraded
//!   declarations do **not** excuse this one: degraded mode buys time
//!   for slow installs, not for dropping intel on the floor.
//! * `staleness-budget` — a discovery was absorbed at epoch `e` but
//!   some home still sat below `e` when the budget expired, and the
//!   fleet never declared degraded mode for it. The paper's crowdsourced
//!   defense only works if discoveries reach every home promptly *or*
//!   the operator is told they have not.
//! * `unrecovered` — the trace extends `grace` rounds past the last
//!   injected fault, yet the fleet never converged (some home below the
//!   final region epoch at end of trace). Faults are transient; their
//!   effects must be too.
//! * `degraded-unjustified` — the fleet declared degraded mode for a
//!   goal epoch every home had already reached. Crying wolf is a bug
//!   the same as staying silent.
//!
//! Checks that require region-absorb visibility (`lost-discovery`,
//! `staleness-budget`, `unrecovered`, `install-of-unabsorbed-epoch`)
//! are gated on the trace containing at least one chaos-class event
//! (`fleet-absorb`, `fleet-fault`, `fleet-recover` or
//! `fleet-degraded`): the chaos-off barrier deliberately emits none of
//! them (its event stream is byte-identical to pre-E25), so clean
//! traces are judged only on install monotonicity.

use std::collections::{BTreeMap, BTreeSet};
use trace::event::TraceEvent;

/// Shape of the fleet run a trace is checked against.
///
/// The checker cannot know the fleet's configuration from the event
/// stream alone — a home that never installs emits nothing — so the
/// caller states it here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetTraceSpec {
    /// Number of homes in the fleet (ids `0..homes`).
    pub homes: u32,
    /// Number of rounds the fleet ran (trace rounds are `0..rounds`).
    pub rounds: u32,
    /// Maximum rounds a discovery may take to reach every home before
    /// the fleet must either have converged or declared degraded mode.
    /// Mirror of [`crate::RecoveryPolicy::staleness_budget`].
    pub staleness_budget: u32,
    /// Settling rounds granted after the budget (for `lost-discovery`)
    /// and after the last fault (for `unrecovered`) before the checker
    /// judges. Keeps end-of-trace races out of the verdict.
    pub grace: u32,
}

impl Default for FleetTraceSpec {
    fn default() -> FleetTraceSpec {
        FleetTraceSpec { homes: 0, rounds: 0, staleness_budget: 4, grace: 2 }
    }
}

/// One invariant violation found in a fleet trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetViolation {
    /// Round the violation is anchored to.
    pub round: u64,
    /// Subject id — a home, neighborhood, signature or epoch depending
    /// on the invariant (widened to `u64` to hold signature ids).
    pub subject: u64,
    /// Stable invariant name (see module docs).
    pub invariant: &'static str,
}

impl FleetViolation {
    fn new(round: u64, subject: u64, invariant: &'static str) -> FleetViolation {
        FleetViolation { round, subject, invariant }
    }
}

/// Check a fleet trace against the E25 recovery invariants.
///
/// Pure: the verdict is a function of `(events, spec)` alone. Events
/// must be in emission order (rounds non-decreasing), which is how
/// [`trace::tracer::Tracer::events`] returns them. Returns every
/// violation found, in detection order; an empty vector means the
/// trace upholds all invariants the gating allows it to be judged on.
pub fn check_fleet_trace(
    events: &[(u64, TraceEvent)],
    spec: &FleetTraceSpec,
) -> Vec<FleetViolation> {
    let mut violations = Vec::new();

    // Chaos visibility gate: the chaos-off barrier emits none of the
    // E25 event vocabulary (its stream is byte-identical to pre-E25),
    // so region-side invariants can only be judged when the trace
    // carries at least one chaos-class event. Faults count too: a
    // schedule that drops *every* flush absorbs nothing, and that trace
    // must still be judged for lost discoveries.
    let chaos_present = events.iter().any(|(_, e)| {
        matches!(
            e,
            TraceEvent::FleetAbsorb { .. }
                | TraceEvent::FleetFault { .. }
                | TraceEvent::FleetRecover { .. }
                | TraceEvent::FleetDegraded { .. }
        )
    });

    // --- single pass: streaming checks + state reconstruction -------
    // Per-home install history as (round, epoch) pairs, for epoch-at-
    // round queries during the staleness check. Every home starts at
    // epoch 0 before any install.
    let mut installs: Vec<Vec<(u64, u32)>> = vec![Vec::new(); spec.homes as usize];
    let mut absorbed_epochs: BTreeSet<u32> = BTreeSet::new();
    let mut absorb_of_sig: BTreeMap<u64, (u64, u32)> = BTreeMap::new(); // sig -> (round, epoch)
    let mut discoveries: Vec<(u64, u64)> = Vec::new(); // (round, sig)
    let mut degraded: Vec<(u64, u32)> = Vec::new(); // (round, goal epoch)
    let mut last_absorb_epoch: u32 = 0;
    let mut last_fault_round: Option<u64> = None;

    for &(round, ref event) in events {
        match *event {
            TraceEvent::FleetDiscovery { signature, .. } => {
                discoveries.push((round, signature));
            }
            TraceEvent::FleetAbsorb { signature, epoch } => {
                if epoch < last_absorb_epoch {
                    violations.push(FleetViolation::new(
                        round,
                        u64::from(epoch),
                        "absorb-regression",
                    ));
                }
                last_absorb_epoch = last_absorb_epoch.max(epoch);
                absorbed_epochs.insert(epoch);
                absorb_of_sig.entry(signature).or_insert((round, epoch));
            }
            TraceEvent::FleetInstall { home, epoch } => {
                if home >= spec.homes {
                    // Unknown home: count it as a regression-class fault
                    // anchored to the home id rather than indexing out.
                    violations.push(FleetViolation::new(
                        round,
                        u64::from(home),
                        "epoch-regression",
                    ));
                    continue;
                }
                let hist = &mut installs[home as usize];
                let prev = hist.last().map_or(0, |&(_, e)| e);
                if epoch <= prev {
                    violations.push(FleetViolation::new(
                        round,
                        u64::from(home),
                        "epoch-regression",
                    ));
                }
                if chaos_present && !absorbed_epochs.contains(&epoch) {
                    violations.push(FleetViolation::new(
                        round,
                        u64::from(home),
                        "install-of-unabsorbed-epoch",
                    ));
                }
                hist.push((round, epoch));
            }
            TraceEvent::FleetFault { .. } => {
                last_fault_round = Some(last_fault_round.map_or(round, |r| r.max(round)));
            }
            TraceEvent::FleetDegraded { epoch, .. } => {
                degraded.push((round, epoch));
            }
            _ => {}
        }
    }

    // Installed epoch of `home` as of the end of round `at`.
    let epoch_at = |home: u32, at: u64| -> u32 {
        installs[home as usize].iter().take_while(|&&(r, _)| r <= at).last().map_or(0, |&(_, e)| e)
    };
    let final_epoch = |home: u32| -> u32 { installs[home as usize].last().map_or(0, |&(_, e)| e) };

    // --- lost-discovery & staleness-budget ---------------------------
    if chaos_present {
        let budget = u64::from(spec.staleness_budget);
        let grace = u64::from(spec.grace);
        for &(published, sig) in &discoveries {
            match absorb_of_sig.get(&sig) {
                None => {
                    // Judged lost only once the trace extends well past
                    // the deadline — otherwise it is merely pending.
                    if u64::from(spec.rounds) > published + budget + grace {
                        violations.push(FleetViolation::new(published, sig, "lost-discovery"));
                    }
                }
                Some(&(_, goal)) => {
                    let deadline = published + budget;
                    if u64::from(spec.rounds) <= deadline {
                        continue; // trace too short to judge
                    }
                    let converged = (0..spec.homes).all(|h| epoch_at(h, deadline) >= goal);
                    let excused = degraded.iter().any(|&(r, e)| r >= published && e >= goal);
                    if !converged && !excused {
                        violations.push(FleetViolation::new(deadline, sig, "staleness-budget"));
                    }
                }
            }
        }

        // --- unrecovered ---------------------------------------------
        if let Some(last_fault) = last_fault_round {
            if u64::from(spec.rounds) > last_fault + u64::from(spec.grace) {
                let goal = last_absorb_epoch;
                for h in 0..spec.homes {
                    if final_epoch(h) < goal {
                        violations.push(FleetViolation::new(
                            last_fault,
                            u64::from(h),
                            "unrecovered",
                        ));
                    }
                }
            }
        }
    }

    // --- degraded-unjustified ----------------------------------------
    for &(round, goal) in &degraded {
        if spec.homes > 0 && (0..spec.homes).all(|h| epoch_at(h, round) >= goal) {
            violations.push(FleetViolation::new(round, u64::from(goal), "degraded-unjustified"));
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(homes: u32, rounds: u32) -> FleetTraceSpec {
        FleetTraceSpec { homes, rounds, staleness_budget: 3, grace: 2 }
    }

    fn discovery(round: u64, sig: u64) -> (u64, TraceEvent) {
        (round, TraceEvent::FleetDiscovery { home: 0, signature: sig })
    }

    fn absorb(round: u64, sig: u64, epoch: u32) -> (u64, TraceEvent) {
        (round, TraceEvent::FleetAbsorb { signature: sig, epoch })
    }

    fn install(round: u64, home: u32, epoch: u32) -> (u64, TraceEvent) {
        (round, TraceEvent::FleetInstall { home, epoch })
    }

    fn fault(round: u64, kind: &'static str) -> (u64, TraceEvent) {
        (round, TraceEvent::FleetFault { neighborhood: 0, kind })
    }

    fn degraded(round: u64, epoch: u32, waiting: u32) -> (u64, TraceEvent) {
        (round, TraceEvent::FleetDegraded { epoch, waiting })
    }

    /// A clean converged run: discovery → absorb → both homes install.
    fn clean_run() -> Vec<(u64, TraceEvent)> {
        vec![discovery(0, 7), absorb(0, 7, 1), install(0, 0, 1), install(0, 1, 1)]
    }

    #[test]
    fn clean_recovered_run_has_no_violations() {
        assert_eq!(check_fleet_trace(&clean_run(), &spec(2, 10)), vec![]);
    }

    #[test]
    fn chaos_off_trace_without_absorbs_is_judged_on_monotonicity_only() {
        // The clean barrier emits installs but never fleet-absorb.
        let events = vec![discovery(0, 7), install(0, 0, 1), install(0, 1, 1)];
        assert_eq!(check_fleet_trace(&events, &spec(2, 10)), vec![]);
    }

    #[test]
    fn install_epoch_must_strictly_increase_per_home() {
        let mut events = clean_run();
        events.push(install(3, 1, 1)); // repeat, not an advance
        let v = check_fleet_trace(&events, &spec(2, 10));
        assert!(v.iter().any(|v| v.invariant == "epoch-regression" && v.subject == 1));
    }

    #[test]
    fn installs_must_reference_absorbed_epochs() {
        let mut events = clean_run();
        events.push(install(2, 0, 9)); // epoch 9 never absorbed
        let v = check_fleet_trace(&events, &spec(2, 10));
        assert!(v.iter().any(|v| v.invariant == "install-of-unabsorbed-epoch"));
    }

    #[test]
    fn dropped_discovery_is_lost_once_the_budget_and_grace_expire() {
        // Discovery at round 0, never absorbed; budget 3 + grace 2.
        let events = vec![discovery(0, 7), absorb(1, 8, 1), install(1, 0, 1), install(1, 1, 1)];
        let v = check_fleet_trace(&events, &spec(2, 10));
        assert!(v.iter().any(|v| v.invariant == "lost-discovery" && v.subject == 7));
        // ...but a short trace leaves it pending.
        assert!(check_fleet_trace(&events, &spec(2, 4))
            .iter()
            .all(|v| v.invariant != "lost-discovery"));
    }

    #[test]
    fn slow_convergence_without_degraded_declaration_blows_the_budget() {
        // Home 1 never reaches epoch 1 and the fleet stays silent.
        let events = vec![discovery(0, 7), absorb(0, 7, 1), install(0, 0, 1)];
        let v = check_fleet_trace(&events, &spec(2, 10));
        assert!(v.iter().any(|v| v.invariant == "staleness-budget" && v.subject == 7));
    }

    #[test]
    fn degraded_declaration_excuses_the_budget_but_not_the_loss() {
        let events = vec![discovery(0, 7), absorb(0, 7, 1), install(0, 0, 1), degraded(3, 1, 1)];
        let v = check_fleet_trace(&events, &spec(2, 10));
        assert!(v.iter().all(|v| v.invariant != "staleness-budget"));
    }

    #[test]
    fn fleet_must_reconverge_within_grace_of_the_last_fault() {
        let mut events = clean_run();
        events.push(fault(2, "partition"));
        events.push(absorb(3, 8, 2));
        events.push(install(3, 0, 2)); // home 1 never catches up
        let v = check_fleet_trace(&events, &spec(2, 10));
        assert!(v.iter().any(|v| v.invariant == "unrecovered" && v.subject == 1));
        // Within the grace window the same trace is not yet judged.
        assert!(check_fleet_trace(&events, &spec(2, 4))
            .iter()
            .all(|v| v.invariant != "unrecovered"));
    }

    #[test]
    fn degraded_mode_for_an_already_reached_epoch_is_unjustified() {
        let mut events = clean_run();
        events.push(degraded(5, 1, 0)); // every home already at epoch 1
        let v = check_fleet_trace(&events, &spec(2, 10));
        assert!(v.iter().any(|v| v.invariant == "degraded-unjustified"));
    }

    #[test]
    fn absorb_epochs_must_not_regress() {
        let events = vec![absorb(0, 7, 2), absorb(1, 8, 1), install(1, 0, 2), install(1, 1, 2)];
        let v = check_fleet_trace(&events, &spec(2, 2));
        assert!(v.iter().any(|v| v.invariant == "absorb-regression"));
    }
}
