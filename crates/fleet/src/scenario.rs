//! The canonical E20 home scenario: a zero-day only the fleet can fix.
//!
//! Every home deploys [`iotsec::scenario::fleet_home`]: a camera whose
//! Table 1 row 1 default-credential flaw is *undisclosed*, so the local
//! policy compiler has nothing to mitigate and the dictionary-login
//! campaign leaks camera images in every home. Sentinel homes that
//! observe the breach publish the canonical row 1 signature; once the
//! aggregator hierarchy installs it, the standing IDS drops the
//! `admin`/`admin` login fleet-wide and the same campaign dies — the
//! paper's crowdsourcing story (§4.1) at population scale.

use crate::fleet::{HomeOutcome, HomeWorld, ResidentStats};
use iotdev::device::DeviceId;
use iotlearn::AttackSignature;
use iotnet::time::SimDuration;
use iotsec::defense::Defense;
use iotsec::deployment::Deployment;
use iotsec::world::{HomeOverrides, ResidentWorld, World, WorldScrap};
use std::sync::Arc;
use trace::digest::Fnv64;

/// The shared home template plus the sentinel discovery rule.
///
/// The template [`Deployment`] is built once and shared read-only by
/// every worker; per-home construction only varies the seed and the
/// borrowed intel slice (see [`World::new_home`]).
pub struct FleetScenario {
    template: Deployment,
    cam: DeviceId,
    horizon: SimDuration,
    /// Homes with `home % sentinel_stride == 0` publish a signature when
    /// the attack reaches its target (≥ 1 guarantees home 0 is a
    /// sentinel, so one discovery always exists to propagate).
    sentinel_stride: u32,
}

impl FleetScenario {
    /// The standard E20 scenario: IoTSec-defended homes, a 120-sim-second
    /// attack horizon, sentinels every `sentinel_stride` homes.
    pub fn new(sentinel_stride: u32) -> FleetScenario {
        let (template, cam) = iotsec::scenario::fleet_home(Defense::iotsec(), 0);
        FleetScenario {
            template,
            cam,
            horizon: SimDuration::from_secs(120),
            sentinel_stride: sentinel_stride.max(1),
        }
    }

    /// The shared template deployment (for differential tests that run
    /// homes individually through [`World::new_home`]).
    pub fn template(&self) -> &Deployment {
        &self.template
    }

    /// The attack horizon each home runs to.
    pub fn horizon(&self) -> SimDuration {
        self.horizon
    }

    /// Fold a finished home world into its canonical outcome (shared by
    /// the fleet path and the differential tests).
    pub fn outcome_of(&self, home: u32, seed: u64, w: &mut World) -> HomeOutcome {
        let m = w.report();
        let blocks = m.umbox_drops + m.umbox_intercepts;
        let mut h = Fnv64::new();
        h.write_u64(seed);
        h.write_u32(m.compromised.len() as u32);
        h.write_u32(m.privacy_leaked.len() as u32);
        h.write_u64(blocks);
        h.write_u32(m.steps_succeeded() as u32);
        h.write_u64(w.net.events_processed());
        HomeOutcome {
            digest: h.finish(),
            compromised: m.compromised.len() as u32,
            leaked: m.privacy_leaked.len() as u32,
            blocks,
            events: w.net.events_processed(),
            discovered: m.attack_reached_target() && home.is_multiple_of(self.sentinel_stride),
            flagged: 0,
        }
    }
}

impl HomeWorld for FleetScenario {
    type Resident = ResidentWorld;

    fn run_home(&self, home: u32, seed: u64, intel: &[AttackSignature]) -> HomeOutcome {
        let overrides = HomeOverrides { seed, extra_signatures: intel };
        let mut w = World::new_home(&self.template, &overrides);
        w.run_until_attack_done(self.horizon);
        self.outcome_of(home, seed, &mut w)
    }

    fn run_home_recycled(
        &self,
        home: u32,
        seed: u64,
        intel: &[AttackSignature],
        scrap: &mut WorldScrap,
    ) -> HomeOutcome {
        let overrides = HomeOverrides { seed, extra_signatures: intel };
        let mut w = World::new_home_recycled(&self.template, &overrides, scrap);
        w.run_until_attack_done(self.horizon);
        let out = self.outcome_of(home, seed, &mut w);
        w.reclaim_into(scrap);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn run_home_resident(
        &self,
        home: u32,
        seed: u64,
        epoch: u32,
        intel: &Arc<[AttackSignature]>,
        slot: &mut Option<Self::Resident>,
        scrap: &mut WorldScrap,
        stats: &mut ResidentStats,
    ) -> HomeOutcome {
        if !World::supports_resident(&self.template) {
            stats.full_builds += 1;
            return self.run_home_recycled(home, seed, intel, scrap);
        }
        match slot {
            Some(res) => {
                let w = res.get_mut();
                if w.resident_epoch() != Some(epoch) {
                    let d = w.apply_intel_delta(epoch, intel);
                    if d.noop {
                        stats.noop_installs += 1;
                    } else {
                        stats.delta_installs += 1;
                        if d.recompiled {
                            stats.policy_recompiles += 1;
                        }
                        stats.devices_patched += u64::from(d.devices_patched);
                        stats.devices_kept += u64::from(d.devices_kept);
                    }
                }
                w.rebind_home(seed);
                stats.resident_runs += 1;
                w.run_until_attack_done(self.horizon);
                self.outcome_of(home, seed, w)
            }
            None => {
                stats.full_builds += 1;
                let mut w = World::new_home_resident(&self.template, seed, epoch, intel, scrap);
                w.run_until_attack_done(self.horizon);
                let out = self.outcome_of(home, seed, &mut w);
                *slot = Some(ResidentWorld::new(w));
                out
            }
        }
    }

    fn discovery(&self, _home: u32) -> Option<AttackSignature> {
        AttackSignature::for_table1_row(1, &self.template.devices[self.cam.0 as usize].sku)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{home_seed, Fleet, FleetConfig};

    #[test]
    fn undefended_home_leaks_then_signature_blocks() {
        let s = FleetScenario::new(1);
        let seed = home_seed(42, 0);
        let naked = s.run_home(0, seed, &[]);
        assert!(naked.leaked > 0, "zero-day must land without intel: {naked:?}");
        assert!(naked.discovered);
        let sig = s.discovery(0).unwrap();
        let armed = s.run_home(0, seed, &[sig]);
        assert_eq!(armed.leaked, 0, "signature must block the campaign: {armed:?}");
        assert!(armed.blocks > 0, "the IDS must have dropped the login: {armed:?}");
        assert!(!armed.discovered);
    }

    #[test]
    fn one_discovery_protects_the_whole_fleet() {
        let cfg = FleetConfig { homes: 6, neighborhood: 2, chunk: 2, threads: 1, seed: 42 };
        let mut fleet = Fleet::new(FleetScenario::new(6), cfg);
        let r0 = fleet.round();
        assert_eq!(r0.discoveries, 1, "only home 0 is a sentinel");
        assert_eq!(r0.epoch, 1);
        assert_eq!(r0.installs, 6);
        let _r1 = fleet.round();
        let report = fleet.report();
        // Round 0: all homes leak. Round 1: none do.
        assert_eq!(report.leaked, 6);
        assert!(fleet.outcome(3).blocks > 0);
    }

    /// The E26 oracle at fleet scale: a resident fleet (persistent
    /// per-worker worlds, delta intel installs) must be byte-identical
    /// to the rebuild fleet — same chained digest, same report — at
    /// every thread count, and must actually run resident (not fall
    /// back to full builds).
    #[test]
    fn resident_fleet_is_byte_identical_to_rebuild_fleet() {
        let cfg = FleetConfig { homes: 8, neighborhood: 4, chunk: 2, threads: 1, seed: 42 };
        let mut rebuild = Fleet::new(FleetScenario::new(8), cfg);
        let baseline = rebuild.run(3);
        for threads in [1usize, 2, 4] {
            let cfg = FleetConfig { homes: 8, neighborhood: 4, chunk: 2, threads, seed: 42 };
            let mut fleet = Fleet::new(FleetScenario::new(8), cfg);
            fleet.set_resident(true);
            let report = fleet.run(3);
            assert_eq!(report, baseline, "threads={threads}");
            let stats = fleet.resident_stats();
            assert!(stats.resident_runs > 0, "must reuse worlds: {stats:?}");
            assert!(
                stats.full_builds <= threads.max(1) as u64,
                "at most one cold build per worker: {stats:?}"
            );
            assert!(stats.delta_installs > 0, "epoch 1 must delta-install: {stats:?}");
            assert!(stats.policy_recompiles > 0, "camera signature flips membership: {stats:?}");
        }
    }
}
