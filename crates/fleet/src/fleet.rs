//! The fleet engine: sharded execution, hierarchical intel, chunk-order
//! merge.
//!
//! A fleet round has three strictly separated parts:
//!
//! 1. **Execute** (parallel): every home runs — or is served from the
//!    memo — against the intel epoch installed at the last barrier.
//!    Workers touch only `Sync` state (the scenario, the memo shards,
//!    the outcome slots, two atomic counters) and each home is owned by
//!    exactly one chunk, so slot writes never race.
//! 2. **Merge** (serial, coordinator): outcomes are folded into the
//!    chained fleet digest in home order, totals accumulate, and fresh
//!    discoveries flow into the discovering home's neighborhood buffer.
//! 3. **Barrier** (serial, coordinator): neighborhood buffers flush
//!    upward in neighborhood order, the region unions them into its
//!    canonical `BTreeSet`, and — if anything was new — the epoch bumps,
//!    the snapshot is interned once, and batched installs bring every
//!    home to the new epoch before the next round.
//!
//! Determinism: parts 2 and 3 are serial and iterate in home /
//! neighborhood order; part 1 computes a pure function of
//! `(home, epoch)` per home. Thread interleaving can only change *when*
//! a slot is written, never what it holds — so the chained digest is
//! byte-identical at any thread count, which `experiments e20` and
//! `tests/fleet_props.rs` enforce.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use iotctl::aggregate::{Directory, InstallLedger, NeighborhoodBuffer, RegionIntel};
use iotlearn::AttackSignature;
use iotpolicy::intern::Interner;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use trace::digest::Fnv64;
use trace::{TraceEvent, Tracer};

/// Number of memo shards (the E19 pattern: enough to keep lock
/// contention negligible at any worker count, few enough to stay cheap).
const MEMO_SHARDS: usize = 64;

/// The `Copy` outcome of one home for one round. Crossing a thread
/// boundary and sitting in the memo must both be allocation-free, so
/// this is fixed-size by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HomeOutcome {
    /// Per-home outcome digest (a pure function of `(home, intel)`).
    pub digest: u64,
    /// Devices compromised.
    pub compromised: u32,
    /// Devices with data exposure.
    pub leaked: u32,
    /// µmbox drops + intercepts.
    pub blocks: u64,
    /// Simulation events the home's engine processed.
    pub events: u64,
    /// Whether this home observed the attack well enough to publish a
    /// crowdsourced signature (sentinel homes only).
    pub discovered: bool,
    /// Safety-monitor violations flagged for this home (the vet arm).
    pub flagged: u32,
}

/// One home scenario family: how to run home `h` against an intel
/// snapshot, and what a discovering home publishes.
///
/// `run_home` must be a **pure function** of `(home, seed, intel)` —
/// the memo and the serial≡parallel digest both assume it.
pub trait HomeWorld: Sync {
    /// Build and run one home world entirely on the calling thread.
    fn run_home(&self, home: u32, seed: u64, intel: &[AttackSignature]) -> HomeOutcome;

    /// Materialize the signature home `home` publishes on discovery.
    /// Called on the coordinator thread only, once per discovering home.
    fn discovery(&self, home: u32) -> Option<AttackSignature>;
}

/// Fleet shape and execution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of home worlds.
    pub homes: u32,
    /// Homes per neighborhood aggregator.
    pub neighborhood: u32,
    /// Homes per work-stealing chunk (the scheduling granule).
    pub chunk: u32,
    /// Worker threads; `<= 1` is the serial reference path.
    pub threads: usize,
    /// Fleet seed; each home derives its own via [`home_seed`].
    pub seed: u64,
}

impl FleetConfig {
    /// A serial fleet of `homes` homes with the default shape
    /// (neighborhoods of 100, chunks of 64, seed 42).
    pub fn new(homes: u32) -> FleetConfig {
        FleetConfig { homes, neighborhood: 100, chunk: 64, threads: 1, seed: 42 }
    }

    /// Same fleet, different worker count.
    pub fn with_threads(mut self, threads: usize) -> FleetConfig {
        self.threads = threads;
        self
    }
}

/// What one round did (executions vs memo hits, discoveries, installs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundSummary {
    /// Round index (0-based).
    pub round: u32,
    /// Homes that actually built and ran a world this round.
    pub executed: u32,
    /// Homes served from the memo this round.
    pub memo_hits: u32,
    /// Fresh signature discoveries published this round.
    pub discoveries: u32,
    /// Intel epoch installed fleet-wide after this round's barrier.
    pub epoch: u32,
    /// Per-home installs delivered at this round's barrier.
    pub installs: u64,
}

/// Cumulative fleet report over all rounds run so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReport {
    /// Number of homes.
    pub homes: u32,
    /// Rounds completed.
    pub rounds: u32,
    /// The chained fleet digest (home-order fold of every round).
    pub digest: u64,
    /// Final installed intel epoch.
    pub epoch: u32,
    /// Distinct intel items known to the region.
    pub intel_len: usize,
    /// Total signature discoveries published.
    pub discoveries: u64,
    /// Total per-home directive installs delivered.
    pub installs: u64,
    /// Total non-empty install batches.
    pub batches: u64,
    /// Homes served from the memo, cumulative.
    pub memo_hits: u64,
    /// Homes that built and ran a world, cumulative.
    pub memo_misses: u64,
    /// Distinct interned intel snapshots.
    pub interned: usize,
    /// Total simulation events across all home runs.
    pub events: u64,
    /// Total µmbox blocks across all home runs.
    pub blocks: u64,
    /// Total compromised devices across all home runs.
    pub compromised: u64,
    /// Total privacy-leaked devices across all home runs.
    pub leaked: u64,
    /// Total safety violations flagged across all home runs.
    pub flagged: u64,
}

impl FleetReport {
    /// The digest as the fixed-width hex string checked into
    /// `BENCH_E20.json` and compared between legs.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest)
    }
}

/// Derive home `home`'s world seed from the fleet seed (splitmix64
/// finalizer — deterministic, well-spread, collision-free in practice).
pub fn home_seed(fleet_seed: u64, home: u32) -> u64 {
    let mut z = fleet_seed ^ (u64::from(home) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Memo key: exact `(home, epoch)` packed into a `u64` — no hashing on
/// the key itself, so distinct homes can never alias.
fn memo_key(home: u32, epoch: u32) -> u64 {
    (u64::from(home) << 32) | u64::from(epoch)
}

/// Shard selector: multiply-shift over the key's top bits.
fn memo_shard(key: u64) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize
}

/// The fleet engine. See the module docs for the round structure.
pub struct Fleet<S: HomeWorld> {
    scenario: S,
    cfg: FleetConfig,
    dir: Directory,
    /// Precomputed `[start, end)` home chunks, reused every round.
    chunks: Vec<(u32, u32)>,
    /// One outcome slot per home; writing a `Copy` value, never racing
    /// (each home belongs to exactly one chunk).
    slots: Vec<Mutex<Option<HomeOutcome>>>,
    /// The E19-style sharded memo: `(home, epoch) → outcome`.
    memo: Vec<Mutex<HashMap<u64, HomeOutcome>>>,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    /// Per-neighborhood upward discovery buffers.
    buffers: Vec<NeighborhoodBuffer<AttackSignature>>,
    /// The regional canonical intel union.
    region: RegionIntel<AttackSignature>,
    /// Region-level intern table for intel snapshots.
    interner: Interner<AttackSignature>,
    /// Per-home installed epochs + install/batch counters.
    ledger: InstallLedger,
    /// The currently installed interned snapshot (shared by every home).
    intel: Arc<[AttackSignature]>,
    /// Epoch of `intel` (what the memo keys against).
    installed_epoch: u32,
    /// Which homes have already published their discovery (so warm
    /// rounds stay allocation-free instead of re-publishing).
    published: Vec<bool>,
    /// Chained fleet digest across rounds.
    digest: Fnv64,
    tracer: Tracer,
    round: u32,
    discoveries: u64,
    events: u64,
    blocks: u64,
    compromised: u64,
    leaked: u64,
    flagged: u64,
}

impl<S: HomeWorld> Fleet<S> {
    /// Build a fleet (no tracing).
    pub fn new(scenario: S, cfg: FleetConfig) -> Fleet<S> {
        Fleet::with_tracer(scenario, cfg, Tracer::disabled())
    }

    /// Build a fleet that emits [`TraceEvent::FleetDiscovery`] /
    /// [`TraceEvent::FleetBatch`] / [`TraceEvent::FleetInstall`] events
    /// (at `at_ns = round`) into `tracer` — the propagation golden.
    pub fn with_tracer(scenario: S, cfg: FleetConfig, tracer: Tracer) -> Fleet<S> {
        let homes = cfg.homes;
        let chunk = cfg.chunk.max(1);
        let chunks =
            (0..homes.div_ceil(chunk)).map(|c| (c * chunk, ((c + 1) * chunk).min(homes))).collect();
        let dir = Directory::new(homes, cfg.neighborhood);
        Fleet {
            scenario,
            cfg,
            dir,
            chunks,
            slots: (0..homes).map(|_| Mutex::new(None)).collect(),
            memo: (0..MEMO_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            buffers: (0..dir.neighborhoods()).map(|_| NeighborhoodBuffer::new()).collect(),
            region: RegionIntel::new(),
            interner: Interner::new(),
            ledger: InstallLedger::new(homes as usize),
            intel: Vec::new().into(),
            installed_epoch: 0,
            published: vec![false; homes as usize],
            digest: Fnv64::new(),
            tracer,
            round: 0,
            discoveries: 0,
            events: 0,
            blocks: 0,
            compromised: 0,
            leaked: 0,
            flagged: 0,
        }
    }

    /// Run one fleet round: execute every home, merge in home order,
    /// propagate discoveries through the aggregator hierarchy.
    ///
    /// A *quiesced* round (no new intel, every home memoized) performs
    /// zero heap allocations on the serial path — the warm-fleet
    /// section of `tests/alloc_counter.rs` pins this.
    pub fn round(&mut self) -> RoundSummary {
        let round = self.round;
        let epoch = self.installed_epoch;
        let hits_before = self.memo_hits.load(Ordering::Relaxed);
        let misses_before = self.memo_misses.load(Ordering::Relaxed);

        // --- 1. execute -------------------------------------------------
        {
            let scenario = &self.scenario;
            let memo = &self.memo;
            let slots = &self.slots;
            let intel: &[AttackSignature] = &self.intel;
            let (hits, misses) = (&self.memo_hits, &self.memo_misses);
            let seed = self.cfg.seed;
            let exec = |home: u32| {
                let key = memo_key(home, epoch);
                let shard = &memo[memo_shard(key)];
                if let Some(out) = shard.lock().unwrap().get(&key) {
                    hits.fetch_add(1, Ordering::Relaxed);
                    return *out;
                }
                let out = scenario.run_home(home, home_seed(seed, home), intel);
                shard.lock().unwrap().insert(key, out);
                misses.fetch_add(1, Ordering::Relaxed);
                out
            };
            if self.cfg.threads <= 1 {
                for &(start, end) in &self.chunks {
                    for home in start..end {
                        *slots[home as usize].lock().unwrap() = Some(exec(home));
                    }
                }
            } else {
                let injector: Injector<(u32, u32)> = Injector::new();
                for &c in &self.chunks {
                    injector.push(c);
                }
                let workers: Vec<Worker<(u32, u32)>> =
                    (0..self.cfg.threads).map(|_| Worker::new_fifo()).collect();
                let stealers: Vec<Stealer<(u32, u32)>> =
                    workers.iter().map(|w| w.stealer()).collect();
                crossbeam::scope(|s| {
                    for (me, worker) in workers.into_iter().enumerate() {
                        let injector = &injector;
                        let stealers = &stealers;
                        let exec = &exec;
                        s.spawn(move |_| {
                            while let Some((start, end)) =
                                find_task(&worker, injector, stealers, me)
                            {
                                for home in start..end {
                                    *slots[home as usize].lock().unwrap() = Some(exec(home));
                                }
                            }
                        });
                    }
                })
                .unwrap();
            }
        }

        // --- 2. merge (serial, home order) ------------------------------
        self.digest.write_u32(round);
        self.digest.write_u32(epoch);
        let mut discoveries = 0u32;
        for home in 0..self.cfg.homes {
            let out = self.slots[home as usize]
                .lock()
                .unwrap()
                .expect("every home produces exactly one outcome per round");
            self.digest.write_u32(home);
            self.digest.write_u64(out.digest);
            self.digest.write_u64(out.blocks);
            self.digest.write_u32(out.compromised);
            self.digest.write_u32(out.leaked);
            self.digest.write_u32(out.flagged);
            self.events += out.events;
            self.blocks += out.blocks;
            self.compromised += u64::from(out.compromised);
            self.leaked += u64::from(out.leaked);
            self.flagged += u64::from(out.flagged);
            if out.discovered && !self.published[home as usize] {
                if let Some(sig) = self.scenario.discovery(home) {
                    self.published[home as usize] = true;
                    discoveries += 1;
                    self.tracer.emit(
                        u64::from(round),
                        TraceEvent::FleetDiscovery { home, signature: sig.id },
                    );
                    self.buffers[self.dir.neighborhood_of(home) as usize].collect(sig);
                }
            }
        }
        self.discoveries += u64::from(discoveries);

        // --- 3. barrier (serial, neighborhood order) --------------------
        let installs_before = self.ledger.installs();
        let mut upward: Vec<AttackSignature> = Vec::new();
        for n in 0..self.dir.neighborhoods() {
            let batch = self.buffers[n as usize].flush();
            if !batch.is_empty() {
                upward.extend(batch);
            }
        }
        if self.region.absorb(upward) {
            let snapshot = self.region.snapshot();
            self.intel = self.interner.intern(&snapshot);
            let new_epoch = self.region.epoch();
            self.installed_epoch = new_epoch;
            for n in 0..self.dir.neighborhoods() {
                let range = self.dir.homes_of(n);
                let advanced = self.ledger.install_batch(range.clone(), new_epoch);
                if advanced > 0 {
                    self.tracer.emit(
                        u64::from(round),
                        TraceEvent::FleetBatch { neighborhood: n, installs: advanced },
                    );
                    for home in range {
                        self.tracer.emit(
                            u64::from(round),
                            TraceEvent::FleetInstall { home, epoch: new_epoch },
                        );
                    }
                }
            }
        }
        self.digest.write_u32(self.installed_epoch);

        self.round += 1;
        RoundSummary {
            round,
            executed: (self.memo_misses.load(Ordering::Relaxed) - misses_before) as u32,
            memo_hits: (self.memo_hits.load(Ordering::Relaxed) - hits_before) as u32,
            discoveries,
            epoch: self.installed_epoch,
            installs: self.ledger.installs() - installs_before,
        }
    }

    /// Run `rounds` rounds and return the cumulative report.
    pub fn run(&mut self, rounds: u32) -> FleetReport {
        for _ in 0..rounds {
            self.round();
        }
        self.report()
    }

    /// The cumulative report so far.
    pub fn report(&self) -> FleetReport {
        FleetReport {
            homes: self.cfg.homes,
            rounds: self.round,
            digest: self.digest.finish(),
            epoch: self.installed_epoch,
            intel_len: self.region.len(),
            discoveries: self.discoveries,
            installs: self.ledger.installs(),
            batches: self.ledger.batches(),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            memo_misses: self.memo_misses.load(Ordering::Relaxed),
            interned: self.interner.distinct(),
            events: self.events,
            blocks: self.blocks,
            compromised: self.compromised,
            leaked: self.leaked,
            flagged: self.flagged,
        }
    }

    /// The chained fleet digest after the rounds run so far.
    pub fn digest(&self) -> u64 {
        self.digest.finish()
    }

    /// Home `home`'s outcome from the most recent round.
    pub fn outcome(&self, home: u32) -> HomeOutcome {
        self.slots[home as usize].lock().unwrap().expect("no round has run yet")
    }

    /// The currently installed interned intel snapshot. Every home
    /// shares this exact allocation (`Arc::ptr_eq`-comparable).
    pub fn intel(&self) -> &Arc<[AttackSignature]> {
        &self.intel
    }

    /// The intel epoch currently installed fleet-wide.
    pub fn epoch(&self) -> u32 {
        self.installed_epoch
    }

    /// The epoch installed at one home (per the ledger).
    pub fn installed_at(&self, home: u32) -> u32 {
        self.ledger.epoch_of(home)
    }

    /// The home → neighborhood directory.
    pub fn directory(&self) -> Directory {
        self.dir
    }
}

/// Pop the next chunk: local deque, then the injector, then a sibling —
/// the E16 work-stealing discipline (chunks never spawn chunks, so an
/// all-dry scan is a correct termination test).
fn find_task<T>(
    local: &Worker<T>,
    injector: &Injector<T>,
    stealers: &[Stealer<T>],
    me: usize,
) -> Option<T> {
    if let Some(t) = local.pop() {
        return Some(t);
    }
    loop {
        match injector.steal() {
            Steal::Success(t) => return Some(t),
            Steal::Retry => continue,
            Steal::Empty => break,
        }
    }
    for (i, s) in stealers.iter().enumerate() {
        if i == me {
            continue;
        }
        loop {
            match s.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotdev::registry::Sku;
    use iotlearn::signature::{Matcher, Severity};

    /// A synthetic scenario: outcome digest mixes `(seed, intel len)`;
    /// homes divisible by `stride` discover once attacked (attacked =
    /// intel empty).
    struct Synthetic {
        stride: u32,
    }

    impl HomeWorld for Synthetic {
        fn run_home(&self, home: u32, seed: u64, intel: &[AttackSignature]) -> HomeOutcome {
            let mut h = Fnv64::new();
            h.write_u64(seed);
            h.write_u64(intel.len() as u64);
            let attacked = intel.is_empty();
            HomeOutcome {
                digest: h.finish(),
                compromised: u32::from(attacked),
                leaked: 0,
                blocks: u64::from(!attacked),
                events: 10,
                discovered: attacked && home.is_multiple_of(self.stride),
                flagged: 0,
            }
        }

        fn discovery(&self, _home: u32) -> Option<AttackSignature> {
            Some(AttackSignature::new(
                Sku::new("v", "m", "1"),
                "default-credentials",
                Matcher::MatchAll,
                Severity::Medium,
            ))
        }
    }

    #[test]
    fn serial_and_parallel_digests_match() {
        let mut configs = Vec::new();
        for threads in [1usize, 2, 4] {
            let cfg = FleetConfig { homes: 37, neighborhood: 5, chunk: 3, threads, seed: 7 };
            let mut fleet = Fleet::new(Synthetic { stride: 10 }, cfg);
            let report = fleet.run(3);
            configs.push(report);
        }
        assert_eq!(configs[0], configs[1]);
        assert_eq!(configs[0], configs[2]);
    }

    #[test]
    fn discovery_propagates_in_one_round() {
        let cfg = FleetConfig { homes: 12, neighborhood: 4, chunk: 2, threads: 1, seed: 1 };
        let mut fleet = Fleet::new(Synthetic { stride: 12 }, cfg);
        let r0 = fleet.round();
        // Round 0: everyone attacked, home 0 discovers, installs land at
        // the barrier.
        assert_eq!(r0.discoveries, 1);
        assert_eq!(r0.epoch, 1);
        assert_eq!(r0.installs, 12);
        for home in 0..12 {
            assert_eq!(fleet.installed_at(home), 1);
        }
        // Round 1: everyone defended, nothing new.
        let r1 = fleet.round();
        assert_eq!(r1.discoveries, 0);
        assert_eq!(r1.installs, 0);
        assert_eq!(fleet.outcome(0).blocks, 1);
        // Round 2: fully memoized.
        let r2 = fleet.round();
        assert_eq!(r2.executed, 0);
        assert_eq!(r2.memo_hits, 12);
    }

    #[test]
    fn memo_serves_quiesced_rounds() {
        let cfg = FleetConfig { homes: 8, neighborhood: 8, chunk: 8, threads: 1, seed: 3 };
        let mut fleet = Fleet::new(Synthetic { stride: 1 }, cfg);
        fleet.run(4);
        let report = fleet.report();
        // Round 0 (epoch 0) and round 1 (epoch 1) execute; rounds 2-3
        // are pure memo hits.
        assert_eq!(report.memo_misses, 16);
        assert_eq!(report.memo_hits, 16);
        assert_eq!(report.interned, 1);
    }
}
