//! The fleet engine: sharded execution, hierarchical intel, chunk-order
//! merge.
//!
//! A fleet round has three strictly separated parts:
//!
//! 1. **Execute** (parallel): every home runs — or is served from the
//!    memo — against the intel epoch installed at the last barrier.
//!    Workers touch only `Sync` state (the scenario, the memo shards,
//!    the outcome slots, two atomic counters) and each home is owned by
//!    exactly one chunk, so slot writes never race.
//! 2. **Merge** (serial, coordinator): outcomes are folded into the
//!    chained fleet digest in home order, totals accumulate, and fresh
//!    discoveries flow into the discovering home's neighborhood buffer.
//! 3. **Barrier** (serial, coordinator): neighborhood buffers flush
//!    upward in neighborhood order, the region unions them into its
//!    canonical `BTreeSet`, and — if anything was new — the epoch bumps,
//!    the snapshot is interned once, and batched installs bring every
//!    home to the new epoch before the next round.
//!
//! Determinism: parts 2 and 3 are serial and iterate in home /
//! neighborhood order; part 1 computes a pure function of
//! `(home, epoch)` per home. Thread interleaving can only change *when*
//! a slot is written, never what it holds — so the chained digest is
//! byte-identical at any thread count, which `experiments e20` and
//! `tests/fleet_props.rs` enforce.
//!
//! **Chaos (E25).** A fleet built with [`Fleet::with_chaos`] runs the
//! same three parts under a seeded [`crate::chaos::FleetChaos`]
//! schedule: flushes can be dropped/duplicated/reordered, aggregators
//! crash and respawn from the checkpointed region log, neighborhoods
//! partition from the region for whole rounds, and install waves slip.
//! Every fault decision is rolled serially at the barrier as a pure
//! function of `(chaos seed, round, neighborhood)`, so chaos-on runs
//! stay byte-identical at any thread count. Under chaos homes diverge
//! in installed epoch, so execution keys each home's memo lookup and
//! intel snapshot by *its* ledger epoch; chaos-off every home shares
//! one epoch and the path reduces exactly to the paragraph above —
//! same digest bytes, same trace, same `BENCH_E20.json`.

use crate::chaos::FleetChaos;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use iotctl::aggregate::{Directory, InstallLedger, NeighborhoodBuffer, RegionIntel, RegionLog};
use iotlearn::AttackSignature;
use iotpolicy::intern::Interner;
use iotsec::world::WorldScrap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use trace::digest::Fnv64;
use trace::{TraceEvent, Tracer};

/// Number of memo shards (the E19 pattern: enough to keep lock
/// contention negligible at any worker count, few enough to stay cheap).
const MEMO_SHARDS: usize = 64;

/// The `Copy` outcome of one home for one round. Crossing a thread
/// boundary and sitting in the memo must both be allocation-free, so
/// this is fixed-size by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HomeOutcome {
    /// Per-home outcome digest (a pure function of `(home, intel)`).
    pub digest: u64,
    /// Devices compromised.
    pub compromised: u32,
    /// Devices with data exposure.
    pub leaked: u32,
    /// µmbox drops + intercepts.
    pub blocks: u64,
    /// Simulation events the home's engine processed.
    pub events: u64,
    /// Whether this home observed the attack well enough to publish a
    /// crowdsourced signature (sentinel homes only).
    pub discovered: bool,
    /// Safety-monitor violations flagged for this home (the vet arm).
    pub flagged: u32,
}

/// Resident-pool accounting (E26): how home runs were served and what
/// each epoch install cost. Aggregated across workers by
/// [`Fleet::resident_stats`] and exported through `MetricsRegistry`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidentStats {
    /// Homes that built a world from scratch (cold slot, unsupported
    /// template, or post-crash rebuild).
    pub full_builds: u64,
    /// Homes served by rebinding a resident world in place.
    pub resident_runs: u64,
    /// Epoch advances installed as per-device patches (content changed).
    pub delta_installs: u64,
    /// Epoch advances with content-identical intel (epoch bump only).
    pub noop_installs: u64,
    /// Delta installs that flipped a standing-IDS membership and
    /// recompiled the policy.
    pub policy_recompiles: u64,
    /// Devices whose signature ruleset was repatched across all delta
    /// installs.
    pub devices_patched: u64,
    /// Devices kept as-is across all delta installs.
    pub devices_kept: u64,
    /// Resident worlds dropped by chaos worker crashes (each forces one
    /// full rebuild).
    pub dropped: u64,
}

impl ResidentStats {
    fn merge(&mut self, o: &ResidentStats) {
        self.full_builds += o.full_builds;
        self.resident_runs += o.resident_runs;
        self.delta_installs += o.delta_installs;
        self.noop_installs += o.noop_installs;
        self.policy_recompiles += o.policy_recompiles;
        self.devices_patched += o.devices_patched;
        self.devices_kept += o.devices_kept;
        self.dropped += o.dropped;
    }
}

/// One worker's resident pool: its persistent world slot plus the
/// stats it accumulates. Behind a `Mutex` in the fleet; each round's
/// static home→worker assignment guarantees exactly one worker touches
/// a pool at a time.
struct ResidentPool<R> {
    slot: Option<R>,
    stats: ResidentStats,
}

impl<R> Default for ResidentPool<R> {
    fn default() -> ResidentPool<R> {
        ResidentPool { slot: None, stats: ResidentStats::default() }
    }
}

/// One home scenario family: how to run home `h` against an intel
/// snapshot, and what a discovering home publishes.
///
/// `run_home` must be a **pure function** of `(home, seed, intel)` —
/// the memo and the serial≡parallel digest both assume it.
pub trait HomeWorld: Sync {
    /// The per-worker resident state (E26): a persistent constructed
    /// world the scenario rebinds per home instead of rebuilding.
    /// Scenarios without a resident mode use `()`.
    type Resident: Send;

    /// Build and run one home world entirely on the calling thread.
    fn run_home(&self, home: u32, seed: u64, intel: &[AttackSignature]) -> HomeOutcome;

    /// [`HomeWorld::run_home`], given a per-worker [`WorldScrap`] to
    /// recycle the previous home's heap (arenas, rings, scratch
    /// vectors) instead of cold-allocating ~400 KB per construction.
    /// Must return **exactly** what `run_home` returns — recycling is a
    /// capacity optimization, never a semantic one (the long-campaign
    /// section of `tests/alloc_counter.rs` pins both properties). The
    /// default ignores the scrap, so synthetic scenarios need not care.
    fn run_home_recycled(
        &self,
        home: u32,
        seed: u64,
        intel: &[AttackSignature],
        _scrap: &mut WorldScrap,
    ) -> HomeOutcome {
        self.run_home(home, seed, intel)
    }

    /// [`HomeWorld::run_home_recycled`] with a persistent per-worker
    /// resident slot (E26). When the slot holds a world, the scenario
    /// installs the intel epoch as a delta and rebinds in place; when it
    /// is empty (first round, or after a chaos crash dropped it), the
    /// scenario builds fresh and parks the world in the slot. Must
    /// return **exactly** what `run_home` returns — residency is a
    /// construction-amortization, never a semantic one; the rebuild-
    /// equivalence oracle in `tests/fleet_resident_props.rs` pins digest
    /// and trace byte-equality. The default ignores the slot and always
    /// rebuilds, so synthetic scenarios need not care.
    #[allow(clippy::too_many_arguments)]
    fn run_home_resident(
        &self,
        home: u32,
        seed: u64,
        epoch: u32,
        intel: &Arc<[AttackSignature]>,
        _slot: &mut Option<Self::Resident>,
        scrap: &mut WorldScrap,
        stats: &mut ResidentStats,
    ) -> HomeOutcome {
        let _ = epoch;
        stats.full_builds += 1;
        self.run_home_recycled(home, seed, intel, scrap)
    }

    /// Materialize the signature home `home` publishes on discovery.
    /// Called on the coordinator thread only, once per discovering home.
    fn discovery(&self, home: u32) -> Option<AttackSignature>;
}

/// Fleet shape and execution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of home worlds.
    pub homes: u32,
    /// Homes per neighborhood aggregator.
    pub neighborhood: u32,
    /// Homes per work-stealing chunk (the scheduling granule).
    pub chunk: u32,
    /// Worker threads; `<= 1` is the serial reference path.
    pub threads: usize,
    /// Fleet seed; each home derives its own via [`home_seed`].
    pub seed: u64,
}

impl FleetConfig {
    /// A serial fleet of `homes` homes with the default shape
    /// (neighborhoods of 100, chunks of 64, seed 42).
    pub fn new(homes: u32) -> FleetConfig {
        FleetConfig { homes, neighborhood: 100, chunk: 64, threads: 1, seed: 42 }
    }

    /// Same fleet, different worker count.
    pub fn with_threads(mut self, threads: usize) -> FleetConfig {
        self.threads = threads;
        self
    }
}

/// What one round did (executions vs memo hits, discoveries, installs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundSummary {
    /// Round index (0-based).
    pub round: u32,
    /// Homes that actually built and ran a world this round.
    pub executed: u32,
    /// Homes served from the memo this round.
    pub memo_hits: u32,
    /// Fresh signature discoveries published this round.
    pub discoveries: u32,
    /// Intel epoch installed fleet-wide after this round's barrier.
    pub epoch: u32,
    /// Per-home installs delivered at this round's barrier.
    pub installs: u64,
}

/// Cumulative fleet report over all rounds run so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReport {
    /// Number of homes.
    pub homes: u32,
    /// Rounds completed.
    pub rounds: u32,
    /// The chained fleet digest (home-order fold of every round).
    pub digest: u64,
    /// Final installed intel epoch.
    pub epoch: u32,
    /// Distinct intel items known to the region.
    pub intel_len: usize,
    /// Total signature discoveries published.
    pub discoveries: u64,
    /// Total per-home directive installs delivered.
    pub installs: u64,
    /// Total non-empty install batches.
    pub batches: u64,
    /// Homes served from the memo, cumulative.
    pub memo_hits: u64,
    /// Homes that built and ran a world, cumulative.
    pub memo_misses: u64,
    /// Distinct interned intel snapshots.
    pub interned: usize,
    /// Total simulation events across all home runs.
    pub events: u64,
    /// Total µmbox blocks across all home runs.
    pub blocks: u64,
    /// Total compromised devices across all home runs.
    pub compromised: u64,
    /// Total privacy-leaked devices across all home runs.
    pub leaked: u64,
    /// Total safety violations flagged across all home runs.
    pub flagged: u64,
    /// Chaos faults injected (0 chaos-off).
    pub faults: u64,
    /// Chaos recoveries completed (0 chaos-off).
    pub recoveries: u64,
    /// Rounds the fleet declared degraded (0 chaos-off).
    pub degraded_rounds: u64,
    /// Every published discovery absorbed and every home at the region
    /// epoch (always `true` chaos-off).
    pub converged: bool,
}

impl FleetReport {
    /// The digest as the fixed-width hex string checked into
    /// `BENCH_E20.json` and compared between legs.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest)
    }
}

/// Derive home `home`'s world seed from the fleet seed (splitmix64
/// finalizer — deterministic, well-spread, collision-free in practice).
pub fn home_seed(fleet_seed: u64, home: u32) -> u64 {
    let mut z = fleet_seed ^ (u64::from(home) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Memo key: exact `(home, epoch)` packed into a `u64` — no hashing on
/// the key itself, so distinct homes can never alias.
fn memo_key(home: u32, epoch: u32) -> u64 {
    (u64::from(home) << 32) | u64::from(epoch)
}

/// Shard selector: multiply-shift over the key's top bits.
fn memo_shard(key: u64) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize
}

/// A pending flush retry: the dropped batch, how many times it has been
/// attempted, and the round it next pumps (bounded exponential backoff,
/// the E15 `DeliveryChannel` discipline lifted to batches).
#[derive(Debug)]
struct RetryState {
    batch: Vec<AttackSignature>,
    attempt: u32,
    due: u32,
}

/// Per-neighborhood aggregator recovery state (all inert chaos-off).
#[derive(Debug, Default)]
struct AggState {
    /// Barriers with `round < partitioned_until` are missed; 0 when
    /// connected.
    partitioned_until: u32,
    /// A dropped flush awaiting its bounded-backoff retry. Survives
    /// aggregator crashes: a flushed-and-dropped batch sits in the
    /// aggregator's write-ahead checkpoint, unlike the in-memory
    /// collection buffer a crash wipes.
    retry: Option<RetryState>,
    /// A due install wave slipped to the next round (delayed waves land
    /// unconditionally, so the slip is bounded at one round each).
    delayed_wave: bool,
    /// Rejoined from a partition at this barrier (one-shot, drives the
    /// `rejoin-fast-forward` recover event).
    rejoined: bool,
    /// Crashed at this barrier (one-shot: the respawned aggregator
    /// misses this round's install wave while replaying the log).
    down: bool,
    /// Region epoch the aggregator has replayed up to (respawn
    /// bookkeeping).
    known_epoch: u32,
}

/// One published discovery the fleet has not yet converged on: the
/// degraded-mode accounting unit (chaos-on only).
#[derive(Debug, Clone, Copy)]
struct Outstanding {
    /// Repository signature id (joins discoveries to absorbs).
    signature: u64,
    /// Round of first publication (staleness counts from here).
    published: u32,
    /// Region epoch that carries this signature, once absorbed.
    goal: Option<u32>,
}

/// The fleet engine. See the module docs for the round structure.
pub struct Fleet<S: HomeWorld> {
    scenario: S,
    cfg: FleetConfig,
    dir: Directory,
    /// Precomputed `[start, end)` home chunks, reused every round.
    chunks: Vec<(u32, u32)>,
    /// One outcome slot per home; writing a `Copy` value, never racing
    /// (each home belongs to exactly one chunk).
    slots: Vec<Mutex<Option<HomeOutcome>>>,
    /// The E19-style sharded memo: `(home, epoch) → outcome`.
    memo: Vec<Mutex<HashMap<u64, HomeOutcome>>>,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    /// Per-neighborhood upward discovery buffers.
    buffers: Vec<NeighborhoodBuffer<AttackSignature>>,
    /// The regional canonical intel union.
    region: RegionIntel<AttackSignature>,
    /// Region-level intern table for intel snapshots.
    interner: Interner<AttackSignature>,
    /// Per-home installed epochs + install/batch counters.
    ledger: InstallLedger,
    /// The currently installed interned snapshot (shared by every home).
    intel: Arc<[AttackSignature]>,
    /// Every interned snapshot by epoch (`snapshots[e]` is the intel at
    /// epoch `e`; index 0 is the empty pre-discovery snapshot). Epochs
    /// are dense, so this grows by one per absorbing round. Under chaos
    /// homes sit at different epochs and execution serves each from its
    /// own entry; chaos-off only the top entry is ever read. Entries
    /// below the installed-epoch floor are GC'd to `None` (E26) — no
    /// home can ever read them again, and dropping the `Arc` lets the
    /// interner retire the allocation.
    snapshots: Vec<Option<Arc<[AttackSignature]>>>,
    /// Fleet-wide installed-epoch floor (`ledger.min_epoch()`; chaos-off
    /// every home is equal, so it is also every home's epoch).
    installed_epoch: u32,
    /// Which homes have already published their discovery (so warm
    /// rounds stay allocation-free instead of re-publishing). An
    /// aggregator crash clears the flags of the homes whose buffered
    /// reports it lost, and they re-publish from memoized outcomes.
    published: Vec<bool>,
    /// The chaos schedule; `None` (the default) is byte-for-byte the
    /// pre-E25 fleet.
    chaos: Option<FleetChaos>,
    /// The region's checkpointed absorb log (respawn-by-replay source).
    region_log: RegionLog<AttackSignature>,
    /// Per-neighborhood recovery state (inert chaos-off).
    aggs: Vec<AggState>,
    /// Duplicated flushes in flight: `(due round, batch)` — delivered to
    /// the region one round late, exercising at-least-once absorption.
    late_dups: Vec<(u32, Vec<AttackSignature>)>,
    /// Published-but-not-yet-converged discoveries (degraded-mode
    /// accounting; chaos-on only).
    outstanding: Vec<Outstanding>,
    /// Per-worker recycled world heaps (index = worker, slot 0 serial).
    scraps: Vec<Mutex<WorldScrap>>,
    /// Whether rounds run in resident mode (E26): persistent per-worker
    /// worlds, home-affine static chunk assignment, delta installs.
    resident_on: bool,
    /// Per-worker resident pools (index = worker, slot 0 serial).
    residents: Vec<Mutex<ResidentPool<S::Resident>>>,
    /// Out-of-band intel queued by [`Fleet::inject_intel`]; drained into
    /// the next barrier's upward flow (bench/test epoch-churn driver).
    feed: Vec<AttackSignature>,
    /// Chained fleet digest across rounds.
    digest: Fnv64,
    tracer: Tracer,
    round: u32,
    discoveries: u64,
    events: u64,
    blocks: u64,
    compromised: u64,
    leaked: u64,
    flagged: u64,
    faults: u64,
    recoveries: u64,
    degraded_rounds: u64,
}

impl<S: HomeWorld> Fleet<S> {
    /// Build a fleet (no tracing).
    pub fn new(scenario: S, cfg: FleetConfig) -> Fleet<S> {
        Fleet::with_tracer(scenario, cfg, Tracer::disabled())
    }

    /// Build a fleet that emits [`TraceEvent::FleetDiscovery`] /
    /// [`TraceEvent::FleetBatch`] / [`TraceEvent::FleetInstall`] events
    /// (at `at_ns = round`) into `tracer` — the propagation golden.
    pub fn with_tracer(scenario: S, cfg: FleetConfig, tracer: Tracer) -> Fleet<S> {
        Fleet::build(scenario, cfg, None, tracer)
    }

    /// Build a fleet under a seeded [`FleetChaos`] schedule. Faults and
    /// recoveries additionally emit [`TraceEvent::FleetFault`] /
    /// [`TraceEvent::FleetRecover`] / [`TraceEvent::FleetAbsorb`] /
    /// [`TraceEvent::FleetDegraded`] (chaos-on runs only, so chaos-off
    /// goldens never change).
    pub fn with_chaos(
        scenario: S,
        cfg: FleetConfig,
        chaos: FleetChaos,
        tracer: Tracer,
    ) -> Fleet<S> {
        Fleet::build(scenario, cfg, Some(chaos), tracer)
    }

    fn build(scenario: S, cfg: FleetConfig, chaos: Option<FleetChaos>, tracer: Tracer) -> Fleet<S> {
        let homes = cfg.homes;
        let chunk = cfg.chunk.max(1);
        let chunks =
            (0..homes.div_ceil(chunk)).map(|c| (c * chunk, ((c + 1) * chunk).min(homes))).collect();
        let dir = Directory::new(homes, cfg.neighborhood);
        let empty: Arc<[AttackSignature]> = Vec::new().into();
        Fleet {
            scenario,
            cfg,
            dir,
            chunks,
            slots: (0..homes).map(|_| Mutex::new(None)).collect(),
            memo: (0..MEMO_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            buffers: (0..dir.neighborhoods()).map(|_| NeighborhoodBuffer::new()).collect(),
            region: RegionIntel::new(),
            interner: Interner::new(),
            ledger: InstallLedger::new(homes as usize),
            intel: empty.clone(),
            snapshots: vec![Some(empty)],
            installed_epoch: 0,
            published: vec![false; homes as usize],
            chaos,
            region_log: RegionLog::new(),
            aggs: (0..dir.neighborhoods()).map(|_| AggState::default()).collect(),
            late_dups: Vec::new(),
            outstanding: Vec::new(),
            scraps: (0..cfg.threads.max(1)).map(|_| Mutex::new(WorldScrap::default())).collect(),
            resident_on: false,
            residents: (0..cfg.threads.max(1))
                .map(|_| Mutex::new(ResidentPool::default()))
                .collect(),
            feed: Vec::new(),
            digest: Fnv64::new(),
            tracer,
            round: 0,
            discoveries: 0,
            events: 0,
            blocks: 0,
            compromised: 0,
            leaked: 0,
            flagged: 0,
            faults: 0,
            recoveries: 0,
            degraded_rounds: 0,
        }
    }

    /// Run one fleet round: execute every home, merge in home order,
    /// propagate discoveries through the aggregator hierarchy.
    ///
    /// A *quiesced* round (no new intel, every home memoized) performs
    /// zero heap allocations on the serial path — the warm-fleet
    /// section of `tests/alloc_counter.rs` pins this.
    pub fn round(&mut self) -> RoundSummary {
        let round = self.round;
        let epoch = self.installed_epoch;
        let hits_before = self.memo_hits.load(Ordering::Relaxed);
        let misses_before = self.memo_misses.load(Ordering::Relaxed);

        // --- 1. execute -------------------------------------------------
        //
        // Each home runs against the epoch *it* has installed (per the
        // ledger): under chaos homes diverge while waves are lost or
        // delayed; chaos-off every home sits at `installed_epoch` and
        // this is exactly the single-epoch path. Each worker recycles
        // one `WorldScrap` across every home it claims, so long
        // campaigns rebuild worlds out of retained capacity instead of
        // cold allocations.
        {
            let scenario = &self.scenario;
            let memo = &self.memo;
            let slots = &self.slots;
            let snapshots: &[Option<Arc<[AttackSignature]>>] = &self.snapshots;
            let ledger = &self.ledger;
            let scraps = &self.scraps;
            let (hits, misses) = (&self.memo_hits, &self.memo_misses);
            let seed = self.cfg.seed;
            let intel_of = |epoch: u32| -> &Arc<[AttackSignature]> {
                snapshots[epoch as usize]
                    .as_ref()
                    .expect("a home's installed epoch never drops below the GC floor")
            };
            let exec = |home: u32, scrap: &mut WorldScrap| {
                let home_epoch = ledger.epoch_of(home);
                let key = memo_key(home, home_epoch);
                let shard = &memo[memo_shard(key)];
                if let Some(out) = shard.lock().unwrap().get(&key) {
                    hits.fetch_add(1, Ordering::Relaxed);
                    return *out;
                }
                let intel: &[AttackSignature] = intel_of(home_epoch);
                let out = scenario.run_home_recycled(home, home_seed(seed, home), intel, scrap);
                shard.lock().unwrap().insert(key, out);
                misses.fetch_add(1, Ordering::Relaxed);
                out
            };
            let exec_resident =
                |home: u32, scrap: &mut WorldScrap, pool: &mut ResidentPool<S::Resident>| {
                    let home_epoch = ledger.epoch_of(home);
                    let key = memo_key(home, home_epoch);
                    let shard = &memo[memo_shard(key)];
                    if let Some(out) = shard.lock().unwrap().get(&key) {
                        hits.fetch_add(1, Ordering::Relaxed);
                        return *out;
                    }
                    let out = scenario.run_home_resident(
                        home,
                        home_seed(seed, home),
                        home_epoch,
                        intel_of(home_epoch),
                        &mut pool.slot,
                        scrap,
                        &mut pool.stats,
                    );
                    shard.lock().unwrap().insert(key, out);
                    misses.fetch_add(1, Ordering::Relaxed);
                    out
                };
            if self.resident_on {
                // Resident mode: static home-affine assignment — chunk
                // `c` always runs on worker `c % threads`, so each
                // worker's resident world only ever serves "its" homes
                // and no slot crosses a thread mid-round. (Work stealing
                // would migrate state; affinity is the point.)
                let residents = &self.residents;
                let nworkers = self.cfg.threads.max(1);
                if nworkers == 1 {
                    let scrap = &mut *scraps[0].lock().unwrap();
                    let pool = &mut *residents[0].lock().unwrap();
                    for &(start, end) in &self.chunks {
                        for home in start..end {
                            *slots[home as usize].lock().unwrap() =
                                Some(exec_resident(home, scrap, pool));
                        }
                    }
                } else {
                    let chunks = &self.chunks;
                    crossbeam::scope(|s| {
                        for me in 0..nworkers {
                            let exec_resident = &exec_resident;
                            s.spawn(move |_| {
                                let scrap = &mut *scraps[me].lock().unwrap();
                                let pool = &mut *residents[me].lock().unwrap();
                                for (ci, &(start, end)) in chunks.iter().enumerate() {
                                    if ci % nworkers != me {
                                        continue;
                                    }
                                    for home in start..end {
                                        *slots[home as usize].lock().unwrap() =
                                            Some(exec_resident(home, scrap, pool));
                                    }
                                }
                            });
                        }
                    })
                    .unwrap();
                }
            } else if self.cfg.threads <= 1 {
                let scrap = &mut *scraps[0].lock().unwrap();
                for &(start, end) in &self.chunks {
                    for home in start..end {
                        *slots[home as usize].lock().unwrap() = Some(exec(home, scrap));
                    }
                }
            } else {
                let injector: Injector<(u32, u32)> = Injector::new();
                for &c in &self.chunks {
                    injector.push(c);
                }
                let workers: Vec<Worker<(u32, u32)>> =
                    (0..self.cfg.threads).map(|_| Worker::new_fifo()).collect();
                let stealers: Vec<Stealer<(u32, u32)>> =
                    workers.iter().map(|w| w.stealer()).collect();
                crossbeam::scope(|s| {
                    for (me, worker) in workers.into_iter().enumerate() {
                        let injector = &injector;
                        let stealers = &stealers;
                        let exec = &exec;
                        s.spawn(move |_| {
                            let scrap = &mut *scraps[me].lock().unwrap();
                            while let Some((start, end)) =
                                find_task(&worker, injector, stealers, me)
                            {
                                for home in start..end {
                                    *slots[home as usize].lock().unwrap() = Some(exec(home, scrap));
                                }
                            }
                        });
                    }
                })
                .unwrap();
            }
        }

        // --- 2. merge (serial, home order) ------------------------------
        self.digest.write_u32(round);
        self.digest.write_u32(epoch);
        let mut discoveries = 0u32;
        for home in 0..self.cfg.homes {
            let out = self.slots[home as usize]
                .lock()
                .unwrap()
                .expect("every home produces exactly one outcome per round");
            self.digest.write_u32(home);
            self.digest.write_u64(out.digest);
            self.digest.write_u64(out.blocks);
            self.digest.write_u32(out.compromised);
            self.digest.write_u32(out.leaked);
            self.digest.write_u32(out.flagged);
            self.events += out.events;
            self.blocks += out.blocks;
            self.compromised += u64::from(out.compromised);
            self.leaked += u64::from(out.leaked);
            self.flagged += u64::from(out.flagged);
            if out.discovered && !self.published[home as usize] {
                if let Some(sig) = self.scenario.discovery(home) {
                    self.published[home as usize] = true;
                    discoveries += 1;
                    self.tracer.emit(
                        u64::from(round),
                        TraceEvent::FleetDiscovery { home, signature: sig.id },
                    );
                    if self.chaos.is_some()
                        && !self.outstanding.iter().any(|o| o.signature == sig.id)
                    {
                        self.outstanding.push(Outstanding {
                            signature: sig.id,
                            published: round,
                            goal: None,
                        });
                    }
                    self.buffers[self.dir.neighborhood_of(home) as usize].collect_from(home, sig);
                }
            }
        }
        self.discoveries += u64::from(discoveries);

        // --- 3. barrier (serial, neighborhood order) --------------------
        let installs_before = self.ledger.installs();
        if let Some(chaos) = self.chaos {
            self.barrier_chaos(round, &chaos);
        } else {
            self.barrier_clean(round);
        }
        self.digest.write_u32(self.installed_epoch);
        self.gc_intel();

        self.round += 1;
        RoundSummary {
            round,
            executed: (self.memo_misses.load(Ordering::Relaxed) - misses_before) as u32,
            memo_hits: (self.memo_hits.load(Ordering::Relaxed) - hits_before) as u32,
            discoveries,
            epoch: self.installed_epoch,
            installs: self.ledger.installs() - installs_before,
        }
    }

    /// The chaos-off barrier: flush every buffer in neighborhood order,
    /// absorb once, and on a new epoch intern the snapshot and wave
    /// installs to every neighborhood — the exact pre-E25 branch
    /// structure, emitting the exact pre-E25 events.
    fn barrier_clean(&mut self, round: u32) {
        let mut upward: Vec<AttackSignature> = std::mem::take(&mut self.feed);
        for n in 0..self.dir.neighborhoods() {
            let batch = self.buffers[n as usize].flush();
            if !batch.is_empty() {
                upward.extend(batch);
            }
        }
        let novel = self.region.absorb_returning_novel(upward);
        if !novel.is_empty() {
            let new_epoch = self.region.epoch();
            // Checkpoint the per-epoch delta into the region log — the
            // delta stream resident installs and respawn-by-replay both
            // read — on the clean path exactly as the chaos path does.
            self.region_log.checkpoint(new_epoch, novel);
            let snapshot = self.region.snapshot();
            self.intel = self.interner.intern(&snapshot);
            self.snapshots.push(Some(self.intel.clone()));
            self.installed_epoch = new_epoch;
            for n in 0..self.dir.neighborhoods() {
                let range = self.dir.homes_of(n);
                let advanced = self.ledger.install_batch(range.clone(), new_epoch);
                if advanced > 0 {
                    self.tracer.emit(
                        u64::from(round),
                        TraceEvent::FleetBatch { neighborhood: n, installs: advanced },
                    );
                    for home in range {
                        self.tracer.emit(
                            u64::from(round),
                            TraceEvent::FleetInstall { home, epoch: new_epoch },
                        );
                    }
                }
            }
        }
    }

    /// The chaos-on barrier: the same flush → absorb → wave sequence,
    /// but every step faces the schedule's weather and is backed by the
    /// corresponding recovery mechanism. Entirely serial; every fault
    /// decision is a pure function of `(chaos seed, round,
    /// neighborhood)`, so the whole round is thread-count invariant.
    fn barrier_chaos(&mut self, round: u32, chaos: &FleetChaos) {
        let tr = u64::from(round);
        let policy = chaos.policy;

        // Injected out-of-band intel and duplicated flushes from earlier
        // rounds land first — the at-least-once leg the region's epoch
        // contract absorbs as a no-op.
        let mut upward: Vec<AttackSignature> = std::mem::take(&mut self.feed);
        let mut i = 0;
        while i < self.late_dups.len() {
            if self.late_dups[i].0 == round {
                upward.extend(self.late_dups.remove(i).1);
            } else {
                i += 1;
            }
        }

        // Per-neighborhood fault rolls + flushes, neighborhood order.
        let mut surviving: Vec<Vec<AttackSignature>> = Vec::new();
        for n in 0..self.dir.neighborhoods() {
            let ni = n as usize;

            // Partition bookkeeping: rejoin first, then maybe cut anew.
            if self.aggs[ni].partitioned_until != 0 && round >= self.aggs[ni].partitioned_until {
                self.aggs[ni].partitioned_until = 0;
                self.aggs[ni].rejoined = true;
            }
            if self.aggs[ni].partitioned_until == 0 && chaos.partition_begins(round, n) {
                self.aggs[ni].partitioned_until = round + chaos.partition_rounds.max(1);
                self.aggs[ni].rejoined = false;
                self.tracer.emit(tr, TraceEvent::FleetFault { neighborhood: n, kind: "partition" });
                self.faults += 1;
            }
            let connected = self.aggs[ni].partitioned_until == 0;

            // Crash: the in-memory collection buffer is lost and its
            // source homes must re-publish; the respawned aggregator
            // replays the checkpointed region log to relearn the epoch
            // and sits out this round's install wave.
            if chaos.crashes_agg(round, n) {
                self.tracer.emit(tr, TraceEvent::FleetFault { neighborhood: n, kind: "agg-crash" });
                self.faults += 1;
                for home in self.buffers[ni].crash() {
                    self.published[home as usize] = false;
                }
                let replayed_to = self.region_log.epoch();
                self.aggs[ni].known_epoch = replayed_to;
                self.aggs[ni].down = true;
                // In resident mode the crash also takes down the worker
                // co-located with this aggregator: its resident worlds
                // are lost and rebuild from `(home, seed, intel)` — the
                // pure function is the recovery story, so outcomes (and
                // thus digest and trace) are unchanged.
                if self.resident_on {
                    let wi = ni % self.residents.len();
                    let mut pool = self.residents[wi].lock().unwrap();
                    if pool.slot.take().is_some() {
                        pool.stats.dropped += 1;
                    }
                }
                self.tracer
                    .emit(tr, TraceEvent::FleetRecover { neighborhood: n, kind: "agg-respawn" });
                self.recoveries += 1;
            }

            if !connected {
                continue; // no flushes up, no retries pumped, no waves down
            }

            // Pump a due retry: each attempt faces the weather again,
            // backing off exponentially up to the cap.
            if self.aggs[ni].retry.as_ref().is_some_and(|r| r.due <= round) {
                let mut retry = self.aggs[ni].retry.take().expect("checked above");
                if chaos.drops_flush(round, n, retry.attempt) {
                    self.tracer
                        .emit(tr, TraceEvent::FleetFault { neighborhood: n, kind: "flush-drop" });
                    self.faults += 1;
                    retry.attempt += 1;
                    retry.due = round + policy.backoff(retry.attempt);
                    self.aggs[ni].retry = Some(retry);
                } else {
                    self.tracer.emit(
                        tr,
                        TraceEvent::FleetRecover { neighborhood: n, kind: "flush-retry" },
                    );
                    self.recoveries += 1;
                    surviving.push(retry.batch);
                }
            }

            // Fresh flush.
            let batch = self.buffers[ni].flush();
            if batch.is_empty() {
                continue;
            }
            if chaos.drops_flush(round, n, 0) {
                self.tracer
                    .emit(tr, TraceEvent::FleetFault { neighborhood: n, kind: "flush-drop" });
                self.faults += 1;
                if policy.retry {
                    match &mut self.aggs[ni].retry {
                        Some(r) => r.batch.extend(batch),
                        None => {
                            let due = round + policy.backoff(1);
                            self.aggs[ni].retry = Some(RetryState { batch, attempt: 1, due });
                        }
                    }
                }
                // `no-retry` weakness: the batch is gone — the checker's
                // `lost-discovery` invariant exists to catch exactly this.
            } else {
                if chaos.dups_flush(round, n) {
                    self.tracer
                        .emit(tr, TraceEvent::FleetFault { neighborhood: n, kind: "flush-dup" });
                    self.faults += 1;
                    self.late_dups.push((round + 1, batch.clone()));
                }
                surviving.push(batch);
            }
        }

        // Reorder: the surviving flushes reach the region rotated — a
        // metamorphic fault the canonical set-union must not notice.
        let rot = chaos.reorders(round, surviving.len());
        if rot > 0 {
            self.tracer.emit(
                tr,
                TraceEvent::FleetFault { neighborhood: rot as u32, kind: "flush-reorder" },
            );
            self.faults += 1;
            surviving.rotate_left(rot);
        }
        for batch in surviving {
            upward.extend(batch);
        }

        // Absorb once; checkpoint the novelty into the region log and
        // name every newly-known signature in the trace.
        let novel = self.region.absorb_returning_novel(upward);
        let absorbed = !novel.is_empty();
        if absorbed {
            let new_epoch = self.region.epoch();
            for sig in &novel {
                self.tracer
                    .emit(tr, TraceEvent::FleetAbsorb { signature: sig.id, epoch: new_epoch });
            }
            for o in &mut self.outstanding {
                if o.goal.is_none() && novel.iter().any(|s| s.id == o.signature) {
                    o.goal = Some(new_epoch);
                }
            }
            self.region_log.checkpoint(new_epoch, novel);
            let snapshot = self.region.snapshot();
            self.intel = self.interner.intern(&snapshot);
            self.snapshots.push(Some(self.intel.clone()));
        }

        // Install waves, neighborhood order. A wave is due on a fresh
        // absorb, when a delayed wave lands, or — with reconciliation —
        // whenever the neighborhood is behind (rejoined partitions,
        // crashed-out aggregators, previously missed waves).
        let goal = self.region.epoch();
        for n in 0..self.dir.neighborhoods() {
            let ni = n as usize;
            if self.aggs[ni].partitioned_until != 0 {
                continue; // cut off: no waves reach these homes
            }
            let range = self.dir.homes_of(n);
            let behind = range.clone().any(|h| self.ledger.epoch_of(h) < goal);
            let down = self.aggs[ni].down;
            let wave_due =
                self.aggs[ni].delayed_wave || (behind && !down && (absorbed || policy.reconcile));
            if wave_due {
                if !self.aggs[ni].delayed_wave && chaos.delays_install(round, n) {
                    self.tracer.emit(
                        tr,
                        TraceEvent::FleetFault { neighborhood: n, kind: "install-delay" },
                    );
                    self.faults += 1;
                    self.aggs[ni].delayed_wave = true;
                } else {
                    self.aggs[ni].delayed_wave = false;
                    let advancing =
                        range.clone().filter(|&h| self.ledger.epoch_of(h) < goal).count() as u32;
                    if advancing > 0 {
                        if self.aggs[ni].rejoined && policy.reconcile {
                            self.tracer.emit(
                                tr,
                                TraceEvent::FleetRecover {
                                    neighborhood: n,
                                    kind: "rejoin-fast-forward",
                                },
                            );
                            self.recoveries += 1;
                        }
                        self.tracer.emit(
                            tr,
                            TraceEvent::FleetBatch { neighborhood: n, installs: advancing },
                        );
                        for home in range.clone() {
                            if self.ledger.epoch_of(home) < goal {
                                self.tracer
                                    .emit(tr, TraceEvent::FleetInstall { home, epoch: goal });
                            }
                        }
                        let advanced = self.ledger.install_batch(range, goal);
                        debug_assert_eq!(advanced, advancing);
                    }
                }
            }
            self.aggs[ni].rejoined = false;
            self.aggs[ni].down = false;
        }
        self.installed_epoch = self.ledger.min_epoch();

        // Degraded accounting: retire converged discoveries, then
        // declare (once per round) if anything outstanding has blown the
        // staleness budget. `unbounded-staleness` weakness: the fleet
        // stays silent and the checker's `staleness-budget` invariant
        // fires instead.
        let ledger = &self.ledger;
        self.outstanding.retain(|o| match o.goal {
            Some(g) => !ledger.all_at_least(g),
            None => true,
        });
        let mut worst_goal: Option<u32> = None;
        for o in &self.outstanding {
            if round - o.published >= policy.staleness_budget {
                let g = o.goal.unwrap_or(goal + 1);
                worst_goal = Some(worst_goal.map_or(g, |w: u32| w.max(g)));
            }
        }
        if let Some(g) = worst_goal {
            if policy.declare_degraded {
                let waiting = if g <= goal { self.ledger.waiting_below(g) } else { self.cfg.homes };
                self.tracer.emit(tr, TraceEvent::FleetDegraded { epoch: g, waiting });
                self.degraded_rounds += 1;
            }
        }
    }

    /// Epoch GC (E26), run after every barrier: no home can ever again
    /// read a snapshot below the installed-epoch floor (ledger epochs
    /// only advance), so those entries drop their `Arc` and the interner
    /// retires allocations nothing else references. Bounds intel memory
    /// by the live epoch *window* instead of the full epoch history;
    /// idempotent and allocation-free on quiesced rounds.
    fn gc_intel(&mut self) {
        let floor = self.ledger.min_epoch();
        for e in self.snapshots.iter_mut().take(floor as usize) {
            *e = None;
        }
        self.interner.retain_shared();
    }

    /// Switch resident-world execution (E26) on or off for subsequent
    /// rounds. Off (the default) is byte-for-byte the rebuild-per-round
    /// fleet; on, each worker keeps a persistent world, takes intel
    /// epochs as delta installs, and rebinds per home — same digest,
    /// same trace, amortized construction. Turning residency off leaves
    /// parked worlds in place; they are simply not used.
    pub fn set_resident(&mut self, on: bool) {
        self.resident_on = on;
    }

    /// Queue out-of-band intel for the next barrier's upward flow, as if
    /// a neighborhood had flushed it (deduplicated by the region's
    /// canonical union exactly like any discovery). The epoch-churn
    /// driver for `bench::exp_resident` and the resident proptests.
    pub fn inject_intel(&mut self, sigs: Vec<AttackSignature>) {
        self.feed.extend(sigs);
    }

    /// Aggregated resident-pool stats across all workers.
    pub fn resident_stats(&self) -> ResidentStats {
        let mut total = ResidentStats::default();
        for pool in &self.residents {
            total.merge(&pool.lock().unwrap().stats);
        }
        total
    }

    /// The per-epoch signature delta the region checkpointed at `epoch`
    /// (`None` for epoch 0 or a not-yet-reached epoch). Chaining deltas
    /// from 1 reconstructs every snapshot — the companion stream to the
    /// interned full snapshots.
    pub fn delta_of(&self, epoch: u32) -> Option<&[AttackSignature]> {
        self.region_log.delta_of(epoch)
    }

    /// Export fleet-level reuse and residency counters into `reg` so
    /// bench `wall_ms` lines carry them: resident-pool serving mix,
    /// delta-vs-full install counts, scrap reuse, memo and intern
    /// traffic.
    pub fn export_metrics(&self, reg: &mut trace::MetricsRegistry) {
        let rs = self.resident_stats();
        reg.counter("fleet.resident.full_builds", rs.full_builds);
        reg.counter("fleet.resident.resident_runs", rs.resident_runs);
        reg.counter("fleet.resident.delta_installs", rs.delta_installs);
        reg.counter("fleet.resident.noop_installs", rs.noop_installs);
        reg.counter("fleet.resident.policy_recompiles", rs.policy_recompiles);
        reg.counter("fleet.resident.devices_patched", rs.devices_patched);
        reg.counter("fleet.resident.devices_kept", rs.devices_kept);
        reg.counter("fleet.resident.dropped", rs.dropped);
        let (mut q_reused, mut q_cold, mut c_reused, mut c_cold) = (0u64, 0u64, 0u64, 0u64);
        for scrap in &self.scraps {
            let s = scrap.lock().unwrap();
            q_reused += s.net.queue_reused;
            q_cold += s.net.queue_cold;
            c_reused += s.net.capture_reused;
            c_cold += s.net.capture_cold;
        }
        reg.counter("fleet.scrap.queue_reused", q_reused);
        reg.counter("fleet.scrap.queue_cold", q_cold);
        reg.counter("fleet.scrap.capture_reused", c_reused);
        reg.counter("fleet.scrap.capture_cold", c_cold);
        reg.counter("fleet.memo.hits", self.memo_hits.load(Ordering::Relaxed));
        reg.counter("fleet.memo.misses", self.memo_misses.load(Ordering::Relaxed));
        reg.counter("fleet.intel.interned_live", self.interner.distinct() as u64);
        reg.counter("fleet.intel.interned_retired", self.interner.retired());
    }

    /// Every published discovery absorbed, every retry drained, and
    /// every home at the region epoch. Chaos-off this is trivially true
    /// after any absorbing round's barrier.
    pub fn converged(&self) -> bool {
        self.outstanding.is_empty()
            && self.ledger.all_at_least(self.region.epoch())
            && self.aggs.iter().all(|a| a.retry.is_none())
            && self.late_dups.is_empty()
    }

    /// Run `rounds` rounds and return the cumulative report.
    pub fn run(&mut self, rounds: u32) -> FleetReport {
        for _ in 0..rounds {
            self.round();
        }
        self.report()
    }

    /// The cumulative report so far.
    pub fn report(&self) -> FleetReport {
        FleetReport {
            homes: self.cfg.homes,
            rounds: self.round,
            digest: self.digest.finish(),
            epoch: self.installed_epoch,
            intel_len: self.region.len(),
            discoveries: self.discoveries,
            installs: self.ledger.installs(),
            batches: self.ledger.batches(),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            memo_misses: self.memo_misses.load(Ordering::Relaxed),
            // GC-invariant: live + retired, i.e. exactly the pre-GC
            // distinct count, so epoch GC never changes reported dedup.
            interned: self.interner.distinct_total(),
            events: self.events,
            blocks: self.blocks,
            compromised: self.compromised,
            leaked: self.leaked,
            flagged: self.flagged,
            faults: self.faults,
            recoveries: self.recoveries,
            degraded_rounds: self.degraded_rounds,
            converged: self.converged(),
        }
    }

    /// The chained fleet digest after the rounds run so far.
    pub fn digest(&self) -> u64 {
        self.digest.finish()
    }

    /// Home `home`'s outcome from the most recent round.
    pub fn outcome(&self, home: u32) -> HomeOutcome {
        self.slots[home as usize].lock().unwrap().expect("no round has run yet")
    }

    /// The currently installed interned intel snapshot. Every home
    /// shares this exact allocation (`Arc::ptr_eq`-comparable).
    pub fn intel(&self) -> &Arc<[AttackSignature]> {
        &self.intel
    }

    /// The intel epoch currently installed fleet-wide.
    pub fn epoch(&self) -> u32 {
        self.installed_epoch
    }

    /// The epoch installed at one home (per the ledger).
    pub fn installed_at(&self, home: u32) -> u32 {
        self.ledger.epoch_of(home)
    }

    /// The home → neighborhood directory.
    pub fn directory(&self) -> Directory {
        self.dir
    }
}

/// Pop the next chunk: local deque, then the injector, then a sibling —
/// the E16 work-stealing discipline (chunks never spawn chunks, so an
/// all-dry scan is a correct termination test).
fn find_task<T>(
    local: &Worker<T>,
    injector: &Injector<T>,
    stealers: &[Stealer<T>],
    me: usize,
) -> Option<T> {
    if let Some(t) = local.pop() {
        return Some(t);
    }
    loop {
        match injector.steal() {
            Steal::Success(t) => return Some(t),
            Steal::Retry => continue,
            Steal::Empty => break,
        }
    }
    for (i, s) in stealers.iter().enumerate() {
        if i == me {
            continue;
        }
        loop {
            match s.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotdev::registry::Sku;
    use iotlearn::signature::{Matcher, Severity};

    /// A synthetic scenario: outcome digest mixes `(seed, intel len)`;
    /// homes divisible by `stride` discover once attacked (attacked =
    /// intel empty).
    struct Synthetic {
        stride: u32,
    }

    impl HomeWorld for Synthetic {
        type Resident = ();

        fn run_home(&self, home: u32, seed: u64, intel: &[AttackSignature]) -> HomeOutcome {
            let mut h = Fnv64::new();
            h.write_u64(seed);
            h.write_u64(intel.len() as u64);
            let attacked = intel.is_empty();
            HomeOutcome {
                digest: h.finish(),
                compromised: u32::from(attacked),
                leaked: 0,
                blocks: u64::from(!attacked),
                events: 10,
                discovered: attacked && home.is_multiple_of(self.stride),
                flagged: 0,
            }
        }

        fn discovery(&self, _home: u32) -> Option<AttackSignature> {
            Some(AttackSignature::new(
                Sku::new("v", "m", "1"),
                "default-credentials",
                Matcher::MatchAll,
                Severity::Medium,
            ))
        }
    }

    #[test]
    fn serial_and_parallel_digests_match() {
        let mut configs = Vec::new();
        for threads in [1usize, 2, 4] {
            let cfg = FleetConfig { homes: 37, neighborhood: 5, chunk: 3, threads, seed: 7 };
            let mut fleet = Fleet::new(Synthetic { stride: 10 }, cfg);
            let report = fleet.run(3);
            configs.push(report);
        }
        assert_eq!(configs[0], configs[1]);
        assert_eq!(configs[0], configs[2]);
    }

    #[test]
    fn discovery_propagates_in_one_round() {
        let cfg = FleetConfig { homes: 12, neighborhood: 4, chunk: 2, threads: 1, seed: 1 };
        let mut fleet = Fleet::new(Synthetic { stride: 12 }, cfg);
        let r0 = fleet.round();
        // Round 0: everyone attacked, home 0 discovers, installs land at
        // the barrier.
        assert_eq!(r0.discoveries, 1);
        assert_eq!(r0.epoch, 1);
        assert_eq!(r0.installs, 12);
        for home in 0..12 {
            assert_eq!(fleet.installed_at(home), 1);
        }
        // Round 1: everyone defended, nothing new.
        let r1 = fleet.round();
        assert_eq!(r1.discoveries, 0);
        assert_eq!(r1.installs, 0);
        assert_eq!(fleet.outcome(0).blocks, 1);
        // Round 2: fully memoized.
        let r2 = fleet.round();
        assert_eq!(r2.executed, 0);
        assert_eq!(r2.memo_hits, 12);
    }

    /// Resident dispatch (static chunk→worker assignment) must produce
    /// the same report as the work-stealing rebuild path at every
    /// thread count, even when the scenario only implements the
    /// fallback (`Resident = ()` ⇒ every run is a full build).
    #[test]
    fn resident_dispatch_matches_rebuild_at_every_thread_count() {
        let cfg = FleetConfig { homes: 37, neighborhood: 5, chunk: 3, threads: 1, seed: 7 };
        let mut rebuild = Fleet::new(Synthetic { stride: 10 }, cfg);
        let baseline = rebuild.run(3);
        for threads in [1usize, 2, 4] {
            let cfg = FleetConfig { homes: 37, neighborhood: 5, chunk: 3, threads, seed: 7 };
            let mut fleet = Fleet::new(Synthetic { stride: 10 }, cfg);
            fleet.set_resident(true);
            let report = fleet.run(3);
            assert_eq!(report, baseline, "threads={threads}");
            let stats = fleet.resident_stats();
            assert_eq!(stats.resident_runs, 0, "fallback scenario never goes resident");
            assert!(stats.full_builds > 0);
        }
    }

    #[test]
    fn memo_serves_quiesced_rounds() {
        let cfg = FleetConfig { homes: 8, neighborhood: 8, chunk: 8, threads: 1, seed: 3 };
        let mut fleet = Fleet::new(Synthetic { stride: 1 }, cfg);
        fleet.run(4);
        let report = fleet.report();
        // Round 0 (epoch 0) and round 1 (epoch 1) execute; rounds 2-3
        // are pure memo hits.
        assert_eq!(report.memo_misses, 16);
        assert_eq!(report.memo_hits, 16);
        assert_eq!(report.interned, 1);
    }

    // ---- E25 chaos / recovery ---------------------------------------

    use crate::chaos::RecoveryPolicy;
    use crate::safety::{check_fleet_trace, FleetTraceSpec};
    use trace::tracer::TraceConfig;

    const CHAOS_ROUNDS: u32 = 24;

    fn chaos_cfg(seed: u64) -> FleetConfig {
        FleetConfig { homes: 24, neighborhood: 4, chunk: 3, threads: 1, seed }
    }

    /// Run a chaos-on fleet with a trace attached; return the fleet and
    /// its event stream.
    fn run_chaos(
        cfg: FleetConfig,
        chaos: FleetChaos,
        rounds: u32,
    ) -> (Fleet<Synthetic>, Vec<(u64, TraceEvent)>) {
        let tracer = Tracer::new(TraceConfig::control_only());
        let mut fleet = Fleet::with_chaos(Synthetic { stride: 24 }, cfg, chaos, tracer.clone());
        fleet.run(rounds);
        (fleet, tracer.events())
    }

    fn spec_for(cfg: &FleetConfig, chaos: &FleetChaos, rounds: u32) -> FleetTraceSpec {
        FleetTraceSpec {
            homes: cfg.homes,
            rounds,
            staleness_budget: chaos.policy.staleness_budget,
            grace: 2,
        }
    }

    /// A schedule with every probability at zero is the clean fleet:
    /// same digest, same report, converged.
    #[test]
    fn zero_intensity_chaos_matches_the_clean_fleet() {
        let calm = FleetChaos {
            drop_pm: 0,
            dup_pm: 0,
            reorder_pm: 0,
            crash_pm: 0,
            partition_pm: 0,
            delay_pm: 0,
            ..FleetChaos::new(99)
        };
        let cfg = chaos_cfg(7);
        let mut clean = Fleet::new(Synthetic { stride: 24 }, cfg);
        let clean_report = clean.run(CHAOS_ROUNDS);
        let (chaotic, _) = run_chaos(cfg, calm, CHAOS_ROUNDS);
        let report = chaotic.report();
        assert_eq!(report.digest, clean_report.digest);
        assert_eq!(report.faults, 0);
        assert!(chaotic.converged());
    }

    /// The acceptance core: chaos-on runs are byte-identical across
    /// thread counts and reruns (every fault decision is rolled serially
    /// on the coordinator).
    #[test]
    fn chaos_reports_are_thread_invariant_and_rerun_stable() {
        for chaos_seed in [1u64, 2, 3] {
            let chaos = FleetChaos::new(chaos_seed);
            let (reference, _) = run_chaos(chaos_cfg(7), chaos, CHAOS_ROUNDS);
            let reference = reference.report();
            let (rerun, _) = run_chaos(chaos_cfg(7), chaos, CHAOS_ROUNDS);
            assert_eq!(rerun.report(), reference, "rerun diverged (chaos seed {chaos_seed})");
            for threads in [2usize, 4] {
                let (par, _) = run_chaos(chaos_cfg(7).with_threads(threads), chaos, CHAOS_ROUNDS);
                assert_eq!(
                    par.report(),
                    reference,
                    "{threads}-thread run diverged (chaos seed {chaos_seed})"
                );
            }
        }
    }

    /// With the full recovery stack the fleet rides out real fault
    /// weather: it converges and the trace checker finds nothing.
    #[test]
    fn standard_policy_recovers_and_passes_the_checker() {
        let mut exercised = 0u64;
        for chaos_seed in 0..8u64 {
            let chaos = FleetChaos::new(chaos_seed);
            let cfg = chaos_cfg(7);
            let (fleet, events) = run_chaos(cfg, chaos, CHAOS_ROUNDS);
            exercised += fleet.report().faults;
            assert!(fleet.converged(), "fleet did not converge (chaos seed {chaos_seed})");
            let violations = check_fleet_trace(&events, &spec_for(&cfg, &chaos, CHAOS_ROUNDS));
            assert!(
                violations.is_empty(),
                "checker flagged a recovered run (chaos seed {chaos_seed}): {violations:?}"
            );
        }
        assert!(exercised > 0, "no faults fired across any seed — schedule too calm to test");
    }

    /// The `no-retry` seeded weakness: with every flush dropped and no
    /// retries, the sentinel's discovery never reaches the region and
    /// the checker reports it lost. The standard policy is hammered by
    /// the same total-loss weather, so this arm contrasts against the
    /// zero-intensity clean run instead.
    #[test]
    fn no_retry_weakness_loses_the_discovery() {
        let chaos = FleetChaos {
            drop_pm: 1000,
            dup_pm: 0,
            reorder_pm: 0,
            crash_pm: 0,
            partition_pm: 0,
            delay_pm: 0,
            ..FleetChaos::new(5)
        }
        .with_policy(RecoveryPolicy::no_retry());
        let cfg = chaos_cfg(7);
        let (fleet, events) = run_chaos(cfg, chaos, CHAOS_ROUNDS);
        assert!(!fleet.converged());
        let violations = check_fleet_trace(&events, &spec_for(&cfg, &chaos, CHAOS_ROUNDS));
        assert!(
            violations.iter().any(|v| v.invariant == "lost-discovery"),
            "expected lost-discovery, got {violations:?}"
        );
    }

    /// The `no-reconcile` seeded weakness: a neighborhood partitioned
    /// across the fleet's only absorbing round rejoins to silence —
    /// nothing new is ever absorbed, so without reconciliation its homes
    /// stay at epoch 0 forever and the checker reports them
    /// unrecovered. The standard policy on the identical schedule
    /// fast-forwards them and stays clean.
    #[test]
    fn no_reconcile_weakness_leaves_rejoined_homes_behind() {
        let mut demonstrated = false;
        for chaos_seed in 0..64u64 {
            // Faults confined to the first 4 rounds so the checker's
            // post-fault convergence window opens; the weakness is that
            // rejoined neighborhoods never converge even in the calm.
            let chaos = FleetChaos {
                drop_pm: 0,
                dup_pm: 0,
                reorder_pm: 0,
                crash_pm: 0,
                partition_pm: 400,
                partition_rounds: 2,
                delay_pm: 0,
                ..FleetChaos::new(chaos_seed)
            }
            .with_horizon(4);
            let cfg = chaos_cfg(7);
            let weak = chaos.with_policy(RecoveryPolicy::no_reconcile());
            let (fleet, events) = run_chaos(cfg, weak, CHAOS_ROUNDS);
            let violations = check_fleet_trace(&events, &spec_for(&cfg, &weak, CHAOS_ROUNDS));
            if violations.iter().any(|v| v.invariant == "unrecovered") {
                assert!(!fleet.converged());
                // The full stack rides out the identical schedule.
                let (sound, sound_events) = run_chaos(cfg, chaos, CHAOS_ROUNDS);
                assert!(sound.converged(), "standard policy failed (chaos seed {chaos_seed})");
                let sound_violations =
                    check_fleet_trace(&sound_events, &spec_for(&cfg, &chaos, CHAOS_ROUNDS));
                assert!(sound_violations.is_empty(), "{sound_violations:?}");
                demonstrated = true;
                break;
            }
        }
        assert!(demonstrated, "no schedule in the scan demonstrated the weakness");
    }

    /// The `unbounded-staleness` seeded weakness: a long partition keeps
    /// homes behind past the budget; the sound policy declares degraded
    /// mode every overdue round, the weakened one stays silent and the
    /// checker reports the blown budget.
    #[test]
    fn unbounded_staleness_weakness_blows_the_budget_silently() {
        let tight = RecoveryPolicy { staleness_budget: 1, ..RecoveryPolicy::standard() };
        let silent = RecoveryPolicy { declare_degraded: false, ..tight };
        let mut demonstrated = false;
        for chaos_seed in 0..64u64 {
            let chaos = FleetChaos {
                drop_pm: 0,
                dup_pm: 0,
                reorder_pm: 0,
                crash_pm: 0,
                partition_pm: 300,
                partition_rounds: 4,
                delay_pm: 0,
                ..FleetChaos::new(chaos_seed)
            };
            let cfg = chaos_cfg(7);
            let weak = chaos.with_policy(silent);
            let (_, events) = run_chaos(cfg, weak, CHAOS_ROUNDS);
            let violations = check_fleet_trace(&events, &spec_for(&cfg, &weak, CHAOS_ROUNDS));
            if violations.iter().any(|v| v.invariant == "staleness-budget") {
                // Same weather, declarations on: the budget overrun is
                // announced, so the checker stays quiet.
                let sound = chaos.with_policy(tight);
                let (fleet, sound_events) = run_chaos(cfg, sound, CHAOS_ROUNDS);
                assert!(fleet.report().degraded_rounds > 0);
                let sound_violations =
                    check_fleet_trace(&sound_events, &spec_for(&cfg, &sound, CHAOS_ROUNDS));
                assert!(sound_violations.is_empty(), "{sound_violations:?}");
                demonstrated = true;
                break;
            }
        }
        assert!(demonstrated, "no schedule in the scan demonstrated the weakness");
    }

    /// Crash-and-republish: an aggregator crash wipes its buffer before
    /// that round's flush, losing the sentinel's buffered report — but
    /// the cleared `published` flag makes the home republish from its
    /// memoized outcome next round, so the discovery still lands. A
    /// republication shows up as a second `fleet-discovery` for the same
    /// home.
    #[test]
    fn aggregator_crash_republishes_lost_reports() {
        let mut demonstrated = false;
        for chaos_seed in 0..64u64 {
            let chaos = FleetChaos {
                drop_pm: 0,
                dup_pm: 0,
                reorder_pm: 0,
                crash_pm: 400,
                partition_pm: 0,
                delay_pm: 0,
                ..FleetChaos::new(chaos_seed)
            };
            let cfg = chaos_cfg(7);
            let (fleet, events) = run_chaos(cfg, chaos, CHAOS_ROUNDS);
            let republications = events
                .iter()
                .filter(|(_, e)| matches!(e, TraceEvent::FleetDiscovery { home: 0, .. }))
                .count();
            if republications >= 2 {
                assert!(fleet.converged(), "republished discovery never landed");
                let violations = check_fleet_trace(&events, &spec_for(&cfg, &chaos, CHAOS_ROUNDS));
                assert!(violations.is_empty(), "{violations:?}");
                demonstrated = true;
                break;
            }
        }
        assert!(demonstrated, "no schedule in the scan crashed a loaded aggregator");
    }
}
