//! The seeded scenario generator.
//!
//! One `u64` seed → one [`ScenarioSpec`], via a dedicated
//! `StdRng::seed_from_u64` stream (xoshiro behind the rand shim) that
//! nothing else draws from — so scenario N of a campaign is the same
//! scenario on every machine, thread count and rerun. The generated
//! family deliberately stays inside the envelope the *correct* defense
//! is specified to survive:
//!
//! * chains fail **closed** (security over availability — a crashed
//!   µmbox blocks, never leaks);
//! * controller outages stay under the tightest staleness budget
//!   (4 s < the 5 s actuator budget), so bounded-staleness cannot fire
//!   on a healthy stack;
//! * uplink flaps only hit **clean decoy** devices, so a fault can
//!   never blackhole the attack path and turn the defense-off arm
//!   vacuous;
//! * every scenario scripts at least one exploit of a vulnerable
//!   device, so the defense-off arm has something to prove.
//!
//! Anything the oracle then flags on the defense-on arm is therefore a
//! real defect (or an intentional [`Weakness`]), not an environment the
//! defense was never meant to absorb.

use crate::spec::{AttackStep, DeviceSpec, FaultSpec, RecipeSpec, ScenarioSpec, Weakness};
use iotdev::device::DeviceClass;
use iotdev::env::EnvVar;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generator tuning.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Device-count range (inclusive).
    pub min_devices: usize,
    /// Upper bound on devices.
    pub max_devices: usize,
    /// Upper bound on recipes.
    pub max_recipes: usize,
    /// Upper bound on scheduled faults.
    pub max_faults: usize,
    /// Weakness applied to the defense-on arm of every scenario.
    pub weakness: Weakness,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            min_devices: 3,
            max_devices: 10,
            max_recipes: 3,
            max_faults: 4,
            weakness: Weakness::None,
        }
    }
}

impl GenConfig {
    /// The default family with a weakened defense-on arm.
    pub fn weakened(weakness: Weakness) -> GenConfig {
        GenConfig { weakness, ..GenConfig::default() }
    }
}

/// Clean filler classes (no FSM coupling to windows/locks, so recipes
/// built on them cannot open a physical breach).
const CLEAN: &[DeviceClass] = &[
    DeviceClass::Camera,
    DeviceClass::SmartPlug,
    DeviceClass::Thermostat,
    DeviceClass::LightBulb,
    DeviceClass::MotionSensor,
    DeviceClass::LightSensor,
    DeviceClass::SetTopBox,
    DeviceClass::Refrigerator,
];

/// Recipe triggers the generator draws from (all benign values).
const TRIGGERS: &[(EnvVar, &str)] = &[
    (EnvVar::Occupancy, "absent"),
    (EnvVar::Occupancy, "present"),
    (EnvVar::Temperature, "high"),
    (EnvVar::Light, "dark"),
];

/// Generate the scenario for `seed` under `cfg`. Pure: same inputs,
/// same spec.
pub fn generate(seed: u64, cfg: &GenConfig) -> ScenarioSpec {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE23_5CEA_A210);
    let n = rng.gen_range(cfg.min_devices..cfg.max_devices + 1);

    // Device mix: at least one Table 1 row, the rest a coin-flip blend.
    let mut devices = Vec::with_capacity(n);
    devices.push(DeviceSpec::Row(rng.gen_range(1u8..8)));
    for _ in 1..n {
        if rng.gen::<f64>() < 0.45 {
            devices.push(DeviceSpec::Row(rng.gen_range(1u8..8)));
        } else {
            devices.push(DeviceSpec::Clean(*CLEAN.choose(&mut rng).expect("non-empty")));
        }
    }
    devices.shuffle(&mut rng);

    // Topology: mostly single-switch homes, sometimes a small campus.
    let edges = if rng.gen::<f64>() < 0.25 { rng.gen_range(2u8..5) } else { 0 };

    // Recipe corpus over random targets.
    let recipes = (0..rng.gen_range(0..cfg.max_recipes + 1))
        .map(|_| {
            let (var, value) = *TRIGGERS.choose(&mut rng).expect("non-empty");
            RecipeSpec { var, value, target: rng.gen_range(0..devices.len()) }
        })
        .collect();

    // Attack script: open with a short wait (let chains steer), then
    // exploit every vulnerable device in shuffled order with pauses and
    // decoy probes in between.
    let mut vulnerable: Vec<usize> =
        (0..devices.len()).filter(|&i| devices[i].is_vulnerable()).collect();
    vulnerable.shuffle(&mut rng);
    let mut attack = vec![AttackStep::Wait(rng.gen_range(2u32..5))];
    for &v in &vulnerable {
        attack.push(AttackStep::Exploit(v));
        if rng.gen::<f64>() < 0.3 {
            attack.push(AttackStep::Probe(rng.gen_range(0..devices.len())));
        }
        if rng.gen::<f64>() < 0.5 {
            attack.push(AttackStep::Wait(rng.gen_range(1u32..4)));
        }
    }

    // Horizon: generous cover for the script plus settle time for
    // delivery retries and physics.
    let script_secs: u32 = attack
        .iter()
        .map(|s| match s {
            AttackStep::Wait(w) => *w,
            AttackStep::Exploit(_) => 8,
            AttackStep::Probe(_) => 2,
        })
        .sum();
    let horizon_secs = (script_secs + 20).min(120);

    // Chaos schedule: crashes anywhere, flaps only on clean decoys,
    // outages capped below the actuator staleness budget and finishing
    // before the settle window.
    let clean: Vec<usize> = (0..devices.len()).filter(|&i| !devices[i].is_vulnerable()).collect();
    let fault_window = horizon_secs.saturating_sub(12).max(2);
    let mut faults = Vec::new();
    for _ in 0..rng.gen_range(0..cfg.max_faults + 1) {
        let roll = rng.gen::<f64>();
        if roll < 0.45 {
            faults.push(FaultSpec::CrashUmbox {
                at_secs: rng.gen_range(1..fault_window),
                device: rng.gen_range(0..devices.len()),
            });
        } else if roll < 0.75 && !clean.is_empty() {
            let down = rng.gen_range(1..fault_window);
            faults.push(FaultSpec::FlapUplink {
                device: *clean.choose(&mut rng).expect("non-empty"),
                down_secs: down,
                up_secs: down + rng.gen_range(1u32..4),
            });
        } else {
            faults.push(FaultSpec::CtlOutage {
                at_secs: rng.gen_range(1..fault_window),
                dur_secs: rng.gen_range(1u32..5),
            });
        }
    }

    let spec = ScenarioSpec {
        seed,
        edges,
        horizon_secs,
        weakness: cfg.weakness,
        devices,
        recipes,
        faults,
        attack,
    };
    debug_assert!(spec.validate().is_ok(), "generator produced invalid spec: {spec:?}");
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in 0..50u64 {
            assert_eq!(generate(seed, &cfg), generate(seed, &cfg));
        }
    }

    #[test]
    fn every_scenario_is_valid_with_at_least_one_exploit() {
        let cfg = GenConfig::default();
        for seed in 0..200u64 {
            let spec = generate(seed, &cfg);
            spec.validate().expect("valid");
            assert!(
                spec.attack.iter().any(|s| matches!(s, AttackStep::Exploit(_))),
                "seed {seed} scripted no exploit"
            );
            assert!(!spec.vulnerable().is_empty());
            assert!(spec.horizon_secs >= 20);
        }
    }

    #[test]
    fn flaps_only_hit_clean_decoys_and_outages_stay_bounded() {
        let cfg = GenConfig::default();
        for seed in 0..200u64 {
            let spec = generate(seed, &cfg);
            for f in &spec.faults {
                match *f {
                    FaultSpec::FlapUplink { device, .. } => {
                        assert!(
                            !spec.devices[device].is_vulnerable(),
                            "seed {seed} flapped a target"
                        )
                    }
                    FaultSpec::CtlOutage { dur_secs, .. } => assert!(dur_secs < 5),
                    FaultSpec::CrashUmbox { .. } => {}
                }
            }
        }
    }

    #[test]
    fn seeds_explore_the_space() {
        let cfg = GenConfig::default();
        let specs: Vec<_> = (0..50u64).map(|s| generate(s, &cfg)).collect();
        let sizes: std::collections::BTreeSet<usize> =
            specs.iter().map(|s| s.devices.len()).collect();
        assert!(sizes.len() > 3, "device counts barely vary: {sizes:?}");
        assert!(specs.iter().any(|s| s.edges > 0), "no enterprise topology in 50 seeds");
        assert!(specs.iter().any(|s| !s.faults.is_empty()));
        assert!(specs.iter().any(|s| !s.recipes.is_empty()));
    }
}
