//! Delta-debugging shrinker: minimize a violating scenario.
//!
//! Greedy ddmin over the spec's axes, in fixed order — drop devices
//! (remapping every dependent recipe, fault and attack step), drop
//! recipes, drop faults, shorten the attack script, then halve the
//! horizon — re-running the defense-on oracle after every candidate
//! edit and keeping only edits that preserve *some* invariant
//! violation. The loop repeats until a full pass changes nothing, so
//! the result is 1-minimal per axis. Everything is a pure function of
//! the input spec: the same violation shrinks to the same minimal
//! repro on every seed order, thread count and rerun.

use crate::artifact;
use crate::oracle::defense_on_violations;
use crate::spec::ScenarioSpec;
use iotctl::safety::Violation;

/// A minimized, replayable violation.
#[derive(Debug, Clone)]
pub struct MinimalRepro {
    /// The 1-minimal scenario.
    pub spec: ScenarioSpec,
    /// The violations it still produces.
    pub violations: Vec<Violation>,
    /// Rendered artifact: the scenario file plus `# violation=` trailer
    /// comments (ignored by the parser, kept for humans and reports).
    pub artifact: String,
    /// Defense-on oracle runs the shrink spent.
    pub oracle_runs: u32,
}

/// Drop device `i` and remap every index-bearing clause. Clauses pinned
/// to the dropped device are removed with it.
fn drop_device(spec: &ScenarioSpec, i: usize) -> ScenarioSpec {
    let remap = |d: usize| if d > i { d - 1 } else { d };
    let mut s = spec.clone();
    s.devices.remove(i);
    s.recipes.retain(|r| r.target != i);
    for r in &mut s.recipes {
        r.target = remap(r.target);
    }
    s.faults.retain(|f| f.device() != Some(i));
    for f in &mut s.faults {
        match f {
            crate::spec::FaultSpec::CrashUmbox { device, .. }
            | crate::spec::FaultSpec::FlapUplink { device, .. } => *device = remap(*device),
            crate::spec::FaultSpec::CtlOutage { .. } => {}
        }
    }
    s.attack.retain(|a| a.device() != Some(i));
    for a in &mut s.attack {
        match a {
            crate::spec::AttackStep::Probe(d) | crate::spec::AttackStep::Exploit(d) => {
                *d = remap(*d)
            }
            crate::spec::AttackStep::Wait(_) => {}
        }
    }
    s
}

/// Shrink `spec` to a 1-minimal violating scenario. Returns `None` when
/// the input does not violate at all (nothing to minimize).
pub fn shrink(spec: &ScenarioSpec) -> Option<MinimalRepro> {
    let mut runs: u32 = 1;
    if defense_on_violations(spec).is_empty() {
        return None;
    }
    let mut cur = spec.clone();
    loop {
        let mut changed = false;

        // Axis 1: devices (each drop also sheds dependent clauses).
        let mut i = 0;
        while i < cur.devices.len() {
            if cur.devices.len() > 1 {
                let cand = drop_device(&cur, i);
                runs += 1;
                if !defense_on_violations(&cand).is_empty() {
                    cur = cand;
                    changed = true;
                    continue; // index i now names the next device
                }
            }
            i += 1;
        }

        // Axis 2: recipes.
        let mut i = 0;
        while i < cur.recipes.len() {
            let mut cand = cur.clone();
            cand.recipes.remove(i);
            runs += 1;
            if !defense_on_violations(&cand).is_empty() {
                cur = cand;
                changed = true;
            } else {
                i += 1;
            }
        }

        // Axis 3: faults.
        let mut i = 0;
        while i < cur.faults.len() {
            let mut cand = cur.clone();
            cand.faults.remove(i);
            runs += 1;
            if !defense_on_violations(&cand).is_empty() {
                cur = cand;
                changed = true;
            } else {
                i += 1;
            }
        }

        // Axis 4: attack script.
        let mut i = 0;
        while i < cur.attack.len() {
            let mut cand = cur.clone();
            cand.attack.remove(i);
            runs += 1;
            if !defense_on_violations(&cand).is_empty() {
                cur = cand;
                changed = true;
            } else {
                i += 1;
            }
        }

        // Axis 5: horizon (halve while the violation survives).
        while cur.horizon_secs > 10 {
            let mut cand = cur.clone();
            cand.horizon_secs = (cur.horizon_secs / 2).max(10);
            runs += 1;
            if !defense_on_violations(&cand).is_empty() {
                cur = cand;
                changed = true;
            } else {
                break;
            }
        }

        if !changed {
            break;
        }
    }
    let violations = defense_on_violations(&cur);
    runs += 1;
    debug_assert!(!violations.is_empty(), "shrink lost the violation");
    let mut text = artifact::render(&cur);
    for v in &violations {
        text.push_str(&format!(
            "# violation={} device={} at_ns={}\n",
            v.invariant, v.device, v.at_ns
        ));
    }
    Some(MinimalRepro { spec: cur, violations, artifact: text, oracle_runs: runs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use crate::spec::{AttackStep, DeviceSpec, FaultSpec, RecipeSpec, Weakness};
    use iotdev::device::DeviceClass;
    use iotdev::env::EnvVar;

    #[test]
    fn drop_device_remaps_every_clause() {
        let spec = ScenarioSpec {
            seed: 1,
            edges: 0,
            horizon_secs: 30,
            weakness: Weakness::None,
            devices: vec![
                DeviceSpec::Row(1),
                DeviceSpec::Clean(DeviceClass::LightBulb),
                DeviceSpec::Row(6),
            ],
            recipes: vec![
                RecipeSpec { var: EnvVar::Occupancy, value: "absent", target: 1 },
                RecipeSpec { var: EnvVar::Occupancy, value: "absent", target: 2 },
            ],
            faults: vec![
                FaultSpec::CrashUmbox { at_secs: 3, device: 1 },
                FaultSpec::CrashUmbox { at_secs: 4, device: 2 },
            ],
            attack: vec![AttackStep::Exploit(0), AttackStep::Probe(1), AttackStep::Exploit(2)],
        };
        let s = drop_device(&spec, 1);
        s.validate().expect("still valid");
        assert_eq!(s.devices, vec![DeviceSpec::Row(1), DeviceSpec::Row(6)]);
        assert_eq!(s.recipes.len(), 1);
        assert_eq!(s.recipes[0].target, 1);
        assert_eq!(s.faults, vec![FaultSpec::CrashUmbox { at_secs: 4, device: 1 }]);
        assert_eq!(s.attack, vec![AttackStep::Exploit(0), AttackStep::Exploit(1)]);
    }

    #[test]
    fn non_violating_scenarios_do_not_shrink() {
        let spec = generate(0, &GenConfig::default());
        assert!(shrink(&spec).is_none());
    }
}
