//! Fleet-chaos fuzzing (E25): seeded fault-schedule grammar, trace
//! oracle and ddmin shrinker for the aggregation tier.
//!
//! The E23 pipeline vets one home against scripted device faults; this
//! module vets the *fleet* recovery stack against generated
//! [`FleetChaos`] schedules. A [`FleetSpec`] names a complete
//! experiment — fleet shape, round count, every fault-axis intensity
//! and the [`RecoveryPolicy`] under test — and lowers to a synthetic
//! fleet run (outcome digests mix seed and intel length, so a case
//! costs microseconds while exercising the real coordinator barrier).
//! The oracle is [`iotsec_fleet::check_fleet_trace`]: a spec violates
//! iff the checker finds a violation in the run's trace stream.
//!
//! A sound [`RecoveryPolicy::standard`] arm must survive every
//! generated schedule; the [`FleetWeakness`] arms (retry disabled,
//! reconciliation disabled, silent staleness) exist to prove the
//! oracle has teeth, and [`shrink_fleet`] ddmin-minimizes whatever the
//! weakened arms trip over into the replayable artifacts under
//! `tests/repros/fleet/`.

use iotdev::registry::Sku;
use iotlearn::signature::{AttackSignature, Matcher, Severity};
use iotsec_fleet::fleet::{Fleet, FleetConfig, HomeOutcome, HomeWorld};
use iotsec_fleet::{check_fleet_trace, FleetChaos, FleetTraceSpec, FleetViolation, RecoveryPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trace::digest::Fnv64;
use trace::tracer::{TraceConfig, Tracer};

/// Settling rounds the oracle grants after a budget deadline or the
/// last fault before judging (mirrors the fleet test suite).
pub const GRACE: u32 = 2;

/// The seeded weaknesses of ISSUE E25 — each is a one-flag
/// [`RecoveryPolicy`] mutation the oracle must catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetWeakness {
    /// The full recovery stack.
    None,
    /// Dropped flushes are never retried (`lost-discovery`).
    NoRetry,
    /// Rejoined/behind neighborhoods are never fast-forwarded
    /// (`unrecovered`).
    NoReconcile,
    /// Budget overruns are never declared (`staleness-budget`).
    UnboundedStaleness,
}

impl FleetWeakness {
    /// Stable artifact label.
    pub fn label(self) -> &'static str {
        match self {
            FleetWeakness::None => "none",
            FleetWeakness::NoRetry => "no-retry",
            FleetWeakness::NoReconcile => "no-reconcile",
            FleetWeakness::UnboundedStaleness => "unbounded-staleness",
        }
    }

    /// Parse an artifact label.
    pub fn parse(s: &str) -> Option<FleetWeakness> {
        [
            FleetWeakness::None,
            FleetWeakness::NoRetry,
            FleetWeakness::NoReconcile,
            FleetWeakness::UnboundedStaleness,
        ]
        .into_iter()
        .find(|w| w.label() == s)
    }

    /// The recovery policy this weakness degrades `base` to.
    pub fn apply(self, base: RecoveryPolicy) -> RecoveryPolicy {
        match self {
            FleetWeakness::None => base,
            FleetWeakness::NoRetry => RecoveryPolicy { retry: false, ..base },
            FleetWeakness::NoReconcile => RecoveryPolicy { reconcile: false, ..base },
            FleetWeakness::UnboundedStaleness => RecoveryPolicy { declare_degraded: false, ..base },
        }
    }
}

/// One complete fleet-chaos experiment: shape, rounds, schedule
/// (including the recovery policy under test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetSpec {
    /// Fleet seed (drives per-home seeds).
    pub fleet_seed: u64,
    /// Homes in the fleet.
    pub homes: u32,
    /// Homes per neighborhood aggregator.
    pub neighborhood: u32,
    /// Rounds to run (also the checker's judging window).
    pub rounds: u32,
    /// The fault schedule + recovery policy.
    pub chaos: FleetChaos,
}

impl FleetSpec {
    /// Structural sanity: every probability in per-mille range, shape
    /// non-degenerate, enough rounds for the checker to judge anything.
    pub fn validate(&self) -> Result<(), String> {
        if self.homes == 0 {
            return Err("homes must be >= 1".into());
        }
        if self.neighborhood == 0 {
            return Err("neighborhood must be >= 1".into());
        }
        if self.rounds == 0 {
            return Err("rounds must be >= 1".into());
        }
        if self.chaos.partition_rounds == 0 {
            return Err("partition-rounds must be >= 1".into());
        }
        for (label, pm) in [
            ("drop-pm", self.chaos.drop_pm),
            ("dup-pm", self.chaos.dup_pm),
            ("reorder-pm", self.chaos.reorder_pm),
            ("crash-pm", self.chaos.crash_pm),
            ("partition-pm", self.chaos.partition_pm),
            ("delay-pm", self.chaos.delay_pm),
        ] {
            if pm > 1000 {
                return Err(format!("{label} out of per-mille range: {pm}"));
            }
        }
        Ok(())
    }

    /// The checker spec this experiment is judged against.
    pub fn trace_spec(&self) -> FleetTraceSpec {
        FleetTraceSpec {
            homes: self.homes,
            rounds: self.rounds,
            staleness_budget: self.chaos.policy.staleness_budget,
            grace: GRACE,
        }
    }
}

/// The synthetic home family behind the oracle: attacked while intel is
/// empty, defended after; home 0 is the sentinel discoverer. Outcome
/// digests mix `(seed, intel len)` so memoization and digests behave
/// like the real scenario's at none of the cost.
struct SyntheticHome;

impl HomeWorld for SyntheticHome {
    type Resident = ();

    fn run_home(&self, _home: u32, seed: u64, intel: &[AttackSignature]) -> HomeOutcome {
        let mut h = Fnv64::new();
        h.write_u64(seed);
        h.write_u64(intel.len() as u64);
        let attacked = intel.is_empty();
        HomeOutcome {
            digest: h.finish(),
            compromised: u32::from(attacked),
            leaked: 0,
            blocks: u64::from(!attacked),
            events: 3,
            discovered: attacked,
            flagged: 0,
        }
    }

    fn discovery(&self, home: u32) -> Option<AttackSignature> {
        (home == 0).then(|| {
            AttackSignature::new(
                Sku::new("vet", "fleet-cam", "1"),
                "default-credentials",
                Matcher::MatchAll,
                Severity::Medium,
            )
        })
    }
}

/// Run the experiment and return every checker violation (empty = the
/// recovery stack upheld all judged invariants).
pub fn fleet_violations(spec: &FleetSpec) -> Vec<FleetViolation> {
    let tracer = Tracer::new(TraceConfig::control_only());
    let cfg = FleetConfig {
        homes: spec.homes,
        neighborhood: spec.neighborhood,
        chunk: 3,
        threads: 1,
        seed: spec.fleet_seed,
    };
    let mut fleet = Fleet::with_chaos(SyntheticHome, cfg, spec.chaos, tracer.clone());
    fleet.run(spec.rounds);
    check_fleet_trace(&tracer.events(), &spec.trace_spec())
}

/// One `u64` seed → one [`FleetSpec`] with the given weakness arm, via
/// a dedicated rng stream (same discipline as [`crate::gen`]). Horizons
/// stay short relative to the round count so the post-fault judging
/// window always opens, and every schedule enables at least one fault
/// axis so weakened arms have weather to fail in.
pub fn generate_fleet(seed: u64, weakness: FleetWeakness) -> FleetSpec {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF1EE_7CA0_5E25_0001);
    let pm = |rng: &mut StdRng| if rng.gen_range(0..3) == 0 { 0 } else { rng.gen_range(50..800) };
    let mut chaos = FleetChaos {
        drop_pm: pm(&mut rng),
        dup_pm: pm(&mut rng),
        reorder_pm: pm(&mut rng),
        crash_pm: pm(&mut rng),
        partition_pm: pm(&mut rng),
        partition_rounds: rng.gen_range(1..4),
        delay_pm: pm(&mut rng),
        ..FleetChaos::new(rng.gen())
    }
    .with_horizon(rng.gen_range(2..7));
    if chaos.drop_pm + chaos.dup_pm + chaos.crash_pm + chaos.partition_pm + chaos.delay_pm == 0 {
        chaos.drop_pm = 400; // no dead schedules: every spec has weather
    }
    chaos.policy = weakness.apply(RecoveryPolicy::standard());
    let rounds = 14 + chaos.horizon + chaos.policy.staleness_budget + GRACE;
    FleetSpec {
        fleet_seed: rng.gen(),
        homes: rng.gen_range(4..33),
        neighborhood: rng.gen_range(1..8),
        rounds,
        chaos,
    }
}

/// A minimized, replayable fleet-chaos violation.
#[derive(Debug, Clone)]
pub struct FleetRepro {
    /// The 1-minimal spec.
    pub spec: FleetSpec,
    /// The violations it still produces.
    pub violations: Vec<FleetViolation>,
    /// Rendered artifact with `# violation=` trailers.
    pub artifact: String,
    /// Oracle runs the shrink spent.
    pub oracle_runs: u32,
}

/// Shrink `spec` to a 1-minimal violating experiment (ddmin over the
/// schedule's axes, then the shape). Returns `None` when the input does
/// not violate. Pure: same input, same minimal repro, every time.
pub fn shrink_fleet(spec: &FleetSpec) -> Option<FleetRepro> {
    let mut runs: u32 = 1;
    if fleet_violations(spec).is_empty() {
        return None;
    }
    let mut cur = *spec;
    let try_edit = |cur: &mut FleetSpec, cand: FleetSpec, runs: &mut u32| -> bool {
        *runs += 1;
        if !fleet_violations(&cand).is_empty() {
            *cur = cand;
            true
        } else {
            false
        }
    };
    loop {
        let mut changed = false;

        // Axis 1: zero out whole fault axes.
        for zero in [
            (&|s: &mut FleetSpec| s.chaos.drop_pm = 0) as &dyn Fn(&mut FleetSpec),
            &|s| s.chaos.dup_pm = 0,
            &|s| s.chaos.reorder_pm = 0,
            &|s| s.chaos.crash_pm = 0,
            &|s| s.chaos.partition_pm = 0,
            &|s| s.chaos.delay_pm = 0,
        ] {
            let mut cand = cur;
            zero(&mut cand);
            if cand != cur {
                changed |= try_edit(&mut cur, cand, &mut runs);
            }
        }

        // Axis 2: shrink the fleet (homes, then neighborhood size).
        while cur.homes > 1 {
            let cand = FleetSpec { homes: (cur.homes / 2).max(1), ..cur };
            if !try_edit(&mut cur, cand, &mut runs) {
                break;
            }
            changed = true;
        }
        while cur.neighborhood > 1 {
            let cand = FleetSpec { neighborhood: (cur.neighborhood / 2).max(1), ..cur };
            if !try_edit(&mut cur, cand, &mut runs) {
                break;
            }
            changed = true;
        }

        // Axis 3: shorten the run and the fault window.
        while cur.rounds > 4 {
            let cand = FleetSpec { rounds: (cur.rounds / 2).max(4), ..cur };
            if !try_edit(&mut cur, cand, &mut runs) {
                break;
            }
            changed = true;
        }
        while cur.chaos.horizon > 1 {
            let mut cand = cur;
            cand.chaos.horizon = (cur.chaos.horizon / 2).max(1);
            if !try_edit(&mut cur, cand, &mut runs) {
                break;
            }
            changed = true;
        }
        while cur.chaos.partition_rounds > 1 {
            let mut cand = cur;
            cand.chaos.partition_rounds = (cur.chaos.partition_rounds / 2).max(1);
            if !try_edit(&mut cur, cand, &mut runs) {
                break;
            }
            changed = true;
        }

        if !changed {
            break;
        }
    }
    let violations = fleet_violations(&cur);
    runs += 1;
    debug_assert!(!violations.is_empty(), "shrink lost the violation");
    let mut text = render_fleet(&cur);
    for v in &violations {
        text.push_str(&format!(
            "# violation={} subject={} round={}\n",
            v.invariant, v.subject, v.round
        ));
    }
    Some(FleetRepro { spec: cur, violations, artifact: text, oracle_runs: runs })
}

fn onoff(b: bool) -> &'static str {
    if b {
        "on"
    } else {
        "off"
    }
}

/// Render `spec` as a replayable `key=value` artifact
/// (`tests/repros/fleet/*.repro`).
pub fn render_fleet(spec: &FleetSpec) -> String {
    let c = &spec.chaos;
    let p = &c.policy;
    let mut out = String::new();
    out.push_str(
        "# iotsec fleet-chaos minimal repro (E25); replay: iotsec_fuzz::fleet::parse_fleet\n",
    );
    out.push_str(&format!("fleet-seed={}\n", spec.fleet_seed));
    out.push_str(&format!("homes={}\n", spec.homes));
    out.push_str(&format!("neighborhood={}\n", spec.neighborhood));
    out.push_str(&format!("rounds={}\n", spec.rounds));
    out.push_str(&format!("chaos-seed={}\n", c.seed));
    out.push_str(&format!("drop-pm={}\n", c.drop_pm));
    out.push_str(&format!("dup-pm={}\n", c.dup_pm));
    out.push_str(&format!("reorder-pm={}\n", c.reorder_pm));
    out.push_str(&format!("crash-pm={}\n", c.crash_pm));
    out.push_str(&format!("partition-pm={}\n", c.partition_pm));
    out.push_str(&format!("partition-rounds={}\n", c.partition_rounds));
    out.push_str(&format!("delay-pm={}\n", c.delay_pm));
    out.push_str(&format!("horizon={}\n", c.horizon));
    out.push_str(&format!("retry={}\n", onoff(p.retry)));
    out.push_str(&format!("reconcile={}\n", onoff(p.reconcile)));
    out.push_str(&format!("staleness-budget={}\n", p.staleness_budget));
    out.push_str(&format!("declare-degraded={}\n", onoff(p.declare_degraded)));
    out.push_str(&format!("max-backoff={}\n", p.max_backoff));
    out
}

/// Parse an artifact back into a validated [`FleetSpec`].
pub fn parse_fleet(text: &str) -> Result<FleetSpec, String> {
    let mut spec = FleetSpec {
        fleet_seed: 0,
        homes: 0,
        neighborhood: 0,
        rounds: 0,
        chaos: FleetChaos {
            drop_pm: 0,
            dup_pm: 0,
            reorder_pm: 0,
            crash_pm: 0,
            partition_pm: 0,
            partition_rounds: 1,
            delay_pm: 0,
            ..FleetChaos::new(0)
        },
    };
    let parse_onoff = |v: &str| match v {
        "on" => Some(true),
        "off" => Some(false),
        _ => None,
    };
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) =
            line.split_once('=').ok_or_else(|| format!("line {}: no '=' in {line:?}", n + 1))?;
        let err = |msg: &str| format!("line {}: {msg}: {line:?}", n + 1);
        match key {
            "fleet-seed" => spec.fleet_seed = value.parse().map_err(|_| err("bad seed"))?,
            "homes" => spec.homes = value.parse().map_err(|_| err("bad homes"))?,
            "neighborhood" => {
                spec.neighborhood = value.parse().map_err(|_| err("bad neighborhood"))?
            }
            "rounds" => spec.rounds = value.parse().map_err(|_| err("bad rounds"))?,
            "chaos-seed" => spec.chaos.seed = value.parse().map_err(|_| err("bad seed"))?,
            "drop-pm" => spec.chaos.drop_pm = value.parse().map_err(|_| err("bad pm"))?,
            "dup-pm" => spec.chaos.dup_pm = value.parse().map_err(|_| err("bad pm"))?,
            "reorder-pm" => spec.chaos.reorder_pm = value.parse().map_err(|_| err("bad pm"))?,
            "crash-pm" => spec.chaos.crash_pm = value.parse().map_err(|_| err("bad pm"))?,
            "partition-pm" => spec.chaos.partition_pm = value.parse().map_err(|_| err("bad pm"))?,
            "partition-rounds" => {
                spec.chaos.partition_rounds = value.parse().map_err(|_| err("bad rounds"))?
            }
            "delay-pm" => spec.chaos.delay_pm = value.parse().map_err(|_| err("bad pm"))?,
            "horizon" => spec.chaos.horizon = value.parse().map_err(|_| err("bad horizon"))?,
            "retry" => {
                spec.chaos.policy.retry = parse_onoff(value).ok_or_else(|| err("bad flag"))?
            }
            "reconcile" => {
                spec.chaos.policy.reconcile = parse_onoff(value).ok_or_else(|| err("bad flag"))?
            }
            "staleness-budget" => {
                spec.chaos.policy.staleness_budget = value.parse().map_err(|_| err("bad budget"))?
            }
            "declare-degraded" => {
                spec.chaos.policy.declare_degraded =
                    parse_onoff(value).ok_or_else(|| err("bad flag"))?
            }
            "max-backoff" => {
                spec.chaos.policy.max_backoff = value.parse().map_err(|_| err("bad backoff"))?
            }
            _ => return Err(err("unknown key")),
        }
    }
    spec.validate()?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_generated_spec() {
        for seed in 0..50u64 {
            for weakness in [
                FleetWeakness::None,
                FleetWeakness::NoRetry,
                FleetWeakness::NoReconcile,
                FleetWeakness::UnboundedStaleness,
            ] {
                let spec = generate_fleet(seed, weakness);
                spec.validate().expect("generated specs validate");
                let text = render_fleet(&spec);
                let back = parse_fleet(&text).expect("parse back");
                assert_eq!(spec, back, "seed {seed} did not round-trip:\n{text}");
            }
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse_fleet("").is_err()); // zero homes
        assert!(parse_fleet("homes=4\nneighborhood=2\nrounds=0\n").is_err());
        assert!(parse_fleet("homes=4\nneighborhood=2\nrounds=8\ndrop-pm=2000\n").is_err());
        assert!(parse_fleet("homes=4\nneighborhood=2\nrounds=8\nretry=maybe\n").is_err());
        assert!(parse_fleet("homes=4\nneighborhood=2\nrounds=8\nwibble=1\n").is_err());
    }

    #[test]
    fn the_sound_policy_survives_the_generated_family() {
        for seed in 0..40u64 {
            let spec = generate_fleet(seed, FleetWeakness::None);
            let violations = fleet_violations(&spec);
            assert!(
                violations.is_empty(),
                "sound policy violated on seed {seed}: {violations:?}\n{}",
                render_fleet(&spec)
            );
        }
    }

    /// Each weakened arm is caught somewhere in a modest seed sweep, and
    /// the shrunk repro still reproduces the same invariant.
    #[test]
    fn weakened_arms_are_caught_and_shrink_to_replayable_repros() {
        for (weakness, invariant) in [
            (FleetWeakness::NoRetry, "lost-discovery"),
            (FleetWeakness::NoReconcile, "unrecovered"),
            (FleetWeakness::UnboundedStaleness, "staleness-budget"),
        ] {
            let mut caught = false;
            for seed in 0..64u64 {
                let spec = generate_fleet(seed, weakness);
                let violations = fleet_violations(&spec);
                if violations.iter().any(|v| v.invariant == invariant) {
                    let repro = shrink_fleet(&spec).expect("violating spec shrinks");
                    assert!(
                        repro.violations.iter().any(|v| v.invariant == invariant),
                        "{}: shrink lost {invariant}",
                        weakness.label()
                    );
                    let replayed = parse_fleet(&repro.artifact).expect("artifact replays");
                    assert_eq!(replayed, repro.spec);
                    assert!(
                        repro.spec.homes <= spec.homes && repro.spec.rounds <= spec.rounds,
                        "shrink must not grow the spec"
                    );
                    caught = true;
                    break;
                }
            }
            assert!(caught, "{}: no seed in the sweep tripped {invariant}", weakness.label());
        }
    }
}
