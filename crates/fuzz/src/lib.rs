//! Adversarial scenario vetting for the IoTSec defense (E23).
//!
//! The paper's claim — network-level defenses absorb unfixable
//! device flaws — is only as strong as the workloads it survives.
//! VetIoT-style, this crate turns the repo's three hand-written homes
//! into an unbounded, *seeded* scenario family and hammers the chaos
//! (E15) + safety (E18) layers with it:
//!
//! * [`gen`] — deterministic generator: device mixes over the Table 1
//!   vulnerability families, topology shapes, recipe corpora, chaos
//!   schedules and scripted attack sequences, all from one `u64` seed;
//! * [`spec`] — the scenario grammar and its lowering to a
//!   [`iotsec::deployment::Deployment`] for either oracle arm;
//! * [`oracle`] — the differential oracle: defense-on must hold every
//!   E18 + vet invariant, defense-off must prove the scenario is not
//!   vacuous;
//! * [`shrink`] — ddmin minimization of any violation to a 1-minimal
//!   scenario along the device / recipe / fault / attack / horizon
//!   axes;
//! * [`artifact`] — replayable minimal-repro files (`tests/repros/`).
//!
//! The E23 campaign in `iotsec-bench` fans hundreds of these scenarios
//! across the sweep engine and gates CI on zero violations and zero
//! vacuous passes.
//!
//! E25 extends the pipeline from one home to the fleet: [`fleet`]
//! generates seeded [`iotsec_fleet::FleetChaos`] schedules, judges them
//! with the `check_fleet_trace` oracle, and ddmin-shrinks weakened-arm
//! violations into the `tests/repros/fleet/` corpus.

pub mod artifact;
pub mod fleet;
pub mod gen;
pub mod oracle;
pub mod shrink;
pub mod spec;

pub use fleet::{
    fleet_violations, generate_fleet, parse_fleet, render_fleet, shrink_fleet, FleetRepro,
    FleetSpec, FleetWeakness,
};
pub use gen::{generate, GenConfig};
pub use oracle::{run as run_oracle, OracleReport, Verdict};
pub use shrink::{shrink, MinimalRepro};
pub use spec::{Arm, AttackStep, DeviceSpec, FaultSpec, RecipeSpec, ScenarioSpec, Weakness};
