//! Replayable minimal-repro artifacts.
//!
//! A shrunk violation is saved as a small, human-readable scenario file
//! (RON-style `key=value` lines, one clause per line) that is *complete*:
//! parsing it back yields the exact [`ScenarioSpec`] — seed included —
//! so `oracle::run(&parse(file)?)` reproduces the violation with no
//! other state. The corpus under `tests/repros/` is parsed and replayed
//! by a regression test on every CI run.
//!
//! Grammar (order significant only within a section; `#` starts a
//! comment line):
//!
//! ```text
//! seed=<u64>            edges=<u8>           horizon=<u32 secs>
//! weakness=none|fail-open|no-quarantine
//! device=row:<1..=7> | device=clean:<class-name>
//! recipe=<env-var>:<value>:<target-index>
//! fault=crash:<at-secs>:<device> | fault=flap:<device>:<down>:<up>
//!     | fault=outage:<at-secs>:<dur-secs>
//! step=wait:<secs> | step=probe:<device> | step=exploit:<device>
//! ```

use crate::spec::{AttackStep, DeviceSpec, FaultSpec, RecipeSpec, ScenarioSpec, Weakness};
use iotdev::device::DeviceClass;
use iotdev::env::EnvVar;

fn env_var_label(var: EnvVar) -> &'static str {
    match var {
        EnvVar::Temperature => "temperature",
        EnvVar::Smoke => "smoke",
        EnvVar::Light => "light",
        EnvVar::Occupancy => "occupancy",
        EnvVar::Window => "window",
        EnvVar::Door => "door",
        EnvVar::PowerDraw => "power-draw",
    }
}

fn parse_env_var(s: &str) -> Option<EnvVar> {
    EnvVar::ALL.into_iter().find(|v| env_var_label(*v) == s)
}

fn parse_class(s: &str) -> Option<DeviceClass> {
    DeviceClass::ALL.into_iter().find(|c| c.name() == s)
}

/// Intern a parsed trigger value into the variable's `'static` domain.
fn intern_value(var: EnvVar, s: &str) -> Option<&'static str> {
    var.domain().iter().copied().find(|v| *v == s)
}

/// Render `spec` as a replayable artifact.
pub fn render(spec: &ScenarioSpec) -> String {
    let mut out = String::new();
    out.push_str("# iotsec-vet minimal repro (E23); replay: iotsec_fuzz::artifact::parse\n");
    out.push_str(&format!("seed={}\n", spec.seed));
    out.push_str(&format!("edges={}\n", spec.edges));
    out.push_str(&format!("horizon={}\n", spec.horizon_secs));
    out.push_str(&format!("weakness={}\n", spec.weakness.label()));
    for d in &spec.devices {
        match d {
            DeviceSpec::Row(r) => out.push_str(&format!("device=row:{r}\n")),
            DeviceSpec::Clean(c) => out.push_str(&format!("device=clean:{}\n", c.name())),
        }
    }
    for r in &spec.recipes {
        out.push_str(&format!("recipe={}:{}:{}\n", env_var_label(r.var), r.value, r.target));
    }
    for f in &spec.faults {
        match *f {
            FaultSpec::CrashUmbox { at_secs, device } => {
                out.push_str(&format!("fault=crash:{at_secs}:{device}\n"))
            }
            FaultSpec::FlapUplink { device, down_secs, up_secs } => {
                out.push_str(&format!("fault=flap:{device}:{down_secs}:{up_secs}\n"))
            }
            FaultSpec::CtlOutage { at_secs, dur_secs } => {
                out.push_str(&format!("fault=outage:{at_secs}:{dur_secs}\n"))
            }
        }
    }
    for s in &spec.attack {
        match *s {
            AttackStep::Wait(secs) => out.push_str(&format!("step=wait:{secs}\n")),
            AttackStep::Probe(d) => out.push_str(&format!("step=probe:{d}\n")),
            AttackStep::Exploit(d) => out.push_str(&format!("step=exploit:{d}\n")),
        }
    }
    out
}

/// Parse an artifact back into a validated [`ScenarioSpec`].
pub fn parse(text: &str) -> Result<ScenarioSpec, String> {
    let mut spec = ScenarioSpec {
        seed: 0,
        edges: 0,
        horizon_secs: 0,
        weakness: Weakness::None,
        devices: Vec::new(),
        recipes: Vec::new(),
        faults: Vec::new(),
        attack: Vec::new(),
    };
    let mut saw_seed = false;
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) =
            line.split_once('=').ok_or_else(|| format!("line {}: no '=' in {line:?}", n + 1))?;
        let err = |msg: &str| format!("line {}: {msg}: {line:?}", n + 1);
        let fields: Vec<&str> = value.split(':').collect();
        match key {
            "seed" => {
                spec.seed = value.parse().map_err(|_| err("bad seed"))?;
                saw_seed = true;
            }
            "edges" => spec.edges = value.parse().map_err(|_| err("bad edges"))?,
            "horizon" => spec.horizon_secs = value.parse().map_err(|_| err("bad horizon"))?,
            "weakness" => {
                spec.weakness = Weakness::parse(value).ok_or_else(|| err("unknown weakness"))?
            }
            "device" => match fields.as_slice() {
                ["row", r] => {
                    spec.devices.push(DeviceSpec::Row(r.parse().map_err(|_| err("bad row"))?))
                }
                ["clean", c] => spec
                    .devices
                    .push(DeviceSpec::Clean(parse_class(c).ok_or_else(|| err("unknown class"))?)),
                _ => return Err(err("bad device clause")),
            },
            "recipe" => match fields.as_slice() {
                [var, val, target] => {
                    let var = parse_env_var(var).ok_or_else(|| err("unknown env var"))?;
                    spec.recipes.push(RecipeSpec {
                        var,
                        value: intern_value(var, val).ok_or_else(|| err("value not in domain"))?,
                        target: target.parse().map_err(|_| err("bad target"))?,
                    });
                }
                _ => return Err(err("bad recipe clause")),
            },
            "fault" => match fields.as_slice() {
                ["crash", at, dev] => spec.faults.push(FaultSpec::CrashUmbox {
                    at_secs: at.parse().map_err(|_| err("bad time"))?,
                    device: dev.parse().map_err(|_| err("bad device"))?,
                }),
                ["flap", dev, down, up] => spec.faults.push(FaultSpec::FlapUplink {
                    device: dev.parse().map_err(|_| err("bad device"))?,
                    down_secs: down.parse().map_err(|_| err("bad time"))?,
                    up_secs: up.parse().map_err(|_| err("bad time"))?,
                }),
                ["outage", at, dur] => spec.faults.push(FaultSpec::CtlOutage {
                    at_secs: at.parse().map_err(|_| err("bad time"))?,
                    dur_secs: dur.parse().map_err(|_| err("bad duration"))?,
                }),
                _ => return Err(err("bad fault clause")),
            },
            "step" => match fields.as_slice() {
                ["wait", s] => {
                    spec.attack.push(AttackStep::Wait(s.parse().map_err(|_| err("bad secs"))?))
                }
                ["probe", d] => {
                    spec.attack.push(AttackStep::Probe(d.parse().map_err(|_| err("bad device"))?))
                }
                ["exploit", d] => {
                    spec.attack.push(AttackStep::Exploit(d.parse().map_err(|_| err("bad device"))?))
                }
                _ => return Err(err("bad step clause")),
            },
            _ => return Err(err("unknown key")),
        }
    }
    if !saw_seed {
        return Err("artifact has no seed".into());
    }
    if spec.horizon_secs == 0 {
        return Err("artifact has no horizon".into());
    }
    spec.validate()?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn round_trips_every_generated_scenario() {
        for seed in 0..100u64 {
            let spec = generate(seed, &GenConfig::weakened(Weakness::FailOpen));
            let text = render(&spec);
            let back = parse(&text).expect("parse back");
            assert_eq!(spec, back, "seed {seed} did not round-trip:\n{text}");
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("").is_err()); // no seed
        assert!(parse("seed=1\nhorizon=10\ndevice=row:9\n").is_err()); // bad row
        assert!(parse("seed=1\nhorizon=10\ndevice=row:1\nstep=exploit:5\n").is_err()); // range
        assert!(parse("seed=1\nhorizon=10\nrecipe=occupancy:sideways:0\n").is_err()); // domain
        assert!(parse("seed=x\n").is_err());
        assert!(parse("wibble=1\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# hello\n\nseed=3\nhorizon=10\ndevice=row:1\nstep=exploit:0\n";
        let spec = parse(text).expect("parses");
        assert_eq!(spec.seed, 3);
        assert_eq!(spec.devices.len(), 1);
    }
}
