//! The defense-on / defense-off differential oracle.
//!
//! One [`ScenarioSpec`] is lowered twice (see [`Arm`]) and both worlds
//! run to the spec's horizon:
//!
//! * **defense-on** must satisfy every E18 safety invariant plus the
//!   vet-specific trace invariants ([`iotctl::safety::check_trace`]:
//!   no post-quarantine edge-crossing, delivery quiescence, breaker FSM
//!   order; fail-closed deployments additionally admit *zero* fail-open
//!   verdicts), and must not let the attack reach its target;
//! * **defense-off** must show the attack *does* reach its target when
//!   nothing defends — otherwise the scenario proves nothing and the
//!   run is [`Verdict::Vacuous`] rather than a pass.
//!
//! Everything is a pure function of the spec: verdicts, violations and
//! the rendered divergence are byte-identical across reruns and thread
//! counts.

use crate::spec::{Arm, ScenarioSpec, Weakness};
use iotctl::safety::{check_trace, check_trace_fail_closed, Violation};
use iotsec::metrics::Metrics;
use iotsec::world::World;
use trace::{first_divergence, render_divergence, EventClass, TraceConfig, Tracer};

/// Oracle outcome for one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Defense-on held every invariant and defense-off proved the
    /// scenario non-vacuous.
    Pass,
    /// Defense-on held, but the attack never reached its target even
    /// undefended — the scenario exercises nothing.
    Vacuous,
    /// Defense-on broke at least one invariant.
    Violation,
}

impl Verdict {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Vacuous => "vacuous",
            Verdict::Violation => "violation",
        }
    }
}

/// Full differential result for one scenario.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// The verdict.
    pub verdict: Verdict,
    /// Defense-on invariant violations (empty unless `Violation`).
    pub violations: Vec<Violation>,
    /// Whether the defense-off arm reached the target (non-vacuity).
    pub off_landed: bool,
    /// Defense-on metrics one-liner.
    pub on_summary: String,
    /// Defense-off metrics one-liner.
    pub off_summary: String,
    /// First divergence between the arms' control traces (E17
    /// rendering), present on violations: where enforcement should have
    /// changed history, and didn't hold.
    pub divergence: Option<String>,
}

fn run_world(spec: &ScenarioSpec, arm: Arm) -> (Metrics, Vec<(u64, trace::TraceEvent)>) {
    let d = spec.deployment(arm);
    // Full trace on the defended arm: the vet invariants need µmbox
    // verdicts (Packet class). The bare arm only feeds the divergence
    // rendering, so Control suffices.
    let config = match arm {
        Arm::DefenseOn => TraceConfig::full(),
        Arm::DefenseOff => TraceConfig::control_only(),
    };
    let tracer = Tracer::new(config);
    let mut w = World::new_traced(&d, tracer.clone());
    w.run(spec.horizon());
    (w.report(), tracer.events())
}

/// Render only the Control-class events of a trace as canonical JSONL
/// (the golden-trace profile), so the two arms diverge on enforcement
/// decisions rather than on packet volume.
fn control_jsonl(events: &[(u64, trace::TraceEvent)]) -> String {
    let mut out = String::new();
    for (at, ev) in events {
        if ev.class() == EventClass::Control {
            ev.write_json(*at, &mut out);
            out.push('\n');
        }
    }
    out
}

/// Defense-on arm only: run it and collect every invariant violation.
/// This is the shrinker's predicate — it skips the defense-off world.
pub fn defense_on_violations(spec: &ScenarioSpec) -> Vec<Violation> {
    let (metrics, events) = run_world(spec, Arm::DefenseOn);
    let mut violations = match spec.weakness {
        // The shipping arm is fail-closed: any fail-open verdict is
        // itself a breach of the FailClosed contract.
        Weakness::None => check_trace_fail_closed(&events),
        _ => check_trace(&events),
    };
    if metrics.attack_reached_target() {
        let device = metrics
            .compromised
            .iter()
            .chain(metrics.privacy_leaked.iter())
            .map(|d| d.0)
            .next()
            .unwrap_or(0);
        violations.push(Violation {
            at_ns: spec.horizon().as_nanos(),
            device,
            invariant: "defense-breach",
        });
    }
    violations.sort();
    violations
}

/// Run the full differential oracle on one scenario.
pub fn run(spec: &ScenarioSpec) -> OracleReport {
    let (on_metrics, on_events) = run_world(spec, Arm::DefenseOn);
    let mut violations = match spec.weakness {
        Weakness::None => check_trace_fail_closed(&on_events),
        _ => check_trace(&on_events),
    };
    if on_metrics.attack_reached_target() {
        let device = on_metrics
            .compromised
            .iter()
            .chain(on_metrics.privacy_leaked.iter())
            .map(|d| d.0)
            .next()
            .unwrap_or(0);
        violations.push(Violation {
            at_ns: spec.horizon().as_nanos(),
            device,
            invariant: "defense-breach",
        });
    }
    violations.sort();
    let (off_metrics, off_events) = run_world(spec, Arm::DefenseOff);
    let off_landed = off_metrics.attack_reached_target();
    let verdict = if !violations.is_empty() {
        Verdict::Violation
    } else if !off_landed {
        Verdict::Vacuous
    } else {
        Verdict::Pass
    };
    let divergence = (verdict == Verdict::Violation)
        .then(|| {
            first_divergence(&control_jsonl(&on_events), &control_jsonl(&off_events))
                .map(|d| render_divergence(&d))
        })
        .flatten();
    OracleReport {
        verdict,
        violations,
        off_landed,
        on_summary: on_metrics.summary(),
        off_summary: off_metrics.summary(),
        divergence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn a_known_good_scenario_passes_non_vacuously() {
        // Seed 0 of the default family: correct defense, real exploit.
        let spec = generate(0, &GenConfig::default());
        let report = run(&spec);
        assert!(report.off_landed, "undefended attack must land: {}", report.off_summary);
        assert_eq!(report.verdict, Verdict::Pass, "violations: {:?}", report.violations);
        assert!(report.divergence.is_none());
    }

    #[test]
    fn oracle_is_deterministic() {
        let spec = generate(3, &GenConfig::default());
        let a = run(&spec);
        let b = run(&spec);
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.on_summary, b.on_summary);
        assert_eq!(a.off_summary, b.off_summary);
    }
}
