//! The scenario grammar: a serializable, index-based description of one
//! randomized home that deterministically lowers to a [`Deployment`].
//!
//! Everything here is *data* — device mix, topology shape, recipe
//! corpus, vulnerability placement (Table 1 rows), chaos schedule and
//! attack script all reference devices by **index** into
//! [`ScenarioSpec::devices`], so the delta-debugging shrinker can drop
//! a device and remap every dependent recipe, fault and attack step
//! mechanically. The lowering in [`ScenarioSpec::deployment`] is the
//! single source of truth for both oracle arms: the *same* spec builds
//! the defense-on and the defense-off world, differing only in the
//! defense/safety/chaos attachment.

use iotctl::safety::SafetyConfig;
use iotdev::attacker::AttackAuth;
use iotdev::device::DeviceClass;
use iotdev::env::EnvVar;
use iotdev::proto::{ControlAction, MgmtCommand};
use iotdev::vuln::Vulnerability;
use iotnet::time::{SimDuration, SimTime};
use iotpolicy::recipe::{Recipe, RecipeAction, Trigger};
use iotsec::chaos::ChaosConfig;
use iotsec::defense::Defense;
use iotsec::deployment::{Deployment, DeviceSetup, Site, StepSpec};

/// One device slot: a Table 1 vulnerability family or a clean class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceSpec {
    /// `DeviceSetup::table1_row(row)`, row in 1..=7.
    Row(u8),
    /// A clean (no-vuln) device of the given class.
    Clean(DeviceClass),
}

impl DeviceSpec {
    /// Whether this slot carries a Table 1 vulnerability.
    pub fn is_vulnerable(self) -> bool {
        matches!(self, DeviceSpec::Row(_))
    }
}

/// One IFTTT-style recipe: an environment trigger driving a benign
/// control action on a device. The action is derived from the target's
/// class so the corpus never opens windows or unlocks doors — recipes
/// stress the hub/control path, not the physical-breach metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecipeSpec {
    /// Trigger variable.
    pub var: EnvVar,
    /// Trigger value (must be in the variable's domain).
    pub value: &'static str,
    /// Target device index.
    pub target: usize,
}

/// One scheduled fault, in the chaos layer's explicit-schedule form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Crash the µmbox chain of device `device` at `at_secs`.
    CrashUmbox { at_secs: u32, device: usize },
    /// Take device `device`'s uplink down over `[down_secs, up_secs)`.
    FlapUplink { device: usize, down_secs: u32, up_secs: u32 },
    /// Controller outage starting at `at_secs` for `dur_secs`.
    CtlOutage { at_secs: u32, dur_secs: u32 },
}

impl FaultSpec {
    /// The device index this fault pins, if any.
    pub fn device(self) -> Option<usize> {
        match self {
            FaultSpec::CrashUmbox { device, .. } | FaultSpec::FlapUplink { device, .. } => {
                Some(device)
            }
            FaultSpec::CtlOutage { .. } => None,
        }
    }
}

/// One scripted attacker step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackStep {
    /// Idle for the given seconds.
    Wait(u32),
    /// Probe a device's management plane (decoy noise).
    Probe(usize),
    /// Run the canonical Table 1 exploit for the device's row.
    Exploit(usize),
}

impl AttackStep {
    /// The device index this step targets, if any.
    pub fn device(self) -> Option<usize> {
        match self {
            AttackStep::Probe(d) | AttackStep::Exploit(d) => Some(d),
            AttackStep::Wait(_) => None,
        }
    }
}

/// An intentional defense weakening, applied only to the defense-on
/// arm. `None` is the shipping configuration the vet campaign must
/// find unbreakable; the others exist to prove the oracle and shrinker
/// actually bite (acceptance runs, `tests/repros/`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Weakness {
    /// The real defense: fail-closed chains, full safety monitor.
    #[default]
    None,
    /// Chains fail *open* and the crash watchdog is slow: µmbox crashes
    /// open coverage holes the monitor must flag.
    FailOpen,
    /// [`Weakness::FailOpen`] plus escalation disabled: breaker trips
    /// never quarantine, so holes stay open for the whole run.
    NoQuarantine,
}

impl Weakness {
    /// Stable label for artifacts and reports.
    pub fn label(self) -> &'static str {
        match self {
            Weakness::None => "none",
            Weakness::FailOpen => "fail-open",
            Weakness::NoQuarantine => "no-quarantine",
        }
    }

    /// Parse an artifact label.
    pub fn parse(s: &str) -> Option<Weakness> {
        match s {
            "none" => Some(Weakness::None),
            "fail-open" => Some(Weakness::FailOpen),
            "no-quarantine" => Some(Weakness::NoQuarantine),
            _ => None,
        }
    }
}

/// Which arm of the differential oracle to lower to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// Full defense + safety layer + chaos schedule.
    DefenseOn,
    /// Bare home: no defense, no safety, no chaos. Proves the attack
    /// script actually exercises the vulnerabilities.
    DefenseOff,
}

/// A complete generated scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// World/traffic seed (also seeds the chaos schedule RNG).
    pub seed: u64,
    /// 0 = single-switch home; n > 0 = enterprise with n edge switches.
    pub edges: u8,
    /// Run length in sim-seconds.
    pub horizon_secs: u32,
    /// Defense weakening for the defense-on arm.
    pub weakness: Weakness,
    /// Device slots (index space for everything below).
    pub devices: Vec<DeviceSpec>,
    /// Recipe corpus.
    pub recipes: Vec<RecipeSpec>,
    /// Chaos schedule.
    pub faults: Vec<FaultSpec>,
    /// Attack script.
    pub attack: Vec<AttackStep>,
}

impl ScenarioSpec {
    /// Run length as a duration.
    pub fn horizon(&self) -> SimDuration {
        SimDuration::from_secs(self.horizon_secs as u64)
    }

    /// Indices of vulnerable devices.
    pub fn vulnerable(&self) -> Vec<usize> {
        (0..self.devices.len()).filter(|&i| self.devices[i].is_vulnerable()).collect()
    }

    /// Structural validity: every index in range, rows in 1..=7, trigger
    /// values in domain. The generator always produces valid specs; the
    /// artifact parser re-checks on load.
    pub fn validate(&self) -> Result<(), String> {
        if self.devices.is_empty() {
            return Err("scenario has no devices".into());
        }
        for d in &self.devices {
            if let DeviceSpec::Row(r) = d {
                if !(1..=7).contains(r) {
                    return Err(format!("table 1 row {r} out of range"));
                }
            }
        }
        let n = self.devices.len();
        for r in &self.recipes {
            if r.target >= n {
                return Err(format!("recipe target {} out of range", r.target));
            }
            if !r.var.domain().contains(&r.value) {
                return Err(format!("recipe value {:?} not in {:?} domain", r.value, r.var));
            }
        }
        for f in &self.faults {
            if f.device().is_some_and(|d| d >= n) {
                return Err(format!("fault device out of range: {f:?}"));
            }
        }
        for s in &self.attack {
            if s.device().is_some_and(|d| d >= n) {
                return Err(format!("attack step device out of range: {s:?}"));
            }
        }
        Ok(())
    }

    /// Lower to a runnable [`Deployment`] for the given oracle arm.
    /// Deterministic: the same spec and arm always build the same
    /// deployment, byte for byte.
    pub fn deployment(&self, arm: Arm) -> Deployment {
        let mut d = Deployment::new();
        d.seed = self.seed;
        if self.edges > 0 {
            d.site = Site::Enterprise { edges: self.edges as usize };
        }
        let ids: Vec<_> = self
            .devices
            .iter()
            .map(|spec| match spec {
                DeviceSpec::Row(r) => d.device(DeviceSetup::table1_row(*r)),
                DeviceSpec::Clean(c) => d.device(DeviceSetup::clean(*c)),
            })
            .collect();
        // Row 4 (leaked key pair): the attacker holds the fleet key,
        // extracted offline — mirror `scenario::table1_row`.
        for (i, spec) in self.devices.iter().enumerate() {
            if *spec == DeviceSpec::Row(4) {
                for v in &d.devices[ids[i].0 as usize].vulns {
                    if let Vulnerability::ExposedKeyPair { key } = v {
                        d.pre_stolen_keys.push(*key);
                    }
                }
            }
        }
        for (n, r) in self.recipes.iter().enumerate() {
            let target = ids[r.target];
            let class = match self.devices[r.target] {
                DeviceSpec::Clean(c) => c,
                DeviceSpec::Row(_) => d.devices[target.0 as usize].class,
            };
            // Benign action per class: color for bulbs, power for the
            // rest — never Open/Unlock (no physical-breach coupling).
            let action = if class == DeviceClass::LightBulb {
                ControlAction::SetColor(1)
            } else {
                ControlAction::TurnOff
            };
            d.recipe(Recipe {
                id: n as u32,
                trigger: Trigger::EnvEquals(r.var, r.value),
                action: RecipeAction { target, action },
            });
        }
        let mut steps = Vec::new();
        for s in &self.attack {
            match *s {
                AttackStep::Wait(secs) => {
                    steps.push(StepSpec::Wait(SimDuration::from_secs(secs as u64)))
                }
                AttackStep::Probe(i) => steps.push(StepSpec::Probe(ids[i])),
                AttackStep::Exploit(i) => {
                    let dev = ids[i];
                    match self.devices[i] {
                        DeviceSpec::Row(1) => {
                            steps.push(StepSpec::DictionaryLogin(dev));
                            steps.push(StepSpec::Mgmt(dev, MgmtCommand::GetImage));
                        }
                        DeviceSpec::Row(2) | DeviceSpec::Row(3) => {
                            steps.push(StepSpec::Login(dev, "anyone", "anything"));
                            steps.push(StepSpec::Mgmt(dev, MgmtCommand::GetConfig));
                        }
                        DeviceSpec::Row(4) => steps.push(StepSpec::Control(
                            dev,
                            ControlAction::TurnOff,
                            AttackAuth::StolenKey,
                        )),
                        DeviceSpec::Row(5) => steps.push(StepSpec::Control(
                            dev,
                            ControlAction::SetPhase(2),
                            AttackAuth::None,
                        )),
                        DeviceSpec::Row(6) => {
                            steps.push(StepSpec::DnsReflect { reflector: dev, queries: 50 });
                            steps.push(StepSpec::Wait(SimDuration::from_secs(2)));
                        }
                        DeviceSpec::Row(7) => {
                            steps.push(StepSpec::Cloud(dev, ControlAction::TurnOff))
                        }
                        // Exploiting a clean device degrades to a probe.
                        _ => steps.push(StepSpec::Probe(dev)),
                    }
                }
            }
        }
        d.campaign(steps);
        if arm == Arm::DefenseOff {
            return d;
        }
        d.defend_with(Defense::iotsec());
        let mut chaos = ChaosConfig::new().with_seed(self.seed);
        match self.weakness {
            // The shipping posture: security over availability.
            Weakness::None => chaos = chaos.fail_closed(),
            // Weakened arms fail open with a slow watchdog, so crash
            // holes stay open long enough to leak.
            Weakness::FailOpen | Weakness::NoQuarantine => {
                chaos = chaos.with_watchdog(SimDuration::from_secs(20));
            }
        }
        for f in &self.faults {
            match *f {
                FaultSpec::CrashUmbox { at_secs, device } => {
                    chaos = chaos.crash(SimTime::from_secs(at_secs as u64), ids[device]);
                }
                FaultSpec::FlapUplink { device, down_secs, up_secs } => {
                    chaos = chaos.flap(
                        ids[device],
                        SimTime::from_secs(down_secs as u64),
                        SimTime::from_secs(up_secs as u64),
                    );
                }
                FaultSpec::CtlOutage { at_secs, dur_secs } => {
                    chaos = chaos.outage(
                        SimTime::from_secs(at_secs as u64),
                        SimDuration::from_secs(dur_secs as u64),
                    );
                }
            }
        }
        d.chaos(chaos);
        let safety = match self.weakness {
            Weakness::NoQuarantine => SafetyConfig { escalate: false, ..SafetyConfig::default() },
            _ => SafetyConfig::default(),
        };
        d.safety(safety);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScenarioSpec {
        ScenarioSpec {
            seed: 7,
            edges: 0,
            horizon_secs: 20,
            weakness: Weakness::None,
            devices: vec![DeviceSpec::Row(1), DeviceSpec::Clean(DeviceClass::LightBulb)],
            recipes: vec![RecipeSpec { var: EnvVar::Occupancy, value: "absent", target: 1 }],
            faults: vec![FaultSpec::CrashUmbox { at_secs: 5, device: 0 }],
            attack: vec![AttackStep::Wait(2), AttackStep::Exploit(0)],
        }
    }

    #[test]
    fn tiny_spec_is_valid_and_lowers_to_both_arms() {
        let spec = tiny();
        spec.validate().expect("valid");
        let on = spec.deployment(Arm::DefenseOn);
        assert!(on.chaos.is_some());
        assert!(on.safety.is_some());
        assert_eq!(on.devices.len(), 2);
        assert_eq!(on.recipes.len(), 1);
        let off = spec.deployment(Arm::DefenseOff);
        assert!(off.chaos.is_none());
        assert!(off.safety.is_none());
        // Same homes, same campaign — only the defense differs.
        assert_eq!(on.campaign.len(), off.campaign.len());
    }

    #[test]
    fn row4_exploit_preloads_the_stolen_key() {
        let mut spec = tiny();
        spec.devices[0] = DeviceSpec::Row(4);
        let d = spec.deployment(Arm::DefenseOff);
        assert!(!d.pre_stolen_keys.is_empty());
    }

    #[test]
    fn out_of_range_references_fail_validation() {
        let mut spec = tiny();
        spec.attack.push(AttackStep::Exploit(9));
        assert!(spec.validate().is_err());
    }

    #[test]
    fn weakness_flips_failure_mode_and_escalation() {
        let mut spec = tiny();
        spec.weakness = Weakness::NoQuarantine;
        let d = spec.deployment(Arm::DefenseOn);
        assert!(!d.safety.expect("safety on").escalate);
    }
}
