//! The emission handle and the buffer behind it.
//!
//! A [`Tracer`] is a cheap cloneable handle that every emitter on the
//! enforcement path holds (switches, fault scheduler, µmbox chains, the
//! delivery channel, the world). Disabled — the default — it is a
//! `None` and an [`Tracer::emit`] call is a branch on a niche: no
//! allocation, no formatting, no buffer. That is the zero-cost contract
//! `tests/alloc_counter.rs` pins.
//!
//! Enabled, all clones share one [`TraceBuffer`] via `Rc<RefCell<_>>`
//! (worlds are single-threaded; parallel sweeps give each world its own
//! tracer and compare the rendered strings), and the buffer records
//! `(sim-time ns, event)` pairs in emission order, masked by
//! [`TraceConfig`].

use crate::event::{EventClass, TraceEvent};
use std::cell::RefCell;
use std::rc::Rc;

/// Which event classes a tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record control-plane / lifecycle events (compact; golden files).
    pub control: bool,
    /// Record per-packet data-plane events (bulky; differential tests).
    pub packet: bool,
}

impl TraceConfig {
    /// Control-plane events only — the golden-trace profile.
    pub fn control_only() -> Self {
        TraceConfig { control: true, packet: false }
    }

    /// Everything — the differential-test profile.
    pub fn full() -> Self {
        TraceConfig { control: true, packet: true }
    }

    fn accepts(&self, class: EventClass) -> bool {
        match class {
            EventClass::Control => self.control,
            EventClass::Packet => self.packet,
        }
    }
}

/// The shared recording buffer: `(sim-time ns, event)` in emission
/// order.
#[derive(Debug)]
struct TraceBuffer {
    config: TraceConfig,
    events: Vec<(u64, TraceEvent)>,
}

/// Cloneable, zero-cost-when-disabled emission handle.
///
/// `Default` is the disabled tracer, so structs that derive `Default`
/// (e.g. `iotnet::faults::FaultScheduler`) stay derivable.
#[derive(Debug, Clone, Default)]
pub struct Tracer(Option<Rc<RefCell<TraceBuffer>>>);

impl Tracer {
    /// A tracer that records nothing and allocates nothing.
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// A recording tracer with the given class mask.
    pub fn new(config: TraceConfig) -> Self {
        Tracer(Some(Rc::new(RefCell::new(TraceBuffer { config, events: Vec::new() }))))
    }

    /// Whether this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record `event` at sim-time `at_ns` if enabled and the event's
    /// class is in the mask. Disabled: one branch, nothing else.
    #[inline]
    pub fn emit(&self, at_ns: u64, event: TraceEvent) {
        if let Some(buf) = &self.0 {
            let mut buf = buf.borrow_mut();
            if buf.config.accepts(event.class()) {
                buf.events.push((at_ns, event));
            }
        }
    }

    /// Number of recorded events (0 when disabled).
    pub fn len(&self) -> usize {
        self.0.as_ref().map_or(0, |b| b.borrow().events.len())
    }

    /// True when no events have been recorded (always true disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the recorded `(sim-time ns, event)` pairs.
    pub fn events(&self) -> Vec<(u64, TraceEvent)> {
        self.0.as_ref().map_or_else(Vec::new, |b| b.borrow().events.clone())
    }

    /// Snapshot of the events recorded at index `from` onward. This is
    /// the subscription primitive: a consumer keeps a cursor ([`Tracer::len`]
    /// after each read) and pulls only the tail, so per-tick polling
    /// stays linear in events emitted, not events retained.
    pub fn events_since(&self, from: usize) -> Vec<(u64, TraceEvent)> {
        self.0.as_ref().map_or_else(Vec::new, |b| {
            let buf = b.borrow();
            buf.events.get(from..).unwrap_or(&[]).to_vec()
        })
    }

    /// Render the buffer as canonical JSONL — one event per line, each
    /// line terminated by `\n`. Empty string when disabled or empty.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        if let Some(buf) = &self.0 {
            for (at, ev) in &buf.borrow().events {
                ev.write_json(*at, &mut out);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(5, TraceEvent::Failover { count: 1 });
        assert!(t.is_empty());
        assert_eq!(t.to_jsonl(), "");
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Tracer::default().is_enabled());
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::new(TraceConfig::full());
        let u = t.clone();
        u.emit(1, TraceEvent::CacheMiss { switch: 0 });
        t.emit(2, TraceEvent::CacheHit { switch: 0 });
        assert_eq!(t.len(), 2);
        assert_eq!(t.to_jsonl(), u.to_jsonl());
    }

    #[test]
    fn class_mask_filters_packet_events() {
        let t = Tracer::new(TraceConfig::control_only());
        t.emit(1, TraceEvent::CacheHit { switch: 0 });
        t.emit(2, TraceEvent::FaultFired { kind: "wire-down" });
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].1.kind(), "fault-fired");
    }

    #[test]
    fn events_since_reads_only_the_tail() {
        let t = Tracer::new(TraceConfig::full());
        t.emit(1, TraceEvent::CacheHit { switch: 0 });
        t.emit(2, TraceEvent::CacheMiss { switch: 0 });
        let cursor = t.len();
        t.emit(3, TraceEvent::PolicyDrop { switch: 1 });
        let tail = t.events_since(cursor);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].0, 3);
        assert!(t.events_since(t.len()).is_empty());
        assert!(t.events_since(999).is_empty());
        assert!(Tracer::disabled().events_since(0).is_empty());
    }

    #[test]
    fn jsonl_preserves_emission_order_at_equal_times() {
        let t = Tracer::new(TraceConfig::full());
        t.emit(7, TraceEvent::UmboxEnter { device: 3 });
        t.emit(7, TraceEvent::UmboxExit { device: 3, verdict: "pass" });
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("umbox-enter"));
        assert!(lines[1].contains("umbox-exit"));
    }
}
