//! The event vocabulary of the enforcement path, and its canonical
//! serialization.
//!
//! Every variant carries only primitive fields (`u32` ids, `u64`
//! nanosecond spans, `&'static str` labels) so this crate needs no
//! dependency on the crates that emit — the ids are interpreted by the
//! reader, exactly like a wire format. The JSONL rendering uses a fixed
//! key order and integer-only values, which makes a byte compare of two
//! traces a semantic compare (the golden-trace contract).

/// Coarse event class, used by [`crate::tracer::TraceConfig`] to mask
/// what a buffer records.
///
/// The split tracks volume: `Control` events are a handful per directive
/// or fault (compact enough to check into git as golden traces), while
/// `Packet` events fire per packet and are compared in memory by the
/// differential property tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// Control-plane and lifecycle events: directive issue → delivery →
    /// install, µmbox launch/ready/swap/retire, crash/respawn/failover,
    /// fault fire/heal, controller outage.
    Control,
    /// Per-packet data-plane events: µmbox enter/exit, flow-decision
    /// cache hit/miss, policy drops.
    Packet,
}

/// One traced event on the enforcement path.
///
/// The timestamp is *not* part of the event — the buffer stores
/// `(sim-time nanos, event)` pairs — so the same vocabulary serves both
/// the live emitters and the aggregator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The control plane issued a directive for a device.
    DirectiveIssued {
        /// Target device id.
        device: u32,
        /// Directive kind: `"launch"`, `"reconfigure"` or `"retire"`.
        kind: &'static str,
    },
    /// A directive reached the data plane (survived the delivery
    /// channel, or took the direct path in non-chaos runs — the event is
    /// emitted symmetrically so the two paths trace identically).
    DirectiveDelivered {
        /// Target device id.
        device: u32,
        /// Directive kind.
        kind: &'static str,
    },
    /// A directive was executed (steer rules installed, chain built or
    /// retired).
    DirectiveInstalled {
        /// Target device id.
        device: u32,
        /// Directive kind.
        kind: &'static str,
    },
    /// The delivery channel suppressed an idempotent re-delivery.
    DirectiveDeduped {
        /// Target device id.
        device: u32,
    },
    /// The delivery channel shed a directive under queue pressure. The
    /// victim is the lowest-criticality, newest entry (see
    /// `iotctl::delivery`), so the payload names the tier that lost.
    DirectiveShed {
        /// Target device id.
        device: u32,
        /// Criticality label of the shed directive: `"telemetry"`,
        /// `"patch-proxy"`, `"revoke"` or `"quarantine"`.
        criticality: &'static str,
    },
    /// The admission controller refused a low-criticality recompute
    /// because the directive backlog exceeded its budget.
    AdmissionShed {
        /// Target device id of the refused directive.
        device: u32,
    },
    /// The delivery channel retried while unreachable.
    DirectiveRetry {
        /// Target device id.
        device: u32,
        /// Attempt number (1-based).
        attempt: u32,
    },
    /// A µmbox launch was requested; the instance serves from `ready_ns`.
    UmboxLaunch {
        /// Protected device id.
        device: u32,
        /// Sim-time (ns) at which the instance starts serving.
        ready_ns: u64,
    },
    /// A booted µmbox's steer rule went live.
    UmboxReady {
        /// Protected device id.
        device: u32,
    },
    /// An in-place chain reconfiguration was applied.
    UmboxSwap {
        /// Protected device id.
        device: u32,
    },
    /// A µmbox chain was retired and its steer rule removed.
    UmboxRetire {
        /// Protected device id.
        device: u32,
    },
    /// Fault injection crashed a µmbox instance.
    UmboxCrash {
        /// Protected device id.
        device: u32,
    },
    /// The lifecycle watchdog respawned a crashed instance.
    UmboxRespawn {
        /// Protected device id.
        device: u32,
    },
    /// The warm standby was promoted to primary.
    Failover {
        /// Cumulative failover count after this promotion.
        count: u64,
    },
    /// A controller outage was injected.
    CtlOutage {
        /// Outage duration in nanoseconds.
        duration_ns: u64,
    },
    /// A network fault fired (wire down, loss/corruption burst begins,
    /// partition cut).
    FaultFired {
        /// Fault kind label, e.g. `"wire-down"`.
        kind: &'static str,
    },
    /// A network fault healed (wire heal, burst clears, partition
    /// heals).
    FaultHealed {
        /// Fault kind label, e.g. `"wire-heal"`.
        kind: &'static str,
    },
    /// A switch's flow-decision cache answered a lookup.
    CacheHit {
        /// Switch id.
        switch: u32,
    },
    /// A switch's flow-decision cache missed (full table scan).
    CacheMiss {
        /// Switch id.
        switch: u32,
    },
    /// A switch dropped a packet by policy.
    PolicyDrop {
        /// Switch id.
        switch: u32,
    },
    /// The safety monitor observed an invariant violation.
    SafetyViolation {
        /// Affected device id (`0` for deployment-wide invariants).
        device: u32,
        /// Invariant label: `"fail-closed-coverage"`,
        /// `"posture-monotonicity"`, `"bounded-staleness"` or
        /// `"fsm-continuity"`.
        invariant: &'static str,
    },
    /// A µmbox circuit breaker tripped (closed/half-open → open) after
    /// repeated crashes; the chain now serves its failure-mode fallback
    /// and the watchdog respawn is held until the cooldown expires.
    BreakerTrip {
        /// Protected device id.
        device: u32,
    },
    /// A circuit breaker's cooldown expired (open → half-open): the
    /// next respawned instance serves a trial window.
    BreakerHalfOpen {
        /// Protected device id.
        device: u32,
    },
    /// A circuit breaker observed a clean trial window and re-closed.
    BreakerClose {
        /// Protected device id.
        device: u32,
    },
    /// The safety monitor escalated a device to the quarantine posture:
    /// a per-class minimal allow-list installed into its edge switch.
    QuarantineInstalled {
        /// Quarantined device id.
        device: u32,
    },
    /// The state-space engine finished expanding one BFS depth: the
    /// exploration-progress event of experiment E19. Emitted with
    /// `at_ns = depth`, so a control-only golden trace of an exploration
    /// is the frontier histogram itself.
    SpaceFrontier {
        /// BFS depth (number of single-slot moves from the initial
        /// state).
        depth: u32,
        /// Number of states first reached at this depth.
        frontier: u64,
    },
    /// A fleet home published a crowdsourced signature discovery to its
    /// neighborhood aggregator (E20). Emitted with `at_ns = round`, so a
    /// control-only golden fleet trace is the propagation schedule
    /// itself.
    FleetDiscovery {
        /// Discovering home id.
        home: u32,
        /// Repository-assigned signature id.
        signature: u64,
    },
    /// A neighborhood aggregator flushed a batch of directive installs
    /// upward/downward during a fleet round barrier (E20). Emitted with
    /// `at_ns = round`.
    FleetBatch {
        /// Neighborhood aggregator id.
        neighborhood: u32,
        /// Number of per-home installs carried by this batch.
        installs: u32,
    },
    /// A home's installed ruleset advanced to a new region intel epoch
    /// (E20). Emitted with `at_ns = round`.
    FleetInstall {
        /// Home id.
        home: u32,
        /// Region intel epoch now installed at this home.
        epoch: u32,
    },
    /// Fleet chaos injected a fault at the aggregation tier (E25):
    /// a flush was dropped/duplicated, an aggregator crashed, a
    /// neighborhood was partitioned from the region, or an install wave
    /// was delayed. Emitted with `at_ns = round`, only on chaos-on runs.
    FleetFault {
        /// Affected neighborhood aggregator id.
        neighborhood: u32,
        /// Fault kind label: `"flush-drop"`, `"flush-dup"`,
        /// `"agg-crash"`, `"partition"` or `"install-delay"`.
        kind: &'static str,
    },
    /// The fleet recovery path repaired a prior fault (E25): a retried
    /// flush landed, a crashed aggregator respawned from the region log,
    /// or a partitioned neighborhood rejoined and was fast-forwarded.
    /// Emitted with `at_ns = round`, only on chaos-on runs.
    FleetRecover {
        /// Recovered neighborhood aggregator id.
        neighborhood: u32,
        /// Recovery kind label: `"flush-retry"`, `"agg-respawn"` or
        /// `"rejoin-fast-forward"`.
        kind: &'static str,
    },
    /// The region absorbed a signature into its canonical intel set
    /// (E25). Emitted with `at_ns = round` once per newly-known
    /// signature, only on chaos-on runs, so `check_fleet_trace` can
    /// join discoveries to region knowledge without the fleet state.
    FleetAbsorb {
        /// Repository-assigned signature id now known to the region.
        signature: u64,
        /// Region epoch after this absorbing round's bump.
        epoch: u32,
    },
    /// The fleet declared degraded mode (E25): a published discovery has
    /// exceeded its staleness budget without every home installing the
    /// goal epoch. Emitted with `at_ns = round` once per overdue round,
    /// only on chaos-on runs — the explicit fail-closed signal the
    /// bounded-staleness invariant requires.
    FleetDegraded {
        /// Goal region epoch the fleet is still converging toward.
        epoch: u32,
        /// Number of homes still below the goal epoch.
        waiting: u32,
    },
    /// A packet entered a µmbox chain.
    UmboxEnter {
        /// Protected device id.
        device: u32,
    },
    /// A packet left a µmbox chain with a verdict.
    UmboxExit {
        /// Protected device id.
        device: u32,
        /// Verdict: `"pass"`, `"drop"`, `"intercept"`, `"fail-open"` or
        /// `"fail-closed"`.
        verdict: &'static str,
    },
}

impl TraceEvent {
    /// The event's class (what [`crate::tracer::TraceConfig`] masks on).
    pub fn class(&self) -> EventClass {
        match self {
            TraceEvent::CacheHit { .. }
            | TraceEvent::CacheMiss { .. }
            | TraceEvent::PolicyDrop { .. }
            | TraceEvent::UmboxEnter { .. }
            | TraceEvent::UmboxExit { .. } => EventClass::Packet,
            _ => EventClass::Control,
        }
    }

    /// Stable kind label (the `"e"` field of the JSONL rendering).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::DirectiveIssued { .. } => "directive-issued",
            TraceEvent::DirectiveDelivered { .. } => "directive-delivered",
            TraceEvent::DirectiveInstalled { .. } => "directive-installed",
            TraceEvent::DirectiveDeduped { .. } => "directive-deduped",
            TraceEvent::DirectiveShed { .. } => "directive-shed",
            TraceEvent::AdmissionShed { .. } => "admission-shed",
            TraceEvent::DirectiveRetry { .. } => "directive-retry",
            TraceEvent::UmboxLaunch { .. } => "umbox-launch",
            TraceEvent::UmboxReady { .. } => "umbox-ready",
            TraceEvent::UmboxSwap { .. } => "umbox-swap",
            TraceEvent::UmboxRetire { .. } => "umbox-retire",
            TraceEvent::UmboxCrash { .. } => "umbox-crash",
            TraceEvent::UmboxRespawn { .. } => "umbox-respawn",
            TraceEvent::Failover { .. } => "failover",
            TraceEvent::CtlOutage { .. } => "ctl-outage",
            TraceEvent::FaultFired { .. } => "fault-fired",
            TraceEvent::FaultHealed { .. } => "fault-healed",
            TraceEvent::SafetyViolation { .. } => "safety-violation",
            TraceEvent::BreakerTrip { .. } => "breaker-trip",
            TraceEvent::BreakerHalfOpen { .. } => "breaker-half-open",
            TraceEvent::BreakerClose { .. } => "breaker-close",
            TraceEvent::QuarantineInstalled { .. } => "quarantine-install",
            TraceEvent::SpaceFrontier { .. } => "space-frontier",
            TraceEvent::FleetDiscovery { .. } => "fleet-discovery",
            TraceEvent::FleetBatch { .. } => "fleet-batch",
            TraceEvent::FleetInstall { .. } => "fleet-install",
            TraceEvent::FleetFault { .. } => "fleet-fault",
            TraceEvent::FleetRecover { .. } => "fleet-recover",
            TraceEvent::FleetAbsorb { .. } => "fleet-absorb",
            TraceEvent::FleetDegraded { .. } => "fleet-degraded",
            TraceEvent::CacheHit { .. } => "cache-hit",
            TraceEvent::CacheMiss { .. } => "cache-miss",
            TraceEvent::PolicyDrop { .. } => "policy-drop",
            TraceEvent::UmboxEnter { .. } => "umbox-enter",
            TraceEvent::UmboxExit { .. } => "umbox-exit",
        }
    }

    /// The emitting component (for the aggregator's per-component
    /// histograms).
    pub fn component(&self) -> &'static str {
        match self {
            TraceEvent::DirectiveIssued { .. }
            | TraceEvent::DirectiveDelivered { .. }
            | TraceEvent::DirectiveInstalled { .. }
            | TraceEvent::DirectiveDeduped { .. }
            | TraceEvent::DirectiveShed { .. }
            | TraceEvent::AdmissionShed { .. }
            | TraceEvent::DirectiveRetry { .. }
            | TraceEvent::Failover { .. }
            | TraceEvent::CtlOutage { .. }
            | TraceEvent::SafetyViolation { .. }
            | TraceEvent::QuarantineInstalled { .. } => "iotctl",
            TraceEvent::BreakerTrip { .. }
            | TraceEvent::BreakerHalfOpen { .. }
            | TraceEvent::BreakerClose { .. }
            | TraceEvent::UmboxLaunch { .. }
            | TraceEvent::UmboxReady { .. }
            | TraceEvent::UmboxSwap { .. }
            | TraceEvent::UmboxRetire { .. }
            | TraceEvent::UmboxCrash { .. }
            | TraceEvent::UmboxRespawn { .. }
            | TraceEvent::UmboxEnter { .. }
            | TraceEvent::UmboxExit { .. } => "umbox",
            TraceEvent::FaultFired { .. }
            | TraceEvent::FaultHealed { .. }
            | TraceEvent::CacheHit { .. }
            | TraceEvent::CacheMiss { .. }
            | TraceEvent::PolicyDrop { .. } => "iotnet",
            TraceEvent::SpaceFrontier { .. } => "iotpolicy",
            TraceEvent::FleetDiscovery { .. }
            | TraceEvent::FleetBatch { .. }
            | TraceEvent::FleetInstall { .. }
            | TraceEvent::FleetFault { .. }
            | TraceEvent::FleetRecover { .. }
            | TraceEvent::FleetAbsorb { .. }
            | TraceEvent::FleetDegraded { .. } => "fleet",
        }
    }

    /// Append the canonical JSON line for this event at sim-time
    /// `at_ns` to `out` (no trailing newline).
    ///
    /// Key order is fixed — `t`, `e`, then variant fields in declaration
    /// order — and all values are integers or fixed label strings, so
    /// identical event streams render to identical bytes.
    pub fn write_json(&self, at_ns: u64, out: &mut String) {
        use std::fmt::Write;
        let _ = write!(out, "{{\"t\":{},\"e\":\"{}\"", at_ns, self.kind());
        match self {
            TraceEvent::DirectiveIssued { device, kind }
            | TraceEvent::DirectiveDelivered { device, kind }
            | TraceEvent::DirectiveInstalled { device, kind } => {
                let _ = write!(out, ",\"dev\":{device},\"kind\":\"{kind}\"");
            }
            TraceEvent::DirectiveDeduped { device } | TraceEvent::AdmissionShed { device } => {
                let _ = write!(out, ",\"dev\":{device}");
            }
            TraceEvent::DirectiveShed { device, criticality } => {
                let _ = write!(out, ",\"dev\":{device},\"crit\":\"{criticality}\"");
            }
            TraceEvent::DirectiveRetry { device, attempt } => {
                let _ = write!(out, ",\"dev\":{device},\"attempt\":{attempt}");
            }
            TraceEvent::UmboxLaunch { device, ready_ns } => {
                let _ = write!(out, ",\"dev\":{device},\"ready\":{ready_ns}");
            }
            TraceEvent::UmboxReady { device }
            | TraceEvent::UmboxSwap { device }
            | TraceEvent::UmboxRetire { device }
            | TraceEvent::UmboxCrash { device }
            | TraceEvent::UmboxRespawn { device }
            | TraceEvent::UmboxEnter { device } => {
                let _ = write!(out, ",\"dev\":{device}");
            }
            TraceEvent::Failover { count } => {
                let _ = write!(out, ",\"count\":{count}");
            }
            TraceEvent::CtlOutage { duration_ns } => {
                let _ = write!(out, ",\"dur\":{duration_ns}");
            }
            TraceEvent::FaultFired { kind } | TraceEvent::FaultHealed { kind } => {
                let _ = write!(out, ",\"kind\":\"{kind}\"");
            }
            TraceEvent::SafetyViolation { device, invariant } => {
                let _ = write!(out, ",\"dev\":{device},\"inv\":\"{invariant}\"");
            }
            TraceEvent::BreakerTrip { device }
            | TraceEvent::BreakerHalfOpen { device }
            | TraceEvent::BreakerClose { device }
            | TraceEvent::QuarantineInstalled { device } => {
                let _ = write!(out, ",\"dev\":{device}");
            }
            TraceEvent::CacheHit { switch }
            | TraceEvent::CacheMiss { switch }
            | TraceEvent::PolicyDrop { switch } => {
                let _ = write!(out, ",\"sw\":{switch}");
            }
            TraceEvent::UmboxExit { device, verdict } => {
                let _ = write!(out, ",\"dev\":{device},\"verdict\":\"{verdict}\"");
            }
            TraceEvent::SpaceFrontier { depth, frontier } => {
                let _ = write!(out, ",\"depth\":{depth},\"frontier\":{frontier}");
            }
            TraceEvent::FleetDiscovery { home, signature } => {
                let _ = write!(out, ",\"home\":{home},\"sig\":{signature}");
            }
            TraceEvent::FleetBatch { neighborhood, installs } => {
                let _ = write!(out, ",\"nbhd\":{neighborhood},\"installs\":{installs}");
            }
            TraceEvent::FleetInstall { home, epoch } => {
                let _ = write!(out, ",\"home\":{home},\"epoch\":{epoch}");
            }
            TraceEvent::FleetFault { neighborhood, kind }
            | TraceEvent::FleetRecover { neighborhood, kind } => {
                let _ = write!(out, ",\"nbhd\":{neighborhood},\"kind\":\"{kind}\"");
            }
            TraceEvent::FleetAbsorb { signature, epoch } => {
                let _ = write!(out, ",\"sig\":{signature},\"epoch\":{epoch}");
            }
            TraceEvent::FleetDegraded { epoch, waiting } => {
                let _ = write!(out, ",\"epoch\":{epoch},\"waiting\":{waiting}");
            }
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_is_canonical() {
        let mut out = String::new();
        TraceEvent::DirectiveIssued { device: 3, kind: "launch" }.write_json(100, &mut out);
        assert_eq!(out, r#"{"t":100,"e":"directive-issued","dev":3,"kind":"launch"}"#);
        out.clear();
        TraceEvent::CacheHit { switch: 0 }.write_json(4096, &mut out);
        assert_eq!(out, r#"{"t":4096,"e":"cache-hit","sw":0}"#);
        out.clear();
        TraceEvent::UmboxExit { device: 1, verdict: "drop" }.write_json(7, &mut out);
        assert_eq!(out, r#"{"t":7,"e":"umbox-exit","dev":1,"verdict":"drop"}"#);
        out.clear();
        TraceEvent::DirectiveShed { device: 2, criticality: "telemetry" }.write_json(9, &mut out);
        assert_eq!(out, r#"{"t":9,"e":"directive-shed","dev":2,"crit":"telemetry"}"#);
        out.clear();
        TraceEvent::SafetyViolation { device: 4, invariant: "fail-closed-coverage" }
            .write_json(11, &mut out);
        assert_eq!(out, r#"{"t":11,"e":"safety-violation","dev":4,"inv":"fail-closed-coverage"}"#);
        out.clear();
        TraceEvent::BreakerTrip { device: 5 }.write_json(13, &mut out);
        assert_eq!(out, r#"{"t":13,"e":"breaker-trip","dev":5}"#);
        out.clear();
        TraceEvent::QuarantineInstalled { device: 5 }.write_json(15, &mut out);
        assert_eq!(out, r#"{"t":15,"e":"quarantine-install","dev":5}"#);
        out.clear();
        TraceEvent::SpaceFrontier { depth: 2, frontier: 84 }.write_json(2, &mut out);
        assert_eq!(out, r#"{"t":2,"e":"space-frontier","depth":2,"frontier":84}"#);
        out.clear();
        TraceEvent::FleetDiscovery { home: 7, signature: 9001 }.write_json(1, &mut out);
        assert_eq!(out, r#"{"t":1,"e":"fleet-discovery","home":7,"sig":9001}"#);
        out.clear();
        TraceEvent::FleetBatch { neighborhood: 2, installs: 100 }.write_json(1, &mut out);
        assert_eq!(out, r#"{"t":1,"e":"fleet-batch","nbhd":2,"installs":100}"#);
        out.clear();
        TraceEvent::FleetInstall { home: 0, epoch: 1 }.write_json(2, &mut out);
        assert_eq!(out, r#"{"t":2,"e":"fleet-install","home":0,"epoch":1}"#);
        out.clear();
        TraceEvent::FleetFault { neighborhood: 3, kind: "flush-drop" }.write_json(4, &mut out);
        assert_eq!(out, r#"{"t":4,"e":"fleet-fault","nbhd":3,"kind":"flush-drop"}"#);
        out.clear();
        TraceEvent::FleetRecover { neighborhood: 3, kind: "flush-retry" }.write_json(5, &mut out);
        assert_eq!(out, r#"{"t":5,"e":"fleet-recover","nbhd":3,"kind":"flush-retry"}"#);
        out.clear();
        TraceEvent::FleetAbsorb { signature: 9001, epoch: 2 }.write_json(4, &mut out);
        assert_eq!(out, r#"{"t":4,"e":"fleet-absorb","sig":9001,"epoch":2}"#);
        out.clear();
        TraceEvent::FleetDegraded { epoch: 2, waiting: 40 }.write_json(9, &mut out);
        assert_eq!(out, r#"{"t":9,"e":"fleet-degraded","epoch":2,"waiting":40}"#);
    }

    #[test]
    fn classes_split_control_from_packet() {
        assert_eq!(TraceEvent::FaultFired { kind: "wire-down" }.class(), EventClass::Control);
        assert_eq!(TraceEvent::Failover { count: 1 }.class(), EventClass::Control);
        assert_eq!(TraceEvent::CacheMiss { switch: 2 }.class(), EventClass::Packet);
        assert_eq!(TraceEvent::UmboxEnter { device: 0 }.class(), EventClass::Packet);
        // Exploration progress is control class: one event per BFS depth,
        // compact enough for control-only goldens.
        assert_eq!(
            TraceEvent::SpaceFrontier { depth: 0, frontier: 1 }.class(),
            EventClass::Control
        );
        assert_eq!(TraceEvent::SpaceFrontier { depth: 0, frontier: 1 }.component(), "iotpolicy");
        // Fleet propagation events are control class: a handful per
        // round, compact enough for the E20 propagation golden.
        for ev in [
            TraceEvent::FleetDiscovery { home: 0, signature: 1 },
            TraceEvent::FleetBatch { neighborhood: 0, installs: 1 },
            TraceEvent::FleetInstall { home: 0, epoch: 1 },
            TraceEvent::FleetFault { neighborhood: 0, kind: "partition" },
            TraceEvent::FleetRecover { neighborhood: 0, kind: "rejoin-fast-forward" },
            TraceEvent::FleetAbsorb { signature: 1, epoch: 1 },
            TraceEvent::FleetDegraded { epoch: 1, waiting: 1 },
        ] {
            assert_eq!(ev.class(), EventClass::Control, "{}", ev.kind());
            assert_eq!(ev.component(), "fleet", "{}", ev.kind());
        }
    }

    #[test]
    fn components_cover_the_enforcement_path() {
        let shed = TraceEvent::DirectiveShed { device: 0, criticality: "telemetry" };
        assert_eq!(shed.component(), "iotctl");
        assert_eq!(TraceEvent::UmboxCrash { device: 0 }.component(), "umbox");
        assert_eq!(TraceEvent::PolicyDrop { switch: 0 }.component(), "iotnet");
        assert_eq!(TraceEvent::SafetyViolation { device: 0, invariant: "x" }.component(), "iotctl");
        assert_eq!(TraceEvent::QuarantineInstalled { device: 0 }.component(), "iotctl");
        assert_eq!(TraceEvent::AdmissionShed { device: 0 }.component(), "iotctl");
        assert_eq!(TraceEvent::BreakerTrip { device: 0 }.component(), "umbox");
        assert_eq!(TraceEvent::BreakerHalfOpen { device: 0 }.component(), "umbox");
        assert_eq!(TraceEvent::BreakerClose { device: 0 }.component(), "umbox");
    }

    #[test]
    fn safety_events_are_control_class() {
        // The safety monitor reads the control mask; if any of these
        // slipped into the packet class a control-only golden would miss
        // them and the monitor would go blind under control_only runs.
        for ev in [
            TraceEvent::SafetyViolation { device: 0, invariant: "bounded-staleness" },
            TraceEvent::BreakerTrip { device: 0 },
            TraceEvent::BreakerHalfOpen { device: 0 },
            TraceEvent::BreakerClose { device: 0 },
            TraceEvent::QuarantineInstalled { device: 0 },
            TraceEvent::AdmissionShed { device: 0 },
        ] {
            assert_eq!(ev.class(), EventClass::Control, "{}", ev.kind());
        }
    }
}
