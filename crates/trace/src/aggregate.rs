//! In-process trace aggregation for `experiments --trace`.
//!
//! Consumes a recorded event stream and produces deterministic
//! summaries: per-component event-kind histograms, and top-K hot
//! switches / µmboxes by data-plane event volume. All maps are
//! `BTreeMap` so iteration (and thus rendering) is ordered; top-K ties
//! break by ascending id.

use crate::event::TraceEvent;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregates a trace into per-component histograms and hot-spot
/// rankings.
#[derive(Debug, Clone, Default)]
pub struct TraceAggregator {
    /// `(component, kind)` → occurrence count.
    by_component: BTreeMap<(&'static str, &'static str), u64>,
    /// Switch id → data-plane events touching it.
    switch_heat: BTreeMap<u32, u64>,
    /// Device id → µmbox events touching its chain.
    umbox_heat: BTreeMap<u32, u64>,
    /// Total events observed.
    total: u64,
    /// Sim-time (ns) of the last event observed.
    last_ns: u64,
}

impl TraceAggregator {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one event into the aggregate.
    pub fn observe(&mut self, at_ns: u64, event: &TraceEvent) {
        self.total += 1;
        self.last_ns = self.last_ns.max(at_ns);
        *self.by_component.entry((event.component(), event.kind())).or_insert(0) += 1;
        match event {
            TraceEvent::CacheHit { switch }
            | TraceEvent::CacheMiss { switch }
            | TraceEvent::PolicyDrop { switch } => {
                *self.switch_heat.entry(*switch).or_insert(0) += 1;
            }
            TraceEvent::UmboxEnter { device }
            | TraceEvent::UmboxExit { device, .. }
            | TraceEvent::UmboxCrash { device }
            | TraceEvent::UmboxRespawn { device } => {
                *self.umbox_heat.entry(*device).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    /// Fold a whole recorded stream (as returned by
    /// [`crate::tracer::Tracer::events`]).
    pub fn observe_all(&mut self, events: &[(u64, TraceEvent)]) {
        for (at, ev) in events {
            self.observe(*at, ev);
        }
    }

    /// Total events observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Occurrences of `kind` under `component`.
    pub fn count(&self, component: &'static str, kind: &'static str) -> u64 {
        self.by_component.get(&(component, kind)).copied().unwrap_or(0)
    }

    /// The `k` hottest switches by data-plane event count, hottest
    /// first; ties break by ascending switch id.
    pub fn top_switches(&self, k: usize) -> Vec<(u32, u64)> {
        top_k(&self.switch_heat, k)
    }

    /// The `k` hottest µmboxes (by protected-device id), hottest first;
    /// ties break by ascending device id.
    pub fn top_umboxes(&self, k: usize) -> Vec<(u32, u64)> {
        top_k(&self.umbox_heat, k)
    }

    /// Deterministic multi-line report: histogram grouped by component,
    /// then top-K hot switches and µmboxes.
    pub fn render(&self, k: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace: {} events, last at {} ns", self.total, self.last_ns);
        let mut current = "";
        for ((component, kind), count) in &self.by_component {
            if *component != current {
                current = component;
                let _ = writeln!(out, "[{component}]");
            }
            let _ = writeln!(out, "  {kind:<20} {count}");
        }
        let hot_sw = self.top_switches(k);
        if !hot_sw.is_empty() {
            let _ = writeln!(out, "hot switches:");
            for (id, n) in hot_sw {
                let _ = writeln!(out, "  sw{id:<4} {n}");
            }
        }
        let hot_ub = self.top_umboxes(k);
        if !hot_ub.is_empty() {
            let _ = writeln!(out, "hot umboxes:");
            for (id, n) in hot_ub {
                let _ = writeln!(out, "  dev{id:<4} {n}");
            }
        }
        out
    }
}

/// Top `k` entries by count descending, id ascending on ties.
fn top_k(heat: &BTreeMap<u32, u64>, k: usize) -> Vec<(u32, u64)> {
    let mut entries: Vec<(u32, u64)> = heat.iter().map(|(&id, &n)| (id, n)).collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    entries.truncate(k);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_by_component_and_kind() {
        let mut agg = TraceAggregator::new();
        agg.observe(1, &TraceEvent::CacheHit { switch: 0 });
        agg.observe(2, &TraceEvent::CacheHit { switch: 1 });
        agg.observe(3, &TraceEvent::DirectiveIssued { device: 0, kind: "launch" });
        assert_eq!(agg.total(), 3);
        assert_eq!(agg.count("iotnet", "cache-hit"), 2);
        assert_eq!(agg.count("iotctl", "directive-issued"), 1);
        assert_eq!(agg.count("umbox", "umbox-enter"), 0);
    }

    #[test]
    fn top_k_orders_by_heat_then_id() {
        let mut agg = TraceAggregator::new();
        for _ in 0..3 {
            agg.observe(0, &TraceEvent::CacheMiss { switch: 2 });
        }
        agg.observe(0, &TraceEvent::CacheHit { switch: 5 });
        agg.observe(0, &TraceEvent::CacheHit { switch: 1 });
        assert_eq!(agg.top_switches(2), vec![(2, 3), (1, 1)]);
        assert_eq!(agg.top_switches(10), vec![(2, 3), (1, 1), (5, 1)]);
    }

    #[test]
    fn render_is_stable_across_observation_order() {
        let events = [
            (1, TraceEvent::UmboxEnter { device: 4 }),
            (2, TraceEvent::PolicyDrop { switch: 0 }),
            (3, TraceEvent::FaultFired { kind: "wire-down" }),
        ];
        let mut a = TraceAggregator::new();
        a.observe_all(&events);
        let mut b = TraceAggregator::new();
        for (at, ev) in events.iter().rev() {
            b.observe(*at, ev);
        }
        assert_eq!(a.render(3), b.render(3));
    }
}
