//! Streaming FNV-1a digests for fleet-scale determinism checks.
//!
//! E20 runs 10⁴–10⁶ home worlds and must compare the *entire fleet's*
//! outcome between serial and parallel executions byte-for-byte. Keeping
//! every per-home metrics line in memory just to compare them would cost
//! O(homes); instead each home folds its outcome into a 64-bit FNV-1a
//! stream and the fleet chains per-home digests in home order. FNV-1a is
//! chosen for the same reasons the E19 memo key uses a mixer: it is
//! deterministic across hosts, allocation-free, and order-sensitive —
//! any reordering of the chunk merge changes the final value, which is
//! exactly what the `--threads N ≡ serial` gate needs to detect.

/// A streaming 64-bit FNV-1a hasher.
///
/// Zero-allocation and `Copy`: a warm fleet round can fold thousands of
/// per-home outcomes without touching the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

/// FNV-1a 64-bit offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64 { state: OFFSET }
    }

    /// Fold raw bytes into the stream.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// Fold a `u64` (little-endian) into the stream.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Fold a `u32` (little-endian) into the stream.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// One-shot digest of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write_bytes(b"foo");
        h.write_bytes(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }

    #[test]
    fn order_sensitive() {
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn u64_is_le_bytes() {
        let mut a = Fnv64::new();
        a.write_u64(0x0102_0304_0506_0708);
        assert_eq!(a.finish(), fnv64(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]));
    }
}
