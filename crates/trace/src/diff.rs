//! First-divergence reporting for golden-trace tests.
//!
//! A golden-trace failure must point at the *first* line where the
//! traces part ways — sim-time and event, with context — not dump two
//! multi-kilobyte blobs and leave the reader to eyeball them.

use std::fmt::Write as _;

/// Where two JSONL traces first differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 1-based line number of the first differing line.
    pub line: usize,
    /// The expected (golden) line, if any — `None` when the actual
    /// trace has extra trailing lines.
    pub expected: Option<String>,
    /// The actual line, if any — `None` when the actual trace ended
    /// early.
    pub actual: Option<String>,
}

/// Compare two JSONL traces line by line; `None` means identical.
pub fn first_divergence(expected: &str, actual: &str) -> Option<Divergence> {
    let mut exp = expected.lines();
    let mut act = actual.lines();
    let mut line = 0;
    loop {
        line += 1;
        match (exp.next(), act.next()) {
            (None, None) => return None,
            (e, a) if e == a => {}
            (e, a) => {
                return Some(Divergence {
                    line,
                    expected: e.map(str::to_string),
                    actual: a.map(str::to_string),
                });
            }
        }
    }
}

/// Render a divergence as a readable failure message, including the
/// sim-time prefix of each line so the reader can locate the instant in
/// the simulation.
pub fn render_divergence(d: &Divergence) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "traces diverge at line {}:", d.line);
    match &d.expected {
        Some(l) => {
            let _ = writeln!(out, "  expected ({}): {l}", sim_time_of(l));
        }
        None => {
            let _ = writeln!(out, "  expected: <end of trace>");
        }
    }
    match &d.actual {
        Some(l) => {
            let _ = writeln!(out, "  actual   ({}): {l}", sim_time_of(l));
        }
        None => {
            let _ = writeln!(out, "  actual:   <end of trace>");
        }
    }
    out
}

/// Extract the `"t"` value of a canonical trace line for display, e.g.
/// `"t=1500000ns"`. Tolerates malformed lines (returns `"t=?"`).
fn sim_time_of(line: &str) -> String {
    line.strip_prefix("{\"t\":")
        .and_then(|rest| rest.split(',').next())
        .map_or_else(|| "t=?".to_string(), |t| format!("t={t}ns"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_traces_have_no_divergence() {
        let t = "{\"t\":1,\"e\":\"failover\",\"count\":1}\n";
        assert_eq!(first_divergence(t, t), None);
        assert_eq!(first_divergence("", ""), None);
    }

    #[test]
    fn points_at_the_first_differing_line() {
        let a = "line1\nline2\nline3\n";
        let b = "line1\nlineX\nline3\n";
        let d = first_divergence(a, b).expect("must diverge");
        assert_eq!(d.line, 2);
        assert_eq!(d.expected.as_deref(), Some("line2"));
        assert_eq!(d.actual.as_deref(), Some("lineX"));
    }

    #[test]
    fn detects_truncation_and_extension() {
        let short = "a\n";
        let long = "a\nb\n";
        let d = first_divergence(long, short).expect("must diverge");
        assert_eq!(d.line, 2);
        assert_eq!(d.expected.as_deref(), Some("b"));
        assert_eq!(d.actual, None);

        let d = first_divergence(short, long).expect("must diverge");
        assert_eq!(d.expected, None);
        assert_eq!(d.actual.as_deref(), Some("b"));
    }

    #[test]
    fn render_includes_line_and_sim_time() {
        let golden = "{\"t\":1000,\"e\":\"fault-fired\",\"kind\":\"wire-down\"}\n";
        let actual = "{\"t\":2000,\"e\":\"fault-fired\",\"kind\":\"wire-down\"}\n";
        let d = first_divergence(golden, actual).expect("must diverge");
        let msg = render_divergence(&d);
        assert!(msg.contains("line 1"), "{msg}");
        assert!(msg.contains("t=1000ns"), "{msg}");
        assert!(msg.contains("t=2000ns"), "{msg}");
    }
}
