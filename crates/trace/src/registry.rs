//! The unified metrics registry.
//!
//! Before this crate, counters lived scattered across `core::metrics`,
//! `iotnet::switch` and `umbox` with ad-hoc reporting. The registry
//! gives them one home: named, typed metrics registered in any order,
//! with a **stable snapshot** — sorted by name *at snapshot time*, not
//! registration time — so two registries populated in different orders
//! (e.g. by worlds stepping through different code paths) render
//! identically.

use std::fmt::Write as _;

/// A metric's value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Monotonic count of occurrences.
    Counter(u64),
    /// Point-in-time measurement.
    Gauge(f64),
}

/// Named, typed metrics with a name-sorted snapshot.
///
/// Storage is insertion-ordered; ordering is imposed only by
/// [`MetricsRegistry::snapshot`], which sorts by name. Re-registering a
/// counter name adds to it (so scattered per-component counters can be
/// absorbed additively); re-registering a gauge overwrites.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    entries: Vec<(String, MetricValue)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `v` to the counter `name`, creating it at `v` if absent.
    ///
    /// Panics if `name` is already registered as a gauge — a metric's
    /// type is part of its contract.
    pub fn counter(&mut self, name: &str, v: u64) {
        for (n, val) in &mut self.entries {
            if n == name {
                match val {
                    MetricValue::Counter(c) => *c += v,
                    MetricValue::Gauge(_) => panic!("metric {name:?} is a gauge, not a counter"),
                }
                return;
            }
        }
        self.entries.push((name.to_string(), MetricValue::Counter(v)));
    }

    /// Set the gauge `name` to `v`, creating it if absent.
    ///
    /// Panics if `name` is already registered as a counter.
    pub fn gauge(&mut self, name: &str, v: f64) {
        for (n, val) in &mut self.entries {
            if n == name {
                match val {
                    MetricValue::Gauge(g) => *g = v,
                    MetricValue::Counter(_) => panic!("metric {name:?} is a counter, not a gauge"),
                }
                return;
            }
        }
        self.entries.push((name.to_string(), MetricValue::Gauge(v)));
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Name-sorted snapshot of all metrics.
    ///
    /// The sort happens here, at snapshot time — insertion order never
    /// leaks into the output, which is what makes snapshots comparable
    /// across worlds that registered metrics in different orders.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let mut snap = self.entries.clone();
        snap.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }

    /// Render the snapshot as `name = value` lines (deterministic).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            match value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{name} = {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{name} = {g:.6}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_sorted_regardless_of_insertion_order() {
        // The satellite fix: ordering is imposed at snapshot time, so
        // two registries fed the same metrics in different orders
        // produce identical snapshots.
        let mut a = MetricsRegistry::new();
        a.counter("zeta", 1);
        a.counter("alpha", 2);
        a.gauge("mid", 0.5);

        let mut b = MetricsRegistry::new();
        b.gauge("mid", 0.5);
        b.counter("alpha", 2);
        b.counter("zeta", 1);

        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.render(), b.render());
        let names: Vec<String> = a.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn counters_absorb_additively() {
        let mut r = MetricsRegistry::new();
        r.counter("net.cache_hits", 3);
        r.counter("net.cache_hits", 4);
        assert_eq!(r.get("net.cache_hits"), Some(MetricValue::Counter(7)));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.gauge("exposure", 1.0);
        r.gauge("exposure", 2.5);
        assert_eq!(r.get("exposure"), Some(MetricValue::Gauge(2.5)));
    }

    #[test]
    #[should_panic(expected = "is a gauge")]
    fn type_confusion_panics() {
        let mut r = MetricsRegistry::new();
        r.gauge("x", 1.0);
        r.counter("x", 1);
    }

    #[test]
    fn render_is_deterministic_text() {
        let mut r = MetricsRegistry::new();
        r.counter("b", 2);
        r.gauge("a", 0.25);
        assert_eq!(r.render(), "a = 0.250000\nb = 2\n");
    }
}
