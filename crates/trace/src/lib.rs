//! `trace` — deterministic structured tracing and unified metrics.
//!
//! The paper's control loop (Fig. 2) only works because the controller
//! can *observe* the enforcement path; this crate is the reproduction's
//! version of that observability, built as correctness tooling: every
//! event is keyed by **sim-time** (never wall-clock), serialized
//! canonically, and therefore byte-diffable between runs. The golden
//! trace and differential test harnesses (`tests/golden_trace.rs`,
//! `tests/trace_diff_props.rs`) rest on three disciplines:
//!
//! 1. **Sim-time keys.** An event's timestamp is the simulated instant
//!    it describes — identical seeds give identical timestamps on any
//!    host, thread count, or queue backend.
//! 2. **Deterministic emission order.** Events at equal timestamps are
//!    recorded in emission order, and emitters never emit while
//!    iterating a `HashMap` (see DESIGN.md §7).
//! 3. **Canonical serialization.** [`event::TraceEvent`] renders to one
//!    JSON line with a fixed key order and integer-only values, so a
//!    byte compare *is* a semantic compare.
//!
//! The crate sits at the bottom of the workspace graph (no dependencies,
//! primitive event fields only) so `iotnet`, `umbox`, `iotctl`, `core`
//! and `bench` can all emit into one [`tracer::Tracer`].
//!
//! Modules:
//!
//! * [`event`] — the closed event vocabulary and its canonical JSONL
//!   rendering.
//! * [`tracer`] — the zero-cost-when-disabled emission handle and the
//!   class-masked buffer behind it.
//! * [`registry`] — [`registry::MetricsRegistry`]: named, typed metrics
//!   with a stable name-sorted snapshot.
//! * [`aggregate`] — in-process trace aggregation (per-component event
//!   histograms, top-K hot switches/µmboxes) for `experiments --trace`.
//! * [`diff`] — first-divergence reporting for golden-trace tests.
//! * [`digest`] — streaming FNV-1a digests for fleet-scale (E20)
//!   serial≡parallel comparisons without retaining per-home output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod diff;
pub mod digest;
pub mod event;
pub mod registry;
pub mod tracer;

pub use aggregate::TraceAggregator;
pub use diff::{first_divergence, render_divergence, Divergence};
pub use digest::Fnv64;
pub use event::{EventClass, TraceEvent};
pub use registry::{MetricValue, MetricsRegistry};
pub use tracer::{TraceConfig, Tracer};
