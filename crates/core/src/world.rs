//! The simulation world: Figure 2 running.
//!
//! The world owns the network, the physical environment, the devices,
//! the hub, the attacker, and — when IoTSec is deployed — the controller
//! and the µmbox runtime. A fixed tick (default 100 ms) drives device
//! FSMs, physics, the hub and the attacker; the packet-level event
//! engine runs at full resolution between ticks.

use crate::chaos::ChaosConfig;
use crate::defense::{upnp_pinholes, Defense, IoTSecConfig};
use crate::deployment::{AttackerLocation, Deployment, StepSpec};
use crate::hub::Hub;
use crate::metrics::Metrics;
use iotctl::controller::{Controller, ControllerConfig};
use iotctl::delivery::DeliveryChannel;
use iotctl::directive::Directive;
use iotctl::failover::ReplicatedController;
use iotctl::hier::{HierarchicalController, Partitioning};
use iotctl::safety::{self, DeviceFacts, SafetyMonitor};
use iotdev::attacker::{AttackPlan, AttackStep, Attacker, AttackerEmit};
use iotdev::classes::{DeviceLogic, PlugLoad};
use iotdev::device::{AdminCreds, DeviceClass, DeviceId, DeviceOutput, IoTDevice, OutMessage};
use iotdev::env::{EnvVar, Environment};
use iotdev::events::SecurityEvent;
use iotdev::proto::AppMessage;
use iotdev::registry::Sku;
use iotdev::vuln::Vulnerability;
use iotlearn::signature::{AttackSignature, Matcher, Severity};
use iotnet::addr::{EndpointId, Ipv4Addr, NodeId, SwitchId};
use iotnet::faults::FaultScheduler;
use iotnet::flow::{FlowAction, FlowMatch, FlowRule, SteerId};
use iotnet::link::LinkParams;
use iotnet::net::{InlineProcessor, InlineVerdict, NetScrap, Network};
use iotnet::packet::{Packet, TcpFlags, TransportHeader};
use iotnet::time::{SimDuration, SimTime};
use iotnet::topology::TopologyBuilder;
use iotpolicy::compile::PolicyCompiler;
use iotpolicy::posture::Posture;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;
use std::sync::Arc;
use trace::tracer::TraceConfig;
use trace::{MetricsRegistry, TraceEvent, Tracer};
use umbox::breaker::{BreakerBank, BreakerEvent};
use umbox::chain::{build_chain, ChainConfig, FailureMode, UmboxChain};
use umbox::element::{EventSink, ViewHandle};
use umbox::lifecycle::{LifecycleManager, UmboxId};
use umbox::resource::Cluster;

/// Who owns an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Entity {
    Device(usize),
    Hub,
    Attacker,
    Victim,
}

/// A chain shared between the world (for reconfiguration and stats) and
/// the network's steer registry.
struct SharedChain(Rc<RefCell<UmboxChain>>);

impl InlineProcessor for SharedChain {
    fn process(&mut self, now: SimTime, pkt: Packet) -> InlineVerdict {
        self.0.borrow_mut().process(now, pkt)
    }

    fn label(&self) -> &str {
        "umbox-chain"
    }
}

enum ControlPlane {
    Flat(Box<Controller>),
    Hier(Box<HierarchicalController>),
    /// A flat controller paired with a warm standby (chaos runs).
    Replicated(Box<ReplicatedController>),
}

impl ControlPlane {
    fn ingest(&mut self, event: SecurityEvent) {
        match self {
            ControlPlane::Flat(c) => c.ingest(event),
            ControlPlane::Hier(h) => h.ingest(event),
            ControlPlane::Replicated(r) => r.ingest(event),
        }
    }

    fn ingest_env(&mut self, at: SimTime, values: &[(EnvVar, &'static str)]) {
        match self {
            ControlPlane::Flat(c) => c.ingest_env(at, values),
            ControlPlane::Hier(h) => h.ingest_env(at, values),
            ControlPlane::Replicated(r) => r.ingest_env(at, values),
        }
    }

    fn step(&mut self, now: SimTime) -> Vec<Directive> {
        match self {
            ControlPlane::Flat(c) => c.step(now),
            ControlPlane::Hier(h) => h.step(now),
            ControlPlane::Replicated(r) => r.step(now),
        }
    }

    fn reconcile(&mut self, now: SimTime) -> Vec<Directive> {
        match self {
            ControlPlane::Flat(c) => c.reconcile(now),
            ControlPlane::Hier(h) => h.reconcile(now),
            ControlPlane::Replicated(r) => r.reconcile(now),
        }
    }

    fn events_processed(&self) -> u64 {
        match self {
            ControlPlane::Flat(c) => c.stats.events_processed,
            ControlPlane::Hier(h) => h.total_processed(),
            ControlPlane::Replicated(r) => r.events_processed(),
        }
    }

    /// Whether the control plane can process work right now.
    fn is_down(&self, now: SimTime) -> bool {
        match self {
            ControlPlane::Flat(c) => c.is_down(now),
            ControlPlane::Hier(_) => false,
            ControlPlane::Replicated(r) => r.is_down(now),
        }
    }

    /// Inject an outage. The hierarchical control plane has no single
    /// point of failure to take down, so the injection is a no-op there.
    fn inject_outage(&mut self, from: SimTime, duration: SimDuration) {
        match self {
            ControlPlane::Flat(c) => c.inject_outage(from, duration),
            ControlPlane::Hier(_) => {}
            ControlPlane::Replicated(r) => r.inject_outage(from, duration),
        }
    }

    fn failovers(&self) -> u64 {
        match self {
            ControlPlane::Replicated(r) => r.failovers,
            _ => 0,
        }
    }

    /// Installed-posture fingerprint of the (active) controller, for
    /// the safety monitor's FSM-continuity invariant. The hierarchical
    /// plane has no single installed vector — and no single failover to
    /// survive — so it reports a constant.
    fn installed_fingerprint(&self) -> u64 {
        match self {
            ControlPlane::Flat(c) => c.installed_fingerprint(),
            ControlPlane::Replicated(r) => r.installed_fingerprint(),
            ControlPlane::Hier(_) => 0,
        }
    }
}

struct UmboxSlot {
    steer: SteerId,
    chain: Rc<RefCell<UmboxChain>>,
    instance: UmboxId,
}

/// Recyclable heap banked between consecutive home-world builds.
///
/// Holds the network-layer buffers ([`NetScrap`]) reclaimed from a torn-down
/// [`World`] so the next [`World::new_home_recycled`] build reuses their
/// allocations instead of paying the per-home construction cost again.
/// Only flat, order-insensitive buffers are recycled — hash maps are
/// deliberately excluded so iteration order can never differ between a
/// recycled and a cold build. An empty (default) scrap builds exactly like
/// [`World::new_home`].
#[derive(Debug, Default)]
pub struct WorldScrap {
    /// Reclaimed network buffers (event queue arena, capture ring,
    /// delivery scratch).
    pub net: NetScrap,
}

/// The running world.
pub struct World {
    /// Current simulated time.
    pub clock: SimTime,
    tick: SimDuration,
    /// The network substrate.
    pub net: Network,
    /// The physical environment.
    pub env: Environment,
    devices: Vec<IoTDevice>,
    device_endpoints: Vec<EndpointId>,
    entities: HashMap<EndpointId, Entity>,
    hub: Option<(Hub, EndpointId)>,
    attacker: Option<(Attacker, EndpointId)>,
    victim_bytes: u64,
    control: Option<ControlPlane>,
    lifecycle: Option<LifecycleManager>,
    cluster: Option<Cluster>,
    chains: HashMap<DeviceId, UmboxSlot>,
    pending_steers: Vec<(SimTime, DeviceId, Rc<RefCell<UmboxChain>>, UmboxId)>,
    pending_swaps: Vec<(SimTime, DeviceId, UmboxChain)>,
    gate_view: ViewHandle,
    event_sink: EventSink,
    cfg: Option<IoTSecConfig>,
    /// Per-device interned signature rulesets (repository subscriptions
    /// plus vuln-derived rules), computed once at construction. Chains
    /// share these by `Rc` refcount instead of rebuilding the signature
    /// vector on every launch/reconfigure.
    device_signatures: Vec<Rc<[AttackSignature]>>,
    core_switch: SwitchId,
    device_switch: Vec<SwitchId>,
    next_steer: u32,
    pending_events: Vec<SecurityEvent>,
    /// Whether a physical breach state has been entered.
    pub physical_breach: bool,
    breach_at: Option<SimTime>,
    retired_drops: u64,
    retired_intercepts: u64,
    recipes_fired_seed: u64,
    // --- chaos layer (all inert unless `chaos_enabled`) ----------------
    /// Whether a chaos schedule was installed. The schedule itself lives
    /// in `faults`/`crash_plan`/`outage_plan`; the full `ChaosConfig` is
    /// consumed at construction, not cloned into the world.
    chaos_enabled: bool,
    failure_mode: FailureMode,
    faults: FaultScheduler,
    /// Sorted µmbox crash schedule; `crash_idx` is the cursor.
    crash_plan: Vec<(SimTime, DeviceId)>,
    crash_idx: usize,
    /// Sorted controller outage schedule; `outage_idx` is the cursor.
    outage_plan: Vec<(SimTime, SimDuration)>,
    outage_idx: usize,
    delivery: Option<DeliveryChannel>,
    unprotected: BTreeMap<DeviceId, SimDuration>,
    fail_open_exposure: SimDuration,
    /// Devices whose security events arrived while the control plane was
    /// down — exposed until it returns and reacts.
    blocked_reaction: BTreeSet<DeviceId>,
    retired_fail_open: u64,
    retired_fail_closed: u64,
    /// Structured trace emission (disabled by default; zero-cost then).
    tracer: Tracer,
    /// Failover count at the last tick, for edge-triggered trace events.
    last_failovers: u64,
    // --- safety layer (all inert unless `deployment.safety` is set) -----
    /// The runtime safety monitor, subscribed to `tracer`.
    safety: Option<SafetyMonitor>,
    /// Per-µmbox circuit breakers (only when the breaker is enabled).
    breakers: Option<BreakerBank>,
    /// Whole-class recomputes refused by the admission controller.
    admission_shed: u64,
    // --- per-tick scratch buffers (capacity reused across ticks) --------
    /// Delivery buffer handed to [`Network::step_until_into`].
    delivery_scratch: Vec<iotnet::net::Delivery>,
    /// Environment snapshot handed to the control plane each tick.
    env_scratch: Vec<(EnvVar, &'static str)>,
    /// Per-device fact rows rebuilt for the safety monitor each tick.
    facts_scratch: Vec<DeviceFacts>,
    /// Resident-mode bookkeeping (E26): `Some` only for worlds built by
    /// [`World::new_home_resident`], which survive across fleet rounds
    /// and take intel updates via [`World::apply_intel_delta`] instead
    /// of being rebuilt.
    resident: Option<Box<ResidentBind>>,
}

/// Everything a resident world (E26) needs to take an intel delta and a
/// rebind without re-reading its deployment template: the per-device
/// signature bases and policy-compile inputs captured at build time,
/// plus the intel epoch currently installed.
struct ResidentBind {
    /// Intel epoch currently installed on this world.
    epoch: u32,
    /// The installed snapshot itself (content, not just the number —
    /// the delta path diffs old-vs-new per device).
    intel: Arc<[AttackSignature]>,
    /// Per-device signature ruleset built with *no* extra intel:
    /// subscribed-matching signatures first, vuln-derived rules after.
    /// Extra (region) signatures splice between the two, exactly where
    /// `build_signatures` puts them on a cold build.
    base: Vec<Rc<[AttackSignature]>>,
    /// Per-device count of subscribed-matching signatures — the splice
    /// point for extra intel within `base`.
    prefix: Vec<usize>,
    /// Per-device extra-matching signatures currently installed.
    extra: Vec<Vec<AttackSignature>>,
    /// Per-device standing-IDS membership (any matching signature,
    /// subscribed or extra). A membership flip forces a policy
    /// recompile; a same-membership signature change only repatches the
    /// device's ruleset.
    matched: Vec<bool>,
    // Policy-recompile inputs, captured from the template verbatim.
    classes: Vec<DeviceClass>,
    vulns: Vec<Vec<Vulnerability>>,
    skus: Vec<Sku>,
    gates: Vec<(DeviceId, EnvVar, &'static str)>,
    protect_pairs: Vec<(DeviceId, DeviceId)>,
    // Rebind inputs.
    loads: Vec<Option<PlugLoad>>,
    pre_stolen_keys: Vec<u64>,
    site: crate::deployment::Site,
}

impl ResidentBind {
    /// Capture the delta-install and rebind inputs from a template and a
    /// freshly built world installed at `(epoch, intel)`.
    fn capture(
        template: &Deployment,
        world: &World,
        epoch: u32,
        intel: &Arc<[AttackSignature]>,
    ) -> ResidentBind {
        let base: Vec<Rc<[AttackSignature]>> = template
            .devices
            .iter()
            .enumerate()
            .map(|(i, setup)| {
                build_signatures(
                    world.cfg.as_ref(),
                    &world.devices[i].sku,
                    &setup.vulns,
                    &template.subscribed_signatures,
                    &[],
                )
            })
            .collect();
        let prefix: Vec<usize> = template
            .devices
            .iter()
            .map(|setup| {
                template.subscribed_signatures.iter().filter(|s| s.sku == setup.sku).count()
            })
            .collect();
        let extra: Vec<Vec<AttackSignature>> = template
            .devices
            .iter()
            .map(|setup| intel.iter().filter(|s| s.sku == setup.sku).cloned().collect())
            .collect();
        let matched: Vec<bool> = prefix
            .iter()
            .zip(extra.iter())
            .map(|(&p, e): (&usize, &Vec<AttackSignature>)| p > 0 || !e.is_empty())
            .collect();
        ResidentBind {
            epoch,
            intel: Arc::clone(intel),
            base,
            prefix,
            extra,
            matched,
            classes: template.devices.iter().map(|s| s.class).collect(),
            vulns: template.devices.iter().map(|s| s.vulns.clone()).collect(),
            skus: template.devices.iter().map(|s| s.sku.clone()).collect(),
            gates: template.gates.clone(),
            protect_pairs: template.protect_pairs.clone(),
            loads: template.devices.iter().map(|s| s.load).collect(),
            pre_stolen_keys: template.pre_stolen_keys.clone(),
            site: template.site,
        }
    }
}

/// What [`World::apply_intel_delta`] did, for the fleet's
/// delta-vs-full install accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaInstall {
    /// The new snapshot was content-identical: only the epoch advanced.
    pub noop: bool,
    /// A standing-IDS membership flip forced a policy recompile.
    pub recompiled: bool,
    /// Devices whose signature ruleset was repatched.
    pub devices_patched: u32,
    /// Devices whose matching set was unchanged and kept as-is.
    pub devices_kept: u32,
}

/// A resident [`World`] handed off between fleet rounds (E26).
///
/// `World` is not `Send`: its interior uses `Rc`/`RefCell` for state
/// shared *within one home* (signature rulesets, µmbox chains, the gate
/// view). A resident world, however, must outlive the scoped worker
/// thread that ran it and be picked up by the next round's worker. That
/// hand-off is serial — the fleet stores each slot behind a `Mutex` and
/// statically assigns each home's chunk to exactly one worker per
/// round, so no two threads ever touch a world concurrently, and every
/// `Rc` clone lives inside the world being moved (none escapes to
/// another thread). Under those invariants a cross-thread *move* is
/// sound, which is exactly what this wrapper's `unsafe impl Send`
/// asserts.
pub struct ResidentWorld(World);

// SAFETY: see the type-level docs — the fleet moves a ResidentWorld
// between rounds but never shares it across threads, and all interior
// shared pointers are confined to the wrapped world.
#[allow(unsafe_code)]
unsafe impl Send for ResidentWorld {}

impl ResidentWorld {
    /// Wrap a world for cross-round residency.
    pub fn new(world: World) -> ResidentWorld {
        ResidentWorld(world)
    }

    /// Exclusive access to the wrapped world.
    pub fn get_mut(&mut self) -> &mut World {
        &mut self.0
    }
}

/// Per-home construction overrides for fleet worlds (E20).
///
/// A fleet shares one read-only [`Deployment`] template across 10⁴–10⁶
/// homes; the only per-home inputs are the home's seed and the region's
/// current crowdsourced intel epoch, borrowed from the region's interned
/// snapshot so construction clones signatures at most once per device,
/// never per home.
#[derive(Debug, Clone, Copy)]
pub struct HomeOverrides<'a> {
    /// Replaces the template's `seed` for this home's network RNG.
    pub seed: u64,
    /// Region intel installed on top of the template's own
    /// `subscribed_signatures` (treated identically: standing IDS for
    /// matching SKUs plus membership in each device's interned ruleset).
    pub extra_signatures: &'a [AttackSignature],
}

impl World {
    /// Build a world from a deployment description.
    pub fn new(deployment: &Deployment) -> World {
        World::new_traced(deployment, Tracer::disabled())
    }

    /// Build a world that emits structured trace events into `tracer`.
    ///
    /// The caller keeps its own clone of the handle (clones share one
    /// buffer) and serializes it after the run. With a disabled tracer
    /// this is exactly [`World::new`].
    pub fn new_traced(deployment: &Deployment, tracer: Tracer) -> World {
        World::build(deployment, tracer, None)
    }

    /// Build one home world of a fleet from a shared template (E20).
    ///
    /// The template deployment is read-only and shared across every home
    /// of the fleet; the overrides carry the only two things that vary
    /// per home — its seed and the region's current interned intel
    /// epoch. With `seed = deployment.seed` and no extra signatures this
    /// is exactly [`World::new`].
    pub fn new_home(template: &Deployment, home: &HomeOverrides<'_>) -> World {
        World::build(template, Tracer::disabled(), Some(home))
    }

    /// [`World::new_home`] with a trace buffer attached.
    pub fn new_home_traced(
        template: &Deployment,
        home: &HomeOverrides<'_>,
        tracer: Tracer,
    ) -> World {
        World::build(template, tracer, Some(home))
    }

    /// [`World::new_home`], rebuilding out of a [`WorldScrap`]'s retained
    /// heap instead of allocating cold.
    ///
    /// A fleet worker runs thousands of homes back to back, and each
    /// home's dominant construction cost is its network heap (event
    /// queue arena, capture ring, delivery scratch — ~400 KB per home,
    /// ~95% of the build's bytes).
    /// Those buffers die with the world even though the next home wants
    /// identically-shaped ones. This constructor threads the previous
    /// world's reclaimed buffers (see [`World::reclaim_into`]) into the
    /// network build; everything else is constructed exactly as
    /// [`World::new_home`] does, so a recycled world is behaviorally
    /// indistinguishable from a cold one.
    pub fn new_home_recycled(
        template: &Deployment,
        home: &HomeOverrides<'_>,
        scrap: &mut WorldScrap,
    ) -> World {
        World::build_with_scrap(template, Tracer::disabled(), Some(home), Some(scrap))
    }

    /// Tear the world down, banking its recyclable heap into `scrap` for
    /// the next [`World::new_home_recycled`] build.
    pub fn reclaim_into(self, scrap: &mut WorldScrap) {
        scrap.net.refill(self.net.reclaim());
    }

    /// Whether a deployment template is eligible for resident-world
    /// execution (E26). Residency requires that a world's behavior be a
    /// pure function of `(template, seed, intel)` reachable by in-place
    /// reset: chaos schedules and the safety monitor thread their own
    /// cross-round state, and the perimeter and hierarchical defenses
    /// install build-time structure the reset path does not replay, so
    /// those fall back to rebuild-per-round.
    pub fn supports_resident(template: &Deployment) -> bool {
        template.chaos.is_none()
            && template.safety.is_none()
            && match &template.defense {
                Defense::None => true,
                Defense::IoTSec(c) => !c.hierarchical,
                Defense::Perimeter => false,
            }
    }

    /// Build a resident home world (E26): a [`World::new_home_recycled`]
    /// build plus the captured [`ResidentBind`] that later rounds use to
    /// install intel deltas ([`World::apply_intel_delta`]) and rebind to
    /// a new `(seed)` in place ([`World::rebind_home`]) instead of
    /// rebuilding from scratch.
    pub fn new_home_resident(
        template: &Deployment,
        seed: u64,
        epoch: u32,
        intel: &Arc<[AttackSignature]>,
        scrap: &mut WorldScrap,
    ) -> World {
        debug_assert!(World::supports_resident(template));
        let overrides = HomeOverrides { seed, extra_signatures: intel };
        let mut world =
            World::build_with_scrap(template, Tracer::disabled(), Some(&overrides), Some(scrap));
        world.resident = Some(Box::new(ResidentBind::capture(template, &world, epoch, intel)));
        world
    }

    /// The intel epoch installed on a resident world (`None` for
    /// ordinary worlds).
    pub fn resident_epoch(&self) -> Option<u32> {
        self.resident.as_ref().map(|b| b.epoch)
    }

    /// Install a new intel snapshot on a resident world without
    /// rebuilding it: hot-swap the interned snapshot, diff old-vs-new
    /// signatures per device, repatch only the rulesets whose matching
    /// set changed, and recompile the controller policy only when a
    /// device's standing-IDS membership flipped. Content-identical
    /// snapshots advance the epoch and touch nothing else.
    ///
    /// Must be called between runs (before [`World::rebind_home`]); the
    /// next rebind launches chains against the patched rulesets, so the
    /// patched world is byte-identical to a cold build at the new epoch.
    pub fn apply_intel_delta(
        &mut self,
        epoch: u32,
        intel: &Arc<[AttackSignature]>,
    ) -> DeltaInstall {
        let mut bind = self.resident.take().expect("apply_intel_delta needs a resident world");
        let mut out = DeltaInstall::default();
        bind.epoch = epoch;
        if Arc::ptr_eq(&bind.intel, intel) || bind.intel[..] == intel[..] {
            bind.intel = Arc::clone(intel);
            out.noop = true;
            self.resident = Some(bind);
            return out;
        }
        bind.intel = Arc::clone(intel);
        let mut membership_changed = false;
        if self.cfg.is_some() {
            for i in 0..self.devices.len() {
                let matching = || intel.iter().filter(|s| s.sku == bind.skus[i]);
                if matching().eq(bind.extra[i].iter()) {
                    out.devices_kept += 1;
                    continue;
                }
                let new_extra: Vec<AttackSignature> = matching().cloned().collect();
                let base = &bind.base[i];
                let p = bind.prefix[i].min(base.len());
                let mut sigs = Vec::with_capacity(base.len() + new_extra.len());
                sigs.extend_from_slice(&base[..p]);
                sigs.extend(new_extra.iter().cloned());
                sigs.extend_from_slice(&base[p..]);
                self.device_signatures[i] = sigs.into();
                let now_matched = p > 0 || !new_extra.is_empty();
                if now_matched != bind.matched[i] {
                    bind.matched[i] = now_matched;
                    membership_changed = true;
                }
                bind.extra[i] = new_extra;
                out.devices_patched += 1;
            }
            if membership_changed {
                // Recompile the policy exactly as the builder does, from
                // the captured template inputs and the updated
                // membership vector. Rule-for-rule identical output
                // keeps the oracle's byte-equivalence intact.
                let mut compiler = PolicyCompiler::new();
                for i in 0..self.devices.len() {
                    compiler.device(DeviceId(i as u32), bind.classes[i], &bind.vulns[i]);
                    if bind.matched[i] {
                        compiler.rule(
                            iotpolicy::policy::PolicyRule::new(
                                iotpolicy::compile::priority::MITIGATION,
                                iotpolicy::policy::StatePattern::any(),
                                DeviceId(i as u32),
                                Posture::of(iotpolicy::posture::SecurityModule::Ids { ruleset: 1 }),
                            )
                            .with_origin(&format!("repo:{}", bind.skus[i])),
                        );
                    }
                }
                for var in EnvVar::ALL {
                    compiler.env(var);
                }
                for (device, var, value) in &bind.gates {
                    compiler.gate_actuation(*device, *var, value);
                }
                for (watched, protected) in &bind.protect_pairs {
                    compiler.protect_on_suspicion(*watched, *protected);
                }
                if let Some(ControlPlane::Flat(c)) = &mut self.control {
                    c.policy = compiler.build();
                }
                out.recompiled = true;
            }
        }
        self.resident = Some(bind);
        out
    }

    /// Rebind a resident world to a new home `(seed)` in place: reset
    /// every runtime subsystem to its freshly-constructed state (network
    /// buffers keep their capacity), reseed the traffic RNG, and replay
    /// the initial reconciliation — after which the world is observably
    /// identical to a cold [`World::new_home_recycled`] build at the
    /// currently installed intel epoch.
    pub fn rebind_home(&mut self, seed: u64) {
        let bind = self.resident.take().expect("rebind_home needs a resident world");
        self.clock = SimTime::ZERO;
        self.net.reset_resident(seed);
        self.env = Environment::new();
        for (i, dev) in self.devices.iter_mut().enumerate() {
            dev.reset_runtime();
            if let (Some(load), DeviceLogic::SmartPlug(plug)) = (bind.loads[i], &mut dev.logic) {
                plug.load = load;
            }
        }
        if let Some((hub, _)) = &mut self.hub {
            hub.reset_runtime();
        }
        if let Some((attacker, _)) = &mut self.attacker {
            attacker.reset_runtime();
            for key in &bind.pre_stolen_keys {
                attacker.learn_key(*key);
            }
        }
        self.victim_bytes = 0;
        self.gate_view = ViewHandle::new();
        self.event_sink = EventSink::new();
        if let Some(ControlPlane::Flat(c)) = &mut self.control {
            c.reset_runtime(self.gate_view.clone());
        }
        if let Some(cfg) = &self.cfg {
            self.lifecycle = Some(LifecycleManager::new(cfg.pool));
            self.cluster = Some(match bind.site {
                crate::deployment::Site::Home => Cluster::iot_router(),
                crate::deployment::Site::Enterprise { .. } => {
                    Cluster::enterprise(4, 8192, umbox::resource::PlacementPolicy::LeastLoaded)
                }
            });
        }
        self.chains.clear();
        self.pending_steers.clear();
        self.pending_swaps.clear();
        self.next_steer = 1;
        self.pending_events.clear();
        self.physical_breach = false;
        self.breach_at = None;
        self.retired_drops = 0;
        self.retired_intercepts = 0;
        self.recipes_fired_seed = 0;
        self.unprotected.clear();
        self.fail_open_exposure = SimDuration::ZERO;
        self.blocked_reaction.clear();
        self.retired_fail_open = 0;
        self.retired_fail_closed = 0;
        self.last_failovers = 0;
        self.admission_shed = 0;
        self.delivery_scratch.clear();
        self.env_scratch.clear();
        self.facts_scratch.clear();
        self.resident = Some(bind);

        // Replay the initial reconciliation exactly as the builder does:
        // standing mitigations install before any traffic flows.
        if let Some(mut control) = self.control.take() {
            let directives = control.reconcile(SimTime::ZERO);
            self.control = Some(control);
            for d in directives {
                let (device, kind) = (d.device().0, directive_kind(&d));
                self.tracer.emit(0, TraceEvent::DirectiveIssued { device, kind });
                self.tracer.emit(0, TraceEvent::DirectiveDelivered { device, kind });
                self.execute_directive(d, SimTime::ZERO);
            }
        }
    }

    fn build(deployment: &Deployment, tracer: Tracer, home: Option<&HomeOverrides<'_>>) -> World {
        World::build_with_scrap(deployment, tracer, home, None)
    }

    fn build_with_scrap(
        deployment: &Deployment,
        tracer: Tracer,
        home: Option<&HomeOverrides<'_>>,
        scrap: Option<&mut WorldScrap>,
    ) -> World {
        let seed = home.map_or(deployment.seed, |h| h.seed);
        let extra: &[AttackSignature] = home.map_or(&[], |h| h.extra_signatures);
        // The safety monitor subscribes to the deterministic trace
        // stream rather than a parallel instrumentation channel. When
        // the caller did not ask for a trace, give the world an
        // internal Control-class tracer so the monitor still sees the
        // same event stream — safety behavior is mask-independent, and
        // worlds without a safety layer keep the disabled (zero-cost)
        // tracer exactly as before.
        let tracer = if deployment.safety.is_some() && !tracer.is_enabled() {
            Tracer::new(TraceConfig::control_only())
        } else {
            tracer
        };
        // --- topology -----------------------------------------------------
        let mut b = TopologyBuilder::new();
        let (core, edge_switches): (SwitchId, Vec<SwitchId>) = match deployment.site {
            crate::deployment::Site::Home => {
                let sw = b.add_switch();
                (sw, vec![sw])
            }
            crate::deployment::Site::Enterprise { edges } => {
                let core = b.add_switch();
                let edges = (0..edges.max(1))
                    .map(|_| {
                        let e = b.add_switch();
                        b.connect_switches(core, e, LinkParams::lan());
                        e
                    })
                    .collect();
                (core, edges)
            }
        };
        // Devices spread round-robin over the edge switches.
        let device_switch: Vec<SwitchId> =
            (0..deployment.devices.len()).map(|i| edge_switches[i % edge_switches.len()]).collect();
        let device_endpoints: Vec<EndpointId> =
            device_switch.iter().map(|sw| b.attach_endpoint(*sw, LinkParams::wifi())).collect();
        let hub_ep = deployment
            .with_hub
            .then(|| b.attach_endpoint_with(core, LinkParams::lan(), Ipv4Addr::new(10, 0, 200, 1)));
        let attacker_ep =
            (!deployment.campaign.is_empty()).then(|| match deployment.attacker_location {
                AttackerLocation::Wan => {
                    b.attach_endpoint_with(core, LinkParams::wan(), Ipv4Addr::new(100, 64, 0, 99))
                }
                AttackerLocation::Lan => b.attach_endpoint(edge_switches[0], LinkParams::wifi()),
            });
        let victim_ep = deployment.needs_victim().then(|| {
            b.attach_endpoint_with(core, LinkParams::wan(), Ipv4Addr::new(203, 0, 113, 50))
        });
        let mut net = match scrap {
            Some(scrap) => {
                Network::with_queue_recycled(b.build(), seed, deployment.queue, &mut scrap.net)
            }
            None => Network::with_queue(b.build(), seed, deployment.queue),
        };
        net.set_tracer(tracer.clone());

        // --- devices ------------------------------------------------------
        let mut devices = Vec::with_capacity(deployment.devices.len());
        // Devices plus at most hub, attacker and victim endpoints.
        let mut entities = HashMap::with_capacity(deployment.devices.len() + 3);
        let hub_ip = hub_ep.map(|ep| net.ip_of(ep));
        for (i, setup) in deployment.devices.iter().enumerate() {
            let ep = device_endpoints[i];
            let ip = net.ip_of(ep);
            let mut dev = IoTDevice::new(
                DeviceId(i as u32),
                setup.sku.clone(),
                setup.class,
                ip,
                setup.all_vulns(), // the device has every flaw it shipped with
            );
            if let (Some(load), DeviceLogic::SmartPlug(plug)) = (setup.load, &mut dev.logic) {
                plug.load = load;
            }
            dev.hub = hub_ip;
            dev.owner = hub_ip;
            devices.push(dev);
            entities.insert(ep, Entity::Device(i));
        }

        // --- hub ----------------------------------------------------------
        let hub = hub_ep.map(|ep| {
            let mut hub = Hub::new(net.ip_of(ep), AdminCreds::owner_default());
            for (i, dev) in devices.iter().enumerate() {
                hub.register(DeviceId(i as u32), dev.ip, dev.class);
            }
            for r in &deployment.recipes {
                hub.add_recipe(r.clone());
            }
            entities.insert(ep, Entity::Hub);
            (hub, ep)
        });

        // --- attacker -----------------------------------------------------
        let victim_ip = victim_ep.map(|ep| net.ip_of(ep));
        let attacker = attacker_ep.map(|ep| {
            entities.insert(ep, Entity::Attacker);
            let plan = resolve_plan(&deployment.campaign, &devices, victim_ip);
            let mut attacker = Attacker::new(net.ip_of(ep), plan);
            for key in &deployment.pre_stolen_keys {
                attacker.learn_key(*key);
            }
            (attacker, ep)
        });
        if let Some(ep) = victim_ep {
            entities.insert(ep, Entity::Victim);
        }

        // --- defense ------------------------------------------------------
        let gate_view = ViewHandle::new();
        let event_sink = EventSink::new();
        let mut control = None;
        let mut lifecycle = None;
        let mut cluster = None;
        let mut cfg = None;
        match &deployment.defense {
            Defense::None => {}
            Defense::Perimeter => {
                if let (Some((_, atk_ep)), AttackerLocation::Wan) =
                    (&attacker, deployment.attacker_location)
                {
                    let wan_port = net.topology().endpoint(*atk_ep).port;
                    // Pinholes first (higher priority), then default-deny
                    // for WAN-originated traffic.
                    for dev in &devices {
                        for port in upnp_pinholes(&dev.vulns) {
                            let matcher = if matches!(
                                port,
                                iotdev::proto::ports::MGMT | iotdev::proto::ports::CLOUD
                            ) {
                                FlowMatch::to_tcp_service(dev.ip, port)
                            } else {
                                FlowMatch::to_udp_service(dev.ip, port)
                            }
                            .with_in_port(wan_port);
                            net.install_rule(
                                core,
                                FlowRule::new(200, matcher, FlowAction::Normal)
                                    .with_cookie(u64::MAX),
                            );
                        }
                    }
                    net.install_rule(
                        core,
                        FlowRule::new(
                            150,
                            FlowMatch::any().with_in_port(wan_port),
                            FlowAction::Drop,
                        )
                        .with_cookie(u64::MAX),
                    );
                }
            }
            Defense::IoTSec(config) => {
                let mut compiler = PolicyCompiler::new();
                for (i, setup) in deployment.devices.iter().enumerate() {
                    compiler.device(DeviceId(i as u32), setup.class, &setup.vulns);
                    // Subscribed repository signatures for this SKU put a
                    // standing IDS in front of the device.
                    if deployment
                        .subscribed_signatures
                        .iter()
                        .chain(extra.iter())
                        .any(|s| s.sku == setup.sku)
                    {
                        compiler.rule(
                            iotpolicy::policy::PolicyRule::new(
                                iotpolicy::compile::priority::MITIGATION,
                                iotpolicy::policy::StatePattern::any(),
                                DeviceId(i as u32),
                                Posture::of(iotpolicy::posture::SecurityModule::Ids { ruleset: 1 }),
                            )
                            .with_origin(&format!("repo:{}", setup.sku)),
                        );
                    }
                }
                for var in EnvVar::ALL {
                    compiler.env(var);
                }
                for (device, var, value) in &deployment.gates {
                    compiler.gate_actuation(*device, *var, value);
                }
                for (watched, protected) in &deployment.protect_pairs {
                    compiler.protect_on_suspicion(*watched, *protected);
                }
                let policy = compiler.build();
                let ctl_config = ControllerConfig {
                    view_propagation: config.view_propagation,
                    ..ControllerConfig::default()
                };
                let standby = deployment.chaos.as_ref().is_some_and(|c| c.standby_controller);
                control = Some(if config.hierarchical {
                    ControlPlane::Hier(Box::new(HierarchicalController::new(
                        policy,
                        Partitioning::ByCoupling,
                        ctl_config,
                        gate_view.clone(),
                    )))
                } else if standby {
                    let failover =
                        deployment.chaos.as_ref().map(|c| c.failover).unwrap_or_default();
                    ControlPlane::Replicated(Box::new(ReplicatedController::new(
                        policy,
                        ctl_config,
                        gate_view.clone(),
                        failover,
                    )))
                } else {
                    ControlPlane::Flat(Box::new(Controller::new(
                        policy,
                        ctl_config,
                        gate_view.clone(),
                    )))
                });
                let mut lc = LifecycleManager::new(config.pool);
                if let Some(chaos) = &deployment.chaos {
                    lc.watchdog_delay = chaos.watchdog_delay;
                }
                lifecycle = Some(lc);
                cluster = Some(match deployment.site {
                    crate::deployment::Site::Home => Cluster::iot_router(),
                    crate::deployment::Site::Enterprise { .. } => {
                        Cluster::enterprise(4, 8192, umbox::resource::PlacementPolicy::LeastLoaded)
                    }
                });
                cfg = Some(*config);
            }
        }

        // Intern each device's signature ruleset once: repository
        // subscriptions for its SKU plus (when enabled) vuln-derived
        // rules. Every chain protecting the device then shares the slice
        // by refcount instead of re-cloning signatures per launch.
        let device_signatures: Vec<Rc<[AttackSignature]>> = deployment
            .devices
            .iter()
            .enumerate()
            .map(|(i, setup)| {
                build_signatures(
                    cfg.as_ref(),
                    &devices[i].sku,
                    &setup.vulns,
                    &deployment.subscribed_signatures,
                    extra,
                )
            })
            .collect();

        let mut world = World {
            clock: SimTime::ZERO,
            tick: deployment.tick,
            net,
            env: Environment::new(),
            devices,
            device_endpoints,
            entities,
            hub,
            attacker,
            victim_bytes: 0,
            control,
            lifecycle,
            cluster,
            chains: HashMap::new(),
            pending_steers: Vec::new(),
            pending_swaps: Vec::new(),
            gate_view,
            event_sink,
            cfg,
            device_signatures,
            core_switch: core,
            device_switch,
            next_steer: 1,
            pending_events: Vec::new(),
            physical_breach: false,
            breach_at: None,
            retired_drops: 0,
            retired_intercepts: 0,
            recipes_fired_seed: 0,
            chaos_enabled: deployment.chaos.is_some(),
            failure_mode: deployment.chaos.as_ref().map(|c| c.failure_mode).unwrap_or_default(),
            faults: FaultScheduler::new(),
            crash_plan: Vec::new(),
            crash_idx: 0,
            outage_plan: Vec::new(),
            outage_idx: 0,
            delivery: None,
            unprotected: BTreeMap::new(),
            fail_open_exposure: SimDuration::ZERO,
            blocked_reaction: BTreeSet::new(),
            retired_fail_open: 0,
            retired_fail_closed: 0,
            tracer,
            last_failovers: 0,
            safety: None,
            breakers: None,
            admission_shed: 0,
            delivery_scratch: Vec::new(),
            env_scratch: Vec::with_capacity(EnvVar::ALL.len()),
            facts_scratch: Vec::with_capacity(deployment.devices.len()),
            resident: None,
        };

        if let Some(chaos) = &deployment.chaos {
            world.install_chaos(chaos);
        }
        if let Some(scfg) = &deployment.safety {
            world.safety = Some(SafetyMonitor::new(*scfg, world.tracer.clone()));
            world.breakers = scfg.breaker.enabled.then(|| BreakerBank::new(scfg.breaker));
        }

        // Initial reconciliation installs standing mitigations before any
        // traffic flows.
        if let Some(mut control) = world.control.take() {
            let directives = control.reconcile(SimTime::ZERO);
            world.control = Some(control);
            for d in directives {
                let (device, kind) = (d.device().0, directive_kind(&d));
                world.tracer.emit(0, TraceEvent::DirectiveIssued { device, kind });
                world.tracer.emit(0, TraceEvent::DirectiveDelivered { device, kind });
                world.execute_directive(d, SimTime::ZERO);
            }
        }
        world
    }

    /// Access a device.
    pub fn device(&self, id: DeviceId) -> &IoTDevice {
        &self.devices[id.0 as usize]
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The attacker, if deployed.
    pub fn attacker(&self) -> Option<&Attacker> {
        self.attacker.as_ref().map(|(a, _)| a)
    }

    /// Whether the campaign has finished.
    pub fn attack_done(&self) -> bool {
        self.attacker.as_ref().is_none_or(|(a, _)| a.done())
    }

    /// Bytes of (amplified) traffic delivered to the victim host.
    pub fn victim_bytes(&self) -> u64 {
        self.victim_bytes
    }

    /// The controller's data-plane view (what gates read).
    pub fn gate_view(&self) -> &ViewHandle {
        &self.gate_view
    }

    /// The core/gateway switch (where the WAN, hub and NFV cluster
    /// attach).
    pub fn core_switch(&self) -> SwitchId {
        self.core_switch
    }

    /// The first-hop switch of a device.
    pub fn switch_of(&self, id: DeviceId) -> SwitchId {
        self.device_switch[id.0 as usize]
    }

    /// Materialize a chaos schedule: explicit faults verbatim, counted
    /// faults placed by a dedicated RNG seeded from `chaos.seed` alone
    /// (never the traffic RNG — placement must not perturb traffic).
    fn install_chaos(&mut self, chaos: &ChaosConfig) {
        let uplink = |d: DeviceId| {
            (
                NodeId::Endpoint(self.device_endpoints[d.0 as usize]),
                NodeId::Switch(self.device_switch[d.0 as usize]),
            )
        };
        let mut faults = FaultScheduler::new();
        faults.set_tracer(self.tracer.clone());
        for (device, down_at, heal_at) in &chaos.flap_uplink {
            let (a, b) = uplink(*device);
            faults.flap_wire(a, b, *down_at, *heal_at);
        }
        let mut crash_plan = chaos.crash_at.clone();
        let mut outage_plan = chaos.outage_at.clone();

        let mut rng = StdRng::seed_from_u64(chaos.seed);
        let n = self.devices.len();
        let pick_device =
            |rng: &mut StdRng| DeviceId(((rng.gen::<f64>() * n as f64) as usize).min(n - 1) as u32);
        let pick_time = |rng: &mut StdRng| {
            SimTime::ZERO
                + SimDuration::from_secs_f64(chaos.horizon.as_secs_f64() * rng.gen::<f64>())
        };
        if n > 0 {
            for _ in 0..chaos.link_flaps {
                let (a, b) = uplink(pick_device(&mut rng));
                let at = pick_time(&mut rng);
                faults.flap_wire(a, b, at, at + chaos.flap_downtime);
            }
            for _ in 0..chaos.loss_bursts {
                let (a, b) = uplink(pick_device(&mut rng));
                let at = pick_time(&mut rng);
                faults.loss_burst(a, b, at, at + chaos.burst_len, chaos.burst_loss);
            }
            for _ in 0..chaos.umbox_crashes {
                let device = pick_device(&mut rng);
                crash_plan.push((pick_time(&mut rng), device));
            }
        }
        for _ in 0..chaos.controller_outages {
            outage_plan.push((pick_time(&mut rng), chaos.outage_len));
        }
        crash_plan.sort();
        outage_plan.sort();
        self.faults = faults;
        self.crash_plan = crash_plan;
        self.outage_plan = outage_plan;
        let mut channel = DeliveryChannel::new(chaos.delivery);
        channel.set_tracer(self.tracer.clone());
        self.delivery = Some(channel);
    }

    /// Apply every fault whose time has come: network faults to the
    /// topology, crashes to the lifecycle, outages to the control plane.
    fn apply_chaos(&mut self, now: SimTime) {
        if !self.chaos_enabled {
            return;
        }
        self.faults.apply_due(now, self.net.topology_mut());
        while self.crash_idx < self.crash_plan.len() && self.crash_plan[self.crash_idx].0 <= now {
            let (_, device) = self.crash_plan[self.crash_idx];
            self.crash_idx += 1;
            if let Some(slot) = self.chains.get(&device) {
                if let Some(lc) = &mut self.lifecycle {
                    lc.crash(slot.instance, now);
                    self.tracer.emit(now.as_nanos(), TraceEvent::UmboxCrash { device: device.0 });
                    // Feed the circuit breaker: a trip holds the
                    // watchdog respawn until the cooldown elapses, so
                    // the chain rides its FailureMode fallback instead
                    // of a crash/respawn/crash loop.
                    if let Some(bank) = &mut self.breakers {
                        if bank.on_crash(device, now) == Some(BreakerEvent::Tripped) {
                            self.tracer
                                .emit(now.as_nanos(), TraceEvent::BreakerTrip { device: device.0 });
                            if let Some(until) = bank.open_until(device) {
                                lc.hold_respawn(slot.instance, until);
                            }
                        }
                    }
                }
            }
        }
        while self.outage_idx < self.outage_plan.len() && self.outage_plan[self.outage_idx].0 <= now
        {
            let (from, duration) = self.outage_plan[self.outage_idx];
            self.outage_idx += 1;
            if let Some(control) = &mut self.control {
                control.inject_outage(from, duration);
                self.tracer.emit(
                    now.as_nanos(),
                    TraceEvent::CtlOutage { duration_ns: duration.as_nanos() },
                );
            }
        }
    }

    /// Per-tick availability accounting (chaos runs only): push lifecycle
    /// serving state into each chain's `down` flag and accrue
    /// unprotected time for down chains and for devices whose events the
    /// control plane could not react to.
    fn account_degradation(&mut self, now: SimTime) {
        if let Some(lc) = &self.lifecycle {
            for (device, slot) in &self.chains {
                let serving = lc.get(slot.instance).is_some_and(|i| i.is_serving(now));
                let mut chain = slot.chain.borrow_mut();
                chain.down = !serving;
                if !serving {
                    *self.unprotected.entry(*device).or_insert(SimDuration::ZERO) += self.tick;
                    if chain.failure_mode == FailureMode::FailOpen {
                        self.fail_open_exposure += self.tick;
                    }
                }
            }
        }
        for device in &self.blocked_reaction {
            *self.unprotected.entry(*device).or_insert(SimDuration::ZERO) += self.tick;
        }
    }

    /// Advance one tick.
    pub fn step(&mut self) {
        self.clock += self.tick;
        let now = self.clock;

        // 0. Chaos: apply due network faults, crashes and outages.
        self.apply_chaos(now);

        // 1. Activate µmboxes that finished booting / reconfiguring.
        self.activate_pending(now);

        // 2. Device FSM ticks + physics.
        self.env.begin_tick();
        for i in 0..self.devices.len() {
            let out = self.devices[i].tick(now, &mut self.env);
            self.dispatch(self.device_endpoints[i], now, out);
        }
        self.env.step(self.tick.as_secs_f64());
        if (self.env.window_open || !self.env.door_locked) && !self.env.occupied {
            if !self.physical_breach {
                self.breach_at = Some(now);
            }
            self.physical_breach = true;
        }

        // 3. Hub: env-edge recipes + environment reporting.
        let denv = self.env.discretize();
        if let Some((mut hub, ep)) = self.hub.take() {
            let sends = hub.on_env(denv);
            self.hub = Some((hub, ep));
            for m in sends {
                self.send_message(ep, now, &m, None);
            }
        }
        if let Some(control) = &mut self.control {
            self.env_scratch.clear();
            self.env_scratch.extend(EnvVar::ALL.iter().map(|v| (*v, denv.get(*v))));
            control.ingest_env(now, &self.env_scratch);
        }

        // 4. Attacker.
        if let Some((mut attacker, ep)) = self.attacker.take() {
            let emits = attacker.poll(now);
            self.attacker = Some((attacker, ep));
            for AttackerEmit { out, spoof_src } in emits {
                self.send_message(ep, now, &out, spoof_src);
            }
        }

        // 5. Drain the packet plane (replies can cascade within a tick).
        // The delivery buffer is taken out of the world for the duration
        // of each round (`route_delivery` needs `&mut self`) and put back
        // with its capacity intact, so steady-state ticks never allocate.
        let mut deliveries = std::mem::take(&mut self.delivery_scratch);
        loop {
            deliveries.clear();
            self.net.step_until_into(now, &mut deliveries);
            if deliveries.is_empty() {
                break;
            }
            for d in deliveries.drain(..) {
                self.route_delivery(d);
            }
        }
        self.delivery_scratch = deliveries;

        // 6. Control plane: collect events, step, execute directives.
        let mut events = std::mem::take(&mut self.pending_events);
        events.extend(self.event_sink.drain());
        let mut directives = Vec::new();
        let mut reachable = true;
        if let Some(control) = &mut self.control {
            let down = control.is_down(now);
            for e in events {
                if down {
                    // Nobody is home to react — the event's device stays
                    // exposed until the control plane returns.
                    self.blocked_reaction.insert(e.device);
                }
                control.ingest(e);
            }
            if !down {
                self.blocked_reaction.clear();
            }
            directives = control.step(now);
            reachable = !control.is_down(now);
            for d in &directives {
                let (device, kind) = (d.device().0, directive_kind(d));
                self.tracer.emit(now.as_nanos(), TraceEvent::DirectiveIssued { device, kind });
            }
            let failovers = control.failovers();
            if failovers > self.last_failovers {
                self.last_failovers = failovers;
                self.tracer.emit(now.as_nanos(), TraceEvent::Failover { count: failovers });
            }
        }
        if self.control.is_some() {
            // Chaos runs route directives through the hardened delivery
            // channel (idempotent IDs, bounded queue, retry/backoff);
            // legacy runs keep the direct path bit-for-bit.
            if let Some(channel) = &mut self.delivery {
                for d in directives.drain(..) {
                    // Admission control (safety layer): when the
                    // backlog exceeds its budget, whole-class
                    // recomputes below `Revoke` wait — the queue's
                    // remaining capacity is kept for directives that
                    // tighten postures.
                    if let Some(monitor) = &self.safety {
                        if !safety::admit(monitor.config(), channel.depth(), d.criticality()) {
                            self.admission_shed += 1;
                            self.tracer.emit(
                                now.as_nanos(),
                                TraceEvent::AdmissionShed { device: d.device().0 },
                            );
                            continue;
                        }
                    }
                    channel.submit(now, d);
                }
                directives = channel.pump(now, reachable);
            }
            for d in directives {
                let (device, kind) = (d.device().0, directive_kind(&d));
                self.tracer.emit(now.as_nanos(), TraceEvent::DirectiveDelivered { device, kind });
                self.execute_directive(d, now);
            }
        }
        if let Some(lc) = &mut self.lifecycle {
            for (device, _restart_at) in lc.advance(now) {
                self.tracer.emit(now.as_nanos(), TraceEvent::UmboxRespawn { device: device.0 });
            }
        }

        // Circuit-breaker state machine: open breakers half-open once
        // the cooldown elapses (the respawned instance gets a trial),
        // and re-close after a clean trial window.
        if let (Some(bank), Some(lc)) = (&mut self.breakers, &self.lifecycle) {
            let mut devices: Vec<DeviceId> = self.chains.keys().copied().collect();
            devices.sort_unstable();
            for device in devices {
                let slot = &self.chains[&device];
                let serving = lc.get(slot.instance).is_some_and(|i| i.is_serving(now));
                match bank.tick(device, now, serving) {
                    Some(BreakerEvent::HalfOpened) => self
                        .tracer
                        .emit(now.as_nanos(), TraceEvent::BreakerHalfOpen { device: device.0 }),
                    Some(BreakerEvent::Reclosed) => self
                        .tracer
                        .emit(now.as_nanos(), TraceEvent::BreakerClose { device: device.0 }),
                    _ => {}
                }
            }
        }

        // 7. Chaos: degradation accounting for this tick.
        if self.chaos_enabled {
            self.account_degradation(now);
        }

        // 8. Safety monitor: evaluate every invariant against this
        //    tick's trace events and data-plane facts; realize any
        //    escalations as quarantine flow rules at the edge.
        if self.safety.is_some() {
            self.safety_tick(now);
        }
    }

    /// Gather per-device facts, run the safety monitor, and install the
    /// quarantine posture for any device it escalates.
    fn safety_tick(&mut self, now: SimTime) {
        let mut facts = std::mem::take(&mut self.facts_scratch);
        facts.clear();
        facts.extend((0..self.devices.len()).map(|i| {
            let device = DeviceId(i as u32);
            let (protected, chain_down, fail_open, passed) = match self.chains.get(&device) {
                Some(slot) => {
                    let chain = slot.chain.borrow();
                    (
                        true,
                        chain.down,
                        chain.failure_mode == FailureMode::FailOpen,
                        chain.fail_open_passed,
                    )
                }
                None => (false, false, false, 0),
            };
            DeviceFacts {
                device,
                class: self.devices[i].class,
                protected,
                chain_down,
                fail_open,
                fail_open_passed: passed,
            }
        }));
        let ctl_down = self.control.as_ref().is_some_and(|c| c.is_down(now));
        let fingerprint = self.control.as_ref().map_or(0, |c| c.installed_fingerprint());
        let newly =
            self.safety.as_mut().expect("caller checked").tick(now, ctl_down, fingerprint, &facts);
        self.facts_scratch = facts;
        for device in newly {
            self.install_quarantine(device);
        }
    }

    /// Install the IDIoT-style quarantine posture for `device`: its
    /// class's minimal allow-list as flow rules at the edge switch,
    /// outranking the steer rule — non-essential traffic dies at the
    /// switch instead of traversing a broken chain.
    fn install_quarantine(&mut self, device: DeviceId) {
        let dev = &self.devices[device.0 as usize];
        let allow: Vec<(bool, u16)> = iotpolicy::posture::quarantine_allowlist(dev.class)
            .iter()
            .map(|s| (s.tcp, s.port))
            .collect();
        let port = self.net.topology().endpoint(self.device_endpoints[device.0 as usize]).port;
        let rules = iotnet::flow::quarantine_rules(
            dev.ip,
            port,
            &allow,
            QUARANTINE_PRIORITY,
            quarantine_cookie(device),
        );
        let sw = self.device_switch[device.0 as usize];
        for rule in rules {
            self.net.install_rule(sw, rule);
        }
    }

    /// Run for a duration.
    pub fn run(&mut self, duration: SimDuration) {
        let end = self.clock + duration;
        while self.clock + self.tick <= end {
            self.step();
        }
    }

    /// Run until the campaign completes (or `limit` elapses).
    pub fn run_until_attack_done(&mut self, limit: SimDuration) {
        let end = self.clock + limit;
        while !self.attack_done() && self.clock + self.tick <= end {
            self.step();
        }
        // A little settling time for physics and the control plane.
        self.run(SimDuration::from_secs(2));
    }

    fn activate_pending(&mut self, now: SimTime) {
        let mut i = 0;
        while i < self.pending_steers.len() {
            if self.pending_steers[i].0 <= now {
                let (_, device, chain, instance) = self.pending_steers.remove(i);
                let steer = SteerId(self.next_steer);
                self.next_steer += 1;
                let detour = self.cfg.map_or(SimDuration::ZERO, |c| c.steer_detour);
                self.net.register_steer(steer, Box::new(SharedChain(chain.clone())), detour);
                let ip = self.devices[device.0 as usize].ip;
                let sw = self.device_switch[device.0 as usize];
                self.net.install_rule(
                    sw,
                    FlowRule::new(300, FlowMatch::to_host(ip), FlowAction::Steer(steer))
                        .with_cookie(cookie(device)),
                );
                self.chains.insert(device, UmboxSlot { steer, chain, instance });
                self.tracer.emit(now.as_nanos(), TraceEvent::UmboxReady { device: device.0 });
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.pending_swaps.len() {
            if self.pending_swaps[i].0 <= now {
                let (_, device, mut new_chain) = self.pending_swaps.remove(i);
                if let Some(slot) = self.chains.get(&device) {
                    // An in-place reconfiguration keeps the instance's
                    // counters (it is the same µmbox, new rules).
                    let mut old = slot.chain.borrow_mut();
                    new_chain.processed = old.processed;
                    new_chain.dropped = old.dropped;
                    new_chain.intercepted = old.intercepted;
                    new_chain.busy = old.busy;
                    new_chain.down = old.down;
                    new_chain.fail_open_passed = old.fail_open_passed;
                    new_chain.fail_closed_dropped = old.fail_closed_dropped;
                    *old = new_chain;
                    drop(old);
                    self.tracer.emit(now.as_nanos(), TraceEvent::UmboxSwap { device: device.0 });
                }
            } else {
                i += 1;
            }
        }
    }

    /// The interned signature ruleset for `device` — an `Rc` refcount
    /// bump, never a clone of the rules (`tests/alloc_counter.rs` pins
    /// this down with a counting allocator).
    pub fn signatures_for(&self, device: DeviceId) -> Rc<[AttackSignature]> {
        Rc::clone(&self.device_signatures[device.0 as usize])
    }

    fn chain_config(&self, device: DeviceId) -> ChainConfig {
        ChainConfig {
            device,
            required_creds: self.devices[device.0 as usize].creds.clone(),
            cleared_sources: self.hub.as_ref().map(|(h, _)| vec![h.ip]).unwrap_or_default(),
            signatures: self.signatures_for(device),
            view: self.gate_view.clone(),
            events: self.event_sink.clone(),
            failure_mode: self.failure_mode,
            tracer: self.tracer.clone(),
        }
    }

    fn execute_directive(&mut self, directive: Directive, now: SimTime) {
        self.tracer.emit(
            now.as_nanos(),
            TraceEvent::DirectiveInstalled {
                device: directive.device().0,
                kind: directive_kind(&directive),
            },
        );
        match directive {
            Directive::Launch { device, posture } => self.launch_umbox(device, &posture, now),
            Directive::Reconfigure { device, posture } => {
                if self.chains.contains_key(&device) {
                    let new_chain = build_chain(&posture, &self.chain_config(device));
                    let done_at = {
                        let slot = self.chains.get(&device).unwrap();
                        self.lifecycle.as_mut().map(|lc| lc.reconfigure(slot.instance, now))
                    };
                    self.pending_swaps.push((done_at.unwrap_or(now), device, new_chain));
                } else {
                    // Reconfigure for a chain still booting: queue a launch
                    // with the final posture instead.
                    self.launch_umbox(device, &posture, now);
                }
            }
            Directive::Retire { device } => {
                if let Some(slot) = self.chains.remove(&device) {
                    self.tracer.emit(now.as_nanos(), TraceEvent::UmboxRetire { device: device.0 });
                    {
                        let chain = slot.chain.borrow();
                        self.retired_drops += chain.dropped;
                        self.retired_intercepts += chain.intercepted;
                        self.retired_fail_open += chain.fail_open_passed;
                        self.retired_fail_closed += chain.fail_closed_dropped;
                    }
                    self.net.remove_rules_by_cookie(cookie(device));
                    self.net.unregister_steer(slot.steer);
                    if let Some(lc) = &mut self.lifecycle {
                        lc.retire(slot.instance);
                    }
                    if let Some(cl) = &mut self.cluster {
                        cl.release(device);
                    }
                }
            }
        }
    }

    fn launch_umbox(&mut self, device: DeviceId, posture: &Posture, now: SimTime) {
        // Replace any existing chain outright (covers repeated launches).
        if self.chains.contains_key(&device) {
            self.execute_directive(Directive::Retire { device }, now);
        }
        let Some(cfg) = self.cfg else { return };
        if let Some(cl) = &mut self.cluster {
            if cl.place(device, cfg.vm_kind).is_err() {
                return; // capacity exhausted: the device stays unprotected
            }
        }
        let Some(lc) = &mut self.lifecycle else { return };
        let (instance, ready_at) = lc.launch(device, cfg.vm_kind, now);
        self.tracer.emit(
            now.as_nanos(),
            TraceEvent::UmboxLaunch { device: device.0, ready_ns: ready_at.as_nanos() },
        );
        let chain = Rc::new(RefCell::new(build_chain(posture, &self.chain_config(device))));
        self.pending_steers.push((ready_at, device, chain, instance));
    }

    fn route_delivery(&mut self, d: iotnet::net::Delivery) {
        let Some(&entity) = self.entities.get(&d.endpoint) else { return };
        let Ok(msg) = AppMessage::decode(&d.packet.payload) else { return };
        match entity {
            Entity::Device(i) => {
                let out = self.devices[i].handle_message(
                    d.at,
                    d.packet.ip.src,
                    d.packet.transport.src_port(),
                    d.packet.transport.dst_port(),
                    msg,
                    &mut self.env,
                );
                self.dispatch(self.device_endpoints[i], d.at, out);
            }
            Entity::Hub => {
                if let AppMessage::Event { kind } = msg {
                    if let Some((mut hub, ep)) = self.hub.take() {
                        let sends = hub.on_event(d.packet.ip.src, kind);
                        self.hub = Some((hub, ep));
                        for m in sends {
                            self.send_message(ep, d.at, &m, None);
                        }
                    }
                }
            }
            Entity::Attacker => {
                if let Some((attacker, _)) = &mut self.attacker {
                    attacker.on_delivery(d.at, d.packet.ip.src, &msg);
                }
            }
            Entity::Victim => {
                self.victim_bytes += d.packet.wire_len() as u64;
            }
        }
    }

    fn dispatch(&mut self, from: EndpointId, at: SimTime, out: DeviceOutput) {
        for m in out.messages {
            self.send_message(from, at, &m, None);
        }
        self.pending_events.extend(out.events);
    }

    fn send_message(
        &mut self,
        from: EndpointId,
        at: SimTime,
        m: &OutMessage,
        spoof: Option<Ipv4Addr>,
    ) {
        let Some(dst_ep) = self.net.endpoint_by_ip(m.dst) else { return };
        let transport = if m.msg.is_tcp_plane() {
            TransportHeader::tcp(m.src_port, m.dst_port, 0, TcpFlags::ACK)
        } else {
            TransportHeader::udp(m.src_port, m.dst_port)
        };
        let pkt = Packet::new(
            self.net.mac_of(from),
            self.net.mac_of(dst_ep),
            spoof.unwrap_or_else(|| self.net.ip_of(from)),
            m.dst,
            transport,
            m.msg.encode(),
        );
        self.net.send(from, at, pkt);
    }

    /// Assemble the run's metrics.
    pub fn report(&self) -> Metrics {
        let mut metrics = Metrics {
            physical_breach: self.physical_breach,
            breach_at: self.breach_at,
            ddos_bytes_at_victim: self.victim_bytes,
            policy_drops: self.net.stats.dropped_policy,
            ..Metrics::default()
        };
        for dev in &self.devices {
            if dev.compromised {
                metrics.compromised.insert(dev.id);
            }
            if dev.privacy_leaked {
                metrics.privacy_leaked.insert(dev.id);
            }
        }
        if let Some((attacker, _)) = &self.attacker {
            metrics.attack_outcomes = attacker.outcomes().to_vec();
            metrics.ddos_queries = attacker.dns_queries_sent;
        }
        metrics.umbox_drops += self.retired_drops;
        metrics.umbox_intercepts += self.retired_intercepts;
        metrics.missed_blocks += self.retired_fail_open;
        metrics.fail_closed_drops += self.retired_fail_closed;
        for slot in self.chains.values() {
            let chain = slot.chain.borrow();
            metrics.umbox_drops += chain.dropped;
            metrics.umbox_intercepts += chain.intercepted;
            metrics.missed_blocks += chain.fail_open_passed;
            metrics.fail_closed_drops += chain.fail_closed_dropped;
        }
        if let Some(control) = &self.control {
            metrics.controller_events = control.events_processed();
            metrics.controller_failovers = control.failovers();
        }
        metrics.unprotected = self.unprotected.clone();
        metrics.fail_open_exposure = self.fail_open_exposure;
        metrics.faults_injected = self.faults.applied;
        if let Some(lc) = &self.lifecycle {
            metrics.umbox_crashes = lc.crashes;
            metrics.umbox_respawns = lc.respawns;
        }
        if let Some(channel) = &self.delivery {
            metrics.delivery = channel.stats.clone();
        }
        if let Some(monitor) = &self.safety {
            metrics.safety = monitor.stats().clone();
        }
        metrics.admission_shed = self.admission_shed;
        if let Some(bank) = &self.breakers {
            metrics.breaker_trips = bank.trips();
        }
        if let Some((hub, _)) = &self.hub {
            metrics.recipes_fired = hub.fired;
        }
        let _ = self.recipes_fired_seed;
        metrics
    }

    /// Export every counter the run accumulated — network, µmbox, control
    /// plane, chaos, hub — into one [`MetricsRegistry`]. The snapshot is
    /// sorted by name, so two identical runs render identical text.
    pub fn export_metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        self.net.export_metrics(&mut reg);
        let m = self.report();
        reg.counter("world.compromised", m.compromised.len() as u64);
        reg.counter("world.privacy_leaked", m.privacy_leaked.len() as u64);
        reg.counter("world.ddos_bytes_at_victim", m.ddos_bytes_at_victim);
        reg.counter("world.ddos_queries", m.ddos_queries);
        reg.counter("world.recipes_fired", m.recipes_fired);
        reg.counter("umbox.drops", m.umbox_drops);
        reg.counter("umbox.intercepts", m.umbox_intercepts);
        reg.counter("umbox.missed_blocks", m.missed_blocks);
        reg.counter("umbox.fail_closed_drops", m.fail_closed_drops);
        reg.counter("umbox.crashes", m.umbox_crashes);
        reg.counter("umbox.respawns", m.umbox_respawns);
        reg.counter("ctl.events_processed", m.controller_events);
        reg.counter("ctl.failovers", m.controller_failovers);
        reg.counter("ctl.delivery.submitted", m.delivery.submitted);
        reg.counter("ctl.delivery.delivered", m.delivery.delivered);
        reg.counter("ctl.delivery.deduped", m.delivery.deduped);
        reg.counter("ctl.delivery.retries", m.delivery.retries);
        reg.counter("ctl.delivery.shed", m.delivery.shed);
        reg.counter("chaos.faults_injected", m.faults_injected);
        // Safety-layer names only exist when the layer does, so runs
        // without it render byte-identical registries to older builds.
        if self.safety.is_some() {
            reg.counter("safety.violations", m.safety.violations);
            reg.counter("safety.coverage_violations", m.safety.coverage_violations);
            reg.counter("safety.staleness_violations", m.safety.staleness_violations);
            reg.counter("safety.monotonicity_violations", m.safety.monotonicity_violations);
            reg.counter("safety.continuity_violations", m.safety.continuity_violations);
            reg.counter("safety.quarantines", m.safety.quarantines);
            reg.counter("safety.admission_shed", m.admission_shed);
            reg.counter("safety.breaker_trips", m.breaker_trips);
            reg.gauge(
                "safety.quarantine_secs",
                SimDuration::from_nanos(m.safety.quarantine_time_ns).as_secs_f64(),
            );
        }
        reg.gauge("world.sim_secs", self.clock.as_secs_f64());
        reg.gauge("world.fail_open_exposure_secs", m.fail_open_exposure.as_secs_f64());
        reg.gauge("world.unprotected_secs", m.unprotected_total().as_secs_f64());
        reg
    }
}

fn cookie(device: DeviceId) -> u64 {
    0x1000 + device.0 as u64
}

/// Quarantine rules outrank the steer rule (priority 300): drops and
/// allow-list exceptions both decide at the switch before any steering.
const QUARANTINE_PRIORITY: u16 = 400;

/// Cookie range for quarantine rules, disjoint from steer cookies
/// (`0x1000 + device`).
fn quarantine_cookie(device: DeviceId) -> u64 {
    0x2000 + device.0 as u64
}

/// The fixed trace label for a directive (stable across refactors; the
/// golden traces pin these strings).
fn directive_kind(d: &Directive) -> &'static str {
    match d {
        Directive::Launch { .. } => "launch",
        Directive::Reconfigure { .. } => "reconfigure",
        Directive::Retire { .. } => "retire",
    }
}

/// Build one device's interned signature ruleset: repository
/// subscriptions matching its SKU (which apply regardless of local
/// vulnerability knowledge — that is their whole point), plus rules
/// derived from operator-known flaws when `cfg.signatures` is enabled.
fn build_signatures(
    cfg: Option<&IoTSecConfig>,
    sku: &iotdev::registry::Sku,
    vulns: &[Vulnerability],
    subscribed: &[AttackSignature],
    extra: &[AttackSignature],
) -> Rc<[AttackSignature]> {
    let Some(cfg) = cfg else { return Vec::new().into() };
    let matching = subscribed.iter().chain(extra.iter()).filter(|s| s.sku == *sku).cloned();
    if !cfg.signatures {
        return matching.collect::<Vec<_>>().into();
    }
    matching
        .chain(vulns.iter().map(|v| {
            let matcher = match v {
                Vulnerability::DefaultCredentials { user, pass } => {
                    Matcher::DefaultCredLogin { user: user.clone(), pass: pass.clone() }
                }
                Vulnerability::OpenMgmtAccess => Matcher::MgmtFromExternal,
                Vulnerability::ExposedKeyPair { key } => Matcher::KeyAuthControl { key: *key },
                Vulnerability::NoAuthControl => Matcher::UnauthenticatedControl,
                Vulnerability::OpenDnsResolver => Matcher::RecursiveDnsFromExternal,
                Vulnerability::CloudBypassBackdoor => Matcher::CloudCommand,
            };
            AttackSignature::new(sku.clone(), v.id(), matcher, Severity::High)
        }))
        .collect::<Vec<_>>()
        .into()
}

fn resolve_plan(steps: &[StepSpec], devices: &[IoTDevice], victim: Option<Ipv4Addr>) -> AttackPlan {
    let ip = |id: DeviceId| devices[id.0 as usize].ip;
    let resolved = steps
        .iter()
        .map(|s| match s {
            StepSpec::Probe(d) => AttackStep::Probe { target: ip(*d) },
            StepSpec::Login(d, user, pass) => {
                AttackStep::Login { target: ip(*d), user: (*user).into(), pass: (*pass).into() }
            }
            StepSpec::DictionaryLogin(d) => AttackStep::DictionaryLogin { target: ip(*d) },
            StepSpec::Mgmt(d, command) => {
                AttackStep::Mgmt { target: ip(*d), command: command.clone() }
            }
            StepSpec::Control(d, action, auth) => {
                AttackStep::Control { target: ip(*d), action: *action, auth: auth.clone() }
            }
            StepSpec::Cloud(d, action) => AttackStep::Cloud { target: ip(*d), action: *action },
            StepSpec::DnsReflect { reflector, queries } => AttackStep::DnsReflect {
                reflector: ip(*reflector),
                victim: victim.expect("victim host required for DnsReflect"),
                queries: *queries,
            },
            StepSpec::Wait(duration) => AttackStep::Wait { duration: *duration },
        })
        .collect();
    AttackPlan::new("campaign", resolved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::DeviceSetup;
    use iotdev::device::DeviceClass;
    use iotdev::proto::{ControlAction, MgmtCommand};

    fn camera_deployment(defense: Defense) -> Deployment {
        let mut d = Deployment::new();
        let cam = d.device(DeviceSetup::table1_row(1)); // admin/admin camera
        d.campaign(vec![
            StepSpec::DictionaryLogin(cam),
            StepSpec::Mgmt(cam, MgmtCommand::GetImage),
        ]);
        d.defend_with(defense);
        d
    }

    #[test]
    fn undefended_camera_is_cracked() {
        let mut w = World::new(&camera_deployment(Defense::None));
        w.run_until_attack_done(SimDuration::from_secs(120));
        let m = w.report();
        assert!(m.campaign_succeeded(), "{:?}", m.attack_outcomes);
        assert!(m.privacy_leaked.contains(&DeviceId(0)));
    }

    #[test]
    fn perimeter_does_not_save_an_exposed_camera() {
        // The camera has a UPnP pinhole on the management port — that is
        // how it got on SHODAN — so the perimeter passes the attack.
        let mut w = World::new(&camera_deployment(Defense::Perimeter));
        w.run_until_attack_done(SimDuration::from_secs(120));
        let m = w.report();
        assert!(m.campaign_succeeded(), "{:?}", m.attack_outcomes);
        assert!(m.privacy_leaked.contains(&DeviceId(0)));
    }

    #[test]
    fn perimeter_blocks_unexposed_services() {
        // A clean camera exposes nothing: the WAN probe dies at the wall.
        let mut d = Deployment::new();
        let cam = d.device(DeviceSetup::clean(DeviceClass::Camera));
        d.campaign(vec![StepSpec::Probe(cam)]);
        d.defend_with(Defense::Perimeter);
        let mut w = World::new(&d);
        w.run_until_attack_done(SimDuration::from_secs(120));
        let m = w.report();
        assert!(!m.campaign_succeeded());
        assert!(m.policy_drops > 0);
    }

    #[test]
    fn iotsec_password_proxy_patches_the_camera() {
        let mut w = World::new(&camera_deployment(Defense::iotsec()));
        w.run_until_attack_done(SimDuration::from_secs(120));
        let m = w.report();
        assert!(!m.campaign_succeeded(), "{:?}", m.attack_outcomes);
        assert!(m.privacy_leaked.is_empty());
        assert!(!w.device(DeviceId(0)).privacy_leaked);
    }

    #[test]
    fn iotsec_blocks_cloud_backdoor() {
        let mut d = Deployment::new();
        let plug = d.device(DeviceSetup::table1_row(7)); // cloud backdoor Wemo
        d.campaign(vec![StepSpec::Cloud(plug, ControlAction::TurnOff)]);
        d.defend_with(Defense::iotsec());
        let mut w = World::new(&d);
        w.run_until_attack_done(SimDuration::from_secs(120));
        let m = w.report();
        assert!(m.compromised.is_empty(), "{:?}", m.attack_outcomes);
        // And without IoTSec the same campaign wins.
        let mut d2 = Deployment::new();
        let plug = d2.device(DeviceSetup::table1_row(7));
        d2.campaign(vec![StepSpec::Cloud(plug, ControlAction::TurnOff)]);
        let mut w2 = World::new(&d2);
        w2.run_until_attack_done(SimDuration::from_secs(120));
        assert!(w2.report().compromised.contains(&plug));
    }

    #[test]
    fn dns_reflection_amplifies_without_defense_only() {
        let run = |defense: Defense| {
            let mut d = Deployment::new();
            let plug = d.device(DeviceSetup::table1_row(6)); // open resolver
            d.campaign(vec![
                StepSpec::DnsReflect { reflector: plug, queries: 50 },
                StepSpec::Wait(SimDuration::from_secs(5)),
            ]);
            d.defend_with(defense);
            let mut w = World::new(&d);
            w.run_until_attack_done(SimDuration::from_secs(60));
            w.report()
        };
        let open = run(Defense::None);
        assert!(open.ddos_bytes_at_victim > 10_000, "bytes {}", open.ddos_bytes_at_victim);
        let defended = run(Defense::iotsec());
        assert_eq!(defended.ddos_bytes_at_victim, 0);
    }

    #[test]
    fn crashed_umbox_fail_open_leaks_fail_closed_blocks() {
        // The camera's µmbox crashes at t=5s with a long watchdog; the
        // attack strikes at t=6s, inside the downtime window. Fail-open
        // passes the attack unfiltered; fail-closed drops it.
        let run = |chaos: ChaosConfig| {
            let mut d = Deployment::new();
            let cam = d.device(DeviceSetup::table1_row(1));
            d.campaign(vec![
                StepSpec::Wait(SimDuration::from_secs(6)),
                StepSpec::DictionaryLogin(cam),
                StepSpec::Mgmt(cam, MgmtCommand::GetImage),
            ]);
            d.defend_with(Defense::iotsec());
            d.chaos(
                chaos.crash(SimTime::from_secs(5), cam).with_watchdog(SimDuration::from_secs(30)),
            );
            let mut w = World::new(&d);
            w.run_until_attack_done(SimDuration::from_secs(60));
            w.report()
        };
        let open = run(ChaosConfig::new());
        assert!(open.privacy_leaked.contains(&DeviceId(0)), "{:?}", open.attack_outcomes);
        assert!(open.missed_blocks > 0);
        assert_eq!(open.umbox_crashes, 1);
        assert!(open.fail_open_exposure > SimDuration::ZERO);

        let closed = run(ChaosConfig::new().fail_closed());
        assert!(closed.privacy_leaked.is_empty(), "{:?}", closed.attack_outcomes);
        assert!(closed.compromised.is_empty());
        assert!(closed.fail_closed_drops > 0);
        assert_eq!(closed.fail_open_exposure, SimDuration::ZERO);
        assert!(closed.unprotected_total() > SimDuration::ZERO);
    }

    #[test]
    fn standby_failover_shrinks_unprotected_time() {
        // A 60 s controller outage starts at t=5s; the attack (and its
        // security events) land at t=10s. A single controller leaves the
        // camera's events unanswered until the outage ends; the standby
        // is promoted after detect+resync and reacts ~50 s earlier.
        let run = |standby: bool| {
            let mut d = Deployment::new();
            let cam = d.device(DeviceSetup::table1_row(1));
            d.campaign(vec![
                StepSpec::Wait(SimDuration::from_secs(10)),
                StepSpec::DictionaryLogin(cam),
            ]);
            d.defend_with(Defense::iotsec());
            let mut chaos =
                ChaosConfig::new().outage(SimTime::from_secs(5), SimDuration::from_secs(60));
            if standby {
                chaos = chaos.with_standby();
            }
            d.chaos(chaos);
            let mut w = World::new(&d);
            w.run(SimDuration::from_secs(80));
            w.report()
        };
        let single = run(false);
        let paired = run(true);
        assert_eq!(single.controller_failovers, 0);
        assert_eq!(paired.controller_failovers, 1);
        // The single controller leaves the camera's events unanswered for
        // most of the outage; the pair recovers (detect + resync ≈ 7 s)
        // before the attack even lands, so its exposure is zero.
        assert!(single.unprotected_total() > SimDuration::from_secs(30));
        assert!(
            paired.unprotected_total() < single.unprotected_total(),
            "paired {:?} vs single {:?}",
            paired.unprotected_total(),
            single.unprotected_total()
        );
    }

    #[test]
    fn repeated_crashes_trip_the_breaker_and_quarantine_the_device() {
        let mut d = Deployment::new();
        let cam = d.device(DeviceSetup::table1_row(1));
        d.campaign(vec![
            StepSpec::Wait(SimDuration::from_secs(8)),
            StepSpec::DictionaryLogin(cam),
            StepSpec::Mgmt(cam, MgmtCommand::GetImage),
        ]);
        d.defend_with(Defense::iotsec());
        d.chaos(
            ChaosConfig::new()
                .crash(SimTime::from_secs(2), cam)
                .crash(SimTime::from_secs(4), cam)
                .with_watchdog(SimDuration::from_secs(1)),
        );
        d.safety(iotctl::safety::SafetyConfig::default());
        let mut w = World::new(&d);
        w.run_until_attack_done(SimDuration::from_secs(60));
        let m = w.report();
        assert!(m.breaker_trips >= 1, "second crash inside the window must trip");
        assert_eq!(m.safety.quarantines, 1, "the trip escalates to quarantine");
        // The quarantine allow-list admits telemetry only: the mgmt-port
        // attack dies at the switch, not in the (down) chain.
        assert!(m.policy_drops > 0);
        assert!(!m.campaign_succeeded(), "{:?}", m.attack_outcomes);
        assert!(m.safety.quarantine_time_ns > 0);
    }

    #[test]
    fn safety_layer_sees_no_violations_without_faults() {
        let mut d = camera_deployment(Defense::iotsec());
        d.safety(iotctl::safety::SafetyConfig::default());
        let mut w = World::new(&d);
        w.run_until_attack_done(SimDuration::from_secs(120));
        let m = w.report();
        assert_eq!(m.safety.violations, 0);
        assert_eq!(m.safety.quarantines, 0);
        assert_eq!(m.breaker_trips, 0);
        assert_eq!(m.admission_shed, 0);
    }

    /// Observable fingerprint of a finished run — the same quantities
    /// the fleet folds into its home-outcome digest.
    fn run_fingerprint(w: &mut World) -> (Vec<u32>, Vec<u32>, u64, u64, usize, u64) {
        w.run_until_attack_done(SimDuration::from_secs(120));
        let m = w.report();
        (
            m.compromised.iter().map(|d| d.0).collect(),
            m.privacy_leaked.iter().map(|d| d.0).collect(),
            m.umbox_drops + m.umbox_intercepts,
            m.controller_events,
            m.steps_succeeded(),
            w.net.events_processed(),
        )
    }

    #[test]
    fn resident_world_is_byte_equivalent_to_rebuild() {
        // The E26 oracle in miniature: one resident world carried across
        // (seed, intel) legs must match a cold rebuild on every leg —
        // including an intel delta that flips the camera's standing-IDS
        // membership (policy recompile) and one that is a pure no-op.
        let (template, cam) = crate::scenario::fleet_home(Defense::iotsec(), 0);
        assert!(World::supports_resident(&template));
        let sig = AttackSignature::for_table1_row(1, &template.devices[cam.0 as usize].sku)
            .expect("row 1 has a signature");
        let empty: Arc<[AttackSignature]> = Vec::new().into();
        let armed: Arc<[AttackSignature]> = vec![sig].into();
        // (seed, epoch, snapshot) legs: reseed at same epoch, epoch bump
        // with a membership flip, then a same-content "bump" (no-op).
        let legs: Vec<(u64, u32, &Arc<[AttackSignature]>)> =
            vec![(7, 0, &empty), (8, 0, &empty), (9, 1, &armed), (10, 1, &armed)];

        let mut scrap = WorldScrap::default();
        let mut resident =
            World::new_home_resident(&template, legs[0].0, legs[0].1, legs[0].2, &mut scrap);
        for (i, (seed, epoch, intel)) in legs.iter().enumerate() {
            if i > 0 {
                if resident.resident_epoch() != Some(*epoch) {
                    let d = resident.apply_intel_delta(*epoch, intel);
                    assert!(!d.noop);
                    assert!(d.recompiled, "camera membership flips at epoch 1");
                }
                resident.rebind_home(*seed);
            }
            let got = run_fingerprint(&mut resident);
            let mut cold_scrap = WorldScrap::default();
            let overrides = HomeOverrides { seed: *seed, extra_signatures: intel };
            let mut cold = World::new_home_recycled(&template, &overrides, &mut cold_scrap);
            let want = run_fingerprint(&mut cold);
            assert_eq!(got, want, "leg {i} (seed {seed}, epoch {epoch}) diverged");
        }
        // A same-content epoch advance is a pure no-op install.
        let d = resident.apply_intel_delta(2, &armed);
        assert!(d.noop);
        assert_eq!(resident.resident_epoch(), Some(2));
    }

    #[test]
    fn environment_breach_detection() {
        // No window device in this deployment — the actuator FSM would
        // re-assert its own (closed) position each tick.
        let mut d = Deployment::new();
        let _cam = d.device(DeviceSetup::clean(DeviceClass::Camera));
        let mut w = World::new(&d);
        w.env.occupied = false;
        w.env.window_open = true;
        w.step();
        assert!(w.physical_breach);
        assert!(w.report().physical_breach);
        assert!(w.report().breach_at.is_some());
    }
}
