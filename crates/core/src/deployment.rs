//! Declarative deployment descriptions.
//!
//! A [`Deployment`] says *what exists* (devices with their flaws and
//! physical roles, recipes, safety policy hints), *who attacks*
//! (a campaign written against device ids, resolved to addresses when
//! the world is built), and *what defends* (a [`crate::Defense`]).

use crate::chaos::ChaosConfig;
use crate::defense::Defense;
use iotdev::classes::PlugLoad;
use iotdev::device::{DeviceClass, DeviceId};
use iotdev::env::EnvVar;
use iotdev::proto::{ControlAction, MgmtCommand};
use iotdev::registry::Sku;
use iotdev::vuln::Vulnerability;
use iotnet::engine::QueueKind;
use iotnet::time::SimDuration;
use iotpolicy::recipe::Recipe;

/// One device to deploy.
#[derive(Debug, Clone)]
pub struct DeviceSetup {
    /// Class.
    pub class: DeviceClass,
    /// SKU.
    pub sku: Sku,
    /// Shipped flaws *known to the operator* (the policy compiler sees
    /// these and installs standing mitigations).
    pub vulns: Vec<Vulnerability>,
    /// Shipped flaws the operator does **not** know about — zero-days.
    /// The device has them; the compiled policy cannot anticipate them.
    /// Only reactive enforcement or crowdsourced signatures help.
    pub undisclosed: Vec<Vulnerability>,
    /// What a smart plug powers.
    pub load: Option<PlugLoad>,
}

impl DeviceSetup {
    /// A clean (flawless) device of a class.
    pub fn clean(class: DeviceClass) -> DeviceSetup {
        DeviceSetup {
            class,
            sku: Sku::new("generic", class.name(), "1.0"),
            vulns: Vec::new(),
            undisclosed: Vec::new(),
            load: None,
        }
    }

    /// A device reproducing one Table 1 row.
    pub fn table1_row(row: u8) -> DeviceSetup {
        let reg = iotdev::registry::SkuRegistry::table1();
        let e = reg.by_row(row).expect("rows are 1..=7").clone();
        DeviceSetup {
            class: e.class,
            sku: e.sku,
            vulns: e.vulns,
            undisclosed: Vec::new(),
            load: None,
        }
    }

    /// The same Table 1 device, but with its flaw *undisclosed* — the
    /// operator deployed it believing it clean (the zero-day case the
    /// crowdsourced repository exists for).
    pub fn table1_row_undisclosed(row: u8) -> DeviceSetup {
        let mut s = Self::table1_row(row);
        s.undisclosed = std::mem::take(&mut s.vulns);
        s
    }

    /// Set the plug load.
    pub fn powering(mut self, load: PlugLoad) -> DeviceSetup {
        self.load = Some(load);
        self
    }

    /// Add a vulnerability known to the operator.
    pub fn with_vuln(mut self, vuln: Vulnerability) -> DeviceSetup {
        self.vulns.push(vuln);
        self
    }

    /// Add an undisclosed (zero-day) vulnerability.
    pub fn with_undisclosed(mut self, vuln: Vulnerability) -> DeviceSetup {
        self.undisclosed.push(vuln);
        self
    }

    /// Every flaw the device actually ships with.
    pub fn all_vulns(&self) -> Vec<Vulnerability> {
        self.vulns.iter().chain(self.undisclosed.iter()).cloned().collect()
    }
}

/// The deployment site shape (§2.2's two targets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// A smart home: one IoT router, everything one hop away, µmboxes on
    /// the router's own compute.
    Home,
    /// An enterprise: a core switch, `edges` edge switches with devices
    /// spread across them round-robin, and a well-provisioned on-premise
    /// NFV cluster hanging off the core.
    Enterprise {
        /// Number of edge switches.
        edges: usize,
    },
}

/// Where the attacker sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackerLocation {
    /// On the WAN side (the SHODAN scanner / remote attacker).
    Wan,
    /// Already inside the LAN (a compromised laptop, the paper's
    /// "weakest link" pivot).
    Lan,
}

/// An attack step written against deployment device ids (resolved to
/// addresses when the world is built).
#[derive(Debug, Clone)]
pub enum StepSpec {
    /// Probe a device's management plane.
    Probe(DeviceId),
    /// One explicit login attempt.
    Login(DeviceId, &'static str, &'static str),
    /// Run the default-credential dictionary.
    DictionaryLogin(DeviceId),
    /// A management command (uses any captured session).
    Mgmt(DeviceId, MgmtCommand),
    /// A control-plane actuation.
    Control(DeviceId, ControlAction, iotdev::attacker::AttackAuth),
    /// A vendor-cloud backdoor command.
    Cloud(DeviceId, ControlAction),
    /// DNS reflection off a device toward the scenario's victim host.
    DnsReflect {
        /// The reflector device.
        reflector: DeviceId,
        /// Queries to fire.
        queries: u32,
    },
    /// Wait for physics.
    Wait(SimDuration),
}

/// A full deployment description.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Devices (ids are their indices).
    pub devices: Vec<DeviceSetup>,
    /// Hub recipes.
    pub recipes: Vec<Recipe>,
    /// Whether a hub is deployed (recipes require one).
    pub with_hub: bool,
    /// The attack campaign, if any.
    pub campaign: Vec<StepSpec>,
    /// Attacker location.
    pub attacker_location: AttackerLocation,
    /// The defense under test.
    pub defense: Defense,
    /// Figure 5-style actuation gates: `(device, var, required value)`.
    pub gates: Vec<(DeviceId, EnvVar, &'static str)>,
    /// Figure 3-style protection pairs: `(watched, protected)`.
    pub protect_pairs: Vec<(DeviceId, DeviceId)>,
    /// Site shape.
    pub site: Site,
    /// Signatures this deployment subscribed to from the crowdsourced
    /// repository before deploying; devices of a matching SKU get an IDS
    /// chain loaded with them (the §4.1 consumption side).
    pub subscribed_signatures: Vec<iotlearn::signature::AttackSignature>,
    /// Keys the attacker holds before the campaign starts (extracted
    /// offline from firmware images — the Table 1 row 4 scenario).
    pub pre_stolen_keys: Vec<u64>,
    /// RNG seed.
    pub seed: u64,
    /// Simulation tick.
    pub tick: SimDuration,
    /// Fault schedule, if this is a chaos run. `None` keeps the legacy
    /// fault-free semantics bit-for-bit.
    pub chaos: Option<ChaosConfig>,
    /// Packet-plane event queue backend. Both backends must produce
    /// identical runs; the golden-trace harness holds them to it.
    pub queue: QueueKind,
    /// Runtime safety layer: monitor, circuit breakers and admission
    /// control. `None` keeps the world byte-identical to one built
    /// before the layer existed.
    pub safety: Option<iotctl::safety::SafetyConfig>,
}

impl Default for Deployment {
    fn default() -> Self {
        Deployment {
            devices: Vec::new(),
            recipes: Vec::new(),
            with_hub: true,
            campaign: Vec::new(),
            attacker_location: AttackerLocation::Wan,
            defense: Defense::None,
            gates: Vec::new(),
            protect_pairs: Vec::new(),
            site: Site::Home,
            subscribed_signatures: Vec::new(),
            pre_stolen_keys: Vec::new(),
            seed: 42,
            tick: SimDuration::from_millis(100),
            chaos: None,
            queue: QueueKind::default(),
            safety: None,
        }
    }
}

impl Deployment {
    /// An empty deployment.
    pub fn new() -> Deployment {
        Deployment::default()
    }

    /// Add a device; returns its id.
    pub fn device(&mut self, setup: DeviceSetup) -> DeviceId {
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(setup);
        id
    }

    /// Add a recipe.
    pub fn recipe(&mut self, recipe: Recipe) -> &mut Self {
        self.recipes.push(recipe);
        self
    }

    /// Set the campaign.
    pub fn campaign(&mut self, steps: Vec<StepSpec>) -> &mut Self {
        self.campaign = steps;
        self
    }

    /// Set the defense.
    pub fn defend_with(&mut self, defense: Defense) -> &mut Self {
        self.defense = defense;
        self
    }

    /// Add a Figure 5-style gate.
    pub fn gate(&mut self, device: DeviceId, var: EnvVar, value: &'static str) -> &mut Self {
        self.gates.push((device, var, value));
        self
    }

    /// Add a Figure 3-style protection pair.
    pub fn protect(&mut self, watched: DeviceId, protected: DeviceId) -> &mut Self {
        self.protect_pairs.push((watched, protected));
        self
    }

    /// Attach a fault schedule (makes this a chaos run).
    pub fn chaos(&mut self, chaos: ChaosConfig) -> &mut Self {
        self.chaos = Some(chaos);
        self
    }

    /// Enable the runtime safety layer (monitor, breakers, admission
    /// control).
    pub fn safety(&mut self, safety: iotctl::safety::SafetyConfig) -> &mut Self {
        self.safety = Some(safety);
        self
    }

    /// Whether any step reflects DNS (a victim host is then attached).
    pub fn needs_victim(&self) -> bool {
        self.campaign.iter().any(|s| matches!(s, StepSpec::DnsReflect { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut d = Deployment::new();
        let a = d.device(DeviceSetup::clean(DeviceClass::Camera));
        let b = d.device(DeviceSetup::table1_row(6));
        assert_eq!(a, DeviceId(0));
        assert_eq!(b, DeviceId(1));
        assert_eq!(d.devices[1].class, DeviceClass::SmartPlug);
        assert!(d.devices[1].vulns.iter().any(|v| v.id() == "open-dns-resolver"));
    }

    #[test]
    fn table1_rows_materialize() {
        for row in 1..=7 {
            let setup = DeviceSetup::table1_row(row);
            assert!(!setup.vulns.is_empty(), "row {row}");
        }
    }

    #[test]
    fn needs_victim_detects_reflection() {
        let mut d = Deployment::new();
        let plug = d.device(DeviceSetup::table1_row(6));
        assert!(!d.needs_victim());
        d.campaign(vec![StepSpec::DnsReflect { reflector: plug, queries: 10 }]);
        assert!(d.needs_victim());
    }

    #[test]
    fn device_setup_builders() {
        let s = DeviceSetup::clean(DeviceClass::SmartPlug)
            .powering(PlugLoad::AirConditioner)
            .with_vuln(Vulnerability::CloudBypassBackdoor);
        assert_eq!(s.load, Some(PlugLoad::AirConditioner));
        assert_eq!(s.vulns.len(), 1);
    }
}
