//! `iotsec` — the integrated IoTSec platform (Figure 2 of the paper).
//!
//! This crate assembles the substrates into the system the paper
//! sketches: IoT devices on a programmable home/enterprise network, a
//! logically centralized controller building a global view from device
//! and µmbox events, per-device µmbox chains steered in by flow rules,
//! and an attacker probing it all.
//!
//! * [`deployment`] — describe a deployment (devices + flaws + recipes +
//!   attacker campaign + defense) declaratively.
//! * [`hub`] — the IFTTT-style automation hub: executes recipes, reports
//!   environment snapshots to the controller.
//! * [`world`] — the simulation loop tying `iotnet`, `iotdev`,
//!   `iotpolicy`, `umbox` and `iotctl` together.
//! * [`defense`] — the defense configurations compared throughout the
//!   evaluation: no defense, a stateful perimeter firewall with UPnP
//!   pinholes (the traditional-IT baseline the paper argues is broken),
//!   and IoTSec itself (flat or hierarchical control plane).
//! * [`metrics`] — ground-truth outcome accounting (compromises, privacy
//!   leaks, physical breaches, DDoS bytes, blocked attacks).
//! * [`chaos`] — deterministic fault schedules: link flaps, loss bursts,
//!   µmbox crashes with watchdog respawn, controller outages/failover,
//!   and the fail-open/fail-closed degradation semantics (E15).
//! * [`scenario`] — canned scenarios reproducing the paper's Figures 3–5
//!   and Table 1, used by the examples, the integration tests and the
//!   benchmark harness.
//!
//! # Quickstart
//!
//! Attack an `admin`/`admin` camera, then patch it in the network:
//!
//! ```
//! use iotnet::time::SimDuration;
//! use iotsec::defense::Defense;
//! use iotsec::deployment::{Deployment, DeviceSetup, StepSpec};
//! use iotsec::world::World;
//!
//! let mut run = |defense: Defense| {
//!     let mut d = Deployment::new();
//!     let cam = d.device(DeviceSetup::table1_row(1)); // Table 1 row 1
//!     d.campaign(vec![
//!         StepSpec::DictionaryLogin(cam),
//!         StepSpec::Mgmt(cam, iotdev::proto::MgmtCommand::GetImage),
//!     ]);
//!     d.defend_with(defense);
//!     let mut world = World::new(&d);
//!     world.run_until_attack_done(SimDuration::from_secs(120));
//!     world.report()
//! };
//!
//! assert!(run(Defense::None).campaign_succeeded());
//! assert!(!run(Defense::iotsec()).campaign_succeeded());
//! ```

// Deny rather than forbid: the single exemption is the documented
// `unsafe impl Send for ResidentWorld` in `world` (E26), which asserts
// the fleet's serial cross-round hand-off invariant. No other unsafe
// code is permitted.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod defense;
pub mod deployment;
pub mod hub;
pub mod metrics;
pub mod scenario;
pub mod world;

pub use chaos::ChaosConfig;
pub use defense::{Defense, IoTSecConfig};
pub use deployment::{AttackerLocation, Deployment, DeviceSetup, StepSpec};
pub use metrics::{CampaignReport, Metrics};
pub use world::{HomeOverrides, World};
