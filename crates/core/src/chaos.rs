//! Deterministic chaos: the fault schedule of a run.
//!
//! A [`ChaosConfig`] attached to a [`crate::Deployment`] turns the world
//! into a hostile place in a *reproducible* way: every fault — link
//! flaps, loss/corruption bursts, µmbox crashes, controller outages — is
//! either placed explicitly or derived from `seed` alone, so two runs
//! with the same deployment and the same chaos seed produce
//! byte-identical [`crate::Metrics`].
//!
//! The config also fixes the *degradation semantics* of the enforcement
//! path while it is degraded:
//!
//! * [`FailureMode`] decides what a chain does with traffic while its
//!   µmbox instance is down — `FailOpen` passes unfiltered (availability
//!   over security), `FailClosed` drops (security over availability).
//! * `watchdog_delay` is how long a crashed instance sits before the
//!   lifecycle watchdog respawns it from the pool.
//! * `standby_controller` pairs the flat controller with a warm standby
//!   ([`iotctl::failover`]), and `delivery` tunes the hardened directive
//!   channel ([`iotctl::delivery`]) that chaos runs route directives
//!   through.

use iotctl::delivery::DeliveryConfig;
use iotctl::failover::FailoverConfig;
use iotdev::device::DeviceId;
use iotnet::time::{SimDuration, SimTime};
use serde::Serialize;
use umbox::chain::FailureMode;

/// The fault schedule and degradation semantics of a chaos run.
///
/// Counts (`link_flaps`, `loss_bursts`, …) are placed pseudo-randomly
/// from `seed` within `[0, horizon)`; the `*_at` vectors place faults
/// explicitly (experiments use these for precise timelines). Both kinds
/// compose.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosConfig {
    /// Seed for pseudo-random fault placement (independent of the
    /// deployment's traffic seed).
    pub seed: u64,
    /// Window within which seeded faults are placed.
    pub horizon: SimDuration,

    /// Seeded device-uplink flaps (fail, then heal).
    pub link_flaps: u32,
    /// How long a flapped uplink stays down before healing.
    pub flap_downtime: SimDuration,
    /// Seeded loss bursts on device uplinks.
    pub loss_bursts: u32,
    /// Loss-burst duration.
    pub burst_len: SimDuration,
    /// Loss probability during a burst.
    pub burst_loss: f64,
    /// Seeded µmbox crashes (of devices that have a chain installed).
    pub umbox_crashes: u32,
    /// Seeded controller outages.
    pub controller_outages: u32,
    /// Controller-outage duration.
    pub outage_len: SimDuration,

    /// Explicit uplink flaps: `(device, down_at, heal_at)`.
    pub flap_uplink: Vec<(DeviceId, SimTime, SimTime)>,
    /// Explicit µmbox crashes: `(at, device)`.
    pub crash_at: Vec<(SimTime, DeviceId)>,
    /// Explicit controller outages: `(from, duration)`.
    pub outage_at: Vec<(SimTime, SimDuration)>,

    /// What a chain does with traffic while its instance is down.
    pub failure_mode: FailureMode,
    /// Crash-to-respawn delay of the lifecycle watchdog.
    pub watchdog_delay: SimDuration,
    /// Pair the flat controller with a warm standby.
    pub standby_controller: bool,
    /// Failover detection/re-sync tuning (used with a standby).
    pub failover: FailoverConfig,
    /// Directive-delivery channel tuning.
    pub delivery: DeliveryConfig,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A05,
            horizon: SimDuration::from_secs(60),
            link_flaps: 0,
            flap_downtime: SimDuration::from_secs(2),
            loss_bursts: 0,
            burst_len: SimDuration::from_secs(1),
            burst_loss: 0.5,
            umbox_crashes: 0,
            controller_outages: 0,
            outage_len: SimDuration::from_secs(10),
            flap_uplink: Vec::new(),
            crash_at: Vec::new(),
            outage_at: Vec::new(),
            failure_mode: FailureMode::FailOpen,
            watchdog_delay: SimDuration::from_secs(5),
            standby_controller: false,
            failover: FailoverConfig::default(),
            delivery: DeliveryConfig::default(),
        }
    }
}

impl ChaosConfig {
    /// An empty schedule (chaos plumbing active, no faults).
    pub fn new() -> ChaosConfig {
        ChaosConfig::default()
    }

    /// Set the placement seed.
    pub fn with_seed(mut self, seed: u64) -> ChaosConfig {
        self.seed = seed;
        self
    }

    /// Crash `device`'s µmbox at `at` (respawned after
    /// `watchdog_delay`).
    pub fn crash(mut self, at: SimTime, device: DeviceId) -> ChaosConfig {
        self.crash_at.push((at, device));
        self
    }

    /// Flap `device`'s uplink: down at `down_at`, healed at `heal_at`.
    pub fn flap(mut self, device: DeviceId, down_at: SimTime, heal_at: SimTime) -> ChaosConfig {
        self.flap_uplink.push((device, down_at, heal_at));
        self
    }

    /// Take the controller down at `from` for `duration`.
    pub fn outage(mut self, from: SimTime, duration: SimDuration) -> ChaosConfig {
        self.outage_at.push((from, duration));
        self
    }

    /// Chains drop traffic while their instance is down.
    pub fn fail_closed(mut self) -> ChaosConfig {
        self.failure_mode = FailureMode::FailClosed;
        self
    }

    /// Deploy a warm standby controller.
    pub fn with_standby(mut self) -> ChaosConfig {
        self.standby_controller = true;
        self
    }

    /// Set the watchdog respawn delay.
    pub fn with_watchdog(mut self, delay: SimDuration) -> ChaosConfig {
        self.watchdog_delay = delay;
        self
    }

    /// Whether any fault is scheduled at all.
    pub fn is_quiet(&self) -> bool {
        self.link_flaps == 0
            && self.loss_bursts == 0
            && self.umbox_crashes == 0
            && self.controller_outages == 0
            && self.flap_uplink.is_empty()
            && self.crash_at.is_empty()
            && self.outage_at.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schedule_is_quiet() {
        assert!(ChaosConfig::new().is_quiet());
        assert!(!ChaosConfig::new().crash(SimTime::from_secs(5), DeviceId(0)).is_quiet());
    }

    #[test]
    fn builders_compose() {
        let c = ChaosConfig::new()
            .with_seed(7)
            .crash(SimTime::from_secs(5), DeviceId(1))
            .flap(DeviceId(0), SimTime::from_secs(1), SimTime::from_secs(3))
            .outage(SimTime::from_secs(10), SimDuration::from_secs(20))
            .fail_closed()
            .with_standby();
        assert_eq!(c.seed, 7);
        assert_eq!(c.crash_at.len(), 1);
        assert_eq!(c.flap_uplink.len(), 1);
        assert_eq!(c.outage_at.len(), 1);
        assert_eq!(c.failure_mode, FailureMode::FailClosed);
        assert!(c.standby_controller);
    }
}
