//! Ground-truth outcome metrics.
//!
//! The simulator knows exactly what happened — which devices accepted
//! attacker actuation, what data left, whether the window ended up open
//! with nobody home. These are the rows of the Table 1 / end-to-end
//! experiment outputs.

use iotctl::delivery::DeliveryStats;
use iotctl::safety::SafetyStats;
use iotdev::attacker::AttackOutcome;
use iotdev::device::DeviceId;
use iotnet::time::{SimDuration, SimTime};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// Aggregated outcome of one simulated run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Metrics {
    /// Devices that accepted attacker control.
    pub compromised: BTreeSet<DeviceId>,
    /// Devices whose sensitive data left to a non-owner.
    pub privacy_leaked: BTreeSet<DeviceId>,
    /// Whether the run ended (or passed through) a physical breach
    /// state: window open or door unlocked while nobody is home.
    pub physical_breach: bool,
    /// When the first breach state was entered.
    pub breach_at: Option<SimTime>,
    /// Amplified DNS bytes delivered to the victim host.
    pub ddos_bytes_at_victim: u64,
    /// DNS queries the attacker fired.
    pub ddos_queries: u64,
    /// Packets dropped by µmbox chains.
    pub umbox_drops: u64,
    /// Packets answered by µmbox chains on a device's behalf (proxy
    /// denials).
    pub umbox_intercepts: u64,
    /// Packets dropped by switch policy (perimeter, quarantine rules).
    pub policy_drops: u64,
    /// Control-plane directives executed.
    pub directives: u64,
    /// Security events the controller processed.
    pub controller_events: u64,
    /// Per-step attacker outcomes.
    pub attack_outcomes: Vec<AttackOutcome>,
    /// Recipes the hub fired.
    pub recipes_fired: u64,
    /// Per-device cumulative time the device sat without effective
    /// protection: its chain's instance down, or its security events
    /// arriving while the control plane was down (chaos runs only).
    pub unprotected: BTreeMap<DeviceId, SimDuration>,
    /// Cumulative downtime spent in fail-open mode — windows where
    /// traffic crossed a down chain unfiltered.
    pub fail_open_exposure: SimDuration,
    /// Packets a down chain passed unfiltered (fail-open).
    pub missed_blocks: u64,
    /// Packets a down chain dropped outright (fail-closed).
    pub fail_closed_drops: u64,
    /// µmbox crash events injected.
    pub umbox_crashes: u64,
    /// µmbox instances the watchdog respawned.
    pub umbox_respawns: u64,
    /// Standby promotions the replicated control plane performed.
    pub controller_failovers: u64,
    /// Network faults the scheduler applied.
    pub faults_injected: u64,
    /// Directive-delivery channel counters (chaos runs only).
    pub delivery: DeliveryStats,
    /// Safety-monitor counters (safety-enabled runs only).
    pub safety: SafetyStats,
    /// Directives the admission controller refused under backlog.
    pub admission_shed: u64,
    /// Circuit-breaker trips across all devices.
    pub breaker_trips: u64,
}

impl Metrics {
    /// Whether the whole campaign succeeded (every step).
    pub fn campaign_succeeded(&self) -> bool {
        !self.attack_outcomes.is_empty() && self.attack_outcomes.iter().all(|o| o.success)
    }

    /// How many campaign steps succeeded.
    pub fn steps_succeeded(&self) -> usize {
        self.attack_outcomes.iter().filter(|o| o.success).count()
    }

    /// Whether the attack demonstrably reached its target: a device
    /// accepted attacker control, sensitive data left the home, or
    /// amplified traffic hit the DDoS victim. This is the vacuity
    /// oracle for defense-off arms — a defended run only *proves*
    /// anything if the same scenario lands undefended (see
    /// `iotsec-fuzz`'s differential oracle and the E23 campaign).
    pub fn attack_reached_target(&self) -> bool {
        !self.compromised.is_empty()
            || !self.privacy_leaked.is_empty()
            || self.ddos_bytes_at_victim > 0
    }

    /// Total unprotected time summed over every device.
    pub fn unprotected_total(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for d in self.unprotected.values() {
            total += *d;
        }
        total
    }

    /// A one-line summary for reports.
    pub fn summary(&self) -> String {
        format!(
            "compromised={} leaks={} breach={} ddos_bytes={} steps_ok={}/{}",
            self.compromised.len(),
            self.privacy_leaked.len(),
            self.physical_breach,
            self.ddos_bytes_at_victim,
            self.steps_succeeded(),
            self.attack_outcomes.len(),
        )
    }
}

/// A labelled `(defense, metrics)` pair — one row of a comparison table.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignReport {
    /// Scenario label.
    pub scenario: String,
    /// Defense label.
    pub defense: String,
    /// Outcomes.
    pub metrics: Metrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_success_requires_all_steps() {
        let mut m = Metrics::default();
        assert!(!m.campaign_succeeded()); // empty = nothing succeeded
        m.attack_outcomes.push(AttackOutcome {
            step: 0,
            label: "a".into(),
            success: true,
            at: SimTime::ZERO,
        });
        assert!(m.campaign_succeeded());
        m.attack_outcomes.push(AttackOutcome {
            step: 1,
            label: "b".into(),
            success: false,
            at: SimTime::ZERO,
        });
        assert!(!m.campaign_succeeded());
        assert_eq!(m.steps_succeeded(), 1);
    }

    #[test]
    fn summary_is_stable() {
        let m = Metrics::default();
        assert!(m.summary().contains("compromised=0"));
    }
}
