//! The automation hub: the IFTTT bridge of the paper's deployments.
//!
//! The hub is a LAN endpoint that (a) receives device events and
//! telemetry, (b) executes the recipe corpus — "If Nest Protect detects
//! smoke, turn the lights on" — by sending authenticated control
//! messages, and (c) is the sensor channel through which the controller
//! learns the environment. It is also, as the paper's break-in example
//! shows, an attack amplifier: recipes fire on environment conditions
//! regardless of *why* the environment changed.

use iotdev::device::{AdminCreds, DeviceClass, DeviceId, OutMessage};
use iotdev::env::DiscreteEnv;
use iotdev::proto::{ports, AppMessage, ControlAuth, EventKind};
use iotnet::addr::Ipv4Addr;
use iotpolicy::recipe::{Recipe, Trigger};
use std::collections::HashMap;

/// The hub.
#[derive(Debug)]
pub struct Hub {
    /// The hub's own address (devices report here; devices treat it as
    /// their owner).
    pub ip: Ipv4Addr,
    recipes: Vec<Recipe>,
    /// Device directory: id → (ip, class).
    pub directory: HashMap<DeviceId, (Ipv4Addr, DeviceClass)>,
    ip_to_class: HashMap<Ipv4Addr, DeviceClass>,
    creds: AdminCreds,
    prev_env: Option<DiscreteEnv>,
    /// Recipes fired so far.
    pub fired: u64,
}

impl Hub {
    /// A hub at `ip` holding the owner credentials used for actuation.
    pub fn new(ip: Ipv4Addr, creds: AdminCreds) -> Hub {
        Hub {
            ip,
            recipes: Vec::new(),
            directory: HashMap::new(),
            ip_to_class: HashMap::new(),
            creds,
            prev_env: None,
            fired: 0,
        }
    }

    /// Reset runtime state (environment edge-detector, fired counter)
    /// back to freshly-constructed values, keeping the registered
    /// recipes, directory and credentials. Resident worlds (E26) reuse
    /// the hub across rounds.
    pub fn reset_runtime(&mut self) {
        self.prev_env = None;
        self.fired = 0;
    }

    /// Register a device in the directory.
    pub fn register(&mut self, id: DeviceId, ip: Ipv4Addr, class: DeviceClass) {
        self.directory.insert(id, (ip, class));
        self.ip_to_class.insert(ip, class);
    }

    /// Install a recipe.
    pub fn add_recipe(&mut self, recipe: Recipe) {
        self.recipes.push(recipe);
    }

    /// Installed recipes.
    pub fn recipes(&self) -> &[Recipe] {
        &self.recipes
    }

    fn actuate(&mut self, recipe_idx: usize) -> Option<OutMessage> {
        let recipe = &self.recipes[recipe_idx];
        let (target_ip, _) = *self.directory.get(&recipe.action.target)?;
        self.fired += 1;
        Some(OutMessage {
            dst: target_ip,
            dst_port: ports::CONTROL,
            src_port: ports::CONTROL,
            msg: AppMessage::Control {
                action: recipe.action.action,
                auth: ControlAuth::Password {
                    user: self.creds.user.clone(),
                    pass: self.creds.pass.clone(),
                },
            },
        })
    }

    /// Feed a device event (arrived on the telemetry plane); returns the
    /// actuations any event-triggered recipes produce.
    pub fn on_event(&mut self, from: Ipv4Addr, event: EventKind) -> Vec<OutMessage> {
        let Some(&class) = self.ip_to_class.get(&from) else { return Vec::new() };
        let hits: Vec<usize> = self
            .recipes
            .iter()
            .enumerate()
            .filter(|(_, r)| r.trigger == Trigger::Event(class, event))
            .map(|(i, _)| i)
            .collect();
        hits.into_iter().filter_map(|i| self.actuate(i)).collect()
    }

    /// Feed the per-tick environment snapshot; env-triggered recipes fire
    /// on *edges* (a value becoming the trigger value), exactly like
    /// IFTTT.
    pub fn on_env(&mut self, env: DiscreteEnv) -> Vec<OutMessage> {
        let prev = self.prev_env.replace(env);
        let hits: Vec<usize> = self
            .recipes
            .iter()
            .enumerate()
            .filter(|(_, r)| match r.trigger {
                Trigger::EnvEquals(var, value) => {
                    env.get(var) == value && prev.is_none_or(|p| p.get(var) != value)
                }
                Trigger::Event(..) => false,
            })
            .map(|(i, _)| i)
            .collect();
        hits.into_iter().filter_map(|i| self.actuate(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotdev::env::Environment;
    use iotdev::proto::ControlAction;
    use iotpolicy::recipe::RecipeAction;

    fn hub_with_smoke_recipe() -> Hub {
        let mut hub = Hub::new(Ipv4Addr::new(10, 0, 0, 1), AdminCreds::owner_default());
        hub.register(DeviceId(0), Ipv4Addr::new(10, 0, 0, 5), DeviceClass::FireAlarm);
        hub.register(DeviceId(1), Ipv4Addr::new(10, 0, 0, 6), DeviceClass::LightBulb);
        hub.add_recipe(Recipe {
            id: 0,
            trigger: Trigger::Event(DeviceClass::FireAlarm, EventKind::SmokeAlarm),
            action: RecipeAction { target: DeviceId(1), action: ControlAction::SetColor(1) },
        });
        hub
    }

    #[test]
    fn event_recipe_fires_with_owner_auth() {
        let mut hub = hub_with_smoke_recipe();
        let out = hub.on_event(Ipv4Addr::new(10, 0, 0, 5), EventKind::SmokeAlarm);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, Ipv4Addr::new(10, 0, 0, 6));
        match &out[0].msg {
            AppMessage::Control { action, auth } => {
                assert_eq!(*action, ControlAction::SetColor(1));
                assert!(matches!(auth, ControlAuth::Password { .. }));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(hub.fired, 1);
    }

    #[test]
    fn wrong_event_or_unknown_sender_is_ignored() {
        let mut hub = hub_with_smoke_recipe();
        assert!(hub.on_event(Ipv4Addr::new(10, 0, 0, 5), EventKind::SmokeClear).is_empty());
        assert!(hub.on_event(Ipv4Addr::new(9, 9, 9, 9), EventKind::SmokeAlarm).is_empty());
    }

    #[test]
    fn env_recipes_fire_on_edges_only() {
        let mut hub = Hub::new(Ipv4Addr::new(10, 0, 0, 1), AdminCreds::owner_default());
        hub.register(DeviceId(2), Ipv4Addr::new(10, 0, 0, 7), DeviceClass::WindowActuator);
        hub.add_recipe(Recipe {
            id: 1,
            trigger: Trigger::EnvEquals(iotdev::env::EnvVar::Temperature, "high"),
            action: RecipeAction { target: DeviceId(2), action: ControlAction::Open },
        });
        let mut env = Environment::new();
        // First snapshot: normal. No fire.
        assert!(hub.on_env(env.discretize()).is_empty());
        env.temperature_c = 35.0;
        // Edge to high: fires once.
        assert_eq!(hub.on_env(env.discretize()).len(), 1);
        // Still high: no repeat.
        assert!(hub.on_env(env.discretize()).is_empty());
        env.temperature_c = 21.0;
        assert!(hub.on_env(env.discretize()).is_empty());
        env.temperature_c = 35.0;
        // New edge: fires again.
        assert_eq!(hub.on_env(env.discretize()).len(), 1);
        assert_eq!(hub.fired, 2);
    }

    #[test]
    fn very_first_snapshot_counts_as_edge() {
        let mut hub = Hub::new(Ipv4Addr::new(10, 0, 0, 1), AdminCreds::owner_default());
        hub.register(DeviceId(2), Ipv4Addr::new(10, 0, 0, 7), DeviceClass::WindowActuator);
        hub.add_recipe(Recipe {
            id: 1,
            trigger: Trigger::EnvEquals(iotdev::env::EnvVar::Temperature, "high"),
            action: RecipeAction { target: DeviceId(2), action: ControlAction::Open },
        });
        let mut env = Environment::new();
        env.temperature_c = 35.0;
        assert_eq!(hub.on_env(env.discretize()).len(), 1);
    }
}
