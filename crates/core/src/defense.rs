//! Defense configurations.
//!
//! The evaluation compares three worlds:
//!
//! * **None** — the Internet of 2015: devices reachable as deployed.
//! * **Perimeter** — the traditional-IT baseline: a stateful perimeter
//!   firewall at the gateway. Crucially, it has the *UPnP pinholes* real
//!   deployments have — vulnerable devices that expose services (that is
//!   how SHODAN found every row of Table 1) punch through the perimeter,
//!   and LAN-resident attackers never touch it. This models the paper's
//!   "static perimeter defenses are unable to secure IoT devices".
//! * **IoTSec** — the paper's architecture: compiled FSM policy,
//!   context-tracking controller (flat or hierarchical), per-device
//!   µmbox chains on pooled micro-VMs.

use iotdev::proto::ports;
use iotdev::vuln::Vulnerability;
use iotnet::time::SimDuration;
use umbox::lifecycle::VmKind;

/// IoTSec configuration knobs (the experiment axes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoTSecConfig {
    /// Hierarchical (coupling-partitioned) vs flat control plane.
    pub hierarchical: bool,
    /// Controller → data-plane view propagation delay (E8's axis).
    pub view_propagation: SimDuration,
    /// How µmboxes are instantiated (E9's axis).
    pub vm_kind: VmKind,
    /// Whether IDS chains are pre-loaded with the Table 1 signature set
    /// (as if the crowdsourced repository had already distributed them).
    pub signatures: bool,
    /// Extra detour latency for steering through the µmbox substrate
    /// (≈ 2× the cluster link for an enterprise; ~0 on an IoT router).
    pub steer_detour: SimDuration,
    /// Pre-booted unikernel pool size.
    pub pool: u32,
}

impl Default for IoTSecConfig {
    fn default() -> Self {
        IoTSecConfig {
            hierarchical: false,
            view_propagation: SimDuration::from_millis(20),
            vm_kind: VmKind::UnikernelPooled,
            signatures: true,
            steer_detour: SimDuration::from_micros(200),
            pool: 64,
        }
    }
}

/// The defense under test.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Defense {
    /// No network defense at all.
    #[default]
    None,
    /// Stateful perimeter firewall with UPnP pinholes.
    Perimeter,
    /// The paper's system.
    IoTSec(IoTSecConfig),
}

impl Defense {
    /// IoTSec with default knobs.
    pub fn iotsec() -> Defense {
        Defense::IoTSec(IoTSecConfig::default())
    }

    /// Whether this defense deploys the IoTSec stack.
    pub fn is_iotsec(&self) -> bool {
        matches!(self, Defense::IoTSec(_))
    }
}

/// The WAN-facing ports a vulnerable device exposes through the
/// perimeter (how each Table 1 row was reachable from the Internet in
/// the first place).
pub fn upnp_pinholes(vulns: &[Vulnerability]) -> Vec<u16> {
    let mut ports_open = Vec::new();
    for v in vulns {
        match v {
            Vulnerability::DefaultCredentials { .. } | Vulnerability::OpenMgmtAccess => {
                ports_open.push(ports::MGMT);
            }
            Vulnerability::ExposedKeyPair { .. } => {
                ports_open.push(ports::MGMT);
                ports_open.push(ports::CONTROL);
            }
            Vulnerability::NoAuthControl => ports_open.push(ports::CONTROL),
            Vulnerability::OpenDnsResolver => ports_open.push(ports::DNS),
            Vulnerability::CloudBypassBackdoor => ports_open.push(ports::CLOUD),
        }
    }
    ports_open.sort_unstable();
    ports_open.dedup();
    ports_open
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinholes_match_exposure_classes() {
        assert_eq!(upnp_pinholes(&[Vulnerability::default_admin_admin()]), vec![ports::MGMT]);
        assert_eq!(upnp_pinholes(&[Vulnerability::OpenDnsResolver]), vec![ports::DNS]);
        assert_eq!(upnp_pinholes(&[Vulnerability::CloudBypassBackdoor]), vec![ports::CLOUD]);
        let both = upnp_pinholes(&[Vulnerability::ExposedKeyPair { key: 1 }]);
        assert!(both.contains(&ports::MGMT) && both.contains(&ports::CONTROL));
        // Clean devices expose nothing.
        assert!(upnp_pinholes(&[]).is_empty());
    }

    #[test]
    fn defaults() {
        assert_eq!(Defense::default(), Defense::None);
        assert!(Defense::iotsec().is_iotsec());
        let cfg = IoTSecConfig::default();
        assert!(cfg.signatures);
        assert_eq!(cfg.vm_kind, VmKind::UnikernelPooled);
    }
}
