//! Canned scenarios reproducing the paper's figures and tables.
//!
//! Each function returns a ready-to-run [`Deployment`]; the examples,
//! integration tests and the benchmark harness all draw from here so
//! that "Figure 4" means exactly one thing across the repository.

use crate::defense::Defense;
use crate::deployment::{Deployment, DeviceSetup, StepSpec};
use iotdev::classes::PlugLoad;
use iotdev::device::{DeviceClass, DeviceId};
use iotdev::env::EnvVar;
use iotdev::proto::{ControlAction, MgmtCommand};
use iotdev::vuln::Vulnerability;
use iotnet::time::SimDuration;
use iotpolicy::recipe::{Recipe, RecipeAction, Trigger};

/// Figure 4: the IoT security gateway.
///
/// A D-Link-style camera ships with a hardcoded `admin`/`admin` account
/// the user cannot delete. The attacker dictionary-cracks the account
/// and pulls images. Returns `(deployment, camera)`.
pub fn figure4(defense: Defense) -> (Deployment, DeviceId) {
    let mut d = Deployment::new();
    let cam = d.device(DeviceSetup::table1_row(1));
    d.campaign(vec![
        StepSpec::DictionaryLogin(cam),
        StepSpec::Mgmt(cam, MgmtCommand::GetImage),
        StepSpec::Mgmt(cam, MgmtCommand::GetConfig),
    ]);
    d.defend_with(defense);
    (d, cam)
}

/// Figure 5: the cross-device policy.
///
/// A backdoored Wemo powers the smart oven (a fire hazard). The policy
/// allows "ON" to the Wemo only when the camera sees somebody home. The
/// attacker hits the cloud backdoor while the house is empty. Returns
/// `(deployment, wemo, camera)`.
pub fn figure5(defense: Defense) -> (Deployment, DeviceId, DeviceId) {
    let mut d = Deployment::new();
    let wemo = d.device(DeviceSetup::table1_row(7).powering(PlugLoad::Oven));
    let cam = d.device(DeviceSetup::clean(DeviceClass::Camera));
    let _oven = d.device(DeviceSetup::clean(DeviceClass::Oven));
    d.gate(wemo, EnvVar::Occupancy, "present");
    d.campaign(vec![
        // The plug ships ON; the attacker cycles it OFF then ON via the
        // backdoor to seize the oven's power while nobody is home.
        StepSpec::Cloud(wemo, ControlAction::TurnOff),
        StepSpec::Cloud(wemo, ControlAction::TurnOn),
    ]);
    d.defend_with(defense);
    (d, wemo, cam)
}

/// Figure 3: the fire-alarm / window-actuator FSM policy.
///
/// The fire alarm carries a cloud backdoor; accessing it must flip the
/// system into a state where "open" messages to the window are blocked.
/// Returns `(deployment, fire alarm, window)`.
pub fn figure3(defense: Defense) -> (Deployment, DeviceId, DeviceId) {
    let mut d = Deployment::new();
    let alarm = d.device(
        DeviceSetup::clean(DeviceClass::FireAlarm).with_vuln(Vulnerability::CloudBypassBackdoor),
    );
    let window = d.device(
        DeviceSetup::clean(DeviceClass::WindowActuator).with_vuln(Vulnerability::NoAuthControl),
    );
    d.protect(alarm, window);
    d.campaign(vec![
        // Stage 1: touch the alarm's backdoor (the "FireAlarm backdoor
        // accessed" transition in the figure).
        StepSpec::Cloud(alarm, ControlAction::TurnOff),
        // Stage 2: try to open the window for the break-in.
        StepSpec::Control(window, ControlAction::Open, iotdev::attacker::AttackAuth::None),
    ]);
    d.defend_with(defense);
    (d, alarm, window)
}

/// The paper's implicit-coupling break-in chain (§2.1): compromise the
/// AC's smart plug, let the room heat up, and wait for the "open windows
/// to cool down" IFTTT recipe to breach the house. Returns
/// `(deployment, plug, window)`.
pub fn breakin_chain(defense: Defense) -> (Deployment, DeviceId, DeviceId) {
    let mut d = Deployment::new();
    let plug = d.device(DeviceSetup::table1_row(7).powering(PlugLoad::AirConditioner));
    let thermostat = d.device(DeviceSetup::clean(DeviceClass::Thermostat));
    let window = d.device(DeviceSetup::clean(DeviceClass::WindowActuator));
    let _ = thermostat;
    d.recipe(Recipe {
        id: 0,
        trigger: Trigger::EnvEquals(EnvVar::Temperature, "high"),
        action: RecipeAction { target: window, action: ControlAction::Open },
    });
    d.campaign(vec![
        StepSpec::Cloud(plug, ControlAction::TurnOff),
        StepSpec::Wait(SimDuration::from_secs(1800)),
    ]);
    d.defend_with(defense);
    (d, plug, window)
}

/// One Table 1 row as an attack scenario: the canonical exploit for that
/// row's vulnerability class, against a device of that row's SKU.
/// Returns `(deployment, device)`.
pub fn table1_row(row: u8, defense: Defense) -> (Deployment, DeviceId) {
    let mut d = Deployment::new();
    let dev = d.device(DeviceSetup::table1_row(row));
    let steps = match row {
        1 => vec![StepSpec::DictionaryLogin(dev), StepSpec::Mgmt(dev, MgmtCommand::GetImage)],
        2 | 3 => vec![
            StepSpec::Login(dev, "anyone", "anything"),
            StepSpec::Mgmt(dev, MgmtCommand::GetConfig),
        ],
        4 => vec![StepSpec::Control(
            dev,
            ControlAction::TurnOff,
            iotdev::attacker::AttackAuth::StolenKey,
        )],
        5 => vec![StepSpec::Control(
            dev,
            ControlAction::SetPhase(2),
            iotdev::attacker::AttackAuth::None,
        )],
        6 => vec![
            StepSpec::DnsReflect { reflector: dev, queries: 100 },
            StepSpec::Wait(SimDuration::from_secs(5)),
        ],
        7 => vec![StepSpec::Cloud(dev, ControlAction::TurnOff)],
        _ => panic!("Table 1 has rows 1..=7"),
    };
    // Row 4 (leaked key pair): the attacker already holds the fleet-wide
    // key, extracted offline from the public firmware image.
    if row == 4 {
        for v in &d.devices[dev.0 as usize].vulns {
            if let Vulnerability::ExposedKeyPair { key } = v {
                d.pre_stolen_keys.push(*key);
            }
        }
    }
    d.campaign(steps);
    d.defend_with(defense);
    (d, dev)
}

/// A mixed smart home: every Table 1 row plus a handful of clean
/// devices, the Table 2-style recipes, and the Figure 5 gate. The
/// end-to-end scenario (E11). Returns the deployment and the ids of the
/// vulnerable devices in row order.
pub fn smart_home(defense: Defense, seed: u64) -> (Deployment, Vec<DeviceId>) {
    let mut d = Deployment::new();
    d.seed = seed;
    let vulnerable: Vec<DeviceId> =
        (1..=7).map(|row| d.device(DeviceSetup::table1_row(row))).collect();
    let bulb = d.device(DeviceSetup::clean(DeviceClass::LightBulb));
    let motion = d.device(DeviceSetup::clean(DeviceClass::MotionSensor));
    let lock = d.device(DeviceSetup::clean(DeviceClass::SmartLock));
    let alarm = d.device(DeviceSetup::clean(DeviceClass::FireAlarm));
    let _ = (motion, lock, alarm);
    d.recipe(Recipe {
        id: 0,
        trigger: Trigger::Event(DeviceClass::FireAlarm, iotdev::proto::EventKind::SmokeAlarm),
        action: RecipeAction { target: bulb, action: ControlAction::SetColor(1) },
    });
    d.recipe(Recipe {
        id: 1,
        trigger: Trigger::EnvEquals(EnvVar::Occupancy, "absent"),
        action: RecipeAction { target: vulnerable[6], action: ControlAction::TurnOff },
    });
    d.gate(vulnerable[6], EnvVar::Occupancy, "present");
    // The campaign sweeps the exploit for every vulnerable device.
    let steps = vec![
        StepSpec::DictionaryLogin(vulnerable[0]),
        StepSpec::Mgmt(vulnerable[0], MgmtCommand::GetImage),
        StepSpec::Login(vulnerable[1], "x", "y"),
        StepSpec::Mgmt(vulnerable[1], MgmtCommand::GetConfig),
        StepSpec::Control(
            vulnerable[4],
            ControlAction::SetPhase(2),
            iotdev::attacker::AttackAuth::None,
        ),
        StepSpec::DnsReflect { reflector: vulnerable[5], queries: 50 },
        StepSpec::Cloud(vulnerable[6], ControlAction::TurnOff),
    ];
    d.campaign(steps);
    d.defend_with(defense);
    (d, vulnerable)
}

/// The enterprise site (§2.2's second deployment): a core switch, four
/// edge switches, and a dozen Table 1 cameras spread round-robin across
/// them; the attacker cracks two cameras on different edges. Returns the
/// deployment and the camera ids in index order.
pub fn enterprise(defense: Defense, seed: u64) -> (Deployment, Vec<DeviceId>) {
    let mut d = Deployment::new();
    d.seed = seed;
    d.site = crate::deployment::Site::Enterprise { edges: 4 };
    let cams: Vec<DeviceId> = (0..12).map(|_| d.device(DeviceSetup::table1_row(1))).collect();
    d.campaign(vec![
        StepSpec::DictionaryLogin(cams[5]),
        StepSpec::Mgmt(cams[5], MgmtCommand::GetImage),
        StepSpec::DictionaryLogin(cams[10]),
        StepSpec::Mgmt(cams[10], MgmtCommand::GetImage),
    ]);
    d.defend_with(defense);
    (d, cams)
}

/// The population axis for perf sweeps (E16): the full [`smart_home`]
/// plus `extra` clean background devices cycling through sensor and
/// actuator classes. The extras widen the switch (more ports, more MAC
/// entries, more per-tick device FSM work) without touching the attack
/// surface, so the security outcome stays exactly the smart home's
/// while world size scales. Returns the deployment and the vulnerable
/// device ids in Table 1 row order.
pub fn scaled_home(defense: Defense, seed: u64, extra: u32) -> (Deployment, Vec<DeviceId>) {
    let (mut d, vulnerable) = smart_home(defense, seed);
    const FILLER: &[DeviceClass] = &[
        DeviceClass::LightBulb,
        DeviceClass::MotionSensor,
        DeviceClass::Thermostat,
        DeviceClass::Camera,
    ];
    for i in 0..extra {
        d.device(DeviceSetup::clean(FILLER[i as usize % FILLER.len()]));
    }
    (d, vulnerable)
}

/// The E20 fleet home template: one home of a metro-scale fleet.
///
/// The camera carries Table 1 row 1's default credentials as an
/// *undisclosed* flaw — the operator cannot compile a local mitigation,
/// so the only defense is a crowdsourced repository signature arriving
/// through the fleet's aggregator hierarchy. Until that signature
/// propagates, the dictionary-login campaign leaks the camera's images
/// in every home; after it installs, the standing IDS blocks it
/// fleet-wide. Returns `(deployment, camera)`.
pub fn fleet_home(defense: Defense, seed: u64) -> (Deployment, DeviceId) {
    let mut d = Deployment::new();
    d.seed = seed;
    let cam = d.device(DeviceSetup::table1_row_undisclosed(1));
    let _bulb = d.device(DeviceSetup::clean(DeviceClass::LightBulb));
    let _motion = d.device(DeviceSetup::clean(DeviceClass::MotionSensor));
    d.campaign(vec![StepSpec::DictionaryLogin(cam), StepSpec::Mgmt(cam, MgmtCommand::GetImage)]);
    d.defend_with(defense);
    (d, cam)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn figure4_shapes() {
        let (d, cam) = figure4(Defense::None);
        assert_eq!(cam, DeviceId(0));
        assert_eq!(d.campaign.len(), 3);
        assert!(d.devices[0].vulns.iter().any(|v| v.id() == "default-credentials"));
    }

    #[test]
    fn figure5_gates_the_wemo() {
        let (d, wemo, _) = figure5(Defense::iotsec());
        assert!(d.gates.iter().any(|(dev, var, val)| {
            *dev == wemo && *var == EnvVar::Occupancy && *val == "present"
        }));
    }

    #[test]
    fn figure3_has_protection_pair() {
        let (d, alarm, window) = figure3(Defense::iotsec());
        assert_eq!(d.protect_pairs, vec![(alarm, window)]);
    }

    #[test]
    fn table1_rows_all_construct_and_run_briefly() {
        for row in 1..=7 {
            let (d, _) = table1_row(row, Defense::None);
            let mut w = World::new(&d);
            w.run(SimDuration::from_secs(5));
        }
    }

    #[test]
    fn scaled_home_adds_only_clean_devices() {
        let (base, _) = smart_home(Defense::None, 1);
        let (d, vulnerable) = scaled_home(Defense::None, 1, 9);
        assert_eq!(vulnerable.len(), 7);
        assert_eq!(d.devices.len(), base.devices.len() + 9);
        for setup in &d.devices[base.devices.len()..] {
            assert!(setup.vulns.is_empty());
        }
    }

    #[test]
    fn fleet_home_flaw_is_undisclosed() {
        let (d, cam) = fleet_home(Defense::iotsec(), 7);
        assert_eq!(d.seed, 7);
        let setup = &d.devices[cam.0 as usize];
        // Zero-day: the compiler sees a clean camera; only crowdsourced
        // signatures can defend it.
        assert!(setup.vulns.is_empty());
        assert!(setup.undisclosed.iter().any(|v| v.id() == "default-credentials"));
        // Without intel the campaign must land (non-vacuity of the E20
        // propagation story).
        let mut w = World::new(&d);
        w.run_until_attack_done(SimDuration::from_secs(120));
        assert!(w.report().campaign_succeeded());
    }

    #[test]
    fn smart_home_has_all_rows() {
        let (d, vulnerable) = smart_home(Defense::None, 1);
        assert_eq!(vulnerable.len(), 7);
        assert_eq!(d.devices.len(), 11);
        assert!(!d.recipes.is_empty());
    }
}
