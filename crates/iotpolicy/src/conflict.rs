//! Conflict and ambiguity detection.
//!
//! The paper's §3.1 critique of IFTTT: "they assume recipes are
//! independent, which can either lead to conflicts or safety violations
//! ... both the smoke alarm and the Sighthound rules could be active
//! simultaneously leading to ambiguity." This module finds exactly those
//! cases, both at the recipe level (contradictory actions reachable in
//! one state) and at the compiled-policy level (equal-priority rules
//! assigning contradictory postures).

use crate::policy::FsmPolicy;
use crate::recipe::Recipe;
use iotdev::device::DeviceId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::Serialize;

/// The kind of conflict found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ConflictKind {
    /// Two recipes whose triggers can co-occur command opposed actions on
    /// the same device.
    ContradictoryRecipes,
    /// Two equal-priority policy rules with overlapping patterns assign
    /// contradictory postures (allow vs block-all) to the same device.
    ContradictoryRules,
}

/// One detected conflict.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Conflict {
    /// First participant (recipe id or rule index).
    pub a: u32,
    /// Second participant.
    pub b: u32,
    /// Kind.
    pub kind: ConflictKind,
    /// Human-readable explanation.
    pub description: String,
}

/// Find all pairwise recipe contradictions.
pub fn find_recipe_conflicts(recipes: &[Recipe]) -> Vec<Conflict> {
    let mut out = Vec::new();
    for (i, a) in recipes.iter().enumerate() {
        for b in &recipes[i + 1..] {
            if a.contradicts(b) {
                out.push(Conflict {
                    a: a.id,
                    b: b.id,
                    kind: ConflictKind::ContradictoryRecipes,
                    description: format!(
                        "'{}' and '{}' can fire together with opposed actions",
                        a.to_text(),
                        b.to_text()
                    ),
                });
            }
        }
    }
    out
}

/// Find equal-priority rule contradictions in a compiled policy.
pub fn find_rule_conflicts(policy: &FsmPolicy) -> Vec<Conflict> {
    let mut out = Vec::new();
    for (i, ra) in policy.rules.iter().enumerate() {
        for (j, rb) in policy.rules.iter().enumerate().skip(i + 1) {
            if ra.priority != rb.priority || !ra.pattern.overlaps(&rb.pattern) {
                continue;
            }
            for (dev, pa) in &ra.postures {
                if let Some(pb) = rb.postures.get(dev) {
                    if pa.contradicts(pb) {
                        out.push(Conflict {
                            a: i as u32,
                            b: j as u32,
                            kind: ConflictKind::ContradictoryRules,
                            description: format!(
                                "rules '{}' and '{}' contradict on {dev} at equal priority",
                                ra.origin, rb.origin
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Equal-priority rule pairs assigning contradictory postures to a
/// shared device — conflict candidates whose reachability is still
/// unchecked. `(i, j, device)` triples in `(i, j, device)` order, the
/// emission order of every reachable-conflict engine.
fn contradiction_candidates(policy: &FsmPolicy) -> Vec<(usize, usize, DeviceId)> {
    let mut out = Vec::new();
    for (i, ra) in policy.rules.iter().enumerate() {
        for (j, rb) in policy.rules.iter().enumerate().skip(i + 1) {
            if ra.priority != rb.priority {
                continue;
            }
            for (dev, pa) in &ra.postures {
                if let Some(pb) = rb.postures.get(dev) {
                    if pa.contradicts(pb) {
                        out.push((i, j, *dev));
                    }
                }
            }
        }
    }
    out
}

fn reachable_conflict(policy: &FsmPolicy, i: usize, j: usize, dev: DeviceId) -> Conflict {
    Conflict {
        a: i as u32,
        b: j as u32,
        kind: ConflictKind::ContradictoryRules,
        description: format!(
            "rules '{}' and '{}' contradict on {dev} in a reachable state",
            policy.rules[i].origin, policy.rules[j].origin
        ),
    }
}

/// Find equal-priority rule contradictions whose patterns co-activate in
/// some *actual* state of the schema's product space.
///
/// [`find_rule_conflicts`] uses [`crate::policy::StatePattern::overlaps`],
/// which over-approximates: two patterns that agree on their shared pins
/// "overlap" even when one of them pins a context outside the device's
/// domain and can never fire. This function decides co-activation
/// exactly. On packable schemas that decision is analytic on the
/// compiled masks ([`crate::packed::PackedPattern::overlaps`]): both
/// patterns feasible and agreeing wherever their masks intersect —
/// equivalent to a full state scan because patterns are conjunctions of
/// slot pins over a product space. Unpackable schemas fall back to the
/// over-approximation (and keep its description text via
/// [`find_rule_conflicts`]).
pub fn find_reachable_rule_conflicts(policy: &FsmPolicy) -> Vec<Conflict> {
    let Some(layout) = crate::packed::PackedLayout::of(&policy.schema) else {
        return find_rule_conflicts(policy);
    };
    let packed: Vec<crate::packed::PackedPattern> = policy
        .rules
        .iter()
        .map(|r| crate::packed::PackedPattern::compile(&layout, &policy.schema, &r.pattern))
        .collect();
    contradiction_candidates(policy)
        .into_iter()
        .filter(|(i, j, _)| packed[*i].overlaps(&packed[*j]))
        .map(|(i, j, dev)| reachable_conflict(policy, i, j, dev))
        .collect()
}

/// The reference for [`find_reachable_rule_conflicts`]: decide each
/// candidate's co-activation by scanning the state space for a witness
/// (early exit on the first). `None` when the space exceeds `limit`
/// states. Differentially tested equal to the packed engine.
pub fn find_reachable_rule_conflicts_naive(
    policy: &FsmPolicy,
    limit: u128,
) -> Option<Vec<Conflict>> {
    if policy.schema.size() > limit {
        return None;
    }
    Some(
        contradiction_candidates(policy)
            .into_iter()
            .filter(|(i, j, _)| {
                let (pa, pb) = (&policy.rules[*i].pattern, &policy.rules[*j].pattern);
                policy
                    .schema
                    .iter_states()
                    .any(|s| pa.matches(&policy.schema, &s) && pb.matches(&policy.schema, &s))
            })
            .map(|(i, j, dev)| reachable_conflict(policy, i, j, dev))
            .collect(),
    )
}

/// Plant `n` known contradictions into a recipe corpus (ground truth for
/// the detection-accuracy experiment E2). Returns the planted `(a, b)`
/// id pairs.
#[allow(clippy::explicit_counter_loop)] // the zipped-range form reads worse
pub fn plant_conflicts<R: Rng>(
    recipes: &mut Vec<Recipe>,
    n: usize,
    rng: &mut R,
) -> Vec<(u32, u32)> {
    use iotdev::proto::ControlAction::*;
    let mut planted = Vec::with_capacity(n);
    let mut next_id = recipes.iter().map(|r| r.id).max().map_or(0, |m| m + 1);
    let flippable: Vec<Recipe> = recipes
        .iter()
        .filter(|r| matches!(r.action.action, TurnOn | TurnOff | Open | Close | Lock | Unlock))
        .cloned()
        .collect();
    for _ in 0..n {
        let Some(base) = flippable.choose(rng) else { break };
        let flipped_action = match base.action.action {
            TurnOn => TurnOff,
            TurnOff => TurnOn,
            Open => Close,
            Close => Open,
            Lock => Unlock,
            Unlock => Lock,
            other => other,
        };
        let mut evil = base.clone();
        evil.id = next_id;
        next_id += 1;
        evil.action.action = flipped_action;
        planted.push((base.id, evil.id));
        recipes.push(evil);
    }
    planted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{PolicyRule, StatePattern};
    use crate::posture::Posture;
    use crate::recipe::{RecipeAction, Trigger};
    use crate::state_space::StateSchema;
    use iotdev::device::{DeviceClass, DeviceId};
    use iotdev::env::EnvVar;
    use iotdev::proto::{ControlAction, EventKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn recipe(id: u32, trigger: Trigger, target: u32, action: ControlAction) -> Recipe {
        Recipe { id, trigger, action: RecipeAction { target: DeviceId(target), action } }
    }

    #[test]
    fn paper_ambiguity_case_detected() {
        // "If smoke emergency, set lights to red" vs "If Sighthound
        // detects a person when I'm away, set light to red" — here we use
        // the contradictory variant: smoke wants lights ON, the away-rule
        // wants them OFF.
        let recipes = vec![
            recipe(0, Trigger::EnvEquals(EnvVar::Smoke, "yes"), 5, ControlAction::TurnOn),
            recipe(
                1,
                Trigger::Event(DeviceClass::Camera, EventKind::MotionStart),
                5,
                ControlAction::TurnOff,
            ),
        ];
        let conflicts = find_recipe_conflicts(&recipes);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].kind, ConflictKind::ContradictoryRecipes);
        assert_eq!((conflicts[0].a, conflicts[0].b), (0, 1));
    }

    #[test]
    fn exclusive_triggers_do_not_conflict() {
        let recipes = vec![
            recipe(0, Trigger::EnvEquals(EnvVar::Occupancy, "present"), 5, ControlAction::TurnOn),
            recipe(1, Trigger::EnvEquals(EnvVar::Occupancy, "absent"), 5, ControlAction::TurnOff),
        ];
        assert!(find_recipe_conflicts(&recipes).is_empty());
    }

    #[test]
    fn planting_creates_exactly_detectable_conflicts() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut recipes = vec![
            recipe(0, Trigger::EnvEquals(EnvVar::Smoke, "yes"), 1, ControlAction::Open),
            recipe(1, Trigger::EnvEquals(EnvVar::Light, "dark"), 2, ControlAction::TurnOn),
        ];
        let planted = plant_conflicts(&mut recipes, 2, &mut rng);
        assert_eq!(planted.len(), 2);
        assert_eq!(recipes.len(), 4);
        let found = find_recipe_conflicts(&recipes);
        // Every planted pair must be found.
        for (a, b) in &planted {
            assert!(
                found.iter().any(|c| (c.a == *a && c.b == *b) || (c.a == *b && c.b == *a)),
                "planted ({a},{b}) not detected"
            );
        }
    }

    #[test]
    fn rule_conflicts_need_equal_priority_and_overlap() {
        let mut schema = StateSchema::new();
        schema.add_device(DeviceId(0), DeviceClass::Camera).add_env(EnvVar::Smoke);
        let mut policy = FsmPolicy::new(schema);
        policy.add_rule(
            PolicyRule::new(10, StatePattern::any(), DeviceId(0), Posture::allow())
                .with_origin("allow-all"),
        );
        policy.add_rule(
            PolicyRule::new(
                10,
                StatePattern::any().env(EnvVar::Smoke, "yes"),
                DeviceId(0),
                Posture::quarantine(),
            )
            .with_origin("quarantine-on-smoke"),
        );
        let conflicts = find_rule_conflicts(&policy);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].kind, ConflictKind::ContradictoryRules);

        // Different priorities: resolved, not a conflict.
        policy.rules[1].priority = 20;
        assert!(find_rule_conflicts(&policy).is_empty());
    }

    #[test]
    fn reachable_conflicts_match_witness_search() {
        use crate::context::SecurityContext;
        let mut schema = StateSchema::new();
        schema
            .add_device(DeviceId(0), DeviceClass::Camera)
            .add_device(DeviceId(1), DeviceClass::SmartPlug)
            .add_env(EnvVar::Smoke);
        let mut policy = FsmPolicy::new(schema);
        policy.add_rule(
            PolicyRule::new(10, StatePattern::any(), DeviceId(0), Posture::allow())
                .with_origin("allow-all"),
        );
        policy.add_rule(
            PolicyRule::new(
                10,
                StatePattern::any().env(EnvVar::Smoke, "yes"),
                DeviceId(0),
                Posture::quarantine(),
            )
            .with_origin("quarantine-on-smoke"),
        );
        // Contradiction whose second pattern pins a context outside the
        // camera's two-valued domain: overlaps() over-approximates it as
        // a conflict, but no state makes it fire.
        policy.add_rule(
            PolicyRule::new(10, StatePattern::any(), DeviceId(1), Posture::allow())
                .with_origin("plug-allow"),
        );
        policy.add_rule(
            PolicyRule::new(
                10,
                StatePattern::any().context(DeviceId(1), SecurityContext::Compromised),
                DeviceId(1),
                Posture::quarantine(),
            )
            .with_origin("plug-quarantine-unreachable"),
        );
        let legacy = find_rule_conflicts(&policy);
        let packed = find_reachable_rule_conflicts(&policy);
        let naive = find_reachable_rule_conflicts_naive(&policy, 1 << 16).unwrap();
        assert_eq!(packed, naive);
        assert_eq!(packed.len(), 1, "only the smoke contradiction is reachable");
        assert_eq!((packed[0].a, packed[0].b), (0, 1));
        assert_eq!(legacy.len(), 2, "the legacy over-approximation keeps both");
        assert!(find_reachable_rule_conflicts_naive(&policy, 2).is_none());
    }

    #[test]
    fn disjoint_patterns_do_not_conflict() {
        let mut schema = StateSchema::new();
        schema.add_device(DeviceId(0), DeviceClass::Camera).add_env(EnvVar::Smoke);
        let mut policy = FsmPolicy::new(schema);
        policy.add_rule(PolicyRule::new(
            10,
            StatePattern::any().env(EnvVar::Smoke, "yes"),
            DeviceId(0),
            Posture::quarantine(),
        ));
        policy.add_rule(PolicyRule::new(
            10,
            StatePattern::any().env(EnvVar::Smoke, "no"),
            DeviceId(0),
            Posture::allow(),
        ));
        assert!(find_rule_conflicts(&policy).is_empty());
    }
}
