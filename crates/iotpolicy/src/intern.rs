//! Region-level interning of shared rulesets and vuln intel (E20).
//!
//! The paper's §5.1 scalability argument is that per-device policies are
//! *shared*, not per-home: one crowdsourced signature set serves every
//! subscribed home in a metro region. The fleet tier therefore interns
//! each distinct intel snapshot exactly once per region and hands every
//! home an `Arc` to the same allocation — 10⁵ homes hold 10⁵ pointers,
//! not 10⁵ copies. Interning is keyed by value equality over the sorted
//! snapshot, so two epochs with identical content share one allocation
//! and pointer equality (`Arc::ptr_eq`) becomes a cheap "nothing
//! changed" test on the install path.

use std::sync::Arc;

/// A value-keyed intern table handing out shared `Arc<[T]>` snapshots.
///
/// Lookups are a linear scan over previously interned snapshots: the
/// table holds one entry per *distinct intel epoch* (a handful over a
/// fleet run), not per home, so a scan beats a hash table and keeps the
/// structure dependency-free.
#[derive(Debug, Default)]
pub struct Interner<T> {
    snapshots: Vec<Arc<[T]>>,
    hits: u64,
    misses: u64,
}

impl<T: Clone + PartialEq> Interner<T> {
    /// An empty intern table.
    pub fn new() -> Interner<T> {
        Interner { snapshots: Vec::new(), hits: 0, misses: 0 }
    }

    /// Intern a snapshot: returns the shared allocation for this exact
    /// sequence, allocating only the first time it is seen.
    ///
    /// The caller is responsible for presenting snapshots in a canonical
    /// (sorted, deduplicated) order — the table compares sequences, it
    /// does not normalize them.
    pub fn intern(&mut self, items: &[T]) -> Arc<[T]> {
        if let Some(found) = self.snapshots.iter().find(|s| s.as_ref() == items) {
            self.hits += 1;
            return Arc::clone(found);
        }
        self.misses += 1;
        let snap: Arc<[T]> = items.to_vec().into();
        self.snapshots.push(Arc::clone(&snap));
        snap
    }

    /// Number of distinct snapshots interned so far.
    pub fn distinct(&self) -> usize {
        self.snapshots.len()
    }

    /// `(hits, misses)` — lookups served from an existing allocation vs
    /// lookups that allocated a new snapshot.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_snapshots_share_one_allocation() {
        let mut t: Interner<u32> = Interner::new();
        let a = t.intern(&[1, 2, 3]);
        let b = t.intern(&[1, 2, 3]);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(t.distinct(), 1);
        assert_eq!(t.stats(), (1, 1));
    }

    #[test]
    fn distinct_snapshots_get_distinct_allocations() {
        let mut t: Interner<u32> = Interner::new();
        let a = t.intern(&[1, 2]);
        let b = t.intern(&[1, 2, 3]);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(t.distinct(), 2);
        // Order matters: the table does not normalize.
        let c = t.intern(&[2, 1]);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(t.distinct(), 3);
    }

    #[test]
    fn empty_snapshot_is_interned_once() {
        let mut t: Interner<u32> = Interner::new();
        let a = t.intern(&[]);
        let b = t.intern(&[]);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(t.distinct(), 1);
    }
}
