//! Region-level interning of shared rulesets and vuln intel (E20).
//!
//! The paper's §5.1 scalability argument is that per-device policies are
//! *shared*, not per-home: one crowdsourced signature set serves every
//! subscribed home in a metro region. The fleet tier therefore interns
//! each distinct intel snapshot exactly once per region and hands every
//! home an `Arc` to the same allocation — 10⁵ homes hold 10⁵ pointers,
//! not 10⁵ copies. Interning is keyed by value equality over the sorted
//! snapshot, so two epochs with identical content share one allocation
//! and pointer equality (`Arc::ptr_eq`) becomes a cheap "nothing
//! changed" test on the install path.

use std::sync::Arc;

/// A value-keyed intern table handing out shared `Arc<[T]>` snapshots.
///
/// Lookups are a linear scan over previously interned snapshots: the
/// table holds one entry per *distinct intel epoch* (a handful over a
/// fleet run), not per home, so a scan beats a hash table and keeps the
/// structure dependency-free.
#[derive(Debug, Default)]
pub struct Interner<T> {
    snapshots: Vec<Arc<[T]>>,
    hits: u64,
    misses: u64,
    retired: u64,
}

impl<T: Clone + PartialEq> Interner<T> {
    /// An empty intern table.
    pub fn new() -> Interner<T> {
        Interner { snapshots: Vec::new(), hits: 0, misses: 0, retired: 0 }
    }

    /// Intern a snapshot: returns the shared allocation for this exact
    /// sequence, allocating only the first time it is seen.
    ///
    /// The caller is responsible for presenting snapshots in a canonical
    /// (sorted, deduplicated) order — the table compares sequences, it
    /// does not normalize them.
    pub fn intern(&mut self, items: &[T]) -> Arc<[T]> {
        if let Some(found) = self.snapshots.iter().find(|s| s.as_ref() == items) {
            self.hits += 1;
            return Arc::clone(found);
        }
        self.misses += 1;
        let snap: Arc<[T]> = items.to_vec().into();
        self.snapshots.push(Arc::clone(&snap));
        snap
    }

    /// Number of distinct snapshots interned so far.
    pub fn distinct(&self) -> usize {
        self.snapshots.len()
    }

    /// `(hits, misses)` — lookups served from an existing allocation vs
    /// lookups that allocated a new snapshot.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Epoch GC (E26): retire every interned snapshot whose only
    /// remaining owner is the table itself (`Arc::strong_count == 1`).
    /// The caller first drops its own handles to unreachable epochs —
    /// anything below the fleet's minimum installed epoch — and then
    /// this sweep bounds the table's footprint by the *live* epoch
    /// window instead of the full epoch history. Returns the number of
    /// snapshots retired this sweep.
    ///
    /// A retired snapshot's content could in principle recur; it would
    /// simply be re-interned as a new allocation. Retirement trades that
    /// (never observed in practice — intel snapshots grow monotonically)
    /// for a bounded footprint.
    pub fn retain_shared(&mut self) -> usize {
        let before = self.snapshots.len();
        self.snapshots.retain(|s| Arc::strong_count(s) > 1);
        let retired = before - self.snapshots.len();
        self.retired += retired as u64;
        retired
    }

    /// Snapshots retired by [`Interner::retain_shared`] over the table's
    /// lifetime.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Total distinct snapshots ever interned: currently live plus
    /// retired. This is the GC-invariant counter fleet reports use, so
    /// enabling epoch GC does not change reported dedup figures.
    pub fn distinct_total(&self) -> usize {
        self.snapshots.len() + self.retired as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_snapshots_share_one_allocation() {
        let mut t: Interner<u32> = Interner::new();
        let a = t.intern(&[1, 2, 3]);
        let b = t.intern(&[1, 2, 3]);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(t.distinct(), 1);
        assert_eq!(t.stats(), (1, 1));
    }

    #[test]
    fn distinct_snapshots_get_distinct_allocations() {
        let mut t: Interner<u32> = Interner::new();
        let a = t.intern(&[1, 2]);
        let b = t.intern(&[1, 2, 3]);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(t.distinct(), 2);
        // Order matters: the table does not normalize.
        let c = t.intern(&[2, 1]);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(t.distinct(), 3);
    }

    #[test]
    fn retain_shared_retires_only_unreferenced_snapshots() {
        let mut t: Interner<u32> = Interner::new();
        let live = t.intern(&[1, 2]);
        let dead = t.intern(&[3, 4]);
        drop(dead);
        assert_eq!(t.retain_shared(), 1);
        assert_eq!(t.distinct(), 1);
        assert_eq!(t.retired(), 1);
        // The GC-invariant total still counts the retired snapshot.
        assert_eq!(t.distinct_total(), 2);
        // The live snapshot survives and is still shared.
        let again = t.intern(&[1, 2]);
        assert!(Arc::ptr_eq(&live, &again));
        // A second sweep with no drops retires nothing.
        assert_eq!(t.retain_shared(), 0);
        assert_eq!(t.distinct_total(), 2);
    }

    #[test]
    fn footprint_is_bounded_under_epoch_churn() {
        // Long-run pin: an ever-growing epoch history with a sliding
        // live window must not grow the table monotonically.
        let mut t: Interner<u32> = Interner::new();
        let mut window: std::collections::VecDeque<Arc<[u32]>> = Default::default();
        for epoch in 0..1000u32 {
            window.push_back(t.intern(&[epoch]));
            while window.len() > 4 {
                window.pop_front();
            }
            t.retain_shared();
            assert!(t.distinct() <= 5, "interner footprint grew past the live window");
        }
        assert_eq!(t.distinct_total(), 1000);
    }

    #[test]
    fn empty_snapshot_is_interned_once() {
        let mut t: Interner<u32> = Interner::new();
        let a = t.intern(&[]);
        let b = t.intern(&[]);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(t.distinct(), 1);
    }
}
