//! Security-context values.
//!
//! Each device `Dᵢ` carries a security context `Cᵢ` — the paper's
//! examples are `normal`, `suspicious` and `unpatched`. The context is
//! half of the system state (the other half is the environment), and it
//! is what a firewall rule cannot see: the *same* packet is benign when
//! the fire alarm is `normal` and must be blocked when it is
//! `suspicious` (Figure 3).

use serde::{Deserialize, Serialize};

/// A device's security context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SecurityContext {
    /// Behaving as expected.
    Normal,
    /// Suspicious activity observed (failed logins, signature hits,
    /// anomalous behaviour) but no confirmed takeover.
    Suspicious,
    /// Confirmed attacker control (backdoor use, unauthenticated
    /// actuation accepted).
    Compromised,
    /// Known-vulnerable and unpatchable; not (yet) under attack. The
    /// paper's argument is that most IoT devices live here permanently.
    Unpatched,
}

impl SecurityContext {
    /// All context values.
    pub const ALL: [SecurityContext; 4] = [
        SecurityContext::Normal,
        SecurityContext::Suspicious,
        SecurityContext::Compromised,
        SecurityContext::Unpatched,
    ];

    /// The stable lowercase name used in policies and reports.
    pub fn name(self) -> &'static str {
        match self {
            SecurityContext::Normal => "normal",
            SecurityContext::Suspicious => "suspicious",
            SecurityContext::Compromised => "compromised",
            SecurityContext::Unpatched => "unpatched",
        }
    }

    /// Severity ordering used by escalation logic (higher = worse).
    /// `Unpatched` is a *latent* risk: worse than `normal`, better than
    /// observed suspicion.
    pub fn severity(self) -> u8 {
        match self {
            SecurityContext::Normal => 0,
            SecurityContext::Unpatched => 1,
            SecurityContext::Suspicious => 2,
            SecurityContext::Compromised => 3,
        }
    }

    /// The worse of two contexts.
    pub fn escalate(self, other: SecurityContext) -> SecurityContext {
        if other.severity() > self.severity() {
            other
        } else {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_is_total_order() {
        let mut sevs: Vec<u8> = SecurityContext::ALL.iter().map(|c| c.severity()).collect();
        sevs.sort();
        sevs.dedup();
        assert_eq!(sevs.len(), 4);
    }

    #[test]
    fn escalate_takes_worse() {
        use SecurityContext::*;
        assert_eq!(Normal.escalate(Suspicious), Suspicious);
        assert_eq!(Suspicious.escalate(Normal), Suspicious);
        assert_eq!(Compromised.escalate(Unpatched), Compromised);
        assert_eq!(Unpatched.escalate(Unpatched), Unpatched);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = SecurityContext::ALL.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
