//! The system state space `S = Π|Cᵢ| × Π|Eⱼ|`.
//!
//! A [`StateSchema`] declares, for one deployment, which devices exist
//! (with the context values each can take) and which environment
//! variables are tracked. A [`SystemState`] is one point in the product
//! space. The schema can count its states exactly (the paper's
//! combinatorial-explosion observation, experiment E1) and iterate them
//! for exhaustive checking on small deployments.

use crate::context::SecurityContext;
use iotdev::device::{DeviceClass, DeviceId};
use iotdev::env::{DiscreteEnv, EnvVar};
use serde::Serialize;
use std::collections::HashMap;

/// One device's slot in the schema.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeviceVar {
    /// The device.
    pub id: DeviceId,
    /// Its class (used by pruning and compilation).
    pub class: DeviceClass,
    /// The context values this device can take.
    pub contexts: Vec<SecurityContext>,
}

/// The shape of a deployment's state space.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct StateSchema {
    /// Devices, in slot order.
    pub devices: Vec<DeviceVar>,
    /// Tracked environment variables, in slot order.
    pub env_vars: Vec<EnvVar>,
    /// Precomputed id → slot maps, maintained by the `add_*` methods.
    /// Pattern compilation and rule factoring resolve slots per rule per
    /// lookup; with hundreds of devices the former O(devices) scan
    /// dominated policy compilation.
    dev_index: HashMap<DeviceId, usize>,
    env_index: HashMap<EnvVar, usize>,
}

impl StateSchema {
    /// An empty schema.
    pub fn new() -> StateSchema {
        StateSchema::default()
    }

    /// Add a device with the default two-valued context domain
    /// (`normal` / `suspicious`).
    pub fn add_device(&mut self, id: DeviceId, class: DeviceClass) -> &mut Self {
        self.add_device_with(id, class, vec![SecurityContext::Normal, SecurityContext::Suspicious])
    }

    /// Add a device with an explicit context domain.
    pub fn add_device_with(
        &mut self,
        id: DeviceId,
        class: DeviceClass,
        contexts: Vec<SecurityContext>,
    ) -> &mut Self {
        assert!(!contexts.is_empty(), "context domain must be non-empty");
        // First occurrence wins, matching what the linear scan resolved.
        self.dev_index.entry(id).or_insert(self.devices.len());
        self.devices.push(DeviceVar { id, class, contexts });
        self
    }

    /// Track an environment variable.
    pub fn add_env(&mut self, var: EnvVar) -> &mut Self {
        if !self.env_vars.contains(&var) {
            self.env_index.insert(var, self.env_vars.len());
            self.env_vars.push(var);
        }
        self
    }

    /// Track every modelled environment variable.
    pub fn add_all_env(&mut self) -> &mut Self {
        for v in EnvVar::ALL {
            self.add_env(v);
        }
        self
    }

    /// Slot index of a device — O(1) via the precomputed index.
    pub fn device_slot(&self, id: DeviceId) -> Option<usize> {
        self.dev_index.get(&id).copied()
    }

    /// Slot index of an environment variable — O(1) via the precomputed
    /// index.
    pub fn env_slot(&self, var: EnvVar) -> Option<usize> {
        self.env_index.get(&var).copied()
    }

    /// Exact size of the state space: `Π|Cᵢ| × Π|Eⱼ|`.
    ///
    /// Returns a `u128`; realistic deployments overflow `u64` fast, which
    /// is the paper's point.
    pub fn size(&self) -> u128 {
        let dev: u128 = self.devices.iter().map(|d| d.contexts.len() as u128).product();
        let env: u128 = self.env_vars.iter().map(|v| v.domain().len() as u128).product();
        dev.saturating_mul(env)
    }

    /// The fully-`normal`, first-env-value state.
    pub fn initial_state(&self) -> SystemState {
        SystemState {
            contexts: self.devices.iter().map(|d| d.contexts[0]).collect(),
            env: vec![0; self.env_vars.len()],
        }
    }

    /// Build a state from explicit contexts and a discretized environment.
    /// Devices not mentioned get their first (most benign) context value.
    pub fn state_from(
        &self,
        contexts: &[(DeviceId, SecurityContext)],
        env: &DiscreteEnv,
    ) -> SystemState {
        let mut s = self.initial_state();
        for (id, ctx) in contexts {
            if let Some(slot) = self.device_slot(*id) {
                s.contexts[slot] = *ctx;
            }
        }
        for (slot, var) in self.env_vars.iter().enumerate() {
            let value = env.get(*var);
            let idx = var.domain().iter().position(|v| *v == value).unwrap_or(0);
            s.env[slot] = idx as u8;
        }
        s
    }

    /// Iterate the entire space in odometer order. Only sensible for
    /// small schemas; the exhaustive-equivalence experiments guard size.
    pub fn iter_states(&self) -> StateIter<'_> {
        StateIter { schema: self, next: Some(self.initial_state()) }
    }

    /// The env-variable domain value of `state` at `var`, if tracked.
    pub fn env_value(&self, state: &SystemState, var: EnvVar) -> Option<&'static str> {
        let slot = self.env_slot(var)?;
        var.domain().get(state.env[slot] as usize).copied()
    }

    /// The context of `id` in `state`, if the device is in the schema.
    pub fn context_of(&self, state: &SystemState, id: DeviceId) -> Option<SecurityContext> {
        let slot = self.device_slot(id)?;
        state.contexts.get(slot).copied()
    }
}

/// One concrete system state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub struct SystemState {
    /// Per-device contexts, by schema slot.
    pub contexts: Vec<SecurityContext>,
    /// Per-env-var domain indices, by schema slot.
    pub env: Vec<u8>,
}

impl SystemState {
    /// Set the context of the device in `slot`.
    pub fn with_context(
        mut self,
        schema: &StateSchema,
        id: DeviceId,
        ctx: SecurityContext,
    ) -> Self {
        if let Some(slot) = schema.device_slot(id) {
            self.contexts[slot] = ctx;
        }
        self
    }

    /// Set an environment variable by value name.
    pub fn with_env(mut self, schema: &StateSchema, var: EnvVar, value: &str) -> Self {
        if let Some(slot) = schema.env_slot(var) {
            if let Some(idx) = var.domain().iter().position(|v| *v == value) {
                self.env[slot] = idx as u8;
            }
        }
        self
    }
}

/// Odometer-order iterator over a schema's full state space.
pub struct StateIter<'a> {
    schema: &'a StateSchema,
    next: Option<SystemState>,
}

impl Iterator for StateIter<'_> {
    type Item = SystemState;

    fn next(&mut self) -> Option<SystemState> {
        let current = self.next.clone()?;
        // Advance the odometer: env vars are the low digits, devices high.
        let mut s = current.clone();
        let mut carried = true;
        for (slot, var) in self.schema.env_vars.iter().enumerate() {
            if !carried {
                break;
            }
            let dom = var.domain().len() as u8;
            s.env[slot] += 1;
            if s.env[slot] < dom {
                carried = false;
            } else {
                s.env[slot] = 0;
            }
        }
        if carried {
            for (slot, dev) in self.schema.devices.iter().enumerate() {
                let cur_idx = dev.contexts.iter().position(|c| *c == s.contexts[slot]).unwrap_or(0);
                if cur_idx + 1 < dev.contexts.len() {
                    s.contexts[slot] = dev.contexts[cur_idx + 1];
                    carried = false;
                    break;
                } else {
                    s.contexts[slot] = dev.contexts[0];
                }
            }
        }
        self.next = if carried { None } else { Some(s) };
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn two_device_schema() -> StateSchema {
        let mut s = StateSchema::new();
        s.add_device(DeviceId(0), DeviceClass::FireAlarm)
            .add_device(DeviceId(1), DeviceClass::WindowActuator)
            .add_env(EnvVar::Smoke)
            .add_env(EnvVar::Window);
        s
    }

    #[test]
    fn size_is_product() {
        let s = two_device_schema();
        // 2 contexts × 2 contexts × |smoke|=2 × |window|=2 = 16.
        assert_eq!(s.size(), 16);
    }

    #[test]
    fn iterator_visits_each_state_once() {
        let s = two_device_schema();
        let states: Vec<_> = s.iter_states().collect();
        assert_eq!(states.len() as u128, s.size());
        let mut dedup = states.clone();
        dedup.sort_by_key(|st| (st.contexts.clone(), st.env.clone()));
        dedup.dedup();
        assert_eq!(dedup.len(), states.len());
    }

    #[test]
    fn state_explosion_overflows_u64_scale() {
        // 40 devices with 4 contexts and all 7 env vars: the "brute force
        // is impractical" regime the paper warns about.
        let mut s = StateSchema::new();
        for i in 0..40 {
            s.add_device_with(DeviceId(i), DeviceClass::Camera, SecurityContext::ALL.to_vec());
        }
        s.add_all_env();
        assert!(s.size() > u64::MAX as u128 / 4);
    }

    #[test]
    fn slot_indices_match_positions() {
        let s = two_device_schema();
        for (i, d) in s.devices.iter().enumerate() {
            assert_eq!(s.device_slot(d.id), Some(i));
        }
        for (j, v) in s.env_vars.iter().enumerate() {
            assert_eq!(s.env_slot(*v), Some(j));
        }
        assert_eq!(s.device_slot(DeviceId(99)), None);
        assert_eq!(s.env_slot(EnvVar::Door), None);
        // Duplicate device id: the first slot wins, as the old linear
        // scan resolved it.
        let mut dup = StateSchema::new();
        dup.add_device(DeviceId(7), DeviceClass::Camera).add_device(DeviceId(7), DeviceClass::Oven);
        assert_eq!(dup.device_slot(DeviceId(7)), Some(0));
        // Re-adding a tracked env var keeps its slot.
        let mut env = StateSchema::new();
        env.add_env(EnvVar::Smoke).add_env(EnvVar::Window).add_env(EnvVar::Smoke);
        assert_eq!(env.env_slot(EnvVar::Smoke), Some(0));
        assert_eq!(env.env_slot(EnvVar::Window), Some(1));
    }

    #[test]
    fn state_from_and_accessors() {
        let s = two_device_schema();
        let mut env = iotdev::env::Environment::new();
        env.smoke_density = 1.0;
        let st = s.state_from(&[(DeviceId(0), SecurityContext::Suspicious)], &env.discretize());
        assert_eq!(s.context_of(&st, DeviceId(0)), Some(SecurityContext::Suspicious));
        assert_eq!(s.context_of(&st, DeviceId(1)), Some(SecurityContext::Normal));
        assert_eq!(s.env_value(&st, EnvVar::Smoke), Some("yes"));
        assert_eq!(s.env_value(&st, EnvVar::Window), Some("closed"));
        assert_eq!(s.env_value(&st, EnvVar::Door), None); // untracked
    }

    #[test]
    fn with_env_and_context_builders() {
        let schema = two_device_schema();
        let st = schema
            .initial_state()
            .with_context(&schema, DeviceId(1), SecurityContext::Suspicious)
            .with_env(&schema, EnvVar::Window, "open");
        assert_eq!(schema.context_of(&st, DeviceId(1)), Some(SecurityContext::Suspicious));
        assert_eq!(schema.env_value(&st, EnvVar::Window), Some("open"));
    }

    proptest! {
        #[test]
        fn prop_iter_count_matches_closed_form(
            n_devices in 0usize..4,
            ctx_sizes in proptest::collection::vec(1usize..4, 0..4),
            env_mask in 0u8..8,
        ) {
            let mut schema = StateSchema::new();
            for i in 0..n_devices {
                let n_ctx = ctx_sizes.get(i).copied().unwrap_or(2);
                schema.add_device_with(
                    DeviceId(i as u32),
                    DeviceClass::Camera,
                    SecurityContext::ALL[..n_ctx].to_vec(),
                );
            }
            for (bit, var) in [EnvVar::Smoke, EnvVar::Window, EnvVar::Occupancy].iter().enumerate() {
                if env_mask & (1 << bit) != 0 {
                    schema.add_env(*var);
                }
            }
            let count = schema.iter_states().count() as u128;
            prop_assert_eq!(count, schema.size());
        }
    }
}
