//! `iotpolicy` — the policy abstraction of IoTSec (paper §3).
//!
//! The paper rejects two strawmen — stateless `Match → Action` firewall
//! rules (no environmental or cross-device context) and independent IFTTT
//! recipes (no security context, conflict-prone) — and proposes an
//! expressive-but-brute-force abstraction instead:
//!
//! > For each state `Sₖ ∈ S`, define the security posture of each device
//! > `Posture(Sₖ, Dᵢ)`, where `S` is the product of every device's
//! > security context `Cᵢ` and every environment variable `Eⱼ`.
//!
//! This crate implements that abstraction end to end:
//!
//! * [`context`] — security-context values (`normal`, `suspicious`, ...).
//! * [`state_space`] — the schema `S = Π|Cᵢ| × Π|Eⱼ|`, with exact
//!   counting and iteration (the state-explosion experiment E1).
//! * [`posture`] — security modules and per-device postures.
//! * [`policy`] — pattern-based `state → posture` rules ([`FsmPolicy`]),
//!   the Figure 3 example expressed directly.
//! * [`recipe`] — the IFTTT strawman: a recipe language, parser and the
//!   Table 2 corpus generator.
//! * [`compile`] — compiling vulnerability knowledge + recipes into an
//!   [`FsmPolicy`] (vuln mitigations, context escalation, actuation
//!   gating).
//! * [`conflict`] — recipe/rule conflict and ambiguity detection (the
//!   smoke-alarm vs Sighthound example).
//! * [`prune`] — taming state explosion: independence factoring and
//!   posture-equivalence collapsing, with soundness guarantees.
//! * [`packed`] — the state space packed into `u128` words: per-slot
//!   bitfields, compiled rule masks and memoized policy evaluation
//!   (the E19 engine).
//! * [`explore`] — exhaustive sweeps and frontier BFS over the packed
//!   space, serial and work-stealing parallel, differentially equal to
//!   the naive engines.
//! * [`intern`] — region-level value-keyed interning of shared rulesets
//!   and vuln intel for the E20 fleet tier.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod conflict;
pub mod context;
pub mod explore;
pub mod intern;
pub mod packed;
pub mod policy;
pub mod posture;
pub mod prune;
pub mod recipe;
pub mod state_space;

pub use compile::PolicyCompiler;
pub use conflict::{Conflict, ConflictKind};
pub use context::SecurityContext;
pub use explore::{BfsStats, SpaceStats};
pub use intern::Interner;
pub use packed::{MemoPolicy, PackedLayout, PackedState};
pub use policy::{FsmPolicy, PolicyRule, StatePattern};
pub use posture::{
    class_allowlist, quarantine_allowlist, Posture, PostureVector, SecurityModule, ServiceAllow,
};
pub use recipe::{Recipe, RecipeAction, Trigger};
pub use state_space::{StateSchema, SystemState};
