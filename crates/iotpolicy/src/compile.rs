//! Compiling deployment knowledge into an [`FsmPolicy`].
//!
//! The paper's policies come from three sources, and the compiler folds
//! in all three:
//!
//! 1. **Vulnerability knowledge** (Table 1 / the signature repository):
//!    each vulnerability class maps to a standing mitigation posture —
//!    the password proxy for default/weak credentials, the DNS guard for
//!    open resolvers, a cloud-channel block for vendor backdoors.
//! 2. **Context escalation** (Figure 3): when a device's context turns
//!    `suspicious` its posture hardens (challenges, mirroring, rate
//!    limits); `compromised` devices are quarantined.
//! 3. **Cross-device safety** (Figure 5 / IFTTT recipes): actuation on a
//!    hazardous device is gated on environmental context ("only if the
//!    camera sees someone home").

use crate::context::SecurityContext;
use crate::policy::{FsmPolicy, PolicyRule, StatePattern};
use crate::posture::{BlockClass, Posture, SecurityModule};
use crate::state_space::StateSchema;
use iotdev::device::{DeviceClass, DeviceId};
use iotdev::env::EnvVar;
use iotdev::vuln::Vulnerability;

/// Priorities used by the compiler (rules with higher numbers win).
pub mod priority {
    /// Standing vulnerability mitigations.
    pub const MITIGATION: u16 = 50;
    /// Cross-device safety gates.
    pub const SAFETY_GATE: u16 = 60;
    /// Suspicious-context escalation.
    pub const SUSPICIOUS: u16 = 80;
    /// Compromised-context quarantine.
    pub const QUARANTINE: u16 = 90;
}

/// The standing mitigation posture for one vulnerability class — the
/// "network patch" of Figure 4.
pub fn mitigation_for(vuln: &Vulnerability) -> Posture {
    match vuln {
        Vulnerability::DefaultCredentials { .. } | Vulnerability::OpenMgmtAccess => {
            Posture::of(SecurityModule::PasswordProxy)
        }
        Vulnerability::NoAuthControl => Posture::of(SecurityModule::PasswordProxy),
        Vulnerability::ExposedKeyPair { .. } => Posture::of(SecurityModule::Ids { ruleset: 1 }),
        Vulnerability::OpenDnsResolver => {
            Posture::of(SecurityModule::Block(BlockClass::DnsResponses))
        }
        Vulnerability::CloudBypassBackdoor => Posture::of(SecurityModule::Block(BlockClass::Cloud)),
    }
}

/// Incremental policy compiler.
#[derive(Debug, Default)]
pub struct PolicyCompiler {
    schema: StateSchema,
    rules: Vec<PolicyRule>,
}

impl PolicyCompiler {
    /// Start compiling.
    pub fn new() -> PolicyCompiler {
        PolicyCompiler::default()
    }

    /// Register a device. Its context domain includes `unpatched` when it
    /// ships with vulnerabilities; standing mitigations and escalation
    /// rules are added automatically.
    pub fn device(
        &mut self,
        id: DeviceId,
        class: DeviceClass,
        vulns: &[Vulnerability],
    ) -> &mut Self {
        let mut contexts = vec![
            SecurityContext::Normal,
            SecurityContext::Suspicious,
            SecurityContext::Compromised,
        ];
        if !vulns.is_empty() {
            contexts.insert(1, SecurityContext::Unpatched);
        }
        self.schema.add_device_with(id, class, contexts);

        for vuln in vulns {
            self.rules.push(
                PolicyRule::new(
                    priority::MITIGATION,
                    StatePattern::any(),
                    id,
                    mitigation_for(vuln),
                )
                .with_origin(&format!("vuln:{}:{id}", vuln.id())),
            );
        }

        // Escalation: suspicious → challenge + mirror + rate-limit.
        self.rules.push(
            PolicyRule::new(
                priority::SUSPICIOUS,
                StatePattern::any().context(id, SecurityContext::Suspicious),
                id,
                Posture::of(SecurityModule::ChallengeLogins)
                    .with(SecurityModule::Mirror)
                    .with(SecurityModule::RateLimit { pps: 50 }),
            )
            .with_origin(&format!("escalate:suspicious:{id}")),
        );
        // Quarantine on compromise.
        self.rules.push(
            PolicyRule::new(
                priority::QUARANTINE,
                StatePattern::any().context(id, SecurityContext::Compromised),
                id,
                Posture::quarantine(),
            )
            .overriding()
            .with_origin(&format!("escalate:quarantine:{id}")),
        );
        self
    }

    /// Track an environment variable in the schema.
    pub fn env(&mut self, var: EnvVar) -> &mut Self {
        self.schema.add_env(var);
        self
    }

    /// Figure 5: permit actuation on `target` only while `var == value`
    /// (e.g. the oven's plug accepts "ON" only while `Occupancy =
    /// present`).
    pub fn gate_actuation(
        &mut self,
        target: DeviceId,
        var: EnvVar,
        value: &'static str,
    ) -> &mut Self {
        self.schema.add_env(var);
        self.rules.push(
            PolicyRule::new(
                priority::SAFETY_GATE,
                StatePattern::any(),
                target,
                Posture::of(SecurityModule::ContextGate { var, value }),
            )
            .with_origin(&format!("gate:{target}:{var:?}={value}")),
        );
        self
    }

    /// Figure 3: while `watched` is suspicious (or worse), block
    /// open-style verbs to `protected` (the fire-alarm → window rule).
    pub fn protect_on_suspicion(&mut self, watched: DeviceId, protected: DeviceId) -> &mut Self {
        for ctx in [SecurityContext::Suspicious, SecurityContext::Compromised] {
            self.rules.push(
                PolicyRule::new(
                    priority::SAFETY_GATE,
                    StatePattern::any().context(watched, ctx),
                    protected,
                    Posture::of(SecurityModule::Block(BlockClass::OpenVerbs)),
                )
                .with_origin(&format!("protect:{protected}:on-{}-of:{watched}", ctx.name())),
            );
        }
        self
    }

    /// Add a hand-written rule verbatim.
    pub fn rule(&mut self, rule: PolicyRule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Finish: produce the policy.
    pub fn build(self) -> FsmPolicy {
        let mut policy = FsmPolicy::new(self.schema);
        for r in self.rules {
            policy.add_rule(r);
        }
        policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAM: DeviceId = DeviceId(0);
    const PLUG: DeviceId = DeviceId(1);

    fn compiled() -> FsmPolicy {
        let mut c = PolicyCompiler::new();
        c.device(CAM, DeviceClass::Camera, &[Vulnerability::default_admin_admin()]);
        c.device(PLUG, DeviceClass::SmartPlug, &[Vulnerability::CloudBypassBackdoor]);
        c.gate_actuation(PLUG, EnvVar::Occupancy, "present");
        c.build()
    }

    #[test]
    fn vuln_mitigations_are_standing() {
        let policy = compiled();
        let state = policy.schema.initial_state();
        let cam = policy.posture_for(&state, CAM);
        assert!(cam.contains(&SecurityModule::PasswordProxy));
        let plug = policy.posture_for(&state, PLUG);
        assert!(plug.contains(&SecurityModule::Block(BlockClass::Cloud)));
    }

    #[test]
    fn vulnerable_devices_get_unpatched_context() {
        let policy = compiled();
        let dev = &policy.schema.devices[0];
        assert!(dev.contexts.contains(&SecurityContext::Unpatched));
        // A clean device would not.
        let mut c = PolicyCompiler::new();
        c.device(DeviceId(5), DeviceClass::LightBulb, &[]);
        let p = c.build();
        assert!(!p.schema.devices[0].contexts.contains(&SecurityContext::Unpatched));
    }

    #[test]
    fn suspicion_escalates_on_top_of_mitigation() {
        let policy = compiled();
        let state = policy.schema.initial_state().with_context(
            &policy.schema,
            CAM,
            SecurityContext::Suspicious,
        );
        let p = policy.posture_for(&state, CAM);
        assert!(p.contains(&SecurityModule::ChallengeLogins));
        assert!(p.contains(&SecurityModule::Mirror));
        // Escalation layers *on top of* the standing mitigation: the
        // password proxy keeps covering the unfixable default account.
        assert!(p.contains(&SecurityModule::PasswordProxy));
    }

    #[test]
    fn compromise_quarantines() {
        let policy = compiled();
        let state = policy.schema.initial_state().with_context(
            &policy.schema,
            PLUG,
            SecurityContext::Compromised,
        );
        assert!(policy.posture_for(&state, PLUG).blocks_all());
    }

    #[test]
    fn actuation_gate_present_in_all_states() {
        let policy = compiled();
        for (state, _) in policy.enumerate().iter().take(64) {
            let p = policy.posture_for(state, PLUG);
            if policy.schema.context_of(state, PLUG) == Some(SecurityContext::Compromised) {
                assert!(p.blocks_all());
            } else {
                assert!(
                    p.contains(&SecurityModule::ContextGate {
                        var: EnvVar::Occupancy,
                        value: "present"
                    }),
                    "state {state:?}"
                );
            }
        }
    }

    #[test]
    fn mitigation_mapping_covers_all_classes() {
        for vuln in Vulnerability::all_classes() {
            assert!(!mitigation_for(&vuln).is_allow(), "{} unmitigated", vuln.id());
        }
    }

    #[test]
    fn protect_on_suspicion_compiles_fig3() {
        let mut c = PolicyCompiler::new();
        c.device(DeviceId(0), DeviceClass::FireAlarm, &[]);
        c.device(DeviceId(1), DeviceClass::WindowActuator, &[]);
        c.protect_on_suspicion(DeviceId(0), DeviceId(1));
        let policy = c.build();
        let state = policy.schema.initial_state().with_context(
            &policy.schema,
            DeviceId(0),
            SecurityContext::Suspicious,
        );
        assert!(policy
            .posture_for(&state, DeviceId(1))
            .contains(&SecurityModule::Block(BlockClass::OpenVerbs)));
    }
}
