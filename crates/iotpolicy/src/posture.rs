//! Security postures.
//!
//! A posture is the paper's `Posture(Sₖ, Dᵢ)`: the set of security
//! modules a device's traffic must traverse in a given system state,
//! plus blocking decisions. The `umbox` crate realizes each module as a
//! micro-middlebox; the controller diffs posture vectors between states
//! to decide what to (re)deploy.

use iotdev::device::{DeviceClass, DeviceId};
use iotdev::env::EnvVar;
use iotdev::proto::ports;
use serde::Serialize;
use smallvec::SmallVec;
use std::collections::BTreeMap;

/// Classes of messages a posture can block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum BlockClass {
    /// Block everything to/from the device.
    All,
    /// Block control-plane actuation ("open"/"on"/... commands).
    Actuation,
    /// Block a specific actuation verb class: open/unlock style.
    OpenVerbs,
    /// Block power-on commands.
    OnVerbs,
    /// Block the vendor-cloud channel.
    Cloud,
    /// Block outbound DNS responses (the reflection mitigation).
    DnsResponses,
}

/// A security module in a device's posture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum SecurityModule {
    /// Interpose on management logins and require strong credentials
    /// (the Figure 4 password-proxy µmbox).
    PasswordProxy,
    /// Signature IDS with the given ruleset generation.
    Ids {
        /// Ruleset generation (bumped when the repository publishes new
        /// signatures).
        ruleset: u16,
    },
    /// Token-bucket rate limiting.
    RateLimit {
        /// Packets per second.
        pps: u32,
    },
    /// Only allow the device's declared protocol planes.
    ProtocolWhitelist,
    /// Block a class of messages.
    Block(BlockClass),
    /// Permit actuation only while an environment variable holds a value
    /// (the Figure 5 "only if somebody is home" gate).
    ContextGate {
        /// Gated variable.
        var: EnvVar,
        /// Required value.
        value: &'static str,
    },
    /// Mirror traffic to the controller/capture channel.
    Mirror,
    /// Robot-check style challenge on management logins (Figure 3's
    /// response to a brute-force attempt).
    ChallengeLogins,
}

impl SecurityModule {
    /// Whether this module drops traffic (vs. inspecting/transforming).
    pub fn is_blocking(&self) -> bool {
        matches!(self, SecurityModule::Block(_))
    }
}

/// Filler value for [`Posture`]'s inline module buffer (`SmallVec`
/// requires `Default`); never observable — slots past the length are
/// not part of the set.
impl Default for SecurityModule {
    fn default() -> Self {
        SecurityModule::PasswordProxy
    }
}

/// The posture of one device in one state: an ordered set of modules.
///
/// Postures are almost always one or two modules (a gate, a proxy, or
/// the two-module quarantine), so the set lives inline — the packed
/// state-space engine interns hundreds of thousands of them and the
/// inline representation keeps that cold path allocation-free.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct Posture {
    modules: SmallVec<SecurityModule, 2>,
}

impl Posture {
    /// The empty ("allow, uninstrumented") posture.
    pub fn allow() -> Posture {
        Posture::default()
    }

    /// A posture with one module.
    pub fn of(module: SecurityModule) -> Posture {
        let mut p = Posture::default();
        p.add(module);
        p
    }

    /// A fully-quarantined posture: block everything and mirror what
    /// arrives for forensics.
    pub fn quarantine() -> Posture {
        let mut p = Posture::default();
        p.add(SecurityModule::Block(BlockClass::All));
        p.add(SecurityModule::Mirror);
        p
    }

    /// Add a module (idempotent, keeps sorted order).
    pub fn add(&mut self, module: SecurityModule) -> &mut Self {
        if let Err(pos) = self.modules.binary_search(&module) {
            self.modules.insert(pos, module);
        }
        self
    }

    /// Builder-style [`Posture::add`].
    pub fn with(mut self, module: SecurityModule) -> Posture {
        self.add(module);
        self
    }

    /// Union with another posture.
    pub fn merge(&mut self, other: &Posture) {
        for m in &other.modules {
            self.add(*m);
        }
    }

    /// The modules, sorted.
    pub fn modules(&self) -> &[SecurityModule] {
        &self.modules
    }

    /// Feed the tagged fingerprint words of this posture, keyed as
    /// device `dev`, into an FNV-style eater — one map entry's worth of
    /// [`PostureVector::fingerprint`]'s stream. Exposed so the packed
    /// engine can fingerprint a class from its interned per-slot
    /// postures without materializing the full vector; the word
    /// encoding here *is* the fingerprint definition, shared by both.
    pub fn fingerprint_words(&self, dev: DeviceId, eat: &mut impl FnMut(u64)) {
        // Tag device and module words differently so the flattened
        // stream cannot alias across map entries.
        eat(1 << 56 | dev.0 as u64);
        for m in self.modules() {
            let word: u64 = match m {
                SecurityModule::PasswordProxy => 1,
                SecurityModule::Ids { ruleset } => 2 | (*ruleset as u64) << 8,
                SecurityModule::RateLimit { pps } => 3 | (*pps as u64) << 8,
                SecurityModule::ProtocolWhitelist => 4,
                SecurityModule::Block(class) => {
                    let c = match class {
                        BlockClass::All => 0u64,
                        BlockClass::Actuation => 1,
                        BlockClass::OpenVerbs => 2,
                        BlockClass::OnVerbs => 3,
                        BlockClass::Cloud => 4,
                        BlockClass::DnsResponses => 5,
                    };
                    5 | c << 8
                }
                SecurityModule::ContextGate { var, value } => {
                    for b in value.bytes() {
                        eat(3 << 56 | b as u64);
                    }
                    6 | (*var as u64) << 8
                }
                SecurityModule::Mirror => 7,
                SecurityModule::ChallengeLogins => 8,
            };
            eat(2 << 56 | word);
        }
    }

    /// Whether no modules apply.
    pub fn is_allow(&self) -> bool {
        self.modules.is_empty()
    }

    /// Whether the posture contains a module.
    pub fn contains(&self, module: &SecurityModule) -> bool {
        self.modules.binary_search(module).is_ok()
    }

    /// Whether any module blocks all traffic.
    pub fn blocks_all(&self) -> bool {
        self.contains(&SecurityModule::Block(BlockClass::All))
    }

    /// Whether two postures are operationally contradictory (one allows
    /// everything, the other blocks everything) — used by conflict
    /// detection on equal-priority rules.
    pub fn contradicts(&self, other: &Posture) -> bool {
        (self.is_allow() && other.blocks_all()) || (other.is_allow() && self.blocks_all())
    }
}

/// One allowed service (protocol plane, destination port) on a device
/// — an entry in a per-class allow-list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct ServiceAllow {
    /// True for TCP, false for UDP.
    pub tcp: bool,
    /// Destination port.
    pub port: u16,
}

impl ServiceAllow {
    /// A TCP service.
    pub fn tcp(port: u16) -> ServiceAllow {
        ServiceAllow { tcp: true, port }
    }

    /// A UDP service.
    pub fn udp(port: u16) -> ServiceAllow {
        ServiceAllow { tcp: false, port }
    }
}

/// The protocol planes a device class legitimately speaks — its normal
/// service surface, IDIoT-style: a least-privilege profile derived from
/// what the class *is*, not from observed traffic. Sorted and deduped.
pub fn class_allowlist(class: DeviceClass) -> Vec<ServiceAllow> {
    let mut list = vec![ServiceAllow::tcp(ports::MGMT), ServiceAllow::udp(ports::TELEMETRY)];
    let actuated = matches!(
        class,
        DeviceClass::SmartPlug
            | DeviceClass::WindowActuator
            | DeviceClass::LightBulb
            | DeviceClass::SmartLock
            | DeviceClass::Oven
            | DeviceClass::Thermostat
            | DeviceClass::TrafficLight
    );
    if actuated {
        list.push(ServiceAllow::udp(ports::CONTROL));
    }
    let cloud = matches!(
        class,
        DeviceClass::Camera
            | DeviceClass::SmartPlug
            | DeviceClass::SetTopBox
            | DeviceClass::Refrigerator
    );
    if cloud {
        list.push(ServiceAllow::tcp(ports::CLOUD));
    }
    if matches!(class, DeviceClass::SmartPlug | DeviceClass::SetTopBox | DeviceClass::Refrigerator)
    {
        list.push(ServiceAllow::udp(ports::DNS));
    }
    list.sort();
    list.dedup();
    list
}

/// The minimal service subset a quarantined device keeps: telemetry to
/// the hub only, so monitoring and forensics continue while every
/// management, actuation, cloud and DNS plane is cut. By construction a
/// subset of [`class_allowlist`] for every class (pinned by a property
/// test) — quarantine never *grants* a plane the normal posture denies.
pub fn quarantine_allowlist(_class: DeviceClass) -> Vec<ServiceAllow> {
    vec![ServiceAllow::udp(ports::TELEMETRY)]
}

/// The postures of every device in one state.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct PostureVector {
    /// Per-device postures. Devices absent from the map are `allow`.
    pub by_device: BTreeMap<DeviceId, Posture>,
}

impl PostureVector {
    /// An empty (all-allow) vector.
    pub fn new() -> PostureVector {
        PostureVector::default()
    }

    /// The posture of a device (allow if unset).
    pub fn posture(&self, id: DeviceId) -> Posture {
        self.by_device.get(&id).cloned().unwrap_or_default()
    }

    /// Merge a posture into a device's entry.
    pub fn merge_into(&mut self, id: DeviceId, posture: &Posture) {
        self.by_device.entry(id).or_default().merge(posture);
    }

    /// A stable 64-bit fingerprint of the whole vector — the FSM
    /// continuity token. The safety monitor records it before a
    /// controller failover and compares once the promoted standby has
    /// resynced: a standby that silently reset active FSM postures
    /// (lost checkpoint, drained replay log) produces a different
    /// fingerprint, which is the `fsm-continuity` invariant violation.
    ///
    /// FNV-1a over a tagged word encoding of the semantic content: the
    /// map is a `BTreeMap` and module sets are sorted, so the word
    /// stream — and the hash — is a pure function of the postures. The
    /// encoding is allocation-free on purpose: the packed state-space
    /// engine fingerprints every distinct posture class it interns, so
    /// this sits on the E19 cold path millions of sweeps deep.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (dev, posture) in &self.by_device {
            posture.fingerprint_words(*dev, &mut |v: u64| {
                h ^= v;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            });
        }
        h
    }

    /// Devices whose posture differs between `self` (old) and `new` —
    /// the reconfiguration set the controller must touch.
    pub fn diff<'a>(&'a self, new: &'a PostureVector) -> Vec<DeviceId> {
        let mut ids: Vec<DeviceId> =
            self.by_device.keys().chain(new.by_device.keys()).copied().collect();
        ids.sort();
        ids.dedup();
        ids.into_iter().filter(|id| self.posture(*id) != new.posture(*id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_idempotent_and_sorted() {
        let mut p = Posture::allow();
        p.add(SecurityModule::Mirror);
        p.add(SecurityModule::PasswordProxy);
        p.add(SecurityModule::Mirror);
        assert_eq!(p.modules().len(), 2);
        let mut sorted = p.modules().to_vec();
        sorted.sort();
        assert_eq!(sorted, p.modules());
    }

    #[test]
    fn quarantine_blocks_all() {
        let q = Posture::quarantine();
        assert!(q.blocks_all());
        assert!(!q.is_allow());
        assert!(q.contains(&SecurityModule::Mirror));
    }

    #[test]
    fn merge_unions() {
        let mut a = Posture::of(SecurityModule::PasswordProxy);
        let b = Posture::of(SecurityModule::Ids { ruleset: 1 });
        a.merge(&b);
        assert_eq!(a.modules().len(), 2);
    }

    #[test]
    fn contradiction_detection() {
        assert!(Posture::allow().contradicts(&Posture::quarantine()));
        assert!(Posture::quarantine().contradicts(&Posture::allow()));
        assert!(!Posture::of(SecurityModule::Mirror).contradicts(&Posture::quarantine()));
        assert!(!Posture::allow().contradicts(&Posture::allow()));
    }

    #[test]
    fn vector_diff_finds_changes() {
        let mut old = PostureVector::new();
        old.merge_into(DeviceId(0), &Posture::of(SecurityModule::PasswordProxy));
        old.merge_into(DeviceId(1), &Posture::of(SecurityModule::Mirror));
        let mut new = PostureVector::new();
        new.merge_into(DeviceId(0), &Posture::of(SecurityModule::PasswordProxy));
        new.merge_into(DeviceId(1), &Posture::quarantine());
        new.merge_into(DeviceId(2), &Posture::of(SecurityModule::Mirror));
        let diff = old.diff(&new);
        assert_eq!(diff, vec![DeviceId(1), DeviceId(2)]);
    }

    #[test]
    fn unset_device_is_allow() {
        let v = PostureVector::new();
        assert!(v.posture(DeviceId(9)).is_allow());
    }

    #[test]
    fn fingerprint_tracks_semantic_content() {
        let mut a = PostureVector::new();
        a.merge_into(DeviceId(0), &Posture::of(SecurityModule::PasswordProxy));
        let mut b = PostureVector::new();
        b.merge_into(DeviceId(0), &Posture::of(SecurityModule::PasswordProxy));
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.merge_into(DeviceId(1), &Posture::quarantine());
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(PostureVector::new().fingerprint(), PostureVector::new().fingerprint());
    }

    #[test]
    fn quarantine_allowlist_is_a_subset_for_every_class() {
        for class in DeviceClass::ALL {
            let normal = class_allowlist(class);
            for svc in quarantine_allowlist(class) {
                assert!(
                    normal.contains(&svc),
                    "{class:?}: quarantine grants {svc:?} outside the normal allow-list"
                );
            }
            assert!(
                quarantine_allowlist(class).len() < normal.len(),
                "{class:?}: quarantine must be strictly narrower"
            );
        }
    }

    #[test]
    fn allowlists_follow_device_planes() {
        let lock = class_allowlist(DeviceClass::SmartLock);
        assert!(lock.contains(&ServiceAllow::udp(ports::CONTROL)), "locks are actuated");
        assert!(!lock.contains(&ServiceAllow::udp(ports::DNS)), "locks don't resolve names");
        let plug = class_allowlist(DeviceClass::SmartPlug);
        assert!(plug.contains(&ServiceAllow::udp(ports::DNS)), "the plug is the open resolver");
        let sensor = class_allowlist(DeviceClass::MotionSensor);
        assert!(!sensor.contains(&ServiceAllow::udp(ports::CONTROL)), "sensors aren't actuated");
    }
}
