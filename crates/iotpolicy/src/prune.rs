//! Taming state explosion (§3.2's "open question").
//!
//! The paper: *"we believe that in practice it might be possible to prune
//! and collapse this giant FSM by exploiting some domain-specific
//! opportunities. For example, if we know that two specific device types
//! are inherently independent, or if the intended security posture is the
//! same for a set of similar states, then we can potentially prune the
//! state space."* This module implements both opportunities:
//!
//! * **Independence factoring** — a union–find over the slots each policy
//!   rule actually touches partitions the schema into independent
//!   components; the controller tracks each component separately, so the
//!   effective state count is the *sum* of component sizes instead of
//!   their *product*.
//! * **Posture collapsing** — states with identical posture vectors are
//!   operationally indistinguishable; counting equivalence classes
//!   measures how much of the product space is real.
//!
//! Factoring is *sound*: rules never span components (by construction),
//! so evaluating a device's posture from its component's projection gives
//! exactly the full-state answer. A property test pins this down.

use crate::policy::FsmPolicy;
use crate::state_space::{StateSchema, SystemState};
use serde::Serialize;
use std::collections::HashMap;

/// A slot in the schema: a device's context or an environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Slot {
    /// Device slot index.
    Device(usize),
    /// Environment-variable slot index.
    Env(usize),
}

/// One independent component of the factored space.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Component {
    /// Member slots.
    pub slots: Vec<Slot>,
    /// Exact number of states of this component.
    pub size: u128,
}

/// The factored state space.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FactoredSpace {
    /// Independent components.
    pub components: Vec<Component>,
}

impl FactoredSpace {
    /// Effective number of states the controller must track: the sum of
    /// component sizes (each component evolves independently).
    pub fn effective_states(&self) -> u128 {
        self.components.iter().map(|c| c.size).sum()
    }

    /// The raw product-space size, for the explosion ratio.
    pub fn raw_states(&self) -> u128 {
        self.components.iter().map(|c| c.size).product()
    }

    /// Explosion ratio: raw / effective (≥ 1).
    pub fn reduction_ratio(&self) -> f64 {
        let eff = self.effective_states().max(1) as f64;
        self.raw_states() as f64 / eff
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind { parent: (0..n).collect() }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

fn slot_sizes(schema: &StateSchema) -> Vec<(Slot, u128)> {
    let mut slots = Vec::new();
    for (i, d) in schema.devices.iter().enumerate() {
        slots.push((Slot::Device(i), d.contexts.len() as u128));
    }
    for (j, v) in schema.env_vars.iter().enumerate() {
        slots.push((Slot::Env(j), v.domain().len() as u128));
    }
    slots
}

/// Factor a policy's schema into independent components: two slots are
/// coupled iff some rule mentions both (in its pattern or its posture
/// targets).
pub fn factor(policy: &FsmPolicy) -> FactoredSpace {
    let schema = &policy.schema;
    let slots = slot_sizes(schema);
    let index_of = |slot: Slot| -> usize {
        match slot {
            Slot::Device(i) => i,
            Slot::Env(j) => schema.devices.len() + j,
        }
    };
    let mut uf = UnionFind::new(slots.len());
    for rule in &policy.rules {
        let mut touched: Vec<Slot> = Vec::new();
        for id in rule.pattern.contexts.keys() {
            if let Some(i) = schema.device_slot(*id) {
                touched.push(Slot::Device(i));
            }
        }
        for var in rule.pattern.env.keys() {
            if let Some(j) = schema.env_slot(*var) {
                touched.push(Slot::Env(j));
            }
        }
        for id in rule.postures.keys() {
            if let Some(i) = schema.device_slot(*id) {
                touched.push(Slot::Device(i));
            }
        }
        // Context gates reference an env var inside the posture itself.
        for posture in rule.postures.values() {
            for module in posture.modules() {
                if let crate::posture::SecurityModule::ContextGate { var, .. } = module {
                    if let Some(j) = schema.env_slot(*var) {
                        touched.push(Slot::Env(j));
                    }
                }
            }
        }
        for pair in touched.windows(2) {
            uf.union(index_of(pair[0]), index_of(pair[1]));
        }
        if let (Some(first), true) = (touched.first(), touched.len() > 1) {
            // windows(2) already chains everything; this keeps the intent
            // explicit for a single touched slot (no-op).
            let _ = first;
        }
    }
    let mut groups: HashMap<usize, Vec<(Slot, u128)>> = HashMap::new();
    for (slot, size) in &slots {
        let root = uf.find(index_of(*slot));
        groups.entry(root).or_default().push((*slot, *size));
    }
    let mut components: Vec<Component> = groups
        .into_values()
        .map(|members| Component {
            size: members.iter().map(|(_, s)| *s).product(),
            slots: members.into_iter().map(|(s, _)| s).collect(),
        })
        .collect();
    components.sort_by_key(|c| c.slots.clone().into_iter().map(slot_key).min());
    components.iter_mut().for_each(|c| c.slots.sort_by_key(|s| slot_key(*s)));
    FactoredSpace { components }
}

fn slot_key(s: Slot) -> (u8, usize) {
    match s {
        Slot::Device(i) => (0, i),
        Slot::Env(j) => (1, j),
    }
}

/// Project `state` onto a component: slots outside the component are
/// reset to their first value. Sound because no rule spans components.
pub fn project(schema: &StateSchema, state: &SystemState, component: &Component) -> SystemState {
    let mut s = schema.initial_state();
    for slot in &component.slots {
        match *slot {
            Slot::Device(i) => s.contexts[i] = state.contexts[i],
            Slot::Env(j) => s.env[j] = state.env[j],
        }
    }
    s
}

/// Count posture-equivalence classes by full enumeration. `None` if the
/// space exceeds `limit` states.
///
/// Runs on the packed memoized engine ([`crate::explore`]) when the
/// schema packs into a `u128` word — each distinct rule-match set is
/// evaluated once, each state costs a handful of word operations — and
/// falls back to [`collapse_count_naive`] otherwise. The two engines are
/// differentially tested equal over the same space.
pub fn collapse_count(policy: &FsmPolicy, limit: u128) -> Option<usize> {
    if policy.schema.size() > limit {
        return None;
    }
    match crate::explore::explore_packed(policy, 1) {
        Some(stats) => Some(stats.classes as usize),
        None => collapse_count_naive(policy, limit),
    }
}

/// The legacy class count: clone and evaluate every state through
/// [`FsmPolicy::evaluate`], key classes by the canonical `Debug`
/// rendering. Kept as the differential reference (and the fallback for
/// unpackable schemas); E19 benchmarks it against the packed engines.
pub fn collapse_count_naive(policy: &FsmPolicy, limit: u128) -> Option<usize> {
    if policy.schema.size() > limit {
        return None;
    }
    // Key classes by a canonical rendering (PostureVector is ordered
    // maps/sorted vecs throughout, so Debug output is canonical) to keep
    // this linear in the number of states.
    let mut classes: std::collections::HashSet<String> = std::collections::HashSet::new();
    for state in policy.schema.iter_states() {
        let v = policy.evaluate(&state);
        classes.insert(format!("{v:?}"));
    }
    Some(classes.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::PolicyCompiler;
    use crate::policy::figure3_policy;
    use iotdev::device::{DeviceClass, DeviceId};
    use iotdev::env::EnvVar;
    use iotdev::vuln::Vulnerability;

    #[test]
    fn unrelated_devices_factor_apart() {
        // Two devices with only per-device escalation rules: independent.
        let mut c = PolicyCompiler::new();
        c.device(DeviceId(0), DeviceClass::Camera, &[]);
        c.device(DeviceId(1), DeviceClass::LightBulb, &[]);
        let policy = c.build();
        let f = factor(&policy);
        assert_eq!(f.components.len(), 2);
        // 3 contexts each: raw 9, effective 6.
        assert_eq!(f.raw_states(), 9);
        assert_eq!(f.effective_states(), 6);
        assert!(f.reduction_ratio() > 1.0);
    }

    #[test]
    fn cross_device_rule_couples() {
        let policy = figure3_policy(DeviceId(0), DeviceId(1));
        let f = factor(&policy);
        // The fire alarm and the window are coupled by the fig3 rule; the
        // two env vars (smoke, window) are untouched by rules → separate.
        let dev_component =
            f.components.iter().find(|c| c.slots.contains(&Slot::Device(0))).unwrap();
        assert!(dev_component.slots.contains(&Slot::Device(1)));
    }

    #[test]
    fn context_gate_couples_env_var() {
        let mut c = PolicyCompiler::new();
        c.device(DeviceId(0), DeviceClass::SmartPlug, &[]);
        c.env(EnvVar::Occupancy);
        c.gate_actuation(DeviceId(0), EnvVar::Occupancy, "present");
        let policy = c.build();
        let f = factor(&policy);
        let plug_comp =
            f.components.iter().find(|comp| comp.slots.contains(&Slot::Device(0))).unwrap();
        let occ_slot = Slot::Env(policy.schema.env_slot(EnvVar::Occupancy).unwrap());
        assert!(plug_comp.slots.contains(&occ_slot));
    }

    #[test]
    fn factoring_is_sound_exhaustively() {
        // Evaluate every device's posture from its component projection
        // and compare with the full-state evaluation.
        let mut c = PolicyCompiler::new();
        c.device(DeviceId(0), DeviceClass::FireAlarm, &[]);
        c.device(DeviceId(1), DeviceClass::WindowActuator, &[Vulnerability::NoAuthControl]);
        c.device(DeviceId(2), DeviceClass::LightBulb, &[]);
        c.env(EnvVar::Smoke);
        c.protect_on_suspicion(DeviceId(0), DeviceId(1));
        let policy = c.build();
        let f = factor(&policy);
        for state in policy.schema.iter_states() {
            let full = policy.evaluate(&state);
            for comp in &f.components {
                let projected = project(&policy.schema, &state, comp);
                let part = policy.evaluate(&projected);
                for slot in &comp.slots {
                    if let Slot::Device(i) = slot {
                        let id = policy.schema.devices[*i].id;
                        assert_eq!(
                            full.posture(id),
                            part.posture(id),
                            "device {id} state {state:?} component {comp:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn collapse_counts_real_classes() {
        let policy = figure3_policy(DeviceId(0), DeviceId(1));
        let classes = collapse_count(&policy, 1 << 16).unwrap();
        // 16 raw states but far fewer distinct posture vectors.
        assert!(classes < 16, "classes = {classes}");
        assert!(classes >= 3); // normal/alarm-suspicious/window-suspicious at least
    }

    #[test]
    fn collapse_respects_limit() {
        let policy = figure3_policy(DeviceId(0), DeviceId(1));
        assert!(collapse_count(&policy, 4).is_none());
        assert!(collapse_count_naive(&policy, 4).is_none());
    }

    #[test]
    fn packed_and_naive_collapse_agree() {
        let mut c = PolicyCompiler::new();
        c.device(DeviceId(0), DeviceClass::FireAlarm, &[]);
        c.device(DeviceId(1), DeviceClass::WindowActuator, &[Vulnerability::NoAuthControl]);
        c.env(EnvVar::Smoke);
        c.env(EnvVar::Temperature);
        c.protect_on_suspicion(DeviceId(0), DeviceId(1));
        let policy = c.build();
        assert_eq!(
            collapse_count(&policy, 1 << 20).unwrap(),
            collapse_count_naive(&policy, 1 << 20).unwrap(),
        );
    }

    #[test]
    fn reduction_grows_with_devices() {
        // The E1 shape: raw grows exponentially, effective linearly, so
        // the ratio explodes with device count.
        let ratio_at = |n: u32| {
            let mut c = PolicyCompiler::new();
            for i in 0..n {
                c.device(DeviceId(i), DeviceClass::Camera, &[]);
            }
            factor(&c.build()).reduction_ratio()
        };
        let r4 = ratio_at(4);
        let r8 = ratio_at(8);
        assert!(r8 > r4 * 10.0, "r4={r4} r8={r8}");
    }
}
