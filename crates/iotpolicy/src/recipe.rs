//! The IFTTT strawman: trigger–action recipes.
//!
//! §3.1 of the paper analyses IF-This-Then-That recipes ("If smoke
//! emergency, set lights to red color") as the incumbent IoT policy
//! abstraction and identifies its flaws: no security context, recipes
//! assumed independent (conflicts!), and tedious manual coverage. This
//! module implements the abstraction faithfully — a small language with
//! a text parser, plus a generator that reproduces the *Table 2 corpus*
//! (188 NEST-Protect, 227 Wemo-Insight and 63 Scout-Alarm recipes) so
//! the conflict-detection and compilation experiments have the same raw
//! material the paper surveyed.

use iotdev::device::{DeviceClass, DeviceId};
use iotdev::env::EnvVar;
use iotdev::proto::{ControlAction, EventKind};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::Serialize;

/// What fires a recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Trigger {
    /// An environment variable reaches a value ("temperature is high").
    EnvEquals(EnvVar, &'static str),
    /// A device of a class emits an event ("Nest Protect detects smoke").
    Event(DeviceClass, EventKind),
}

impl Trigger {
    /// Whether two triggers can hold at the same time. Two values of the
    /// same environment variable are mutually exclusive; everything else
    /// can co-occur.
    pub fn can_cooccur(&self, other: &Trigger) -> bool {
        match (self, other) {
            (Trigger::EnvEquals(va, xa), Trigger::EnvEquals(vb, xb)) => va != vb || xa == xb,
            _ => true,
        }
    }
}

/// The THEN part: an actuation on a target device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RecipeAction {
    /// Target device.
    pub target: DeviceId,
    /// Action to perform.
    pub action: ControlAction,
}

/// One recipe.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Recipe {
    /// Corpus-unique id.
    pub id: u32,
    /// Trigger.
    pub trigger: Trigger,
    /// Action.
    pub action: RecipeAction,
}

impl Recipe {
    /// Render in the parseable text form.
    pub fn to_text(&self) -> String {
        let cond = match self.trigger {
            Trigger::EnvEquals(var, value) => format!("{}={}", env_var_name(var), value),
            Trigger::Event(class, event) => format!("{}.{}", class.name(), event_name(event)),
        };
        format!("IF {cond} THEN dev{} {}", self.action.target.0, action_text(self.action.action))
    }

    /// Whether two recipes contradict: their triggers can co-occur and
    /// their actions on the same target are opposed. This is exactly the
    /// paper's smoke-alarm vs Sighthound ambiguity.
    pub fn contradicts(&self, other: &Recipe) -> bool {
        self.action.target == other.action.target
            && self.trigger.can_cooccur(&other.trigger)
            && actions_opposed(self.action.action, other.action.action)
    }
}

/// Whether two actions on the same device are mutually exclusive.
pub fn actions_opposed(a: ControlAction, b: ControlAction) -> bool {
    use ControlAction::*;
    matches!(
        (a, b),
        (TurnOn, TurnOff)
            | (TurnOff, TurnOn)
            | (Open, Close)
            | (Close, Open)
            | (Lock, Unlock)
            | (Unlock, Lock)
    ) || (matches!((a, b), (SetColor(_), SetColor(_))) && a != b)
        || (matches!((a, b), (SetPhase(_), SetPhase(_))) && a != b)
        || (matches!((a, b), (SetTarget(_), SetTarget(_))) && a != b)
}

fn env_var_name(var: EnvVar) -> &'static str {
    match var {
        EnvVar::Temperature => "temperature",
        EnvVar::Smoke => "smoke",
        EnvVar::Light => "light",
        EnvVar::Occupancy => "occupancy",
        EnvVar::Window => "window",
        EnvVar::Door => "door",
        EnvVar::PowerDraw => "power",
    }
}

fn env_var_from_name(name: &str) -> Option<EnvVar> {
    Some(match name {
        "temperature" => EnvVar::Temperature,
        "smoke" => EnvVar::Smoke,
        "light" => EnvVar::Light,
        "occupancy" => EnvVar::Occupancy,
        "window" => EnvVar::Window,
        "door" => EnvVar::Door,
        "power" => EnvVar::PowerDraw,
        _ => return None,
    })
}

fn event_name(e: EventKind) -> &'static str {
    match e {
        EventKind::SmokeAlarm => "smoke-alarm",
        EventKind::SmokeClear => "smoke-clear",
        EventKind::MotionStart => "motion-start",
        EventKind::MotionStop => "motion-stop",
        EventKind::DoorOpened => "door-opened",
        EventKind::TamperSuspected => "tamper",
    }
}

fn event_from_name(name: &str) -> Option<EventKind> {
    Some(match name {
        "smoke-alarm" => EventKind::SmokeAlarm,
        "smoke-clear" => EventKind::SmokeClear,
        "motion-start" => EventKind::MotionStart,
        "motion-stop" => EventKind::MotionStop,
        "door-opened" => EventKind::DoorOpened,
        "tamper" => EventKind::TamperSuspected,
        _ => return None,
    })
}

fn class_from_name(name: &str) -> Option<DeviceClass> {
    DeviceClass::ALL.into_iter().find(|c| c.name() == name)
}

fn action_text(a: ControlAction) -> String {
    use ControlAction::*;
    match a {
        TurnOn => "on".into(),
        TurnOff => "off".into(),
        Open => "open".into(),
        Close => "close".into(),
        Lock => "lock".into(),
        Unlock => "unlock".into(),
        SetTarget(v) => format!("set-target {v}"),
        SetColor(c) => format!("set-color {c}"),
        SetPhase(p) => format!("set-phase {p}"),
    }
}

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Input does not follow `IF <cond> THEN <dev> <action>`.
    Shape,
    /// The condition is not a known env test or class event.
    Condition(String),
    /// The target is not `dev<N>`.
    Target(String),
    /// The action verb is unknown or malformed.
    Action(String),
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseError::Shape => write!(f, "expected 'IF <cond> THEN <dev> <action>'"),
            ParseError::Condition(c) => write!(f, "bad condition '{c}'"),
            ParseError::Target(t) => write!(f, "bad target '{t}'"),
            ParseError::Action(a) => write!(f, "bad action '{a}'"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse the text form produced by [`Recipe::to_text`]:
/// `IF smoke=yes THEN dev3 open` or
/// `IF fire-alarm.smoke-alarm THEN dev2 set-color 1`.
pub fn parse(id: u32, text: &str) -> Result<Recipe, ParseError> {
    let tokens: Vec<&str> = text.split_whitespace().collect();
    if tokens.len() < 4
        || !tokens[0].eq_ignore_ascii_case("if")
        || !tokens[2].eq_ignore_ascii_case("then")
    {
        return Err(ParseError::Shape);
    }
    let cond = tokens[1];
    let trigger = if let Some((var, value)) = cond.split_once('=') {
        let var = env_var_from_name(var).ok_or_else(|| ParseError::Condition(cond.into()))?;
        let value = var
            .domain()
            .iter()
            .find(|v| **v == value)
            .copied()
            .ok_or_else(|| ParseError::Condition(cond.into()))?;
        Trigger::EnvEquals(var, value)
    } else if let Some((class, event)) = cond.split_once('.') {
        let class = class_from_name(class).ok_or_else(|| ParseError::Condition(cond.into()))?;
        let event = event_from_name(event).ok_or_else(|| ParseError::Condition(cond.into()))?;
        Trigger::Event(class, event)
    } else {
        return Err(ParseError::Condition(cond.into()));
    };
    let target = tokens[3]
        .strip_prefix("dev")
        .and_then(|n| n.parse::<u32>().ok())
        .map(DeviceId)
        .ok_or_else(|| ParseError::Target(tokens[3].into()))?;
    let action = match (tokens.get(4).copied(), tokens.get(5)) {
        (Some("on"), _) => ControlAction::TurnOn,
        (Some("off"), _) => ControlAction::TurnOff,
        (Some("open"), _) => ControlAction::Open,
        (Some("close"), _) => ControlAction::Close,
        (Some("lock"), _) => ControlAction::Lock,
        (Some("unlock"), _) => ControlAction::Unlock,
        (Some("set-target"), Some(v)) => {
            ControlAction::SetTarget(v.parse().map_err(|_| ParseError::Action(text.into()))?)
        }
        (Some("set-color"), Some(v)) => {
            ControlAction::SetColor(v.parse().map_err(|_| ParseError::Action(text.into()))?)
        }
        (Some("set-phase"), Some(v)) => {
            ControlAction::SetPhase(v.parse().map_err(|_| ParseError::Action(text.into()))?)
        }
        (Some(other), _) => return Err(ParseError::Action(other.into())),
        (None, _) => return Err(ParseError::Shape),
    };
    Ok(Recipe { id, trigger, action: RecipeAction { target, action } })
}

/// A pool of actuation targets for corpus generation.
#[derive(Debug, Clone)]
pub struct TargetPool {
    /// `(device, class)` pairs recipes may actuate.
    pub targets: Vec<(DeviceId, DeviceClass)>,
}

impl TargetPool {
    fn actions_for(class: DeviceClass) -> Vec<ControlAction> {
        use ControlAction::*;
        match class {
            DeviceClass::LightBulb => vec![TurnOn, TurnOff, SetColor(1), SetColor(2)],
            DeviceClass::SmartPlug
            | DeviceClass::Oven
            | DeviceClass::Camera
            | DeviceClass::SetTopBox => {
                vec![TurnOn, TurnOff]
            }
            DeviceClass::WindowActuator => vec![Open, Close],
            DeviceClass::SmartLock => vec![Lock, Unlock],
            DeviceClass::Thermostat => vec![SetTarget(180), SetTarget(240)],
            DeviceClass::TrafficLight => vec![SetPhase(0), SetPhase(2)],
            _ => vec![],
        }
    }
}

/// The three Table 2 anchor devices and their recipe counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Table2Anchor {
    /// NEST Protect — 188 cross-device recipes.
    NestProtect,
    /// Wemo Insight — 227 cross-device recipes.
    WemoInsight,
    /// Scout Alarm — 63 cross-device recipes.
    ScoutAlarm,
}

impl Table2Anchor {
    /// The count the paper reports.
    pub fn paper_count(self) -> usize {
        match self {
            Table2Anchor::NestProtect => 188,
            Table2Anchor::WemoInsight => 227,
            Table2Anchor::ScoutAlarm => 63,
        }
    }

    /// Triggers characteristic of the anchor device.
    fn triggers(self) -> Vec<Trigger> {
        match self {
            Table2Anchor::NestProtect => vec![
                Trigger::Event(DeviceClass::FireAlarm, EventKind::SmokeAlarm),
                Trigger::Event(DeviceClass::FireAlarm, EventKind::SmokeClear),
                Trigger::EnvEquals(EnvVar::Smoke, "yes"),
            ],
            Table2Anchor::WemoInsight => vec![
                Trigger::EnvEquals(EnvVar::Occupancy, "absent"),
                Trigger::EnvEquals(EnvVar::Occupancy, "present"),
                Trigger::EnvEquals(EnvVar::PowerDraw, "high"),
                Trigger::Event(DeviceClass::MotionSensor, EventKind::MotionStop),
            ],
            Table2Anchor::ScoutAlarm => vec![
                Trigger::Event(DeviceClass::MotionSensor, EventKind::MotionStart),
                Trigger::Event(DeviceClass::SmartLock, EventKind::DoorOpened),
                Trigger::Event(DeviceClass::FireAlarm, EventKind::TamperSuspected),
            ],
        }
    }

    /// The anchor's *canonical* action for a target class — real IFTTT
    /// users wire an anchor to a target with a consistent intent ("smoke
    /// → lights ON", "away → plug OFF"), which keeps real corpora mostly
    /// contradiction-free. A small fraction of recipes deviate (users do
    /// write sloppy rules; those are the conflicts §3.1 worries about).
    fn canonical_action(self, class: DeviceClass) -> Option<ControlAction> {
        use ControlAction::*;
        Some(match (self, class) {
            // Emergency anchor: make things visible and escapable.
            (Table2Anchor::NestProtect, DeviceClass::LightBulb) => SetColor(1),
            (Table2Anchor::NestProtect, DeviceClass::WindowActuator) => Open,
            (Table2Anchor::NestProtect, DeviceClass::SmartLock) => Unlock,
            (Table2Anchor::NestProtect, DeviceClass::SmartPlug | DeviceClass::Oven) => TurnOff,
            (Table2Anchor::NestProtect, DeviceClass::Camera) => TurnOn,
            // Energy anchor: shed load, dial back.
            (Table2Anchor::WemoInsight, DeviceClass::LightBulb) => TurnOff,
            (Table2Anchor::WemoInsight, DeviceClass::SmartPlug | DeviceClass::Oven) => TurnOff,
            (Table2Anchor::WemoInsight, DeviceClass::Thermostat) => SetTarget(240),
            (Table2Anchor::WemoInsight, DeviceClass::WindowActuator) => Close,
            (Table2Anchor::WemoInsight, DeviceClass::Camera) => TurnOn,
            // Security anchor: lock down and record.
            (Table2Anchor::ScoutAlarm, DeviceClass::Camera) => TurnOn,
            (Table2Anchor::ScoutAlarm, DeviceClass::SmartLock) => Lock,
            (Table2Anchor::ScoutAlarm, DeviceClass::LightBulb) => TurnOn,
            (Table2Anchor::ScoutAlarm, DeviceClass::WindowActuator) => Close,
            (Table2Anchor::ScoutAlarm, DeviceClass::SmartPlug | DeviceClass::Oven) => TurnOff,
            _ => return None,
        })
    }

    /// Generate this anchor's corpus at the paper's size. ~95 % of
    /// recipes follow the anchor's canonical intent per target; the rest
    /// pick freely (the sloppy tail where contradictions live).
    pub fn corpus<R: Rng>(self, pool: &TargetPool, rng: &mut R, first_id: u32) -> Vec<Recipe> {
        let triggers = self.triggers();
        let mut recipes = Vec::with_capacity(self.paper_count());
        let actionable: Vec<(DeviceId, DeviceClass)> = pool
            .targets
            .iter()
            .copied()
            .filter(|(_, c)| !TargetPool::actions_for(*c).is_empty())
            .collect();
        assert!(!actionable.is_empty(), "target pool has no actuatable devices");
        let mut id = first_id;
        while recipes.len() < self.paper_count() {
            let trigger = *triggers.choose(rng).unwrap();
            let (target, class) = *actionable.choose(rng).unwrap();
            let action = match self.canonical_action(class) {
                Some(canon) if rng.gen_bool(0.95) => canon,
                _ => *TargetPool::actions_for(class).choose(rng).unwrap(),
            };
            recipes.push(Recipe { id, trigger, action: RecipeAction { target, action } });
            id += 1;
        }
        recipes
    }
}

/// Generate the full Table 2 corpus (188 + 227 + 63 = 478 recipes) over
/// a shared target pool.
pub fn table2_corpus<R: Rng>(pool: &TargetPool, rng: &mut R) -> Vec<(Table2Anchor, Vec<Recipe>)> {
    let mut out = Vec::new();
    let mut next_id = 0;
    for anchor in [Table2Anchor::NestProtect, Table2Anchor::WemoInsight, Table2Anchor::ScoutAlarm] {
        let corpus = anchor.corpus(pool, rng, next_id);
        next_id += corpus.len() as u32;
        out.push((anchor, corpus));
    }
    out
}

/// A reasonable target pool for corpus generation: one of each
/// actuatable class.
pub fn default_target_pool() -> TargetPool {
    TargetPool {
        targets: vec![
            (DeviceId(10), DeviceClass::LightBulb),
            (DeviceId(11), DeviceClass::SmartPlug),
            (DeviceId(12), DeviceClass::WindowActuator),
            (DeviceId(13), DeviceClass::SmartLock),
            (DeviceId(14), DeviceClass::Thermostat),
            (DeviceId(15), DeviceClass::Camera),
            (DeviceId(16), DeviceClass::Oven),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn text_round_trip() {
        let cases = [
            Recipe {
                id: 0,
                trigger: Trigger::EnvEquals(EnvVar::Smoke, "yes"),
                action: RecipeAction { target: DeviceId(3), action: ControlAction::SetColor(1) },
            },
            Recipe {
                id: 1,
                trigger: Trigger::Event(DeviceClass::FireAlarm, EventKind::SmokeAlarm),
                action: RecipeAction { target: DeviceId(2), action: ControlAction::Open },
            },
            Recipe {
                id: 2,
                trigger: Trigger::EnvEquals(EnvVar::Occupancy, "absent"),
                action: RecipeAction { target: DeviceId(11), action: ControlAction::TurnOff },
            },
        ];
        for r in cases {
            let text = r.to_text();
            let parsed = parse(r.id, &text).unwrap();
            assert_eq!(parsed, r, "text: {text}");
        }
    }

    #[test]
    fn paper_examples_parse() {
        // "If Nest Protect detects smoke, then turn Philips hue lights on."
        let r = parse(0, "IF fire-alarm.smoke-alarm THEN dev10 on").unwrap();
        assert_eq!(r.trigger, Trigger::Event(DeviceClass::FireAlarm, EventKind::SmokeAlarm));
        // "Turn off WeMo Insight if SmartThings shows no body is at home."
        let r = parse(1, "IF occupancy=absent THEN dev11 off").unwrap();
        assert_eq!(r.trigger, Trigger::EnvEquals(EnvVar::Occupancy, "absent"));
        assert_eq!(r.action.action, ControlAction::TurnOff);
        // "Activate your Manythings Camera if Alarm is Triggered."
        let r = parse(2, "IF motion-sensor.motion-start THEN dev15 on").unwrap();
        assert_eq!(r.action.action, ControlAction::TurnOn);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse(0, "WHEN x THEN y z"), Err(ParseError::Shape));
        assert!(matches!(parse(0, "IF bogus=yes THEN dev1 on"), Err(ParseError::Condition(_))));
        assert!(matches!(parse(0, "IF smoke=maybe THEN dev1 on"), Err(ParseError::Condition(_))));
        assert!(matches!(parse(0, "IF smoke=yes THEN camera on"), Err(ParseError::Target(_))));
        assert!(matches!(parse(0, "IF smoke=yes THEN dev1 explode"), Err(ParseError::Action(_))));
        assert!(matches!(
            parse(0, "IF smoke=yes THEN dev1 set-color x"),
            Err(ParseError::Action(_))
        ));
    }

    #[test]
    fn table2_counts_match_paper() {
        let pool = default_target_pool();
        let mut rng = StdRng::seed_from_u64(7);
        let corpus = table2_corpus(&pool, &mut rng);
        assert_eq!(corpus.len(), 3);
        for (anchor, recipes) in &corpus {
            assert_eq!(recipes.len(), anchor.paper_count());
        }
        let total: usize = corpus.iter().map(|(_, r)| r.len()).sum();
        assert_eq!(total, 478);
        // Recipe ids are corpus-unique.
        let mut ids: Vec<u32> = corpus.iter().flat_map(|(_, r)| r.iter().map(|x| x.id)).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 478);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let pool = default_target_pool();
        let a = table2_corpus(&pool, &mut StdRng::seed_from_u64(9));
        let b = table2_corpus(&pool, &mut StdRng::seed_from_u64(9));
        let c = table2_corpus(&pool, &mut StdRng::seed_from_u64(10));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn contradiction_semantics() {
        let on = Recipe {
            id: 0,
            trigger: Trigger::EnvEquals(EnvVar::Smoke, "yes"),
            action: RecipeAction { target: DeviceId(1), action: ControlAction::TurnOn },
        };
        let off_same_state = Recipe {
            id: 1,
            trigger: Trigger::Event(DeviceClass::Camera, EventKind::MotionStart),
            action: RecipeAction { target: DeviceId(1), action: ControlAction::TurnOff },
        };
        let off_disjoint = Recipe {
            id: 2,
            trigger: Trigger::EnvEquals(EnvVar::Smoke, "no"),
            action: RecipeAction { target: DeviceId(1), action: ControlAction::TurnOff },
        };
        let off_other_dev = Recipe {
            id: 3,
            trigger: Trigger::Event(DeviceClass::Camera, EventKind::MotionStart),
            action: RecipeAction { target: DeviceId(2), action: ControlAction::TurnOff },
        };
        assert!(on.contradicts(&off_same_state)); // the paper's ambiguity case
        assert!(!on.contradicts(&off_disjoint)); // smoke=yes and smoke=no are exclusive
        assert!(!on.contradicts(&off_other_dev));
        assert!(!on.contradicts(&on));
    }

    #[test]
    fn opposed_actions_table() {
        use ControlAction::*;
        assert!(actions_opposed(Open, Close));
        assert!(actions_opposed(Lock, Unlock));
        assert!(actions_opposed(SetColor(1), SetColor(2)));
        assert!(!actions_opposed(SetColor(1), SetColor(1)));
        assert!(!actions_opposed(TurnOn, Open));
        assert!(actions_opposed(SetTarget(180), SetTarget(350)));
    }
}
