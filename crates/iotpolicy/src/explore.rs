//! State-space exploration: exhaustive sweeps and frontier BFS over the
//! packed engine (experiment E19).
//!
//! Three interchangeable engines compute the same [`SpaceStats`]:
//!
//! * [`explore_naive`] — the legacy formulation: clone a
//!   [`crate::state_space::SystemState`] per state, re-walk the rule
//!   list through [`FsmPolicy::evaluate`]. The reference the fast
//!   engines are differentially tested against.
//! * [`explore_packed`] with `threads <= 1` — packed serial: odometer
//!   over `u128` words with memoized evaluation
//!   ([`crate::packed::MemoPolicy`]), zero allocation per state.
//! * [`explore_packed`] with `threads > 1` — packed parallel: the rank
//!   space is cut into fixed chunks fed through the same
//!   work-stealing-deque pattern as `bench`'s sweep runner, and chunk
//!   results merge in **chunk order** into order-independent digests —
//!   so counts, class sets and quiet-state digests are byte-identical
//!   to the serial engines regardless of scheduling.
//!
//! [`bfs_packed`] explores the same space as a breadth-first frontier
//! expansion from the initial state (successor relation = one slot
//! changes value), with a dense word-indexed bitset visited arena when
//! the packed word fits [`DENSE_WORD_BITS_MAX`] bits and a hashed set
//! otherwise, emitting one control-class
//! [`TraceEvent::SpaceFrontier`] per depth.

use crate::packed::{FxBuild, MemoPolicy, PackedState, RuleMask};
use crate::policy::FsmPolicy;
use fixedbitset::FixedBitSet;
use std::collections::{HashMap, HashSet};
use std::hash::BuildHasher;
use std::sync::Mutex;
use trace::event::TraceEvent;
use trace::tracer::Tracer;

/// Ranks per work-stealing chunk in the parallel sweep, and frontier
/// states per chunk in the parallel BFS expansion.
pub const CHUNK: u128 = 1 << 14;

/// Largest packed-word width for which the BFS visited set uses a dense
/// bitset indexed by the word itself (2²⁸ bits = 32 MiB); wider spaces
/// fall back to a hashed set.
pub const DENSE_WORD_BITS_MAX: u32 = 28;

/// FNV-1a over a byte slice.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a of a state rank — the per-state term of the order-independent
/// (XOR-merged) digests.
fn fnv_rank(rank: u128) -> u64 {
    fnv64(&rank.to_le_bytes())
}

/// Aggregate result of one exhaustive sweep. Every field is either a
/// count or an XOR-of-FNV digest, so partial results merge by addition /
/// XOR in any order — the determinism argument of the parallel engine.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpaceStats {
    /// States visited (the schema's exact size).
    pub states: u128,
    /// Distinct posture-vector equivalence classes.
    pub classes: u64,
    /// XOR of the distinct classes' fingerprints.
    pub class_digest: u64,
    /// States whose posture vector is all-allow ("quiet").
    pub quiet_states: u128,
    /// XOR of `fnv(rank)` over the quiet states.
    pub quiet_digest: u64,
    /// Memoized-evaluation `(lookups, hits)` — engine diagnostics, only
    /// meaningful (and only deterministic) for the serial packed engine;
    /// zero for the naive engine. Not part of [`SpaceStats::digest`].
    pub memo: (u64, u64),
}

impl SpaceStats {
    /// Canonical rendering of the *semantic* fields (excludes the memo
    /// diagnostics): two engines agree iff their digests are equal.
    pub fn digest(&self) -> String {
        format!(
            "states={} classes={} cd={:016x} quiet={} qd={:016x}",
            self.states, self.classes, self.class_digest, self.quiet_states, self.quiet_digest
        )
    }
}

/// Interned set of distinct posture vectors, keyed by fingerprint with
/// an equality-checked collision chain. Fingerprints are computed once
/// per vector and cached — never recomputed for the digest.
#[derive(Default)]
struct ClassSet {
    by_fp: HashMap<u64, Vec<usize>, FxBuild>,
    vecs: Vec<crate::posture::PostureVector>,
    fps: Vec<u64>,
}

impl ClassSet {
    /// Intern `v`, returning its id.
    fn intern(&mut self, v: &crate::posture::PostureVector) -> usize {
        self.intern_with_fp(v.fingerprint(), v)
    }

    /// Intern `v` whose fingerprint the caller already computed.
    fn intern_with_fp(&mut self, fp: u64, v: &crate::posture::PostureVector) -> usize {
        let chain = self.by_fp.entry(fp).or_default();
        for &id in chain.iter() {
            if self.vecs[id] == *v {
                return id;
            }
        }
        let id = self.vecs.len();
        chain.push(id);
        self.vecs.push(v.clone());
        self.fps.push(fp);
        id
    }

    fn digest(&self) -> u64 {
        self.fps.iter().fold(0, |a, b| a ^ b)
    }
}

/// Exhaustive sweep with the legacy engine: one [`SystemState`] clone
/// and one full rule-list walk per state. The differential reference.
///
/// [`SystemState`]: crate::state_space::SystemState
pub fn explore_naive(policy: &FsmPolicy) -> SpaceStats {
    let mut classes = ClassSet::default();
    let mut stats = SpaceStats::default();
    for (rank, state) in policy.schema.iter_states().enumerate() {
        let v = policy.evaluate(&state);
        if v.by_device.is_empty() {
            stats.quiet_states += 1;
            stats.quiet_digest ^= fnv_rank(rank as u128);
        }
        classes.intern(&v);
        stats.states += 1;
    }
    stats.classes = classes.vecs.len() as u64;
    stats.class_digest = classes.digest();
    stats
}

/// Per-chunk partial result of the parallel sweep.
struct ChunkOut {
    states: u128,
    quiet_states: u128,
    quiet_digest: u64,
    /// `(fingerprint, posture vector)` pairs whose rule set this worker
    /// was the first to evaluate (per the shared cold table). Distinct
    /// masks can still map to equal vectors, so the merge re-interns —
    /// but with the fingerprint precomputed.
    new_classes: Vec<(u64, crate::posture::PostureVector)>,
}

/// Number of lock shards in the parallel sweep's shared cold table.
const MEMO_SHARDS: usize = 64;

/// One shard of the shared cold table: rule mask → `(fingerprint, quiet)`.
type MemoShard = Mutex<HashMap<RuleMask, (u64, bool), FxBuild>>;

/// The parallel sweep's shared memo: rule mask → `(fingerprint, quiet)`,
/// sharded by mask hash so each distinct rule set is evaluated **once
/// across all workers** (the cold evaluation builds a full posture
/// vector — by far the most expensive step in the sweep). Workers front
/// this with a per-worker unsharded cache, so the locks only see first
/// sightings.
struct SharedMemo {
    shards: Vec<MemoShard>,
    build: FxBuild,
}

impl SharedMemo {
    fn new() -> SharedMemo {
        SharedMemo {
            shards: (0..MEMO_SHARDS).map(|_| Mutex::new(HashMap::default())).collect(),
            build: FxBuild::default(),
        }
    }

    fn shard(&self, mask: &RuleMask) -> &MemoShard {
        &self.shards[self.build.hash_one(mask) as usize % MEMO_SHARDS]
    }

    /// Resolve `mask`, evaluating via `memo` at most once globally. The
    /// boolean is true when this caller won the evaluation race and owns
    /// exporting the class.
    fn resolve(&self, memo: &MemoPolicy<'_>, mask: RuleMask, out: &mut ChunkOut) -> (u64, bool) {
        let shard = self.shard(&mask);
        if let Some(&v) = shard.lock().unwrap().get(&mask) {
            return v;
        }
        // Evaluate outside the lock: a racing worker may duplicate the
        // work, but only the insert winner exports the class.
        let vec = memo.posture_for_mask(mask);
        let fp = vec.fingerprint();
        let quiet = vec.by_device.is_empty();
        let mut guard = shard.lock().unwrap();
        if let Some(&v) = guard.get(&mask) {
            return v;
        }
        guard.insert(mask, (fp, quiet));
        drop(guard);
        out.new_classes.push((fp, vec));
        (fp, quiet)
    }
}

/// Exhaustive sweep with the packed engine. `None` when the schema does
/// not pack (see [`MemoPolicy::new`]). `threads <= 1` runs serially —
/// the canonical packed engine; `threads > 1` cuts the rank space into
/// [`CHUNK`]-sized chunks executed by a work-stealing pool, each worker
/// holding its own [`MemoPolicy`], and merges the chunk results in
/// chunk order. Counts and digests are identical in all three modes.
pub fn explore_packed(policy: &FsmPolicy, threads: usize) -> Option<SpaceStats> {
    if threads <= 1 {
        return explore_packed_serial(policy);
    }
    let memo_probe = MemoPolicy::new(policy)?;
    let layout = memo_probe.layout().clone();
    drop(memo_probe);
    let size = layout.size();
    let n_chunks = size.div_ceil(CHUNK) as usize;

    let injector = crossbeam::deque::Injector::new();
    for chunk in 0..n_chunks {
        injector.push(chunk);
    }
    let slots: Vec<Mutex<Option<ChunkOut>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    let shared = SharedMemo::new();

    let workers: Vec<crossbeam::deque::Worker<usize>> =
        (0..threads).map(|_| crossbeam::deque::Worker::new_fifo()).collect();
    let stealers: Vec<crossbeam::deque::Stealer<usize>> =
        workers.iter().map(|w| w.stealer()).collect();

    crossbeam::scope(|scope| {
        for (wid, worker) in workers.into_iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let slots = &slots;
            let layout = &layout;
            let shared = &shared;
            scope.spawn(move |_| {
                let memo = MemoPolicy::new(policy).expect("probed packable above");
                // Per-worker lock-free cache over the shared cold table,
                // fronted by a one-entry last-mask cache (consecutive
                // ranks usually trip the same rule set).
                let mut local: HashMap<RuleMask, (u64, bool), FxBuild> = HashMap::default();
                let mut last: Option<(RuleMask, (u64, bool))> = None;
                let find_task = |local: &crossbeam::deque::Worker<usize>| -> Option<usize> {
                    local.pop().or_else(|| {
                        std::iter::repeat_with(|| {
                            injector.steal().success().or_else(|| {
                                stealers
                                    .iter()
                                    .enumerate()
                                    .filter(|(sid, _)| *sid != wid)
                                    .find_map(|(_, s)| s.steal().success())
                            })
                        })
                        .take(2)
                        .flatten()
                        .next()
                    })
                };
                while let Some(chunk) = find_task(&worker) {
                    let start = chunk as u128 * CHUNK;
                    let end = (start + CHUNK).min(size);
                    let mut out = ChunkOut {
                        states: 0,
                        quiet_states: 0,
                        quiet_digest: 0,
                        new_classes: Vec::new(),
                    };
                    // Full mask once at the chunk's first rank, then
                    // incremental maintenance along the odometer.
                    let mut p = layout.from_rank(start);
                    let mut mask = memo.mask_of(p);
                    for rank in start..end {
                        let (_, quiet) = match last {
                            Some((last_mask, v)) if last_mask == mask => v,
                            _ => {
                                let v = match local.get(&mask) {
                                    Some(&v) => v,
                                    None => {
                                        let v = shared.resolve(&memo, mask, &mut out);
                                        local.insert(mask, v);
                                        v
                                    }
                                };
                                last = Some((mask, v));
                                v
                            }
                        };
                        if quiet {
                            out.quiet_states += 1;
                            out.quiet_digest ^= fnv_rank(rank);
                        }
                        out.states += 1;
                        if rank + 1 < end {
                            let (n, changed) =
                                layout.next_masked(p).expect("odometer ended inside the range");
                            p = n;
                            memo.mask_step(&mut mask, n, changed);
                        }
                    }
                    *slots[chunk].lock().unwrap() = Some(out);
                }
            });
        }
    })
    .expect("exploration worker panicked");

    let mut stats = SpaceStats::default();
    let mut classes = ClassSet::default();
    for slot in &slots {
        let out = slot.lock().unwrap().take().expect("every chunk must report");
        stats.states += out.states;
        stats.quiet_states += out.quiet_states;
        stats.quiet_digest ^= out.quiet_digest;
        for (fp, v) in &out.new_classes {
            classes.intern_with_fp(*fp, v);
        }
    }
    stats.classes = classes.vecs.len() as u64;
    stats.class_digest = classes.digest();
    Some(stats)
}

/// The serial packed engine: the zero-alloc inner loop the allocation
/// profile test pins.
fn explore_packed_serial(policy: &FsmPolicy) -> Option<SpaceStats> {
    let mut memo = MemoPolicy::new(policy)?;
    let layout = memo.layout().clone();
    let mut stats = SpaceStats::default();
    let mut p = layout.first();
    let mut mask = memo.mask_of(p);
    let mut rank: u128 = 0;
    loop {
        let id = memo.class_of_mask(mask);
        if memo.is_quiet(id) {
            stats.quiet_states += 1;
            stats.quiet_digest ^= fnv_rank(rank);
        }
        stats.states += 1;
        rank += 1;
        // Incremental mask maintenance: only rules touching the
        // odometer's changed low digits are re-tested.
        match layout.next_masked(p) {
            Some((n, changed)) => {
                p = n;
                memo.mask_step(&mut mask, n, changed);
            }
            None => break,
        }
    }
    stats.classes = memo.class_count() as u64;
    stats.class_digest =
        (0..memo.class_count() as u32).map(|id| memo.class_fingerprint(id)).fold(0, |a, b| a ^ b);
    stats.memo = memo.stats();
    Some(stats)
}

/// Result of a frontier BFS from the initial state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BfsStats {
    /// Total states reached.
    pub visited: u128,
    /// Frontier size per depth (`depths[0] == 1`, the initial state).
    pub depths: Vec<u64>,
    /// XOR of `fnv(depth ‖ word)` over every `(depth, state)` pair —
    /// zero for the naive engine, which has no packed words to hash.
    pub frontier_digest: u64,
}

impl BfsStats {
    /// Canonical rendering for differential comparison (digest last so
    /// naive/packed comparisons can strip it).
    pub fn histogram(&self) -> String {
        let shells: Vec<String> = self.depths.iter().map(|d| d.to_string()).collect();
        format!("visited={} shells=[{}]", self.visited, shells.join(","))
    }
}

/// Visited-state arena: dense word-indexed bitset when the packed word
/// is narrow enough, hashed otherwise. The dense arm costs one shift
/// and an OR per probe; the hashed arm is the graceful degradation.
enum Visited {
    Dense(FixedBitSet),
    Hashed(HashSet<u128>),
}

impl Visited {
    fn for_layout(layout: &crate::packed::PackedLayout) -> Visited {
        if layout.total_bits() <= DENSE_WORD_BITS_MAX {
            Visited::Dense(FixedBitSet::with_capacity(layout.word_space() as usize))
        } else {
            Visited::Hashed(HashSet::new())
        }
    }

    /// Whether the bitset arm is in use (surface for tests and E19).
    fn is_dense(&self) -> bool {
        matches!(self, Visited::Dense(_))
    }

    #[inline]
    fn contains(&self, p: PackedState) -> bool {
        match self {
            Visited::Dense(bits) => bits.contains(p.0 as usize),
            Visited::Hashed(set) => set.contains(&p.0),
        }
    }

    /// Insert and return whether the state was already present.
    #[inline]
    fn put(&mut self, p: PackedState) -> bool {
        match self {
            Visited::Dense(bits) => bits.put(p.0 as usize),
            Visited::Hashed(set) => !set.insert(p.0),
        }
    }

    fn count(&self) -> u128 {
        match self {
            Visited::Dense(bits) => bits.count_ones() as u128,
            Visited::Hashed(set) => set.len() as u128,
        }
    }
}

fn fnv_depth_word(depth: u32, word: u128) -> u64 {
    let mut bytes = [0u8; 20];
    bytes[..4].copy_from_slice(&depth.to_le_bytes());
    bytes[4..].copy_from_slice(&word.to_le_bytes());
    fnv64(&bytes)
}

/// Whether a packed BFS over this policy's schema would use the dense
/// visited arena (E19 reports this per population).
pub fn bfs_uses_dense_visited(policy: &FsmPolicy) -> Option<bool> {
    let layout = crate::packed::PackedLayout::of(&policy.schema)?;
    Some(layout.total_bits() <= DENSE_WORD_BITS_MAX)
}

/// Frontier BFS over the packed space from the initial state; successors
/// flip one slot to one other value. `None` when the schema does not
/// pack. `threads > 1` expands each frontier in [`CHUNK`]-sized slices
/// on a scoped pool — workers only *read* the visited arena (it is
/// mutated exclusively by the merge, between depths), and slice results
/// merge in slice order, so the per-depth frontier vectors are
/// byte-identical to the serial expansion. One
/// [`TraceEvent::SpaceFrontier`] is emitted per depth with
/// `at_ns = depth`.
pub fn bfs_packed(policy: &FsmPolicy, threads: usize, tracer: &Tracer) -> Option<BfsStats> {
    let layout = crate::packed::PackedLayout::of(&policy.schema)?;
    let mut visited = Visited::for_layout(&layout);
    let mut stats = BfsStats::default();
    let mut frontier: Vec<u128> = vec![layout.first().0];
    visited.put(layout.first());
    let mut depth: u32 = 0;
    while !frontier.is_empty() {
        for w in &frontier {
            stats.frontier_digest ^= fnv_depth_word(depth, *w);
        }
        stats.depths.push(frontier.len() as u64);
        tracer.emit(
            depth as u64,
            TraceEvent::SpaceFrontier { depth, frontier: frontier.len() as u64 },
        );
        let candidates: Vec<Vec<u128>> = if threads <= 1 || frontier.len() < CHUNK as usize {
            vec![expand_slice(&layout, &visited, &frontier)]
        } else {
            let slices: Vec<&[u128]> = frontier.chunks(CHUNK as usize).collect();
            let outs: Vec<Mutex<Option<Vec<u128>>>> =
                slices.iter().map(|_| Mutex::new(None)).collect();
            let next_slice = std::sync::atomic::AtomicUsize::new(0);
            crossbeam::scope(|scope| {
                for _ in 0..threads {
                    let slices = &slices;
                    let outs = &outs;
                    let next_slice = &next_slice;
                    let layout = &layout;
                    let visited = &visited;
                    scope.spawn(move |_| loop {
                        let i = next_slice.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= slices.len() {
                            break;
                        }
                        *outs[i].lock().unwrap() = Some(expand_slice(layout, visited, slices[i]));
                    });
                }
            })
            .expect("BFS expansion worker panicked");
            outs.into_iter()
                .map(|m| m.into_inner().unwrap().expect("every slice must report"))
                .collect()
        };
        let mut next = Vec::new();
        for chunk in candidates {
            for cand in chunk {
                if !visited.put(PackedState(cand)) {
                    next.push(cand);
                }
            }
        }
        frontier = next;
        depth += 1;
    }
    stats.visited = visited.count();
    debug_assert!(visited.is_dense() == (layout.total_bits() <= DENSE_WORD_BITS_MAX));
    Some(stats)
}

/// Expand one frontier slice: successors of each member not yet in the
/// (frozen) visited arena, in enumeration order. Duplicates within and
/// across slices are removed by the caller's ordered merge.
fn expand_slice(
    layout: &crate::packed::PackedLayout,
    visited: &Visited,
    slice: &[u128],
) -> Vec<u128> {
    let mut out = Vec::new();
    for w in slice {
        layout.successors(PackedState(*w), |s| {
            if !visited.contains(s) {
                out.push(s.0);
            }
        });
    }
    out
}

/// Frontier BFS with the legacy state representation (hash-set visited,
/// cloned [`SystemState`]s). Reference for the packed BFS shell
/// histogram; its `frontier_digest` is zero (no packed words to hash).
///
/// [`SystemState`]: crate::state_space::SystemState
pub fn bfs_naive(policy: &FsmPolicy) -> BfsStats {
    use crate::state_space::SystemState;
    let schema = &policy.schema;
    let mut stats = BfsStats::default();
    let mut visited: HashSet<SystemState> = HashSet::new();
    let initial = schema.initial_state();
    visited.insert(initial.clone());
    let mut frontier = vec![initial];
    while !frontier.is_empty() {
        stats.depths.push(frontier.len() as u64);
        let mut next = Vec::new();
        for state in &frontier {
            // Same successor relation as the packed engine: each env
            // slot, then each device slot, set to each other value.
            for (slot, var) in schema.env_vars.iter().enumerate() {
                for idx in 0..var.domain().len() as u8 {
                    if idx != state.env[slot] {
                        let mut s = state.clone();
                        s.env[slot] = idx;
                        if visited.insert(s.clone()) {
                            next.push(s);
                        }
                    }
                }
            }
            for (slot, dev) in schema.devices.iter().enumerate() {
                for ctx in &dev.contexts {
                    if *ctx != state.contexts[slot] {
                        let mut s = state.clone();
                        s.contexts[slot] = *ctx;
                        if visited.insert(s.clone()) {
                            next.push(s);
                        }
                    }
                }
            }
        }
        frontier = next;
    }
    stats.visited = visited.len() as u128;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::PolicyCompiler;
    use iotdev::device::{DeviceClass, DeviceId};
    use iotdev::env::EnvVar;
    use iotdev::vuln::Vulnerability;

    fn small_policy() -> FsmPolicy {
        let mut c = PolicyCompiler::new();
        c.device(DeviceId(0), DeviceClass::FireAlarm, &[]);
        c.device(DeviceId(1), DeviceClass::WindowActuator, &[Vulnerability::NoAuthControl]);
        c.device(DeviceId(2), DeviceClass::SmartPlug, &[]);
        c.env(EnvVar::Temperature);
        c.env(EnvVar::Occupancy);
        c.protect_on_suspicion(DeviceId(0), DeviceId(1));
        c.gate_actuation(DeviceId(2), EnvVar::Occupancy, "present");
        c.build()
    }

    #[test]
    fn packed_serial_matches_naive() {
        let policy = small_policy();
        let naive = explore_naive(&policy);
        let packed = explore_packed(&policy, 1).unwrap();
        assert_eq!(naive.digest(), packed.digest());
        assert_eq!(naive.states, policy.schema.size());
        assert!(naive.classes >= 2);
        let (lookups, hits) = packed.memo;
        assert_eq!(lookups as u128, naive.states);
        assert!(hits > 0);
    }

    #[test]
    fn packed_parallel_matches_serial_at_multiple_widths() {
        let policy = small_policy();
        let serial = explore_packed(&policy, 1).unwrap();
        for threads in [2, 3, 4] {
            let par = explore_packed(&policy, threads).unwrap();
            assert_eq!(serial.digest(), par.digest(), "threads={threads}");
        }
    }

    #[test]
    fn bfs_covers_the_product_space() {
        // Every state of a product space is reachable by single-slot
        // moves, so BFS must visit exactly size() states, in Hamming
        // shells around the initial state.
        let policy = small_policy();
        let bfs = bfs_packed(&policy, 1, &Tracer::disabled()).unwrap();
        assert_eq!(bfs.visited, policy.schema.size());
        assert_eq!(bfs.depths[0], 1);
        let total: u64 = bfs.depths.iter().sum();
        assert_eq!(total as u128, bfs.visited);
        // Max depth = number of slots (change every slot once).
        assert_eq!(bfs.depths.len(), 5 + 1);
    }

    #[test]
    fn bfs_naive_and_packed_agree_on_shells() {
        let policy = small_policy();
        let naive = bfs_naive(&policy);
        let packed = bfs_packed(&policy, 1, &Tracer::disabled()).unwrap();
        assert_eq!(naive.histogram(), packed.histogram());
    }

    #[test]
    fn bfs_parallel_is_byte_identical() {
        let policy = small_policy();
        let serial = bfs_packed(&policy, 1, &Tracer::disabled()).unwrap();
        for threads in [2, 4] {
            let par = bfs_packed(&policy, threads, &Tracer::disabled()).unwrap();
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn bfs_traces_one_event_per_depth() {
        let policy = small_policy();
        let tracer = Tracer::new(trace::tracer::TraceConfig::control_only());
        let bfs = bfs_packed(&policy, 1, &tracer).unwrap();
        let events = tracer.events();
        assert_eq!(events.len(), bfs.depths.len());
        for (i, (at, ev)) in events.iter().enumerate() {
            assert_eq!(*at, i as u64);
            match ev {
                TraceEvent::SpaceFrontier { depth, frontier } => {
                    assert_eq!(*depth as usize, i);
                    assert_eq!(*frontier, bfs.depths[i]);
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn dense_visited_is_used_for_small_spaces() {
        let policy = small_policy();
        assert_eq!(bfs_uses_dense_visited(&policy), Some(true));
    }

    #[test]
    fn unpackable_schema_returns_none() {
        let mut s = crate::state_space::StateSchema::new();
        for i in 0..70 {
            s.add_device_with(
                DeviceId(i),
                DeviceClass::Camera,
                crate::context::SecurityContext::ALL.to_vec(),
            );
        }
        let policy = FsmPolicy::new(s);
        assert!(explore_packed(&policy, 1).is_none());
        assert!(bfs_packed(&policy, 1, &Tracer::disabled()).is_none());
        assert!(bfs_uses_dense_visited(&policy).is_none());
    }
}
