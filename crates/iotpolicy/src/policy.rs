//! The FSM policy: `state pattern → per-device postures`.
//!
//! Enumerating `Posture(Sₖ, Dᵢ)` for every state explicitly is the
//! paper's brute-force formulation; in practice policies are written as
//! prioritized **patterns** (partial assignments over contexts and
//! environment variables) exactly as Figure 3 does: "when the
//! fire-alarm's context is `suspicious`, block `open` messages to the
//! window actuator". Pattern evaluation gives the same semantics as full
//! enumeration while staying writable by humans and prunable by
//! machines.

use crate::context::SecurityContext;
use crate::posture::{Posture, PostureVector};
use crate::state_space::{StateSchema, SystemState};
use iotdev::device::DeviceId;
use iotdev::env::EnvVar;
use serde::Serialize;
use std::collections::BTreeMap;

/// A partial assignment over the state space: unconstrained slots match
/// anything.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct StatePattern {
    /// Required device contexts.
    pub contexts: BTreeMap<DeviceId, SecurityContext>,
    /// Required environment values.
    pub env: BTreeMap<EnvVar, &'static str>,
}

impl StatePattern {
    /// The match-anything pattern.
    pub fn any() -> StatePattern {
        StatePattern::default()
    }

    /// Require a device context.
    pub fn context(mut self, id: DeviceId, ctx: SecurityContext) -> StatePattern {
        self.contexts.insert(id, ctx);
        self
    }

    /// Require an environment value.
    pub fn env(mut self, var: EnvVar, value: &'static str) -> StatePattern {
        self.env.insert(var, value);
        self
    }

    /// Whether `state` (under `schema`) satisfies the pattern.
    ///
    /// Constraints on devices or variables the schema does not track are
    /// unsatisfiable — a policy referring to unknown slots never fires,
    /// which is the fail-closed reading.
    pub fn matches(&self, schema: &StateSchema, state: &SystemState) -> bool {
        for (id, want) in &self.contexts {
            match schema.context_of(state, *id) {
                Some(have) if have == *want => {}
                _ => return false,
            }
        }
        for (var, want) in &self.env {
            match schema.env_value(state, *var) {
                Some(have) if have == *want => {}
                _ => return false,
            }
        }
        true
    }

    /// Whether two patterns can match a common state (used by conflict
    /// detection): they overlap unless they pin the same slot to
    /// different values.
    pub fn overlaps(&self, other: &StatePattern) -> bool {
        for (id, a) in &self.contexts {
            if let Some(b) = other.contexts.get(id) {
                if a != b {
                    return false;
                }
            }
        }
        for (var, a) in &self.env {
            if let Some(b) = other.env.get(var) {
                if a != b {
                    return false;
                }
            }
        }
        true
    }

    /// Number of constrained slots.
    pub fn specificity(&self) -> usize {
        self.contexts.len() + self.env.len()
    }
}

/// One prioritized policy rule.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PolicyRule {
    /// Higher wins; equal priorities merge (and are checked for
    /// contradictions by the conflict detector).
    pub priority: u16,
    /// When the rule applies.
    pub pattern: StatePattern,
    /// What each affected device's posture becomes.
    pub postures: BTreeMap<DeviceId, Posture>,
    /// When true, this rule *replaces* everything accumulated by
    /// lower-priority rules for its devices instead of merging with it
    /// (quarantine is the canonical override).
    pub override_lower: bool,
    /// Human-readable origin (for reports: "fig3-window-block",
    /// "vuln:open-dns-resolver", "recipe:42").
    pub origin: String,
}

impl PolicyRule {
    /// Build a rule affecting one device.
    pub fn new(
        priority: u16,
        pattern: StatePattern,
        device: DeviceId,
        posture: Posture,
    ) -> PolicyRule {
        let mut postures = BTreeMap::new();
        postures.insert(device, posture);
        PolicyRule { priority, pattern, postures, override_lower: false, origin: String::new() }
    }

    /// Attach an origin label.
    pub fn with_origin(mut self, origin: &str) -> PolicyRule {
        self.origin = origin.into();
        self
    }

    /// Mark the rule as replacing lower-priority postures.
    pub fn overriding(mut self) -> PolicyRule {
        self.override_lower = true;
        self
    }

    /// Add another device's posture to the same rule.
    pub fn and_device(mut self, device: DeviceId, posture: Posture) -> PolicyRule {
        self.postures.insert(device, posture);
        self
    }
}

/// The compiled policy for one deployment.
#[derive(Debug, Clone, Default, Serialize)]
pub struct FsmPolicy {
    /// The deployment's state schema.
    pub schema: StateSchema,
    /// Rules, in installation order.
    pub rules: Vec<PolicyRule>,
    /// Posture applied to every device in every state, underneath the
    /// rules (usually `allow`; strict deployments use `ProtocolWhitelist`).
    pub baseline: Posture,
}

impl FsmPolicy {
    /// An empty policy over a schema.
    pub fn new(schema: StateSchema) -> FsmPolicy {
        FsmPolicy { schema, rules: Vec::new(), baseline: Posture::allow() }
    }

    /// Install a rule.
    pub fn add_rule(&mut self, rule: PolicyRule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// The posture vector in `state`.
    ///
    /// Per device: matching rules apply in ascending priority order (ties
    /// in installation order); each rule *merges* its posture with what
    /// lower layers accumulated, unless it is marked
    /// [`PolicyRule::overriding`], in which case it replaces them. The
    /// baseline sits underneath everything.
    pub fn evaluate(&self, state: &SystemState) -> PostureVector {
        let mut matching: Vec<(u16, usize)> = self
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.pattern.matches(&self.schema, state))
            .map(|(i, r)| (r.priority, i))
            .collect();
        matching.sort();
        let mut acc: BTreeMap<DeviceId, Posture> = BTreeMap::new();
        for (_, idx) in matching {
            let rule = &self.rules[idx];
            for (dev, posture) in &rule.postures {
                let entry = acc.entry(*dev).or_default();
                if rule.override_lower {
                    *entry = posture.clone();
                } else {
                    entry.merge(posture);
                }
            }
        }
        let mut vec = PostureVector::new();
        for dev in &self.schema.devices {
            let mut p = self.baseline.clone();
            if let Some(win) = acc.get(&dev.id) {
                p.merge(win);
            }
            if !p.is_allow() {
                vec.by_device.insert(dev.id, p);
            }
        }
        vec
    }

    /// The posture of a single device in `state`.
    pub fn posture_for(&self, state: &SystemState, id: DeviceId) -> Posture {
        self.evaluate(state).posture(id)
    }

    /// The FSM continuity token for `state`: a stable fingerprint of
    /// the posture vector this policy prescribes there. Two controllers
    /// holding the same policy and the same state agree on the token,
    /// so the safety monitor can compare it across a failover — a
    /// promoted standby whose token diverges has silently reset the
    /// active FSM (checkpoint loss), the `fsm-continuity` violation.
    pub fn continuity_token(&self, state: &SystemState) -> u64 {
        self.evaluate(state).fingerprint()
    }

    /// Exhaustively enumerate `(state, posture-vector)` pairs. Only for
    /// small schemas (tests and the E1/A1 experiments).
    pub fn enumerate(&self) -> Vec<(SystemState, PostureVector)> {
        self.schema
            .iter_states()
            .map(|s| {
                let v = self.evaluate(&s);
                (s, v)
            })
            .collect()
    }
}

/// The paper's Figure 3 policy, expressed directly: a fire alarm and a
/// window actuator.
///
/// * Fire-alarm backdoor accessed (context `suspicious`) → block `open`
///   messages to the window (stop the physical break-in).
/// * Window password brute-forced (context `suspicious`) → challenge
///   management logins on the window ("Robot Check" in the figure).
///
/// ```
/// use iotdev::device::DeviceId;
/// use iotpolicy::context::SecurityContext;
/// use iotpolicy::policy::figure3_policy;
/// use iotpolicy::posture::{BlockClass, SecurityModule};
///
/// let (alarm, window) = (DeviceId(0), DeviceId(1));
/// let policy = figure3_policy(alarm, window);
/// let calm = policy.schema.initial_state();
/// assert!(policy.posture_for(&calm, window).is_allow());
///
/// let alarm_hacked = calm.with_context(&policy.schema, alarm, SecurityContext::Suspicious);
/// assert!(policy
///     .posture_for(&alarm_hacked, window)
///     .contains(&SecurityModule::Block(BlockClass::OpenVerbs)));
/// ```
pub fn figure3_policy(fire_alarm: DeviceId, window: DeviceId) -> FsmPolicy {
    use crate::posture::{BlockClass, SecurityModule};
    use iotdev::device::DeviceClass;

    let mut schema = StateSchema::new();
    schema
        .add_device(fire_alarm, DeviceClass::FireAlarm)
        .add_device(window, DeviceClass::WindowActuator)
        .add_env(EnvVar::Smoke)
        .add_env(EnvVar::Window);

    let mut policy = FsmPolicy::new(schema);
    policy.add_rule(
        PolicyRule::new(
            100,
            StatePattern::any().context(fire_alarm, SecurityContext::Suspicious),
            window,
            Posture::of(SecurityModule::Block(BlockClass::OpenVerbs)),
        )
        .with_origin("fig3-block-open-on-firealarm-suspicion"),
    );
    policy.add_rule(
        PolicyRule::new(
            100,
            StatePattern::any().context(window, SecurityContext::Suspicious),
            window,
            Posture::of(SecurityModule::ChallengeLogins),
        )
        .with_origin("fig3-robot-check-on-bruteforce"),
    );
    policy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posture::{BlockClass, SecurityModule};
    use iotdev::device::DeviceClass;

    const ALARM: DeviceId = DeviceId(0);
    const WINDOW: DeviceId = DeviceId(1);

    #[test]
    fn figure3_normal_state_is_open_season() {
        let policy = figure3_policy(ALARM, WINDOW);
        let state = policy.schema.initial_state();
        assert!(policy.posture_for(&state, WINDOW).is_allow());
        assert!(policy.posture_for(&state, ALARM).is_allow());
    }

    #[test]
    fn figure3_firealarm_suspicion_blocks_window_open() {
        let policy = figure3_policy(ALARM, WINDOW);
        let state = policy.schema.initial_state().with_context(
            &policy.schema,
            ALARM,
            SecurityContext::Suspicious,
        );
        let p = policy.posture_for(&state, WINDOW);
        assert!(p.contains(&SecurityModule::Block(BlockClass::OpenVerbs)));
        // The alarm itself is not blocked — the posture targets the
        // *window*, the cross-device part the strawmen cannot express.
        assert!(policy.posture_for(&state, ALARM).is_allow());
    }

    #[test]
    fn figure3_window_bruteforce_gets_challenge() {
        let policy = figure3_policy(ALARM, WINDOW);
        let state = policy.schema.initial_state().with_context(
            &policy.schema,
            WINDOW,
            SecurityContext::Suspicious,
        );
        let p = policy.posture_for(&state, WINDOW);
        assert!(p.contains(&SecurityModule::ChallengeLogins));
        assert!(!p.contains(&SecurityModule::Block(BlockClass::OpenVerbs)));
    }

    #[test]
    fn both_suspicious_merges_equal_priority_rules() {
        let policy = figure3_policy(ALARM, WINDOW);
        let state = policy
            .schema
            .initial_state()
            .with_context(&policy.schema, ALARM, SecurityContext::Suspicious)
            .with_context(&policy.schema, WINDOW, SecurityContext::Suspicious);
        let p = policy.posture_for(&state, WINDOW);
        assert!(p.contains(&SecurityModule::Block(BlockClass::OpenVerbs)));
        assert!(p.contains(&SecurityModule::ChallengeLogins));
    }

    #[test]
    fn higher_priority_overrides() {
        let mut schema = StateSchema::new();
        schema.add_device(DeviceId(0), DeviceClass::Camera);
        let mut policy = FsmPolicy::new(schema);
        policy.add_rule(PolicyRule::new(
            10,
            StatePattern::any(),
            DeviceId(0),
            Posture::quarantine(),
        ));
        policy.add_rule(
            PolicyRule::new(
                50,
                StatePattern::any(),
                DeviceId(0),
                Posture::of(SecurityModule::Mirror),
            )
            .overriding(),
        );
        let p = policy.posture_for(&policy.schema.initial_state(), DeviceId(0));
        assert!(!p.blocks_all(), "override must replace the quarantine");
        assert!(p.contains(&SecurityModule::Mirror));
    }

    #[test]
    fn env_patterns_gate_rules() {
        let mut schema = StateSchema::new();
        schema.add_device(DeviceId(0), DeviceClass::LightBulb).add_env(EnvVar::Smoke);
        let mut policy = FsmPolicy::new(schema);
        policy.add_rule(PolicyRule::new(
            10,
            StatePattern::any().env(EnvVar::Smoke, "yes"),
            DeviceId(0),
            Posture::of(SecurityModule::Mirror),
        ));
        let calm = policy.schema.initial_state();
        assert!(policy.posture_for(&calm, DeviceId(0)).is_allow());
        let smoky = calm.clone().with_env(&policy.schema, EnvVar::Smoke, "yes");
        assert!(policy.posture_for(&smoky, DeviceId(0)).contains(&SecurityModule::Mirror));
    }

    #[test]
    fn pattern_overlap_semantics() {
        let a = StatePattern::any().context(DeviceId(0), SecurityContext::Suspicious);
        let b = StatePattern::any().env(EnvVar::Smoke, "yes");
        let c = StatePattern::any().context(DeviceId(0), SecurityContext::Normal);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(StatePattern::any().overlaps(&a));
    }

    #[test]
    fn unknown_slots_fail_closed() {
        let policy = figure3_policy(ALARM, WINDOW);
        let pattern = StatePattern::any().context(DeviceId(99), SecurityContext::Normal);
        assert!(!pattern.matches(&policy.schema, &policy.schema.initial_state()));
        let pattern = StatePattern::any().env(EnvVar::Door, "locked");
        assert!(!pattern.matches(&policy.schema, &policy.schema.initial_state()));
    }

    #[test]
    fn baseline_applies_under_rules() {
        let mut schema = StateSchema::new();
        schema.add_device(DeviceId(0), DeviceClass::Camera);
        let mut policy = FsmPolicy::new(schema);
        policy.baseline = Posture::of(SecurityModule::ProtocolWhitelist);
        let p = policy.posture_for(&policy.schema.initial_state(), DeviceId(0));
        assert!(p.contains(&SecurityModule::ProtocolWhitelist));
    }

    #[test]
    fn enumerate_covers_space() {
        let policy = figure3_policy(ALARM, WINDOW);
        let all = policy.enumerate();
        assert_eq!(all.len() as u128, policy.schema.size());
    }
}
