//! Packed-state encoding and memoized policy evaluation (the E19
//! engine).
//!
//! The naive representation of one point in `S = Π|Cᵢ| × Π|Eⱼ|` is a
//! [`SystemState`]: two heap vectors, cloned per visited state. Model
//! checkers in the SPIN/Murphi lineage instead pack the whole state
//! into a machine word; this module does the same for the paper's
//! product space:
//!
//! * [`PackedLayout`] — computed once per [`StateSchema`]: each device
//!   context and environment variable gets a fixed bit field inside one
//!   `u128` word (`⌈log₂ radix⌉` bits per slot), plus the mixed-radix
//!   stride used to rank states in **odometer order** — exactly the
//!   order the legacy [`StateSchema::iter_states`] visits (environment
//!   slots are the low digits, devices the high ones; a property test
//!   pins the equivalence).
//! * [`PackedState`] — one state as one `u128`. Encode/decode to
//!   [`SystemState`] is a bijection; iteration, ranking and successor
//!   generation are pure register arithmetic with zero allocation.
//! * [`PackedPattern`] — a policy rule pattern compiled to a
//!   `(mask, value)` pair: a state matches iff `word & mask == value`,
//!   one AND and one compare instead of two `BTreeMap` walks.
//! * [`MemoPolicy`] — memoized policy evaluation. The posture vector of
//!   a state is a pure function of *which rules match it* (the rule
//!   set, not the state itself), so evaluation keys a transition table
//!   by the 256-bit rule-match mask and interns each distinct
//!   [`PostureVector`] once. After warm-up the per-state cost is
//!   `rules × (AND + CMP)` plus one hash lookup — no FSM re-walk, no
//!   allocation (pinned by `tests/alloc_counter.rs`).

use crate::policy::FsmPolicy;
use crate::posture::PostureVector;
use crate::state_space::{StateSchema, SystemState};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher for the fixed-width keys of the memo tables
/// (rule masks and fingerprints). SipHash dominates the sweep's hot
/// loop at millions of probes per second; this folds each word in a
/// couple of cycles, in the fxhash tradition, which is safe here
/// because the keys are not attacker-controlled.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn fold(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.fold(b as u64);
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]-backed maps.
pub type FxBuild = BuildHasherDefault<FxHasher>;

/// One slot's bit field inside the packed word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotBits {
    /// Bit offset of the field.
    pub shift: u32,
    /// Field width in bits (`0` for single-valued domains).
    pub bits: u32,
    /// Domain size (number of values the slot ranges over).
    pub radix: u64,
}

impl SlotBits {
    /// The field mask, already shifted into place.
    #[inline]
    pub fn mask(&self) -> u128 {
        if self.bits == 0 {
            0
        } else {
            ((1u128 << self.bits) - 1) << self.shift
        }
    }

    /// Extract this slot's domain index from a packed word.
    #[inline]
    pub fn index_of(&self, word: u128) -> usize {
        if self.bits == 0 {
            0
        } else {
            ((word >> self.shift) & ((1u128 << self.bits) - 1)) as usize
        }
    }
}

/// One system state packed into a single word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PackedState(pub u128);

/// The bit layout of a schema's packed state space.
///
/// Digit order (for odometer iteration and ranking) is environment
/// slots first, then device slots — the legacy iterator's order.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedLayout {
    env: Vec<SlotBits>,
    dev: Vec<SlotBits>,
    total_bits: u32,
    size: u128,
}

impl PackedLayout {
    /// Compute the layout for `schema`, or `None` when the packed word
    /// would exceed 127 bits — a space that large (> 10³⁸ states) is
    /// beyond exhaustive exploration anyway, and callers fall back to
    /// the legacy representation.
    pub fn of(schema: &StateSchema) -> Option<PackedLayout> {
        let mut shift = 0u32;
        let mut size: u128 = 1;
        let mut place = |radix: u64| -> Option<SlotBits> {
            debug_assert!(radix >= 1, "domains are non-empty by construction");
            let bits = if radix <= 1 { 0 } else { 64 - (radix - 1).leading_zeros() };
            let slot = SlotBits { shift, bits, radix };
            shift = shift.checked_add(bits)?;
            if shift > 127 {
                return None;
            }
            size = size.checked_mul(radix as u128)?;
            Some(slot)
        };
        let mut env = Vec::with_capacity(schema.env_vars.len());
        for var in &schema.env_vars {
            env.push(place(var.domain().len() as u64)?);
        }
        let mut dev = Vec::with_capacity(schema.devices.len());
        for d in &schema.devices {
            dev.push(place(d.contexts.len() as u64)?);
        }
        Some(PackedLayout { env, dev, total_bits: shift, size })
    }

    /// Exact number of states (`Π radix`), identical to
    /// [`StateSchema::size`] for packable schemas.
    pub fn size(&self) -> u128 {
        self.size
    }

    /// Total bits used by the packed word.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Number of distinct packed *words* (`1 << total_bits`); ≥
    /// [`PackedLayout::size`] because non-power-of-two radices leave
    /// holes. This is the capacity of a word-indexed dense visited set.
    pub fn word_space(&self) -> u128 {
        1u128 << self.total_bits
    }

    /// The device slot's bit field.
    pub fn dev_slot(&self, slot: usize) -> SlotBits {
        self.dev[slot]
    }

    /// The environment slot's bit field.
    pub fn env_slot(&self, slot: usize) -> SlotBits {
        self.env[slot]
    }

    /// The first state in odometer order: every slot at domain index 0
    /// (== [`StateSchema::initial_state`]).
    pub fn first(&self) -> PackedState {
        PackedState(0)
    }

    /// The state after `p` in odometer order (`None` past the last).
    /// Environment slots are the low digits, devices the high —
    /// byte-compatible with the legacy iterator. Pure register
    /// arithmetic: no allocation.
    #[inline]
    pub fn next(&self, p: PackedState) -> Option<PackedState> {
        self.next_masked(p).map(|(n, _)| n)
    }

    /// [`PackedLayout::next`] plus the **changed region**: the union of
    /// the field masks of every slot that moved (the lower slots that
    /// wrapped to 0 and the one that carried). Because slot fields are
    /// laid out in digit order from bit 0 upward, the region is always
    /// a contiguous run of low bits — the key to incremental rule-mask
    /// maintenance ([`MemoPolicy::mask_step`]): a pattern whose mask
    /// misses the region kept its match bit.
    #[inline]
    pub fn next_masked(&self, p: PackedState) -> Option<(PackedState, u128)> {
        let mut word = p.0;
        let mut changed: u128 = 0;
        for slot in self.env.iter().chain(self.dev.iter()) {
            changed |= slot.mask();
            let idx = slot.index_of(word) as u64;
            if idx + 1 < slot.radix {
                return Some((PackedState(word + (1u128 << slot.shift)), changed));
            }
            word &= !slot.mask();
        }
        None
    }

    /// The odometer rank of `p` (position in iteration order,
    /// `0..size`).
    pub fn rank(&self, p: PackedState) -> u128 {
        let mut rank: u128 = 0;
        let mut stride: u128 = 1;
        for slot in self.env.iter().chain(self.dev.iter()) {
            rank += slot.index_of(p.0) as u128 * stride;
            stride *= slot.radix as u128;
        }
        rank
    }

    /// The state at odometer rank `rank` (must be `< size`).
    pub fn from_rank(&self, rank: u128) -> PackedState {
        assert!(rank < self.size, "rank {rank} out of range {}", self.size);
        let mut word: u128 = 0;
        let mut rest = rank;
        for slot in self.env.iter().chain(self.dev.iter()) {
            let idx = rest % slot.radix as u128;
            rest /= slot.radix as u128;
            word |= idx << slot.shift;
        }
        PackedState(word)
    }

    /// Pack a [`SystemState`] (contexts resolved against the schema's
    /// per-device domains).
    pub fn encode(&self, schema: &StateSchema, state: &SystemState) -> PackedState {
        let mut word: u128 = 0;
        for (slot, bits) in self.env.iter().enumerate() {
            word |= (state.env[slot] as u128) << bits.shift;
        }
        for (slot, bits) in self.dev.iter().enumerate() {
            let idx = schema.devices[slot]
                .contexts
                .iter()
                .position(|c| *c == state.contexts[slot])
                .expect("state context outside the schema domain");
            word |= (idx as u128) << bits.shift;
        }
        PackedState(word)
    }

    /// Unpack into the legacy representation.
    pub fn decode(&self, schema: &StateSchema, p: PackedState) -> SystemState {
        SystemState {
            contexts: self
                .dev
                .iter()
                .enumerate()
                .map(|(slot, bits)| schema.devices[slot].contexts[bits.index_of(p.0)])
                .collect(),
            env: self.env.iter().map(|bits| bits.index_of(p.0) as u8).collect(),
        }
    }

    /// Visit every one-slot neighbour of `p`: each slot changed to each
    /// *other* value in its domain, in digit order then ascending value
    /// order. This is the transition relation of the frontier BFS —
    /// context escalations and environment flips are all one-slot moves.
    #[inline]
    pub fn successors(&self, p: PackedState, mut visit: impl FnMut(PackedState)) {
        for slot in self.env.iter().chain(self.dev.iter()) {
            let current = slot.index_of(p.0) as u64;
            let cleared = p.0 & !slot.mask();
            for idx in 0..slot.radix {
                if idx != current {
                    visit(PackedState(cleared | ((idx as u128) << slot.shift)));
                }
            }
        }
    }
}

/// A rule pattern compiled against a layout: `word & mask == value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedPattern {
    /// Union of the constrained slots' field masks.
    pub mask: u128,
    /// Required field values, already shifted into place.
    pub value: u128,
    /// False when the pattern constrains a slot or value the schema
    /// does not carry — it then matches nothing (the fail-closed
    /// reading [`crate::policy::StatePattern::matches`] implements).
    pub feasible: bool,
}

impl PackedPattern {
    /// Compile `pattern` against `schema`'s layout.
    pub fn compile(
        layout: &PackedLayout,
        schema: &StateSchema,
        pattern: &crate::policy::StatePattern,
    ) -> PackedPattern {
        let mut out = PackedPattern { mask: 0, value: 0, feasible: true };
        for (id, want) in &pattern.contexts {
            let Some(slot) = schema.device_slot(*id) else {
                out.feasible = false;
                continue;
            };
            let Some(idx) = schema.devices[slot].contexts.iter().position(|c| c == want) else {
                out.feasible = false;
                continue;
            };
            let bits = layout.dev_slot(slot);
            out.mask |= bits.mask();
            out.value |= (idx as u128) << bits.shift;
        }
        for (var, want) in &pattern.env {
            let Some(slot) = schema.env_slot(*var) else {
                out.feasible = false;
                continue;
            };
            let Some(idx) = var.domain().iter().position(|v| v == want) else {
                out.feasible = false;
                continue;
            };
            let bits = layout.env_slot(slot);
            out.mask |= bits.mask();
            out.value |= (idx as u128) << bits.shift;
        }
        out
    }

    /// Whether the packed state satisfies the pattern.
    #[inline]
    pub fn matches(&self, p: PackedState) -> bool {
        self.feasible && p.0 & self.mask == self.value
    }

    /// Whether some state in the product space satisfies *both*
    /// patterns. Patterns are conjunctions of slot pins over a full
    /// product space, so a common state exists iff the two agree on
    /// every slot both pin — and both are feasible at all.
    pub fn overlaps(&self, other: &PackedPattern) -> bool {
        self.feasible
            && other.feasible
            && (self.value ^ other.value) & (self.mask & other.mask) == 0
    }
}

/// Upper bound on rule count for the memoized engine (the rule-match
/// mask is four `u64` words).
pub const MAX_MEMO_RULES: usize = 256;

/// Which rules matched a state: the memoization key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RuleMask([u64; 4]);

impl RuleMask {
    #[inline]
    fn set(&mut self, rule: usize) {
        self.0[rule / 64] |= 1 << (rule % 64);
    }

    #[inline]
    fn clear(&mut self, rule: usize) {
        self.0[rule / 64] &= !(1 << (rule % 64));
    }

    #[inline]
    fn contains(&self, rule: usize) -> bool {
        self.0[rule / 64] & (1 << (rule % 64)) != 0
    }

    /// Set intersection.
    #[inline]
    fn and(&self, other: &RuleMask) -> RuleMask {
        RuleMask([
            self.0[0] & other.0[0],
            self.0[1] & other.0[1],
            self.0[2] & other.0[2],
            self.0[3] & other.0[3],
        ])
    }
}

/// Memoized packed evaluation of one [`FsmPolicy`].
///
/// `class_of` maps a packed state to a **class id**: an index into the
/// interned table of distinct [`PostureVector`]s. Two states get the
/// same id iff the policy prescribes them identical postures, so class
/// ids double as the posture-collapse equivalence classes of
/// [`crate::prune`].
#[derive(Debug)]
pub struct MemoPolicy<'a> {
    policy: &'a FsmPolicy,
    layout: PackedLayout,
    patterns: Vec<PackedPattern>,
    /// Rule indices sorted by `(priority, index)` — the evaluation
    /// order of [`FsmPolicy::evaluate`].
    eval_order: Vec<u32>,
    /// Per rule (policy order): its postures with the device resolved
    /// to a schema slot, so the cold path accumulates into a flat
    /// per-slot vector instead of a `BTreeMap` keyed by device id.
    /// Postures naming devices outside the schema are dropped here —
    /// [`FsmPolicy::evaluate`] ignores them too.
    rule_postures: Vec<Vec<(usize, crate::posture::Posture)>>,
    /// The feasible patterns flattened to `(rule index, mask, value)`
    /// so the per-state loop skips infeasible rules (which can never
    /// match) and streams two words per rule instead of a struct with
    /// a branch on `feasible`.
    feasible: Vec<(u32, u128, u128)>,
    memo: HashMap<RuleMask, u32, FxBuild>,
    /// One-entry cache in front of `memo`: consecutive states in
    /// odometer order usually trip the same rule set (only the low
    /// digits moved), and comparing four words in registers is far
    /// cheaper than probing a multi-megabyte hash table.
    last: Option<(RuleMask, u32)>,
    /// Per slot: the rules whose postures touch it. A slot's final
    /// posture is a pure function of `mask ∩ slot_affect[slot]` (rules
    /// accumulate per-slot independently), which is what makes the
    /// slot-decomposed memo below exact.
    slot_affect: Vec<RuleMask>,
    /// Per slot: sub-mask → index into `slot_postures[slot]`. Distinct
    /// per-slot outcomes number in the tens even when full classes
    /// number in the hundreds of thousands, so cold evaluation becomes
    /// one probe per slot — no posture merging, no map building.
    slot_memo: std::cell::RefCell<Vec<HashMap<RuleMask, u32, FxBuild>>>,
    /// Per slot: the interned final postures (baseline included),
    /// **deduplicated by value** — two sub-masks producing the same
    /// posture share one id, so classes compare exactly by their
    /// per-device id tuples.
    slot_postures: std::cell::RefCell<Vec<Vec<crate::posture::Posture>>>,
    /// Per schema position: the slot its device id resolves to (the
    /// *first* slot for duplicate ids, exactly as the id-keyed map in
    /// [`FsmPolicy::evaluate`] shares entries).
    resolved_slots: Vec<usize>,
    /// Schema positions in ascending-device-id order with duplicate ids
    /// removed — the iteration order of a materialized vector's
    /// `BTreeMap`, used to stream fingerprints straight from the
    /// interned slot postures.
    fp_order: Vec<(iotdev::device::DeviceId, usize)>,
    /// Class id → its per-position slot-posture ids, a fixed-stride
    /// arena (`stride == schema.devices.len()`). This *is* the class
    /// table: the full [`PostureVector`] materializes on demand.
    class_pids: Vec<u32>,
    /// Tuple hash → first class id; exact identity is the arena slice.
    tuple_index: HashMap<u64, u32, FxBuild>,
    /// `(tuple hash, class id)` pairs beyond the first per hash.
    tuple_overflow: Vec<(u64, u32)>,
    /// Scratch for the per-position ids of the class being interned.
    pid_scratch: Vec<u32>,
    /// Class id → fingerprint, cached at intern time so digests never
    /// re-fingerprint the class table.
    class_fps: Vec<u64>,
    /// Class id → "quiet" (all-allow) flag, cached for the same reason.
    class_quiet: Vec<bool>,
    lookups: u64,
    hits: u64,
}

impl<'a> MemoPolicy<'a> {
    /// Build the engine, or `None` when the schema does not pack into
    /// 127 bits or the policy exceeds [`MAX_MEMO_RULES`] rules.
    pub fn new(policy: &'a FsmPolicy) -> Option<MemoPolicy<'a>> {
        if policy.rules.len() > MAX_MEMO_RULES {
            return None;
        }
        let layout = PackedLayout::of(&policy.schema)?;
        let patterns: Vec<PackedPattern> = policy
            .rules
            .iter()
            .map(|r| PackedPattern::compile(&layout, &policy.schema, &r.pattern))
            .collect();
        let mut feasible: Vec<(u32, u128, u128)> = patterns
            .iter()
            .enumerate()
            .filter(|(_, pat)| pat.feasible)
            .map(|(i, pat)| (i as u32, pat.mask, pat.value))
            .collect();
        // Ascending by lowest constrained bit, so `mask_step` can stop
        // at the first pattern above the odometer's changed region
        // (unconstrained patterns sort last: trailing_zeros(0) == 128).
        feasible.sort_by_key(|(_, m, _)| m.trailing_zeros());
        let mut eval_order: Vec<u32> = (0..policy.rules.len() as u32).collect();
        eval_order.sort_by_key(|i| (policy.rules[*i as usize].priority, *i));
        let rule_postures: Vec<Vec<(usize, crate::posture::Posture)>> = policy
            .rules
            .iter()
            .map(|r| {
                r.postures
                    .iter()
                    .filter_map(|(dev, p)| {
                        policy.schema.device_slot(*dev).map(|slot| (slot, p.clone()))
                    })
                    .collect()
            })
            .collect();
        let n_slots = policy.schema.devices.len();
        let mut slot_affect = vec![RuleMask([0; 4]); n_slots];
        for (idx, postures) in rule_postures.iter().enumerate() {
            for (slot, _) in postures {
                slot_affect[*slot].set(idx);
            }
        }
        let resolved_slots: Vec<usize> = policy
            .schema
            .devices
            .iter()
            .map(|d| policy.schema.device_slot(d.id).expect("device is in its schema"))
            .collect();
        let mut fp_order: Vec<(iotdev::device::DeviceId, usize)> =
            policy.schema.devices.iter().enumerate().map(|(pos, d)| (d.id, pos)).collect();
        fp_order.sort_by_key(|(id, pos)| (*id, *pos));
        fp_order.dedup_by_key(|(id, _)| *id);
        Some(MemoPolicy {
            policy,
            layout,
            patterns,
            eval_order,
            rule_postures,
            feasible,
            memo: HashMap::default(),
            last: None,
            slot_affect,
            slot_memo: std::cell::RefCell::new(vec![HashMap::default(); n_slots]),
            slot_postures: std::cell::RefCell::new(vec![Vec::new(); n_slots]),
            resolved_slots,
            fp_order,
            class_pids: Vec::new(),
            tuple_index: HashMap::default(),
            tuple_overflow: Vec::new(),
            pid_scratch: Vec::new(),
            class_fps: Vec::new(),
            class_quiet: Vec::new(),
            lookups: 0,
            hits: 0,
        })
    }

    /// The underlying policy.
    pub fn policy(&self) -> &'a FsmPolicy {
        self.policy
    }

    /// The schema's packed layout.
    pub fn layout(&self) -> &PackedLayout {
        &self.layout
    }

    /// The rules' compiled patterns (policy order).
    pub fn patterns(&self) -> &[PackedPattern] {
        &self.patterns
    }

    /// `(lookups, memo hits)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.hits)
    }

    /// Number of distinct posture classes seen so far.
    pub fn class_count(&self) -> usize {
        self.class_fps.len()
    }

    /// The posture vector of class `id`, materialized from the
    /// slot-posture arena. Classes are stored as per-position id
    /// tuples; only callers that need the full vector pay for building
    /// one.
    pub fn class(&self, id: u32) -> PostureVector {
        let stride = self.resolved_slots.len();
        let start = id as usize * stride;
        self.materialize(&self.class_pids[start..start + stride])
    }

    /// Whether class `id` is the all-allow ("quiet") posture vector.
    pub fn is_quiet(&self, id: u32) -> bool {
        self.class_quiet[id as usize]
    }

    /// The cached fingerprint of class `id` (computed once at intern
    /// time).
    pub fn class_fingerprint(&self, id: u32) -> u64 {
        self.class_fps[id as usize]
    }

    /// The rule-match mask of `p`: one AND + CMP per feasible rule, no
    /// allocation. Infeasible patterns were dropped at build time —
    /// they match nothing, so their mask bits stay zero for free.
    #[inline]
    pub fn mask_of(&self, p: PackedState) -> RuleMask {
        let mut mask = RuleMask([0; 4]);
        for (i, m, v) in &self.feasible {
            if p.0 & m == *v {
                mask.set(*i as usize);
            }
        }
        mask
    }

    /// Re-test only the patterns whose mask intersects `changed` (the
    /// region reported by [`PackedLayout::next_masked`] for the step
    /// that produced `p`), updating `mask` in place. The feasible list
    /// is sorted by lowest constrained bit and `changed` is a
    /// contiguous run of low bits, so the first untouched pattern ends
    /// the scan — on a typical odometer step only the rules pinning
    /// the lowest digit are re-evaluated.
    #[inline]
    pub fn mask_step(&self, mask: &mut RuleMask, p: PackedState, changed: u128) {
        for (i, m, v) in &self.feasible {
            if m & changed == 0 {
                break;
            }
            if p.0 & m == *v {
                mask.set(*i as usize);
            } else {
                mask.clear(*i as usize);
            }
        }
    }

    /// The class id of `p`. Hot path: rule-mask computation (one AND +
    /// CMP per rule) and a last-mask check or one hash probe —
    /// allocation only on the first sighting of a new rule set.
    #[inline]
    pub fn class_of(&mut self, p: PackedState) -> u32 {
        let mask = self.mask_of(p);
        self.class_of_mask(mask)
    }

    /// [`MemoPolicy::class_of`] for a rule mask the caller already
    /// holds — the memo half of the hot path, used by sweeps that
    /// maintain the mask incrementally via [`MemoPolicy::mask_step`].
    #[inline]
    pub fn class_of_mask(&mut self, mask: RuleMask) -> u32 {
        self.lookups += 1;
        if let Some((last_mask, id)) = self.last {
            if last_mask == mask {
                self.hits += 1;
                return id;
            }
        }
        if let Some(&id) = self.memo.get(&mask) {
            self.hits += 1;
            self.last = Some((mask, id));
            return id;
        }
        let id = self.intern_rule_set(mask);
        self.memo.insert(mask, id);
        self.last = Some((mask, id));
        id
    }

    /// Evaluate `p` through the memo: same result as
    /// [`FsmPolicy::evaluate`] on the decoded state (differentially
    /// tested).
    pub fn evaluate(&mut self, p: PackedState) -> PostureVector {
        let id = self.class_of(p);
        self.class(id)
    }

    /// The per-position slot-posture ids of the class `mask` produces,
    /// written into `out`. This is the cold evaluation: one sub-mask
    /// probe per slot, with the actual posture folding happening only
    /// on the first sighting of a `(slot, sub-mask)` pair — a handful
    /// of times total, however many classes the sweep interns.
    fn pids_for_mask(&self, mask: RuleMask, out: &mut Vec<u32>) {
        out.clear();
        let mut slot_memo = self.slot_memo.borrow_mut();
        let mut slot_postures = self.slot_postures.borrow_mut();
        for &rslot in &self.resolved_slots {
            let sub = mask.and(&self.slot_affect[rslot]);
            let pid = match slot_memo[rslot].get(&sub) {
                Some(&pid) => pid,
                None => {
                    let p = self.merge_slot(rslot, sub);
                    // Dedup by value: two sub-masks with the same final
                    // posture share one id, so id-tuple equality is
                    // exactly posture-vector equality.
                    let pid = match slot_postures[rslot].iter().position(|q| *q == p) {
                        Some(existing) => existing as u32,
                        None => {
                            slot_postures[rslot].push(p);
                            (slot_postures[rslot].len() - 1) as u32
                        }
                    };
                    slot_memo[rslot].insert(sub, pid);
                    pid
                }
            };
            out.push(pid);
        }
    }

    /// Build the posture vector a rule-match set produces, exactly as
    /// [`FsmPolicy::evaluate`] does on any state matching that set. The
    /// cold half of [`MemoPolicy::class_of`], exposed so the parallel
    /// sweep can share cold results across workers without sharing the
    /// intern tables.
    pub fn posture_for_mask(&self, mask: RuleMask) -> PostureVector {
        let mut pids = Vec::with_capacity(self.resolved_slots.len());
        self.pids_for_mask(mask, &mut pids);
        self.materialize(&pids)
    }

    /// Materialize the full posture vector of a per-position id tuple.
    fn materialize(&self, pids: &[u32]) -> PostureVector {
        let slot_postures = self.slot_postures.borrow();
        let mut vec = PostureVector::new();
        for (pos, dev) in self.policy.schema.devices.iter().enumerate() {
            let win = &slot_postures[self.resolved_slots[pos]][pids[pos] as usize];
            if !win.is_allow() {
                vec.by_device.insert(dev.id, win.clone());
            }
        }
        vec
    }

    /// Cold half of the slot-decomposed memo: fold the rules in `sub`
    /// (a sub-mask of rules touching `slot`) over that slot alone, in
    /// evaluation order, then union in the baseline — the restriction
    /// of [`FsmPolicy::evaluate`]'s accumulator loop to one device.
    fn merge_slot(&self, slot: usize, sub: RuleMask) -> crate::posture::Posture {
        let mut acc = crate::posture::Posture::default();
        for idx in &self.eval_order {
            if !sub.contains(*idx as usize) {
                continue;
            }
            let rule = &self.policy.rules[*idx as usize];
            for (s, posture) in &self.rule_postures[*idx as usize] {
                if *s != slot {
                    continue;
                }
                if rule.override_lower {
                    acc = posture.clone();
                } else {
                    acc.merge(posture);
                }
            }
        }
        let mut out = self.policy.baseline.clone();
        out.merge(&acc);
        out
    }

    /// The fingerprint and quiet flag of an id tuple, streamed straight
    /// from the interned slot postures in ascending-device-id order —
    /// word-identical to materializing the vector and calling
    /// [`PostureVector::fingerprint`], without building the map.
    fn fp_of_pids(&self, pids: &[u32]) -> (u64, bool) {
        let slot_postures = self.slot_postures.borrow();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut quiet = true;
        for (dev, pos) in &self.fp_order {
            let win = &slot_postures[self.resolved_slots[*pos]][pids[*pos] as usize];
            if win.is_allow() {
                continue;
            }
            quiet = false;
            win.fingerprint_words(*dev, &mut |v: u64| {
                h ^= v;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            });
        }
        (h, quiet)
    }

    /// Cold path: resolve the rule set to its per-slot outcome tuple
    /// and intern it (fingerprint and quiet flag cached alongside). No
    /// posture vector is built — class identity is the tuple.
    fn intern_rule_set(&mut self, mask: RuleMask) -> u32 {
        let mut pids = std::mem::take(&mut self.pid_scratch);
        self.pids_for_mask(mask, &mut pids);
        let mut th = FxHasher::default();
        for &pid in &pids {
            th.write_u32(pid);
        }
        let th = th.finish();
        let stride = self.resolved_slots.len();
        let tuple_eq = |arena: &[u32], id: u32| -> bool {
            &arena[id as usize * stride..id as usize * stride + stride] == pids.as_slice()
        };
        let id = self.class_fps.len() as u32;
        match self.tuple_index.entry(th) {
            std::collections::hash_map::Entry::Occupied(first) => {
                let first = *first.get();
                if tuple_eq(&self.class_pids, first) {
                    self.pid_scratch = pids;
                    return first;
                }
                for (oth, oid) in &self.tuple_overflow {
                    if *oth == th && tuple_eq(&self.class_pids, *oid) {
                        let oid = *oid;
                        self.pid_scratch = pids;
                        return oid;
                    }
                }
                self.tuple_overflow.push((th, id));
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(id);
            }
        }
        self.class_pids.extend_from_slice(&pids);
        let (fp, quiet) = self.fp_of_pids(&pids);
        self.class_fps.push(fp);
        self.class_quiet.push(quiet);
        self.pid_scratch = pids;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::PolicyCompiler;
    use crate::context::SecurityContext;
    use crate::policy::{figure3_policy, StatePattern};
    use iotdev::device::{DeviceClass, DeviceId};
    use iotdev::env::EnvVar;
    use iotdev::vuln::Vulnerability;

    fn mixed_policy() -> FsmPolicy {
        let mut c = PolicyCompiler::new();
        c.device(DeviceId(0), DeviceClass::FireAlarm, &[]);
        c.device(DeviceId(1), DeviceClass::WindowActuator, &[Vulnerability::NoAuthControl]);
        c.device(DeviceId(2), DeviceClass::SmartPlug, &[]);
        c.env(EnvVar::Temperature); // 3-valued: a non-power-of-two radix
        c.env(EnvVar::Occupancy);
        c.protect_on_suspicion(DeviceId(0), DeviceId(1));
        c.gate_actuation(DeviceId(2), EnvVar::Occupancy, "present");
        c.build()
    }

    #[test]
    fn layout_size_matches_schema() {
        let policy = mixed_policy();
        let layout = PackedLayout::of(&policy.schema).unwrap();
        assert_eq!(layout.size(), policy.schema.size());
        assert!(layout.word_space() >= layout.size());
    }

    #[test]
    fn huge_schemas_refuse_to_pack() {
        let mut s = StateSchema::new();
        for i in 0..70 {
            s.add_device_with(DeviceId(i), DeviceClass::Camera, SecurityContext::ALL.to_vec());
        }
        // 70 devices × 2 bits = 140 bits > 127.
        assert!(PackedLayout::of(&s).is_none());
    }

    #[test]
    fn encode_decode_round_trips_over_the_whole_space() {
        let policy = mixed_policy();
        let layout = PackedLayout::of(&policy.schema).unwrap();
        for state in policy.schema.iter_states() {
            let p = layout.encode(&policy.schema, &state);
            assert_eq!(layout.decode(&policy.schema, p), state);
        }
    }

    #[test]
    fn packed_iteration_matches_legacy_order() {
        let policy = mixed_policy();
        let layout = PackedLayout::of(&policy.schema).unwrap();
        let mut cursor = Some(layout.first());
        let mut count: u128 = 0;
        for (rank, state) in policy.schema.iter_states().enumerate() {
            let p = cursor.expect("packed iteration ended early");
            assert_eq!(layout.decode(&policy.schema, p), state, "rank {rank}");
            assert_eq!(layout.rank(p), rank as u128);
            assert_eq!(layout.from_rank(rank as u128), p);
            cursor = layout.next(p);
            count += 1;
        }
        assert_eq!(cursor, None, "packed iteration must end with the legacy iterator");
        assert_eq!(count, layout.size());
    }

    #[test]
    fn successors_change_exactly_one_slot() {
        let policy = mixed_policy();
        let layout = PackedLayout::of(&policy.schema).unwrap();
        let p = layout.from_rank(7);
        let base = layout.decode(&policy.schema, p);
        let mut seen = std::collections::HashSet::new();
        let mut n = 0u64;
        layout.successors(p, |s| {
            let st = layout.decode(&policy.schema, s);
            let diff = st.contexts.iter().zip(&base.contexts).filter(|(a, b)| a != b).count()
                + st.env.iter().zip(&base.env).filter(|(a, b)| a != b).count();
            assert_eq!(diff, 1, "successor must differ in exactly one slot");
            assert!(seen.insert(s), "duplicate successor");
            n += 1;
        });
        let expected: u64 = policy
            .schema
            .devices
            .iter()
            .map(|d| d.contexts.len() as u64 - 1)
            .chain(policy.schema.env_vars.iter().map(|v| v.domain().len() as u64 - 1))
            .sum();
        assert_eq!(n, expected);
    }

    #[test]
    fn memo_matches_naive_evaluation_exhaustively() {
        let policy = mixed_policy();
        let mut memo = MemoPolicy::new(&policy).unwrap();
        let layout = memo.layout().clone();
        for state in policy.schema.iter_states() {
            let p = layout.encode(&policy.schema, &state);
            assert_eq!(memo.evaluate(p), policy.evaluate(&state), "state {state:?}");
        }
        let (lookups, hits) = memo.stats();
        assert_eq!(lookups, policy.schema.size() as u64);
        assert!(hits > lookups / 2, "memo must absorb repeated rule sets: {hits}/{lookups}");
        assert!(memo.class_count() >= 2);
    }

    #[test]
    fn packed_pattern_overlap_agrees_with_witness_search() {
        let policy = mixed_policy();
        let layout = PackedLayout::of(&policy.schema).unwrap();
        let pats: Vec<StatePattern> = vec![
            StatePattern::any(),
            StatePattern::any().context(DeviceId(0), SecurityContext::Suspicious),
            StatePattern::any().context(DeviceId(0), SecurityContext::Normal),
            StatePattern::any().env(EnvVar::Occupancy, "present"),
            StatePattern::any().context(DeviceId(99), SecurityContext::Normal), // infeasible
        ];
        let packed: Vec<PackedPattern> =
            pats.iter().map(|p| PackedPattern::compile(&layout, &policy.schema, p)).collect();
        for (i, a) in packed.iter().enumerate() {
            for (j, b) in packed.iter().enumerate() {
                let witness = policy.schema.iter_states().any(|s| {
                    pats[i].matches(&policy.schema, &s) && pats[j].matches(&policy.schema, &s)
                });
                assert_eq!(a.overlaps(b), witness, "patterns {i} and {j}");
            }
        }
    }

    #[test]
    fn infeasible_patterns_match_nothing() {
        let policy = figure3_policy(DeviceId(0), DeviceId(1));
        let layout = PackedLayout::of(&policy.schema).unwrap();
        let pat = PackedPattern::compile(
            &layout,
            &policy.schema,
            &StatePattern::any().env(EnvVar::Door, "locked"),
        );
        assert!(!pat.feasible);
        assert!(!pat.matches(layout.first()));
    }

    #[test]
    fn rule_cap_falls_back() {
        let mut c = PolicyCompiler::new();
        c.device(DeviceId(0), DeviceClass::Camera, &[]);
        let mut policy = c.build();
        for i in 0..(MAX_MEMO_RULES + 1) {
            policy.add_rule(crate::policy::PolicyRule::new(
                (i % 7) as u16,
                StatePattern::any(),
                DeviceId(0),
                crate::posture::Posture::of(crate::posture::SecurityModule::Mirror),
            ));
        }
        assert!(MemoPolicy::new(&policy).is_none());
    }
}
