//! `iotlearn` — the learning layer of IoTSec (paper §4).
//!
//! The paper's diagnosis: per-SKU honeypots cannot cover the IoT
//! long tail, and plain anomaly detection drowns in the diversity of
//! "normal". Its two proposals, both implemented here:
//!
//! * **Crowdsourced signatures (§4.1).** Deployments that observe an
//!   attack against a SKU publish a signature; others subscribed to the
//!   same SKU receive it. [`repo`] implements the anonymous
//!   publish–subscribe repository with the three defenses the paper
//!   sketches: contributor-priority notifications (incentives),
//!   reporter anonymization (privacy), and reputation + voting
//!   (data quality / poisoning resistance). [`signature`] defines the
//!   "common format" signatures are exchanged in, and the matchers the
//!   IDS µmbox executes.
//! * **Model-based interaction discovery (§4.2).** [`fuzz`] drives the
//!   abstract per-class device models from `iotdev::model` against a
//!   symbolic environment to discover cross-device interaction edges
//!   (random vs coverage-guided, experiment E5); [`attack_graph`] then
//!   searches those models plus vulnerability knowledge for multi-stage
//!   attacks — including the paper's smart-plug → AC-off → heat →
//!   window-open break-in chain (experiment E6).
//!
//! [`anomaly`] adds the behavioural baseline detector (per-device
//! profiles, optionally conditioned on environmental context) used by
//! experiment E12. Two future-work directions the paper gestures at are
//! also built: [`mine`] turns captured attack traffic into publishable
//! signatures (the privacy-preserving alternative to sharing raw
//! traces), and [`fingerprint`] identifies a device's SKU from passive
//! observation — the lookup key the whole repository is organized by.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod attack_graph;
pub mod fingerprint;
pub mod fuzz;
pub mod mine;
pub mod repo;
pub mod signature;

pub use anomaly::{AnomalyDetector, AnomalyVerdict};
pub use attack_graph::{AttackGraph, AttackPath, DeviceSpec};
pub use fingerprint::{Fingerprint, FingerprintDb};
pub use fuzz::{FuzzResult, InteractionEdge};
pub use mine::mine_signatures;
pub use repo::{RepoConfig, ReporterId, SignatureRepo};
pub use signature::{AttackSignature, Matcher, Severity};
