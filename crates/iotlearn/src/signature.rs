//! Attack signatures and their common exchange format.
//!
//! The paper's repository needs "traces or signatures, expressed in a
//! common format". A signature is SKU-scoped (the granularity §4 argues
//! honeypots cannot cover) and carries an executable [`Matcher`] the IDS
//! µmbox evaluates against wire packets. Signatures serialize to JSON via
//! [`AttackSignature::to_json`]/[`AttackSignature::from_json`] — that is
//! the wire format of the repository.

use iotdev::proto::{ports, tag, AppMessage, ControlAuth};
use iotdev::registry::Sku;
use iotnet::packet::{PackedHeaders, Packet};
use serde::{Deserialize, Serialize};

/// How bad a match is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Reconnaissance / policy-relevant but not directly harmful.
    Low,
    /// Credential abuse, data exposure.
    Medium,
    /// Actuation or takeover.
    High,
}

/// An executable packet predicate.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Matcher {
    /// A management login using specific (default) credentials.
    DefaultCredLogin {
        /// Username.
        user: String,
        /// Password.
        pass: String,
    },
    /// Any management-plane packet from outside RFC1918 space (exposed
    /// management interfaces are LAN services; WAN access is the attack).
    MgmtFromExternal,
    /// A control request authenticated by a known-leaked key.
    KeyAuthControl {
        /// The leaked key fingerprint.
        key: u64,
    },
    /// A control request with no authentication at all.
    UnauthenticatedControl,
    /// Any vendor-cloud command (the backdoor plane).
    CloudCommand,
    /// A recursive DNS query arriving from outside the LAN (reflection).
    RecursiveDnsFromExternal,
    /// Raw payload substring (the classic Snort-style content match).
    PayloadContains(
        /// The byte needle.
        Vec<u8>,
    ),
    /// Matches everything — only ever produced by malicious or broken
    /// reporters; the repository's data-quality defenses exist to keep
    /// this out (a published match-all signature is a denial of service).
    MatchAll,
}

impl Matcher {
    /// Evaluate against a wire packet.
    pub fn matches(&self, pkt: &Packet) -> bool {
        let msg = AppMessage::decode(&pkt.payload).ok();
        match self {
            Matcher::DefaultCredLogin { user, pass } => matches!(
                &msg,
                Some(AppMessage::MgmtLogin { user: u, pass: p }) if u == user && p == pass
            ),
            Matcher::MgmtFromExternal => {
                pkt.transport.dst_port() == ports::MGMT && !pkt.ip.src.is_private()
            }
            Matcher::KeyAuthControl { key } => matches!(
                &msg,
                Some(AppMessage::Control { auth: ControlAuth::Key(k), .. }) if k == key
            ),
            Matcher::UnauthenticatedControl => {
                matches!(&msg, Some(AppMessage::Control { auth: ControlAuth::None, .. }))
            }
            Matcher::CloudCommand => matches!(&msg, Some(AppMessage::CloudCommand { .. })),
            Matcher::RecursiveDnsFromExternal => {
                matches!(&msg, Some(AppMessage::DnsQuery { recursion: true, .. }))
                    && !pkt.ip.src.is_private()
            }
            Matcher::PayloadContains(needle) => {
                !needle.is_empty() && pkt.payload.windows(needle.len()).any(|w| w == &needle[..])
            }
            Matcher::MatchAll => true,
        }
    }

    /// Whether this matcher is plausibly selective (used as a cheap
    /// static screen by the repository: match-all and empty-needle
    /// matchers are flagged before any voting happens).
    pub fn is_selective(&self) -> bool {
        match self {
            Matcher::MatchAll => false,
            Matcher::PayloadContains(needle) => !needle.is_empty(),
            _ => true,
        }
    }

    /// The cheapest necessary condition for this matcher — the IDS runs it
    /// against the packed header words and the first payload byte before
    /// paying for a full [`AppMessage`] decode. See [`Prefilter`].
    pub fn prefilter(&self) -> Prefilter {
        match self {
            Matcher::DefaultCredLogin { .. } => Prefilter::Tag(tag::MGMT_LOGIN),
            Matcher::MgmtFromExternal => Prefilter::MgmtExternal,
            Matcher::KeyAuthControl { .. } => Prefilter::Tag(tag::CONTROL),
            Matcher::UnauthenticatedControl => Prefilter::Tag(tag::CONTROL),
            Matcher::CloudCommand => Prefilter::Tag(tag::CLOUD_COMMAND),
            Matcher::RecursiveDnsFromExternal => Prefilter::TagAndExternalSrc(tag::DNS_QUERY),
            Matcher::PayloadContains(_) | Matcher::MatchAll => Prefilter::Always,
        }
    }
}

/// A constant-time *necessary* condition for [`Matcher::matches`], checked
/// against the packed header words ([`PackedHeaders`]) and the first
/// payload byte — no decode, no allocation.
///
/// Soundness rests on the wire format: [`AppMessage::encode`] writes the
/// variant's tag byte first, so a successful decode to variant `V` implies
/// `payload[0] == tag(V)`. A prefilter may therefore *admit* packets the
/// full matcher rejects (it is a screen, not a decision), but it never
/// rejects a packet the matcher would flag — the IDS still runs the full
/// matcher on admitted packets, keeping counters and security events
/// byte-identical to an unscreened run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prefilter {
    /// Payload must start with this [`AppMessage`] wire tag.
    Tag(u8),
    /// Wire tag plus a non-RFC1918 source address.
    TagAndExternalSrc(u8),
    /// Management-port destination and a non-RFC1918 source (the matcher
    /// never decodes, so neither does the screen).
    MgmtExternal,
    /// No cheap screen exists — always run the full matcher.
    Always,
}

impl Prefilter {
    /// Whether the packet survives the screen and the full matcher must run.
    #[inline]
    pub fn admits(&self, headers: &PackedHeaders, payload: &[u8]) -> bool {
        match *self {
            Prefilter::Tag(t) => payload.first() == Some(&t),
            Prefilter::TagAndExternalSrc(t) => {
                payload.first() == Some(&t) && !headers.ip_src().is_private()
            }
            Prefilter::MgmtExternal => {
                headers.dst_port() == ports::MGMT && !headers.ip_src().is_private()
            }
            Prefilter::Always => true,
        }
    }
}

/// A SKU-scoped attack signature — the unit the repository exchanges.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttackSignature {
    /// Repository-assigned id (0 until published).
    pub id: u64,
    /// The SKU it applies to.
    pub sku: Sku,
    /// The vulnerability class it flags (`Vulnerability::id` string).
    pub vuln_id: String,
    /// The executable matcher.
    pub matcher: Matcher,
    /// Severity of a match.
    pub severity: Severity,
}

impl AttackSignature {
    /// Construct an (unpublished) signature.
    pub fn new(sku: Sku, vuln_id: &str, matcher: Matcher, severity: Severity) -> AttackSignature {
        AttackSignature { id: 0, sku, vuln_id: vuln_id.into(), matcher, severity }
    }

    /// The canonical signature set for one of the seven Table 1 rows —
    /// what an honest deployment that observed the exploit would publish.
    pub fn for_table1_row(row: u8, sku: &Sku) -> Option<AttackSignature> {
        let sig = match row {
            1 => AttackSignature::new(
                sku.clone(),
                "default-credentials",
                Matcher::DefaultCredLogin { user: "admin".into(), pass: "admin".into() },
                Severity::Medium,
            ),
            2 | 3 => AttackSignature::new(
                sku.clone(),
                "open-mgmt-access",
                Matcher::MgmtFromExternal,
                Severity::Medium,
            ),
            4 => AttackSignature::new(
                sku.clone(),
                "exposed-key-pair",
                Matcher::KeyAuthControl { key: 0x5eed_c0de_5eed_c0de },
                Severity::High,
            ),
            5 => AttackSignature::new(
                sku.clone(),
                "no-auth-control",
                Matcher::UnauthenticatedControl,
                Severity::High,
            ),
            6 => AttackSignature::new(
                sku.clone(),
                "open-dns-resolver",
                Matcher::RecursiveDnsFromExternal,
                Severity::Medium,
            ),
            7 => AttackSignature::new(
                sku.clone(),
                "cloud-bypass-backdoor",
                Matcher::CloudCommand,
                Severity::High,
            ),
            _ => return None,
        };
        Some(sig)
    }

    /// Serialize to the repository's JSON wire format.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str(&format!("{{\"id\":{},\"sku\":{{", self.id));
        out.push_str(&format!(
            "\"vendor\":{},\"model\":{},\"firmware\":{}",
            json::string(&self.sku.vendor),
            json::string(&self.sku.model),
            json::string(&self.sku.firmware)
        ));
        out.push_str(&format!("}},\"vuln_id\":{},\"matcher\":", json::string(&self.vuln_id)));
        match &self.matcher {
            Matcher::DefaultCredLogin { user, pass } => out.push_str(&format!(
                "{{\"kind\":\"DefaultCredLogin\",\"user\":{},\"pass\":{}}}",
                json::string(user),
                json::string(pass)
            )),
            Matcher::MgmtFromExternal => out.push_str("{\"kind\":\"MgmtFromExternal\"}"),
            Matcher::KeyAuthControl { key } => {
                out.push_str(&format!("{{\"kind\":\"KeyAuthControl\",\"key\":{key}}}"))
            }
            Matcher::UnauthenticatedControl => {
                out.push_str("{\"kind\":\"UnauthenticatedControl\"}")
            }
            Matcher::CloudCommand => out.push_str("{\"kind\":\"CloudCommand\"}"),
            Matcher::RecursiveDnsFromExternal => {
                out.push_str("{\"kind\":\"RecursiveDnsFromExternal\"}")
            }
            Matcher::PayloadContains(needle) => {
                let bytes: Vec<String> = needle.iter().map(|b| b.to_string()).collect();
                out.push_str(&format!(
                    "{{\"kind\":\"PayloadContains\",\"needle\":[{}]}}",
                    bytes.join(",")
                ));
            }
            Matcher::MatchAll => out.push_str("{\"kind\":\"MatchAll\"}"),
        }
        let sev = match self.severity {
            Severity::Low => "Low",
            Severity::Medium => "Medium",
            Severity::High => "High",
        };
        out.push_str(&format!(",\"severity\":\"{sev}\"}}"));
        out
    }

    /// Parse the repository's JSON wire format.
    pub fn from_json(text: &str) -> Result<AttackSignature, String> {
        json::parse_signature(text)
    }
}

/// Minimal JSON writer/parser for the signature wire format. serde here is
/// a compile-only marker shim (crates/shims/README.md), so the one format
/// the repository actually exchanges is hand-rolled and schema-specific.
mod json {
    use super::{AttackSignature, Matcher, Severity};
    use iotdev::registry::Sku;

    /// Escape and quote a string.
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    struct Parser<'a> {
        s: &'a [u8],
        i: usize,
    }

    impl<'a> Parser<'a> {
        fn ws(&mut self) {
            while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }

        fn eat(&mut self, c: u8) -> Result<(), String> {
            self.ws();
            if self.i < self.s.len() && self.s[self.i] == c {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", c as char, self.i))
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.ws();
            self.s.get(self.i).copied()
        }

        fn str_val(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                let b = *self.s.get(self.i).ok_or("unterminated string")?;
                self.i += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let e = *self.s.get(self.i).ok_or("bad escape")?;
                        self.i += 1;
                        match e {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let hex =
                                    self.s.get(self.i..self.i + 4).ok_or("short \\u escape")?;
                                self.i += 4;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            }
                            _ => return Err("unknown escape".into()),
                        }
                    }
                    b => {
                        // Re-assemble multi-byte UTF-8 sequences.
                        let len = match b {
                            0x00..=0x7f => 1,
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            _ => 4,
                        };
                        let start = self.i - 1;
                        self.i = start + len;
                        let chunk = self.s.get(start..self.i).ok_or("truncated utf8")?;
                        out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    }
                }
            }
        }

        fn u64_val(&mut self) -> Result<u64, String> {
            self.ws();
            let start = self.i;
            while self.i < self.s.len() && self.s[self.i].is_ascii_digit() {
                self.i += 1;
            }
            if start == self.i {
                return Err(format!("expected number at byte {start}"));
            }
            std::str::from_utf8(&self.s[start..self.i])
                .map_err(|e| e.to_string())?
                .parse()
                .map_err(|e: std::num::ParseIntError| e.to_string())
        }

        /// Iterate `key: value` pairs of an object, dispatching on key.
        fn object(
            &mut self,
            mut field: impl FnMut(&mut Parser<'a>, &str) -> Result<(), String>,
        ) -> Result<(), String> {
            self.eat(b'{')?;
            if self.peek() == Some(b'}') {
                self.i += 1;
                return Ok(());
            }
            loop {
                let key = self.str_val()?;
                self.eat(b':')?;
                field(self, &key)?;
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
                }
            }
        }
    }

    fn sku(p: &mut Parser<'_>) -> Result<Sku, String> {
        let (mut vendor, mut model, mut firmware) = (None, None, None);
        p.object(|p, key| {
            let v = p.str_val()?;
            match key {
                "vendor" => vendor = Some(v),
                "model" => model = Some(v),
                "firmware" => firmware = Some(v),
                _ => return Err(format!("unknown sku field {key:?}")),
            }
            Ok(())
        })?;
        Ok(Sku {
            vendor: vendor.ok_or("sku missing vendor")?,
            model: model.ok_or("sku missing model")?,
            firmware: firmware.ok_or("sku missing firmware")?,
        })
    }

    fn matcher(p: &mut Parser<'_>) -> Result<Matcher, String> {
        let mut kind = None;
        let (mut user, mut pass, mut key, mut needle) = (None, None, None, None);
        p.object(|p, field| {
            match field {
                "kind" => kind = Some(p.str_val()?),
                "user" => user = Some(p.str_val()?),
                "pass" => pass = Some(p.str_val()?),
                "key" => key = Some(p.u64_val()?),
                "needle" => {
                    let mut bytes = Vec::new();
                    p.eat(b'[')?;
                    if p.peek() == Some(b']') {
                        p.i += 1;
                    } else {
                        loop {
                            let b = p.u64_val()?;
                            bytes.push(u8::try_from(b).map_err(|e| e.to_string())?);
                            match p.peek() {
                                Some(b',') => p.i += 1,
                                Some(b']') => {
                                    p.i += 1;
                                    break;
                                }
                                _ => return Err("bad needle array".into()),
                            }
                        }
                    }
                    needle = Some(bytes);
                }
                _ => return Err(format!("unknown matcher field {field:?}")),
            }
            Ok(())
        })?;
        match kind.as_deref().ok_or("matcher missing kind")? {
            "DefaultCredLogin" => Ok(Matcher::DefaultCredLogin {
                user: user.ok_or("DefaultCredLogin missing user")?,
                pass: pass.ok_or("DefaultCredLogin missing pass")?,
            }),
            "MgmtFromExternal" => Ok(Matcher::MgmtFromExternal),
            "KeyAuthControl" => {
                Ok(Matcher::KeyAuthControl { key: key.ok_or("KeyAuthControl missing key")? })
            }
            "UnauthenticatedControl" => Ok(Matcher::UnauthenticatedControl),
            "CloudCommand" => Ok(Matcher::CloudCommand),
            "RecursiveDnsFromExternal" => Ok(Matcher::RecursiveDnsFromExternal),
            "PayloadContains" => {
                Ok(Matcher::PayloadContains(needle.ok_or("PayloadContains missing needle")?))
            }
            "MatchAll" => Ok(Matcher::MatchAll),
            other => Err(format!("unknown matcher kind {other:?}")),
        }
    }

    pub fn parse_signature(text: &str) -> Result<AttackSignature, String> {
        let mut p = Parser { s: text.as_bytes(), i: 0 };
        let (mut id, mut sig_sku, mut vuln_id, mut m, mut severity) =
            (None, None, None, None, None);
        p.object(|p, field| {
            match field {
                "id" => id = Some(p.u64_val()?),
                "sku" => sig_sku = Some(sku(p)?),
                "vuln_id" => vuln_id = Some(p.str_val()?),
                "matcher" => m = Some(matcher(p)?),
                "severity" => {
                    severity = Some(match p.str_val()?.as_str() {
                        "Low" => Severity::Low,
                        "Medium" => Severity::Medium,
                        "High" => Severity::High,
                        other => return Err(format!("unknown severity {other:?}")),
                    })
                }
                _ => return Err(format!("unknown signature field {field:?}")),
            }
            Ok(())
        })?;
        p.ws();
        if p.i != p.s.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(AttackSignature {
            id: id.ok_or("signature missing id")?,
            sku: sig_sku.ok_or("signature missing sku")?,
            vuln_id: vuln_id.ok_or("signature missing vuln_id")?,
            matcher: m.ok_or("signature missing matcher")?,
            severity: severity.ok_or("signature missing severity")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotdev::proto::ControlAction;
    use iotnet::addr::{Ipv4Addr, MacAddr};
    use iotnet::packet::TransportHeader;

    fn pkt_with(src: Ipv4Addr, dst_port: u16, msg: &AppMessage) -> Packet {
        Packet::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            src,
            Ipv4Addr::new(10, 0, 0, 5),
            TransportHeader::udp(4000, dst_port),
            msg.encode(),
        )
    }

    const LAN: Ipv4Addr = Ipv4Addr([10, 0, 0, 9]);
    const WAN: Ipv4Addr = Ipv4Addr([100, 64, 0, 9]);

    #[test]
    fn default_cred_matcher() {
        let m = Matcher::DefaultCredLogin { user: "admin".into(), pass: "admin".into() };
        let hit = pkt_with(
            WAN,
            ports::MGMT,
            &AppMessage::MgmtLogin { user: "admin".into(), pass: "admin".into() },
        );
        let miss = pkt_with(
            WAN,
            ports::MGMT,
            &AppMessage::MgmtLogin { user: "owner".into(), pass: "x".into() },
        );
        assert!(m.matches(&hit));
        assert!(!m.matches(&miss));
    }

    #[test]
    fn mgmt_from_external_only_flags_wan() {
        let m = Matcher::MgmtFromExternal;
        let msg = AppMessage::MgmtLogin { user: "a".into(), pass: "b".into() };
        assert!(m.matches(&pkt_with(WAN, ports::MGMT, &msg)));
        assert!(!m.matches(&pkt_with(LAN, ports::MGMT, &msg)));
        // Non-mgmt plane from WAN: not this matcher's business.
        assert!(!m.matches(&pkt_with(WAN, ports::CONTROL, &msg)));
    }

    #[test]
    fn key_and_unauth_control_matchers() {
        let key = Matcher::KeyAuthControl { key: 42 };
        let unauth = Matcher::UnauthenticatedControl;
        let with_key = pkt_with(
            WAN,
            ports::CONTROL,
            &AppMessage::Control { action: ControlAction::Open, auth: ControlAuth::Key(42) },
        );
        let with_none = pkt_with(
            WAN,
            ports::CONTROL,
            &AppMessage::Control { action: ControlAction::Open, auth: ControlAuth::None },
        );
        assert!(key.matches(&with_key));
        assert!(!key.matches(&with_none));
        assert!(unauth.matches(&with_none));
        assert!(!unauth.matches(&with_key));
    }

    #[test]
    fn dns_matcher_requires_external_and_recursion() {
        let m = Matcher::RecursiveDnsFromExternal;
        let q = AppMessage::DnsQuery { name: "x.example".into(), recursion: true };
        let q_no_rec = AppMessage::DnsQuery { name: "x.example".into(), recursion: false };
        assert!(m.matches(&pkt_with(WAN, ports::DNS, &q)));
        assert!(!m.matches(&pkt_with(LAN, ports::DNS, &q)));
        assert!(!m.matches(&pkt_with(WAN, ports::DNS, &q_no_rec)));
    }

    #[test]
    fn payload_contains_and_selectivity() {
        let m = Matcher::PayloadContains(b"admin".to_vec());
        let hit = pkt_with(
            WAN,
            ports::MGMT,
            &AppMessage::MgmtLogin { user: "admin".into(), pass: "x".into() },
        );
        assert!(m.matches(&hit));
        assert!(m.is_selective());
        assert!(!Matcher::MatchAll.is_selective());
        assert!(!Matcher::PayloadContains(vec![]).is_selective());
        assert!(!Matcher::PayloadContains(vec![]).matches(&hit));
        assert!(Matcher::MatchAll.matches(&hit));
    }

    #[test]
    fn prefilter_admits_whenever_matcher_fires() {
        // The screen is a necessary condition: over every matcher × a
        // battery of packets (hits and misses alike), matches ⇒ admits.
        let matchers = vec![
            Matcher::DefaultCredLogin { user: "admin".into(), pass: "admin".into() },
            Matcher::MgmtFromExternal,
            Matcher::KeyAuthControl { key: 42 },
            Matcher::UnauthenticatedControl,
            Matcher::CloudCommand,
            Matcher::RecursiveDnsFromExternal,
            Matcher::PayloadContains(b"admin".to_vec()),
            Matcher::MatchAll,
        ];
        let msgs = vec![
            AppMessage::MgmtLogin { user: "admin".into(), pass: "admin".into() },
            AppMessage::MgmtLogin { user: "owner".into(), pass: "x".into() },
            AppMessage::Control { action: ControlAction::Open, auth: ControlAuth::Key(42) },
            AppMessage::Control { action: ControlAction::Open, auth: ControlAuth::None },
            AppMessage::CloudCommand { action: ControlAction::Open },
            AppMessage::DnsQuery { name: "x.example".into(), recursion: true },
            AppMessage::DnsQuery { name: "x.example".into(), recursion: false },
            AppMessage::Telemetry { kind: iotdev::proto::TelemetryKind::Power, value: 2.0 },
        ];
        let mut packets = Vec::new();
        for msg in &msgs {
            for src in [LAN, WAN] {
                for port in [ports::MGMT, ports::CONTROL, ports::DNS, ports::CLOUD] {
                    packets.push(pkt_with(src, port, msg));
                }
            }
        }
        // Undecodable payloads exercise the same implication trivially.
        let mut garbled = pkt_with(WAN, ports::MGMT, &msgs[0]);
        garbled.payload = bytes::Bytes::from_static(b"\xff junk");
        packets.push(garbled);
        let mut fired = 0;
        for m in &matchers {
            let pf = m.prefilter();
            for p in &packets {
                if m.matches(p) {
                    fired += 1;
                    assert!(
                        pf.admits(&p.packed_headers(), &p.payload),
                        "{m:?} matched a packet its prefilter rejected"
                    );
                }
            }
        }
        assert!(fired > 10, "battery too weak: only {fired} matcher hits");
    }

    #[test]
    fn table1_signature_set_is_complete() {
        let sku = Sku::new("v", "m", "1");
        for row in 1..=7 {
            let sig = AttackSignature::for_table1_row(row, &sku).unwrap();
            assert!(sig.matcher.is_selective(), "row {row}");
        }
        assert!(AttackSignature::for_table1_row(8, &sku).is_none());
    }

    #[test]
    fn signatures_serialize_to_the_common_format() {
        let sku = Sku::new("belkin", "wemo", "1.0");
        for row in 1..=7 {
            let sig = AttackSignature::for_table1_row(row, &sku).unwrap();
            let json = sig.to_json();
            let back = AttackSignature::from_json(&json).unwrap();
            assert_eq!(sig, back, "row {row}: {json}");
        }
        // Escapes and raw payload bytes survive the trip too.
        let tricky = AttackSignature::new(
            Sku::new("acme \"iot\"", "λ-hub", "2.0\n"),
            "payload\\path",
            Matcher::PayloadContains(vec![0, 34, 92, 255]),
            Severity::Low,
        );
        assert_eq!(AttackSignature::from_json(&tricky.to_json()).unwrap(), tricky);
        assert!(AttackSignature::from_json("{\"id\":1}").is_err());
    }
}
