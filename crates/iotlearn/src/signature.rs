//! Attack signatures and their common exchange format.
//!
//! The paper's repository needs "traces or signatures, expressed in a
//! common format". A signature is SKU-scoped (the granularity §4 argues
//! honeypots cannot cover) and carries an executable [`Matcher`] the IDS
//! µmbox evaluates against wire packets. Signatures serialize to JSON via
//! serde — that is the wire format of the repository.

use iotdev::proto::{ports, AppMessage, ControlAuth};
use iotdev::registry::Sku;
use iotnet::packet::Packet;
use serde::{Deserialize, Serialize};

/// How bad a match is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Reconnaissance / policy-relevant but not directly harmful.
    Low,
    /// Credential abuse, data exposure.
    Medium,
    /// Actuation or takeover.
    High,
}

/// An executable packet predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Matcher {
    /// A management login using specific (default) credentials.
    DefaultCredLogin {
        /// Username.
        user: String,
        /// Password.
        pass: String,
    },
    /// Any management-plane packet from outside RFC1918 space (exposed
    /// management interfaces are LAN services; WAN access is the attack).
    MgmtFromExternal,
    /// A control request authenticated by a known-leaked key.
    KeyAuthControl {
        /// The leaked key fingerprint.
        key: u64,
    },
    /// A control request with no authentication at all.
    UnauthenticatedControl,
    /// Any vendor-cloud command (the backdoor plane).
    CloudCommand,
    /// A recursive DNS query arriving from outside the LAN (reflection).
    RecursiveDnsFromExternal,
    /// Raw payload substring (the classic Snort-style content match).
    PayloadContains(
        /// The byte needle.
        Vec<u8>,
    ),
    /// Matches everything — only ever produced by malicious or broken
    /// reporters; the repository's data-quality defenses exist to keep
    /// this out (a published match-all signature is a denial of service).
    MatchAll,
}

impl Matcher {
    /// Evaluate against a wire packet.
    pub fn matches(&self, pkt: &Packet) -> bool {
        let msg = AppMessage::decode(&pkt.payload).ok();
        match self {
            Matcher::DefaultCredLogin { user, pass } => matches!(
                &msg,
                Some(AppMessage::MgmtLogin { user: u, pass: p }) if u == user && p == pass
            ),
            Matcher::MgmtFromExternal => {
                pkt.transport.dst_port() == ports::MGMT && !pkt.ip.src.is_private()
            }
            Matcher::KeyAuthControl { key } => matches!(
                &msg,
                Some(AppMessage::Control { auth: ControlAuth::Key(k), .. }) if k == key
            ),
            Matcher::UnauthenticatedControl => {
                matches!(&msg, Some(AppMessage::Control { auth: ControlAuth::None, .. }))
            }
            Matcher::CloudCommand => matches!(&msg, Some(AppMessage::CloudCommand { .. })),
            Matcher::RecursiveDnsFromExternal => {
                matches!(&msg, Some(AppMessage::DnsQuery { recursion: true, .. }))
                    && !pkt.ip.src.is_private()
            }
            Matcher::PayloadContains(needle) => {
                !needle.is_empty()
                    && pkt.payload.windows(needle.len()).any(|w| w == &needle[..])
            }
            Matcher::MatchAll => true,
        }
    }

    /// Whether this matcher is plausibly selective (used as a cheap
    /// static screen by the repository: match-all and empty-needle
    /// matchers are flagged before any voting happens).
    pub fn is_selective(&self) -> bool {
        match self {
            Matcher::MatchAll => false,
            Matcher::PayloadContains(needle) => !needle.is_empty(),
            _ => true,
        }
    }
}

/// A SKU-scoped attack signature — the unit the repository exchanges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackSignature {
    /// Repository-assigned id (0 until published).
    pub id: u64,
    /// The SKU it applies to.
    pub sku: Sku,
    /// The vulnerability class it flags (`Vulnerability::id` string).
    pub vuln_id: String,
    /// The executable matcher.
    pub matcher: Matcher,
    /// Severity of a match.
    pub severity: Severity,
}

impl AttackSignature {
    /// Construct an (unpublished) signature.
    pub fn new(sku: Sku, vuln_id: &str, matcher: Matcher, severity: Severity) -> AttackSignature {
        AttackSignature { id: 0, sku, vuln_id: vuln_id.into(), matcher, severity }
    }

    /// The canonical signature set for one of the seven Table 1 rows —
    /// what an honest deployment that observed the exploit would publish.
    pub fn for_table1_row(row: u8, sku: &Sku) -> Option<AttackSignature> {
        let sig = match row {
            1 => AttackSignature::new(
                sku.clone(),
                "default-credentials",
                Matcher::DefaultCredLogin { user: "admin".into(), pass: "admin".into() },
                Severity::Medium,
            ),
            2 | 3 => AttackSignature::new(
                sku.clone(),
                "open-mgmt-access",
                Matcher::MgmtFromExternal,
                Severity::Medium,
            ),
            4 => AttackSignature::new(
                sku.clone(),
                "exposed-key-pair",
                Matcher::KeyAuthControl { key: 0x5eed_c0de_5eed_c0de },
                Severity::High,
            ),
            5 => AttackSignature::new(
                sku.clone(),
                "no-auth-control",
                Matcher::UnauthenticatedControl,
                Severity::High,
            ),
            6 => AttackSignature::new(
                sku.clone(),
                "open-dns-resolver",
                Matcher::RecursiveDnsFromExternal,
                Severity::Medium,
            ),
            7 => AttackSignature::new(
                sku.clone(),
                "cloud-bypass-backdoor",
                Matcher::CloudCommand,
                Severity::High,
            ),
            _ => return None,
        };
        Some(sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotdev::proto::ControlAction;
    use iotnet::addr::{Ipv4Addr, MacAddr};
    use iotnet::packet::TransportHeader;

    fn pkt_with(src: Ipv4Addr, dst_port: u16, msg: &AppMessage) -> Packet {
        Packet::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            src,
            Ipv4Addr::new(10, 0, 0, 5),
            TransportHeader::udp(4000, dst_port),
            msg.encode(),
        )
    }

    const LAN: Ipv4Addr = Ipv4Addr([10, 0, 0, 9]);
    const WAN: Ipv4Addr = Ipv4Addr([100, 64, 0, 9]);

    #[test]
    fn default_cred_matcher() {
        let m = Matcher::DefaultCredLogin { user: "admin".into(), pass: "admin".into() };
        let hit = pkt_with(WAN, ports::MGMT, &AppMessage::MgmtLogin { user: "admin".into(), pass: "admin".into() });
        let miss = pkt_with(WAN, ports::MGMT, &AppMessage::MgmtLogin { user: "owner".into(), pass: "x".into() });
        assert!(m.matches(&hit));
        assert!(!m.matches(&miss));
    }

    #[test]
    fn mgmt_from_external_only_flags_wan() {
        let m = Matcher::MgmtFromExternal;
        let msg = AppMessage::MgmtLogin { user: "a".into(), pass: "b".into() };
        assert!(m.matches(&pkt_with(WAN, ports::MGMT, &msg)));
        assert!(!m.matches(&pkt_with(LAN, ports::MGMT, &msg)));
        // Non-mgmt plane from WAN: not this matcher's business.
        assert!(!m.matches(&pkt_with(WAN, ports::CONTROL, &msg)));
    }

    #[test]
    fn key_and_unauth_control_matchers() {
        let key = Matcher::KeyAuthControl { key: 42 };
        let unauth = Matcher::UnauthenticatedControl;
        let with_key = pkt_with(
            WAN,
            ports::CONTROL,
            &AppMessage::Control { action: ControlAction::Open, auth: ControlAuth::Key(42) },
        );
        let with_none = pkt_with(
            WAN,
            ports::CONTROL,
            &AppMessage::Control { action: ControlAction::Open, auth: ControlAuth::None },
        );
        assert!(key.matches(&with_key));
        assert!(!key.matches(&with_none));
        assert!(unauth.matches(&with_none));
        assert!(!unauth.matches(&with_key));
    }

    #[test]
    fn dns_matcher_requires_external_and_recursion() {
        let m = Matcher::RecursiveDnsFromExternal;
        let q = AppMessage::DnsQuery { name: "x.example".into(), recursion: true };
        let q_no_rec = AppMessage::DnsQuery { name: "x.example".into(), recursion: false };
        assert!(m.matches(&pkt_with(WAN, ports::DNS, &q)));
        assert!(!m.matches(&pkt_with(LAN, ports::DNS, &q)));
        assert!(!m.matches(&pkt_with(WAN, ports::DNS, &q_no_rec)));
    }

    #[test]
    fn payload_contains_and_selectivity() {
        let m = Matcher::PayloadContains(b"admin".to_vec());
        let hit = pkt_with(WAN, ports::MGMT, &AppMessage::MgmtLogin { user: "admin".into(), pass: "x".into() });
        assert!(m.matches(&hit));
        assert!(m.is_selective());
        assert!(!Matcher::MatchAll.is_selective());
        assert!(!Matcher::PayloadContains(vec![]).is_selective());
        assert!(!Matcher::PayloadContains(vec![]).matches(&hit));
        assert!(Matcher::MatchAll.matches(&hit));
    }

    #[test]
    fn table1_signature_set_is_complete() {
        let sku = Sku::new("v", "m", "1");
        for row in 1..=7 {
            let sig = AttackSignature::for_table1_row(row, &sku).unwrap();
            assert!(sig.matcher.is_selective(), "row {row}");
        }
        assert!(AttackSignature::for_table1_row(8, &sku).is_none());
    }

    #[test]
    fn signatures_serialize_to_the_common_format() {
        let sku = Sku::new("belkin", "wemo", "1.0");
        let sig = AttackSignature::for_table1_row(6, &sku).unwrap();
        let json = serde_json::to_string(&sig).unwrap();
        let back: AttackSignature = serde_json::from_str(&json).unwrap();
        assert_eq!(sig, back);
    }
}
