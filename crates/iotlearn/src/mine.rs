//! Signature mining: from captured attack traffic to a publishable
//! signature.
//!
//! §4.1 says users "could publish traces or signatures". Publishing raw
//! traces leaks private data (the paper's privacy concern), so the
//! practical pipeline is: capture the attack window locally, *mine* a
//! selective matcher from it, publish only the matcher. This module is
//! that miner. It recognizes the behavioural fingerprints of the Table 1
//! exploit classes in wire traffic and emits the corresponding
//! [`Matcher`] — the concrete realization of "traces, expressed in a
//! common format".

use crate::signature::{AttackSignature, Matcher, Severity};
use iotdev::proto::{ports, AppMessage, ControlAuth};
use iotdev::registry::Sku;
use iotnet::packet::Packet;
use std::collections::{BTreeMap, BTreeSet};

/// How many distinct external sources must exhibit a pattern before the
/// miner treats a *login* as a credential-stuffing signature rather than
/// a fat-fingered owner. Single-shot control/cloud/DNS abuse is mined
/// immediately — one unauthenticated actuation is already an attack.
const LOGIN_SOURCES_THRESHOLD: usize = 1;

/// Mine signatures from a captured attack window.
///
/// The miner is deliberately conservative: it only emits matchers that
/// are selective by construction (never a match-all), and it
/// deduplicates. The capture should cover the attack window — in the
/// platform this is the mirror tap's contents or the switch capture
/// buffer.
pub fn mine_signatures(capture: &[Packet], sku: &Sku) -> Vec<AttackSignature> {
    let mut out: Vec<AttackSignature> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut push = |sig: AttackSignature| {
        let key = format!("{:?}", sig.matcher);
        if seen.insert(key) {
            out.push(sig);
        }
    };

    // Credential-guessing: the same (user, pass) tried from external
    // sources. Mined as a DefaultCredLogin matcher for the *successful*
    // credentials if any login from an external source got an OK — the
    // burned-in default. Otherwise, repeated denials from one source are
    // brute-force, which the proxy/challenger handles without needing a
    // signature.
    let mut login_attempts: BTreeMap<(String, String), BTreeSet<[u8; 4]>> = BTreeMap::new();
    for pkt in capture {
        let Ok(msg) = AppMessage::decode(&pkt.payload) else { continue };
        let external = !pkt.ip.src.is_private();
        match msg {
            AppMessage::MgmtLogin { user, pass } if external => {
                login_attempts.entry((user, pass)).or_default().insert(pkt.ip.src.0);
            }
            AppMessage::Control { auth, .. } if external => match auth {
                ControlAuth::None => push(AttackSignature::new(
                    sku.clone(),
                    "no-auth-control",
                    Matcher::UnauthenticatedControl,
                    Severity::High,
                )),
                ControlAuth::Key(key) => push(AttackSignature::new(
                    sku.clone(),
                    "exposed-key-pair",
                    Matcher::KeyAuthControl { key },
                    Severity::High,
                )),
                _ => {}
            },
            AppMessage::CloudCommand { .. } if external => push(AttackSignature::new(
                sku.clone(),
                "cloud-bypass-backdoor",
                Matcher::CloudCommand,
                Severity::High,
            )),
            AppMessage::DnsQuery { recursion: true, .. } if external => {
                push(AttackSignature::new(
                    sku.clone(),
                    "open-dns-resolver",
                    Matcher::RecursiveDnsFromExternal,
                    Severity::Medium,
                ));
            }
            // Management *commands* from external sources indicate an
            // exposed management interface.
            AppMessage::MgmtCommand { .. }
                if external && pkt.transport.dst_port() == ports::MGMT =>
            {
                push(AttackSignature::new(
                    sku.clone(),
                    "open-mgmt-access",
                    Matcher::MgmtFromExternal,
                    Severity::Medium,
                ));
            }
            _ => {}
        }
    }
    for ((user, pass), sources) in login_attempts {
        if sources.len() >= LOGIN_SOURCES_THRESHOLD && is_well_known_default(&user, &pass) {
            push(AttackSignature::new(
                sku.clone(),
                "default-credentials",
                Matcher::DefaultCredLogin { user, pass },
                Severity::Medium,
            ));
        }
    }
    out
}

/// The well-known default dictionary the miner recognizes (mirrors the
/// attacker's [`iotdev::attacker::default_dictionary`] — defenders read
/// the same breach reports).
fn is_well_known_default(user: &str, pass: &str) -> bool {
    iotdev::attacker::default_dictionary().iter().any(|(u, p)| u == user && p == pass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotdev::proto::ControlAction;
    use iotnet::addr::{Ipv4Addr, MacAddr};
    use iotnet::packet::TransportHeader;

    const WAN: Ipv4Addr = Ipv4Addr([100, 64, 0, 9]);
    const LAN: Ipv4Addr = Ipv4Addr([10, 0, 0, 2]);

    fn pkt(src: Ipv4Addr, dst_port: u16, msg: &AppMessage) -> Packet {
        Packet::new(
            MacAddr::from_index(9),
            MacAddr::from_index(1),
            src,
            Ipv4Addr::new(10, 0, 0, 5),
            TransportHeader::udp(4000, dst_port),
            msg.encode(),
        )
    }

    fn sku() -> Sku {
        Sku::new("avtech", "ip-cam", "1.3")
    }

    #[test]
    fn mines_default_cred_attack() {
        let capture = vec![
            pkt(
                WAN,
                ports::MGMT,
                &AppMessage::MgmtLogin { user: "admin".into(), pass: "admin".into() },
            ),
            pkt(
                WAN,
                ports::MGMT,
                &AppMessage::MgmtLogin { user: "admin".into(), pass: "1234".into() },
            ),
        ];
        let sigs = mine_signatures(&capture, &sku());
        assert!(sigs.iter().any(|s| matches!(
            &s.matcher,
            Matcher::DefaultCredLogin { user, pass } if user == "admin" && pass == "admin"
        )));
        // Every mined matcher is selective.
        assert!(sigs.iter().all(|s| s.matcher.is_selective()));
    }

    #[test]
    fn owner_typo_is_not_mined() {
        // An owner's unusual password from the LAN never becomes a
        // signature (privacy: credentials only mined when they are
        // well-known defaults tried from outside).
        let capture = vec![pkt(
            LAN,
            ports::MGMT,
            &AppMessage::MgmtLogin { user: "owner".into(), pass: "S3cure!pass".into() },
        )];
        assert!(mine_signatures(&capture, &sku()).is_empty());
        let capture = vec![pkt(
            WAN,
            ports::MGMT,
            &AppMessage::MgmtLogin { user: "owner".into(), pass: "weird-guess".into() },
        )];
        assert!(mine_signatures(&capture, &sku()).is_empty());
    }

    #[test]
    fn mines_each_exploit_class() {
        let capture = vec![
            pkt(
                WAN,
                ports::CONTROL,
                &AppMessage::Control { action: ControlAction::Open, auth: ControlAuth::None },
            ),
            pkt(
                WAN,
                ports::CONTROL,
                &AppMessage::Control {
                    action: ControlAction::Open,
                    auth: ControlAuth::Key(0xBEEF),
                },
            ),
            pkt(WAN, ports::CLOUD, &AppMessage::CloudCommand { action: ControlAction::TurnOff }),
            pkt(
                WAN,
                ports::DNS,
                &AppMessage::DnsQuery { name: "amp.example".into(), recursion: true },
            ),
            pkt(
                WAN,
                ports::MGMT,
                &AppMessage::MgmtCommand {
                    token: 0,
                    command: iotdev::proto::MgmtCommand::GetConfig,
                },
            ),
        ];
        let sigs = mine_signatures(&capture, &sku());
        let ids: BTreeSet<&str> = sigs.iter().map(|s| s.vuln_id.as_str()).collect();
        for expected in [
            "no-auth-control",
            "exposed-key-pair",
            "cloud-bypass-backdoor",
            "open-dns-resolver",
            "open-mgmt-access",
        ] {
            assert!(ids.contains(expected), "missing {expected}: {ids:?}");
        }
    }

    #[test]
    fn lan_traffic_mines_nothing() {
        let capture = vec![
            pkt(
                LAN,
                ports::CONTROL,
                &AppMessage::Control { action: ControlAction::Open, auth: ControlAuth::None },
            ),
            pkt(LAN, ports::CLOUD, &AppMessage::CloudCommand { action: ControlAction::TurnOff }),
        ];
        assert!(mine_signatures(&capture, &sku()).is_empty());
    }

    #[test]
    fn mined_signatures_are_deduplicated() {
        let capture: Vec<Packet> = (0..50)
            .map(|_| {
                pkt(WAN, ports::CLOUD, &AppMessage::CloudCommand { action: ControlAction::TurnOff })
            })
            .collect();
        assert_eq!(mine_signatures(&capture, &sku()).len(), 1);
    }

    #[test]
    fn mined_signature_matches_the_traffic_it_came_from() {
        let attack =
            pkt(WAN, ports::CLOUD, &AppMessage::CloudCommand { action: ControlAction::TurnOff });
        let sigs = mine_signatures(std::slice::from_ref(&attack), &sku());
        assert!(sigs[0].matcher.matches(&attack), "mined matcher must match its own evidence");
    }
}
