//! Model-based cross-device interaction fuzzing (§4.2).
//!
//! "We can think of the states of each IoT device model and the
//! environment as potential input variables for fuzzing. Then, we run
//! multiple fuzz tests to explore the space of possible behaviors."
//!
//! The fuzzer drives a set of [`AbstractModel`]s against a symbolic
//! environment: each trial picks a device and injects one of its action
//! inputs; the transition's environment writes are applied; any other
//! device with an `EnvBecomes` transition on a written value reacts —
//! and that pair `(actor → reactor via var=value)` is a discovered
//! **cross-device interaction edge**. Random and coverage-guided
//! strategies are provided; E5 compares their discovery curves against
//! the statically-known ground truth.

use iotdev::env::EnvVar;
use iotdev::model::{AbstractInput, AbstractModel};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::Serialize;
use std::collections::{BTreeSet, HashMap};

/// A discovered interaction: actuating `actor` can flip `var` to
/// `value`, which triggers `reactor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct InteractionEdge {
    /// Index of the acting device (into the model slice).
    pub actor: usize,
    /// Index of the reacting device.
    pub reactor: usize,
    /// The coupling variable.
    pub var: EnvVar,
    /// The coupling value.
    pub value: &'static str,
}

/// Fuzzing strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Strategy {
    /// Uniformly random device + input each trial.
    Random,
    /// Prefer `(device, state, input)` triples not yet exercised.
    CoverageGuided,
}

/// Result of a fuzzing run.
#[derive(Debug, Clone, Serialize)]
pub struct FuzzResult {
    /// Edges discovered, in discovery order (deduplicated).
    pub edges: Vec<InteractionEdge>,
    /// Trials executed.
    pub trials: u64,
    /// Trial index at which each edge was first found (same order as
    /// `edges`) — the discovery curve for E5.
    pub found_at: Vec<u64>,
}

impl FuzzResult {
    /// Recall against a ground-truth edge set.
    pub fn recall(&self, truth: &BTreeSet<InteractionEdge>) -> f64 {
        if truth.is_empty() {
            return 1.0;
        }
        let found: BTreeSet<_> = self.edges.iter().copied().collect();
        found.intersection(truth).count() as f64 / truth.len() as f64
    }
}

/// All interaction edges derivable statically from the models: every
/// (actor transition write) × (reactor `EnvBecomes` trigger) on the same
/// `(var, value)`. This is the fuzzer's ground truth.
pub fn ground_truth(models: &[AbstractModel]) -> BTreeSet<InteractionEdge> {
    let mut edges = BTreeSet::new();
    for (ai, actor) in models.iter().enumerate() {
        for t in &actor.transitions {
            for (var, value) in &t.writes {
                for (ri, reactor) in models.iter().enumerate() {
                    if ri == ai {
                        continue;
                    }
                    let reacts = reactor
                        .transitions
                        .iter()
                        .any(|rt| rt.input == AbstractInput::EnvBecomes(*var, value));
                    if reacts {
                        edges.insert(InteractionEdge { actor: ai, reactor: ri, var: *var, value });
                    }
                }
            }
        }
    }
    edges
}

/// How many trials one "fuzz test" runs before the testbed resets to
/// its initial state. The paper proposes "multiple fuzz tests"; without
/// resets, edges whose reactor has already been triggered once become
/// unreachable (the sensor is stuck in its fired state).
const RESET_EVERY: u64 = 50;

/// Run the fuzzer for `trials` trials (reset every [`RESET_EVERY`]).
pub fn fuzz_interactions<R: Rng>(
    models: &[AbstractModel],
    trials: u64,
    strategy: Strategy,
    rng: &mut R,
) -> FuzzResult {
    let mut states: Vec<usize> = models.iter().map(|m| m.initial).collect();
    let mut env: HashMap<EnvVar, &'static str> = HashMap::new();
    let mut edges: Vec<InteractionEdge> = Vec::new();
    let mut found_at: Vec<u64> = Vec::new();
    let mut seen: BTreeSet<InteractionEdge> = BTreeSet::new();
    let mut exercised: BTreeSet<(usize, usize, usize)> = BTreeSet::new(); // (dev, state, transition idx)

    // Candidate action inputs per device: (device, transition index).
    let action_transitions = |m: &AbstractModel| -> Vec<usize> {
        m.transitions
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.input, AbstractInput::Action(_)))
            .map(|(i, _)| i)
            .collect::<Vec<_>>()
    };

    for trial in 0..trials {
        if trial > 0 && trial % RESET_EVERY == 0 {
            // New fuzz test: fresh testbed.
            states = models.iter().map(|m| m.initial).collect();
            env.clear();
        }
        // Pick an actor and one of its action transitions.
        let candidates: Vec<(usize, usize)> = models
            .iter()
            .enumerate()
            .flat_map(|(di, m)| action_transitions(m).into_iter().map(move |ti| (di, ti)))
            .collect();
        if candidates.is_empty() {
            break;
        }
        let pick = match strategy {
            Strategy::Random => *candidates.choose(rng).unwrap(),
            Strategy::CoverageGuided => {
                let fresh: Vec<(usize, usize)> = candidates
                    .iter()
                    .copied()
                    .filter(|(di, ti)| !exercised.contains(&(*di, states[*di], *ti)))
                    .collect();
                if fresh.is_empty() {
                    *candidates.choose(rng).unwrap()
                } else {
                    *fresh.choose(rng).unwrap()
                }
            }
        };
        let (di, ti) = pick;
        exercised.insert((di, states[di], ti));
        let t = &models[di].transitions[ti];
        // The input only fires from its source state; if we're elsewhere,
        // the trial is a miss (fuzzing wastes some trials — that is the
        // point of measuring the discovery curve).
        if t.from != states[di] {
            continue;
        }
        states[di] = t.to;
        // Apply environment writes and let reactors respond.
        for (var, value) in &t.writes {
            env.insert(*var, value);
            for (ri, reactor) in models.iter().enumerate() {
                if ri == di {
                    continue;
                }
                if let Some(rt) = reactor.step(states[ri], AbstractInput::EnvBecomes(*var, value)) {
                    states[ri] = rt.to;
                    let edge = InteractionEdge { actor: di, reactor: ri, var: *var, value };
                    if seen.insert(edge) {
                        edges.push(edge);
                        found_at.push(trial + 1);
                    }
                }
            }
        }
    }
    FuzzResult { edges, trials, found_at }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotdev::classes::PlugLoad;
    use iotdev::device::DeviceClass;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn break_in_models() -> Vec<AbstractModel> {
        vec![
            AbstractModel::for_device(DeviceClass::SmartPlug, Some(PlugLoad::AirConditioner)),
            AbstractModel::for_device(DeviceClass::Thermostat, None),
            AbstractModel::for_device(DeviceClass::FireAlarm, None),
            AbstractModel::for_device(DeviceClass::WindowActuator, None),
        ]
    }

    #[test]
    fn ground_truth_contains_plug_to_thermostat() {
        let models = break_in_models();
        let truth = ground_truth(&models);
        // Cutting the AC plug (writes Temperature=high) triggers the
        // thermostat's EnvBecomes(Temperature, high) transition.
        assert!(truth.contains(&InteractionEdge {
            actor: 0,
            reactor: 1,
            var: EnvVar::Temperature,
            value: "high",
        }));
        // The fire alarm reads smoke; nobody here writes smoke.
        assert!(!truth.iter().any(|e| e.reactor == 2));
    }

    #[test]
    fn fuzzer_discovers_the_coupling() {
        let models = break_in_models();
        let truth = ground_truth(&models);
        let mut rng = StdRng::seed_from_u64(11);
        let result = fuzz_interactions(&models, 2000, Strategy::Random, &mut rng);
        assert!(result.recall(&truth) >= 1.0, "found {:?}", result.edges);
        // Every reported edge is in the ground truth (soundness).
        for e in &result.edges {
            assert!(truth.contains(e));
        }
    }

    #[test]
    fn discovery_order_is_recorded() {
        let models = break_in_models();
        let mut rng = StdRng::seed_from_u64(5);
        let result = fuzz_interactions(&models, 2000, Strategy::CoverageGuided, &mut rng);
        assert_eq!(result.edges.len(), result.found_at.len());
        for w in result.found_at.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn guided_beats_random_on_sparse_models() {
        // With many inert devices wasting trials, the guided strategy
        // must find at least as many edges within a tight trial budget
        // (averaged over seeds — both converge given enough trials).
        let mut models = break_in_models();
        for _ in 0..6 {
            models.push(AbstractModel::for_device(DeviceClass::SetTopBox, None));
            models.push(AbstractModel::for_device(DeviceClass::TrafficLight, None));
        }
        let truth = ground_truth(&models);
        let avg_recall = |strategy: Strategy| -> f64 {
            let mut acc = 0.0;
            const SEEDS: u64 = 10;
            for seed in 0..SEEDS {
                let mut rng = StdRng::seed_from_u64(seed);
                acc += fuzz_interactions(&models, 40, strategy, &mut rng).recall(&truth);
            }
            acc / SEEDS as f64
        };
        let random = avg_recall(Strategy::Random);
        let guided = avg_recall(Strategy::CoverageGuided);
        assert!(guided >= random, "guided {guided} vs random {random}");
        assert!(guided > 0.2, "guided should find something in 40 trials: {guided}");
    }

    #[test]
    fn deterministic_per_seed() {
        let models = break_in_models();
        let a = fuzz_interactions(&models, 500, Strategy::Random, &mut StdRng::seed_from_u64(1));
        let b = fuzz_interactions(&models, 500, Strategy::Random, &mut StdRng::seed_from_u64(1));
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.found_at, b.found_at);
    }

    #[test]
    fn empty_truth_means_perfect_recall() {
        let models = vec![AbstractModel::for_device(DeviceClass::SetTopBox, None)];
        let truth = ground_truth(&models);
        assert!(truth.is_empty());
        let r = fuzz_interactions(&models, 10, Strategy::Random, &mut StdRng::seed_from_u64(1));
        assert_eq!(r.recall(&truth), 1.0);
    }
}
