//! The crowdsourced signature repository (§4.1).
//!
//! A publish–subscribe service keyed by SKU, with the three defenses the
//! paper proposes for its three challenges:
//!
//! * **Incentives** — contributors receive new signatures with *priority*
//!   (zero notification delay); free-riders see them after a lag.
//! * **Privacy** — published signatures are anonymized: the repository
//!   strips reporter identity before redistribution, so subscribers
//!   learn *what* to match, never *who* was breached.
//! * **Data quality** — submissions face a static selectivity screen,
//!   then a reputation-weighted vote; a submission publishes only when
//!   enough weighted approval accumulates. Reporter reputations follow a
//!   Beta model updated by eventual ground truth, so persistent poisoners
//!   lose influence (experiment E3 sweeps the malicious fraction).

use crate::signature::AttackSignature;
use iotdev::registry::Sku;
use iotnet::time::{SimDuration, SimTime};
use serde::Serialize;
use std::collections::HashMap;

/// An opaque reporter handle. The repository knows reporters only by
/// these ids; published signatures never carry them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct ReporterId(pub u32);

/// A submission awaiting admission.
#[derive(Debug, Clone, Serialize)]
pub struct Submission {
    /// Submission id.
    pub id: u64,
    /// The candidate signature (already anonymized: no reporter field).
    pub signature: AttackSignature,
    /// Weighted approval mass accumulated.
    pub approval: f64,
    /// Weighted disapproval mass.
    pub disapproval: f64,
    /// Whether the static selectivity screen flagged it.
    pub screened: bool,
    submitter: ReporterId,
    voters: Vec<(ReporterId, bool)>,
}

/// A notification queued for a subscriber.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Notification {
    /// The published signature.
    pub signature: AttackSignature,
    /// Earliest time the subscriber may act on it.
    pub available_at: SimTime,
}

#[derive(Debug, Clone)]
struct ReporterState {
    /// Beta-reputation counters: validated contributions vs bad ones.
    alpha: f64,
    beta: f64,
    /// Contribution count (for the priority incentive).
    contributions: u64,
}

impl ReporterState {
    fn reputation(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }
}

/// Repository configuration.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RepoConfig {
    /// Weighted approval mass needed to publish.
    pub quorum: f64,
    /// Reject votes from reporters below this reputation.
    pub min_vote_reputation: f64,
    /// Whether the static selectivity screen is enabled.
    pub screen_unselective: bool,
    /// Whether reputation weighting is enabled (ablation A3 switches
    /// these off).
    pub use_reputation: bool,
    /// Notification lag for non-contributors (contributors get zero —
    /// the incentive mechanism).
    pub freerider_lag: SimDuration,
}

impl Default for RepoConfig {
    fn default() -> Self {
        RepoConfig {
            quorum: 2.0,
            min_vote_reputation: 0.2,
            screen_unselective: true,
            use_reputation: true,
            freerider_lag: SimDuration::from_secs(3600),
        }
    }
}

/// Private provenance record: signature id, submitter, and each voter
/// with their vote direction.
type Provenance = (u64, ReporterId, Vec<(ReporterId, bool)>);

/// The repository.
///
/// ```
/// use iotdev::registry::Sku;
/// use iotlearn::repo::{RepoConfig, SignatureRepo};
/// use iotlearn::signature::{AttackSignature, Matcher, Severity};
/// use iotnet::time::SimTime;
///
/// // New reporters carry reputation 0.5, so one vote meets a 0.5 quorum.
/// let mut repo = SignatureRepo::new(RepoConfig { quorum: 0.5, ..RepoConfig::default() });
/// let (reporter, voter, subscriber) = (repo.register(), repo.register(), repo.register());
/// let sku = Sku::new("belkin", "wemo", "1.0");
/// repo.subscribe(subscriber, &sku);
///
/// let sig = AttackSignature::new(
///     sku, "open-dns-resolver", Matcher::RecursiveDnsFromExternal, Severity::Medium,
/// );
/// let submission = repo.submit(reporter, sig).unwrap();
/// repo.vote(voter, submission, true);
/// assert_eq!(repo.process(SimTime::ZERO).len(), 1);
///
/// // The free-riding subscriber sees it only after the incentive lag.
/// assert!(repo.fetch(subscriber, SimTime::ZERO).is_empty());
/// assert_eq!(repo.fetch(subscriber, SimTime::from_secs(3600)).len(), 1);
/// ```
#[derive(Debug)]
pub struct SignatureRepo {
    config: RepoConfig,
    reporters: HashMap<ReporterId, ReporterState>,
    next_reporter: u32,
    pending: Vec<Submission>,
    next_submission: u64,
    published: Vec<AttackSignature>,
    next_signature: u64,
    subscriptions: HashMap<Sku, Vec<ReporterId>>,
    inboxes: HashMap<ReporterId, Vec<Notification>>,
    /// Private provenance (signature id → submitter + approving voters);
    /// never exposed to subscribers — this is the anonymization boundary.
    provenance: Vec<Provenance>,
    /// Published signatures later proven bad (the DoS the paper worries
    /// about: a malicious signature blocking legitimate traffic).
    pub published_bad: u64,
    /// Submissions rejected by screen or vote.
    pub rejected: u64,
}

impl SignatureRepo {
    /// A repository with the given configuration.
    pub fn new(config: RepoConfig) -> SignatureRepo {
        SignatureRepo {
            config,
            reporters: HashMap::new(),
            next_reporter: 0,
            pending: Vec::new(),
            next_submission: 0,
            published: Vec::new(),
            next_signature: 1,
            subscriptions: HashMap::new(),
            inboxes: HashMap::new(),
            provenance: Vec::new(),
            published_bad: 0,
            rejected: 0,
        }
    }

    /// Register a reporter (a deployment). New reporters start with a
    /// neutral-low reputation: they must earn influence.
    pub fn register(&mut self) -> ReporterId {
        let id = ReporterId(self.next_reporter);
        self.next_reporter += 1;
        self.reporters.insert(id, ReporterState { alpha: 1.0, beta: 1.0, contributions: 0 });
        self.inboxes.insert(id, Vec::new());
        id
    }

    /// Current reputation of a reporter.
    pub fn reputation(&self, id: ReporterId) -> f64 {
        self.reporters.get(&id).map_or(0.0, |r| r.reputation())
    }

    /// Subscribe a reporter to a SKU's signature feed.
    pub fn subscribe(&mut self, id: ReporterId, sku: &Sku) {
        self.subscriptions.entry(sku.clone()).or_default().push(id);
    }

    /// Submit a signature. Returns the submission id, or `None` if the
    /// static screen rejected it outright.
    pub fn submit(&mut self, reporter: ReporterId, mut signature: AttackSignature) -> Option<u64> {
        let screened = self.config.screen_unselective && !signature.matcher.is_selective();
        if screened {
            self.rejected += 1;
            // A screened submission still dings the submitter: publishing
            // a match-all "signature" is at best incompetent.
            if let Some(r) = self.reporters.get_mut(&reporter) {
                r.beta += 1.0;
            }
            return None;
        }
        signature.id = 0; // not yet published
        let id = self.next_submission;
        self.next_submission += 1;
        if let Some(r) = self.reporters.get_mut(&reporter) {
            r.contributions += 1;
        }
        self.pending.push(Submission {
            id,
            signature,
            approval: 0.0,
            disapproval: 0.0,
            screened: false,
            submitter: reporter,
            voters: Vec::new(),
        });
        Some(id)
    }

    /// Pending submissions (for voters to inspect).
    pub fn pending(&self) -> &[Submission] {
        &self.pending
    }

    /// Vote on a pending submission. Votes are weighted by reputation
    /// when enabled; each reporter votes once per submission and cannot
    /// vote on their own.
    pub fn vote(&mut self, voter: ReporterId, submission: u64, approve: bool) {
        let Some(weight) = self.vote_weight(voter) else { return };
        let Some(sub) = self.pending.iter_mut().find(|s| s.id == submission) else {
            return;
        };
        if sub.submitter == voter || sub.voters.iter().any(|(v, _)| *v == voter) {
            return;
        }
        sub.voters.push((voter, approve));
        if approve {
            sub.approval += weight;
        } else {
            sub.disapproval += weight;
        }
    }

    fn vote_weight(&self, voter: ReporterId) -> Option<f64> {
        let rep = self.reporters.get(&voter)?.reputation();
        if self.config.use_reputation {
            if rep < self.config.min_vote_reputation {
                return None;
            }
            Some(rep)
        } else {
            Some(1.0)
        }
    }

    /// Admit/reject pending submissions; queue notifications for
    /// subscribers of each published signature's SKU at time `now`.
    /// Returns the signatures published this round.
    pub fn process(&mut self, now: SimTime) -> Vec<AttackSignature> {
        let quorum = self.config.quorum;
        let mut newly_published = Vec::new();
        let mut keep = Vec::new();
        for mut sub in std::mem::take(&mut self.pending) {
            if sub.approval >= quorum && sub.approval > sub.disapproval {
                sub.signature.id = self.next_signature;
                self.next_signature += 1;
                newly_published.push(sub);
            } else if sub.disapproval >= quorum {
                self.rejected += 1;
                if let Some(r) = self.reporters.get_mut(&sub.submitter) {
                    r.beta += 1.0;
                }
            } else {
                keep.push(sub);
            }
        }
        self.pending = keep;

        let mut round = Vec::with_capacity(newly_published.len());
        for sub in newly_published {
            let sku = sub.signature.sku.clone();
            let subscribers = self.subscriptions.get(&sku).cloned().unwrap_or_default();
            for subscriber in subscribers {
                let is_contributor =
                    self.reporters.get(&subscriber).map_or(0, |r| r.contributions) > 0;
                let lag =
                    if is_contributor { SimDuration::ZERO } else { self.config.freerider_lag };
                self.inboxes.entry(subscriber).or_default().push(Notification {
                    signature: sub.signature.clone(), // anonymized: no submitter
                    available_at: now + lag,
                });
            }
            self.published.push(sub.signature.clone());
            // Remember provenance privately for reputation resolution.
            self.provenance.push((sub.signature.id, sub.submitter, sub.voters));
            round.push(sub.signature);
        }
        round
    }

    /// All published signatures.
    pub fn published(&self) -> &[AttackSignature] {
        &self.published
    }

    /// Notifications available to a subscriber at `now` (drains them).
    pub fn fetch(&mut self, subscriber: ReporterId, now: SimTime) -> Vec<AttackSignature> {
        let Some(inbox) = self.inboxes.get_mut(&subscriber) else { return Vec::new() };
        let (ready, later): (Vec<_>, Vec<_>) = inbox.drain(..).partition(|n| n.available_at <= now);
        *inbox = later;
        ready.into_iter().map(|n| n.signature).collect()
    }

    /// Ground-truth resolution: the simulation harness (which knows
    /// whether a published signature was genuine) reports back, and
    /// reputations update — submitter and approving voters gain on a
    /// valid signature, lose on a bad one.
    pub fn resolve(&mut self, signature_id: u64, was_valid: bool) {
        let Some(pos) = self.provenance.iter().position(|(id, _, _)| *id == signature_id) else {
            return;
        };
        let (_, submitter, voters) = self.provenance.remove(pos);
        if !was_valid {
            self.published_bad += 1;
            self.published.retain(|s| s.id != signature_id);
        }
        let bump = |r: &mut ReporterState, was_right: bool| {
            if was_right {
                r.alpha += 1.0;
            } else {
                r.beta += 2.0; // being wrong costs more than honesty earns
            }
        };
        if let Some(r) = self.reporters.get_mut(&submitter) {
            bump(r, was_valid);
        }
        // A voter was right iff their vote direction matches the ground
        // truth: approving a valid signature or rejecting a bad one.
        for (v, approved) in voters {
            if let Some(r) = self.reporters.get_mut(&v) {
                bump(r, approved == was_valid);
            }
        }
    }
}

// The provenance store lives outside the struct literal above; declare it
// via a small extension because publication strips identity from
// everything subscribers can see.
impl SignatureRepo {
    /// Number of published signatures still standing.
    pub fn published_count(&self) -> usize {
        self.published.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::{Matcher, Severity};

    fn sku() -> Sku {
        Sku::new("belkin", "wemo", "1.0")
    }

    fn good_sig() -> AttackSignature {
        AttackSignature::new(
            sku(),
            "open-dns-resolver",
            Matcher::RecursiveDnsFromExternal,
            Severity::Medium,
        )
    }

    fn evil_sig() -> AttackSignature {
        AttackSignature::new(sku(), "fake", Matcher::MatchAll, Severity::High)
    }

    #[test]
    fn publish_flow_with_votes() {
        let mut repo = SignatureRepo::new(RepoConfig::default());
        let alice = repo.register();
        let bob = repo.register();
        let carol = repo.register();
        let dave = repo.register();
        repo.subscribe(dave, &sku());
        let sub = repo.submit(alice, good_sig()).unwrap();
        assert!(repo.process(SimTime::ZERO).is_empty()); // no quorum yet
        repo.vote(bob, sub, true);
        repo.vote(carol, sub, true);
        // Default reputations are 0.5 each → approval 1.0 < quorum 2.0.
        assert!(repo.process(SimTime::ZERO).is_empty());
        let erin = repo.register();
        let frank = repo.register();
        repo.vote(erin, sub, true);
        repo.vote(frank, sub, true);
        let published = repo.process(SimTime::ZERO);
        assert_eq!(published.len(), 1);
        assert!(published[0].id > 0);
        assert_eq!(repo.published_count(), 1);
    }

    #[test]
    fn screen_rejects_match_all() {
        let mut repo = SignatureRepo::new(RepoConfig::default());
        let mallory = repo.register();
        let before = repo.reputation(mallory);
        assert!(repo.submit(mallory, evil_sig()).is_none());
        assert_eq!(repo.rejected, 1);
        assert!(repo.reputation(mallory) < before);
        // With the screen disabled (ablation), it becomes a pending sub.
        let mut repo =
            SignatureRepo::new(RepoConfig { screen_unselective: false, ..RepoConfig::default() });
        let mallory = repo.register();
        assert!(repo.submit(mallory, evil_sig()).is_some());
    }

    #[test]
    fn self_votes_and_double_votes_ignored() {
        let mut repo = SignatureRepo::new(RepoConfig::default());
        let alice = repo.register();
        let bob = repo.register();
        let sub = repo.submit(alice, good_sig()).unwrap();
        repo.vote(alice, sub, true); // self-vote: ignored
        repo.vote(bob, sub, true);
        repo.vote(bob, sub, true); // double: ignored
        assert!((repo.pending()[0].approval - 0.5).abs() < 1e-9);
    }

    #[test]
    fn disapproval_quorum_rejects_and_dings_submitter() {
        let mut repo = SignatureRepo::new(RepoConfig { quorum: 1.0, ..RepoConfig::default() });
        let mallory = repo.register();
        let bob = repo.register();
        let carol = repo.register();
        let sub = repo
            .submit(
                mallory,
                AttackSignature::new(
                    sku(),
                    "fake",
                    Matcher::PayloadContains(b"x".to_vec()),
                    Severity::Low,
                ),
            )
            .unwrap();
        let rep_before = repo.reputation(mallory);
        repo.vote(bob, sub, false);
        repo.vote(carol, sub, false);
        repo.process(SimTime::ZERO);
        assert_eq!(repo.published_count(), 0);
        assert_eq!(repo.rejected, 1);
        assert!(repo.reputation(mallory) < rep_before);
    }

    #[test]
    fn contributors_get_priority_notifications() {
        let mut repo = SignatureRepo::new(RepoConfig { quorum: 0.5, ..RepoConfig::default() });
        let contributor = repo.register();
        let freerider = repo.register();
        let voter = repo.register();
        repo.subscribe(contributor, &sku());
        repo.subscribe(freerider, &sku());
        // The contributor has contributed something before.
        repo.submit(contributor, good_sig()).unwrap();
        let sub2 = repo.submit(contributor, good_sig()).unwrap();
        repo.vote(voter, sub2, true);
        repo.process(SimTime::from_secs(100));
        // At publication time: contributor sees it immediately...
        assert_eq!(repo.fetch(contributor, SimTime::from_secs(100)).len(), 1);
        // ...the free-rider only after the lag.
        assert!(repo.fetch(freerider, SimTime::from_secs(100)).is_empty());
        assert_eq!(repo.fetch(freerider, SimTime::from_secs(100 + 3600)).len(), 1);
    }

    #[test]
    fn resolution_updates_reputation_and_retracts() {
        let mut repo = SignatureRepo::new(RepoConfig { quorum: 0.5, ..RepoConfig::default() });
        let mallory = repo.register();
        let sheep = repo.register();
        // Mallory slips a selective-looking but bogus signature through.
        let sub = repo
            .submit(
                mallory,
                AttackSignature::new(
                    sku(),
                    "bogus",
                    Matcher::PayloadContains(b"\x01".to_vec()),
                    Severity::High,
                ),
            )
            .unwrap();
        repo.vote(sheep, sub, true);
        let published = repo.process(SimTime::ZERO);
        assert_eq!(published.len(), 1);
        let rep_before = repo.reputation(mallory);
        repo.resolve(published[0].id, false);
        assert_eq!(repo.published_bad, 1);
        assert_eq!(repo.published_count(), 0); // retracted
        assert!(repo.reputation(mallory) < rep_before);
        // Honest resolution raises reputation.
        let honest = repo.register();
        let voter = repo.register();
        let sub = repo.submit(honest, good_sig()).unwrap();
        repo.vote(voter, sub, true);
        let published = repo.process(SimTime::ZERO);
        let before = repo.reputation(honest);
        repo.resolve(published[0].id, true);
        assert!(repo.reputation(honest) > before);
    }

    #[test]
    fn low_reputation_voters_lose_the_franchise() {
        let mut repo = SignatureRepo::new(RepoConfig { quorum: 0.5, ..RepoConfig::default() });
        let mallory = repo.register();
        // Tank mallory's reputation with screened garbage.
        for _ in 0..10 {
            repo.submit(mallory, evil_sig());
        }
        assert!(repo.reputation(mallory) < 0.2);
        let alice = repo.register();
        let sub = repo.submit(alice, good_sig()).unwrap();
        repo.vote(mallory, sub, false); // vote carries no weight
        assert_eq!(repo.pending()[0].disapproval, 0.0);
    }
}
