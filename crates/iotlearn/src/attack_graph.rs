//! Multi-stage attack-graph generation and search (§4.2).
//!
//! "Such models can also be used to automatically identify potential
//! multi-stage attacks due to cross-device interactions; e.g., triggering
//! device X to transition to state Sₓ and then using that to reach an
//! eventual goal state (e.g., unlocking the door)."
//!
//! The graph is built from three knowledge sources:
//! * **vulnerabilities** — which devices an attacker can seize remotely
//!   (Table 1 classes give direct control of a device's actions);
//! * **abstract models** — what a controlled device's actions do to the
//!   environment, and how uncompromised devices react to the environment;
//! * **automation recipes** — hub rules that actuate devices when
//!   environment conditions hold (the IFTTT "open windows when hot" rule
//!   that completes the paper's break-in chain).
//!
//! Search is a forward fixpoint over *facts* (`var = value` plus "device
//! D controllable"), with parent pointers for path reconstruction — a
//! MulVal-style monotone derivation, which is sound w.r.t. the
//! over-approximate models.

use crate::fuzz::ground_truth;
use iotdev::classes::PlugLoad;
use iotdev::device::{DeviceClass, DeviceId};
use iotdev::env::EnvVar;
use iotdev::model::{AbstractInput, AbstractModel};
use iotpolicy::recipe::{Recipe, Trigger};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// What the graph builder needs to know about one deployed device.
#[derive(Debug, Clone, Serialize)]
pub struct DeviceSpec {
    /// Deployment id.
    pub id: DeviceId,
    /// Class.
    pub class: DeviceClass,
    /// Plug load, if a smart plug (decides its physical coupling).
    pub load: Option<PlugLoad>,
    /// Vulnerability class ids (`Vulnerability::id` strings) that allow
    /// *remote control* of the device.
    pub remote_vulns: Vec<String>,
}

impl DeviceSpec {
    /// Whether the attacker can seize this device directly from the
    /// network. Key theft and default credentials also yield control;
    /// open management alone yields data, not actuation — we still count
    /// it as control of cameras (disabling the stream blinds policies).
    pub fn remotely_controllable(&self) -> bool {
        self.remote_vulns.iter().any(|v| {
            matches!(
                v.as_str(),
                "default-credentials"
                    | "no-auth-control"
                    | "cloud-bypass-backdoor"
                    | "exposed-key-pair"
                    | "open-mgmt-access"
            )
        })
    }
}

/// A fact derivable by the attacker.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Fact {
    /// The attacker controls this device's actions.
    Controls(DeviceId),
    /// The environment variable holds this value.
    Env(EnvVar, &'static str),
}

/// One derivation step in an attack path.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Step {
    /// Seize a device via a vulnerability class.
    Exploit {
        /// The seized device.
        device: DeviceId,
        /// The vulnerability used.
        vuln: String,
    },
    /// Use a controlled device's action to drive the environment.
    Actuate {
        /// The acting device.
        device: DeviceId,
        /// Resulting environment fact.
        causes: (EnvVar, &'static str),
    },
    /// An automation recipe fires on an environment condition.
    RecipeFires {
        /// Recipe id.
        recipe: u32,
        /// The device it actuates.
        target: DeviceId,
        /// Resulting environment fact, if the actuation writes one.
        causes: Option<(EnvVar, &'static str)>,
    },
    /// An autonomous device reacts to the environment.
    DeviceReacts {
        /// The reacting device.
        device: DeviceId,
        /// The condition it reacted to.
        on: (EnvVar, &'static str),
        /// Resulting environment fact, if any.
        causes: Option<(EnvVar, &'static str)>,
    },
}

/// A multi-stage attack: the ordered steps that derive the goal.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AttackPath {
    /// The goal fact.
    pub goal: Fact,
    /// Derivation steps, in order.
    pub steps: Vec<Step>,
}

impl AttackPath {
    /// Number of stages (a 1-step path is a direct exploit; the paper's
    /// break-in chain is ≥ 3).
    pub fn stages(&self) -> usize {
        self.steps.len()
    }
}

/// The attack graph: devices, their models, and the recipe set.
#[derive(Debug)]
pub struct AttackGraph {
    specs: Vec<DeviceSpec>,
    models: Vec<AbstractModel>,
    recipes: Vec<Recipe>,
}

impl AttackGraph {
    /// Build from deployment knowledge.
    pub fn build(specs: Vec<DeviceSpec>, recipes: Vec<Recipe>) -> AttackGraph {
        let models = specs.iter().map(|s| AbstractModel::for_device(s.class, s.load)).collect();
        AttackGraph { specs, models, recipes }
    }

    /// Number of statically-known cross-device couplings (from the
    /// abstract models alone; recipes add more).
    pub fn model_coupling_count(&self) -> usize {
        ground_truth(&self.models).len()
    }

    fn spec_index(&self, id: DeviceId) -> Option<usize> {
        self.specs.iter().position(|s| s.id == id)
    }

    /// Forward-search for a derivation of `goal`. Returns the path of
    /// minimum derivation order (BFS over the monotone fixpoint).
    pub fn find_attack(&self, goal: Fact) -> Option<AttackPath> {
        let mut derived: BTreeMap<Fact, Option<(Step, Vec<Fact>)>> = BTreeMap::new();

        // Seed: remotely-controllable devices.
        for spec in &self.specs {
            if spec.remotely_controllable() {
                let vuln = spec.remote_vulns[0].clone();
                derived.insert(
                    Fact::Controls(spec.id),
                    Some((Step::Exploit { device: spec.id, vuln }, Vec::new())),
                );
            }
        }

        // Monotone fixpoint.
        loop {
            let mut new: Vec<(Fact, Step, Vec<Fact>)> = Vec::new();

            // 1. Controlled devices can actuate: every action transition's
            //    writes become derivable env facts.
            for (di, model) in self.models.iter().enumerate() {
                let dev = self.specs[di].id;
                let control = Fact::Controls(dev);
                if !derived.contains_key(&control) {
                    continue;
                }
                for t in &model.transitions {
                    if !matches!(t.input, AbstractInput::Action(_)) {
                        continue;
                    }
                    for (var, value) in &t.writes {
                        let fact = Fact::Env(*var, value);
                        if !derived.contains_key(&fact) {
                            new.push((
                                fact,
                                Step::Actuate { device: dev, causes: (*var, value) },
                                vec![control.clone()],
                            ));
                        }
                    }
                }
            }

            // 2. Recipes fire on derivable env conditions and actuate
            //    their targets; the target's matching action transitions'
            //    writes become derivable.
            for recipe in &self.recipes {
                let cond = match recipe.trigger {
                    Trigger::EnvEquals(var, value) => Fact::Env(var, value),
                    // Event triggers fire when the underlying env condition
                    // a sensor of that class watches becomes true; we map
                    // them through the sensor's reads.
                    Trigger::Event(class, _) => {
                        let Some(var) = sensor_variable(class) else { continue };
                        // The triggering value is whichever value the
                        // attacker can derive; try each.
                        let mut found = None;
                        for value in var.domain() {
                            if derived.contains_key(&Fact::Env(var, value)) {
                                found = Some(Fact::Env(var, value));
                                break;
                            }
                        }
                        match found {
                            Some(f) => f,
                            None => continue,
                        }
                    }
                };
                if !derived.contains_key(&cond) {
                    continue;
                }
                let Some(ti) = self.spec_index(recipe.action.target) else { continue };
                let model = &self.models[ti];
                let mut caused_any = false;
                for t in &model.transitions {
                    if t.input != AbstractInput::Action(recipe.action.action) {
                        continue;
                    }
                    for (var, value) in &t.writes {
                        let fact = Fact::Env(*var, value);
                        if !derived.contains_key(&fact) {
                            new.push((
                                fact,
                                Step::RecipeFires {
                                    recipe: recipe.id,
                                    target: recipe.action.target,
                                    causes: Some((*var, value)),
                                },
                                vec![cond.clone()],
                            ));
                            caused_any = true;
                        }
                    }
                }
                let _ = caused_any;
            }

            // 3. Autonomous devices react to the environment.
            for (di, model) in self.models.iter().enumerate() {
                let dev = self.specs[di].id;
                for t in &model.transitions {
                    let AbstractInput::EnvBecomes(var, value) = t.input else { continue };
                    let cond = Fact::Env(var, value);
                    if !derived.contains_key(&cond) {
                        continue;
                    }
                    for (wvar, wvalue) in &t.writes {
                        let fact = Fact::Env(*wvar, wvalue);
                        if !derived.contains_key(&fact) {
                            new.push((
                                fact,
                                Step::DeviceReacts {
                                    device: dev,
                                    on: (var, value),
                                    causes: Some((*wvar, wvalue)),
                                },
                                vec![cond.clone()],
                            ));
                        }
                    }
                }
            }

            if new.is_empty() {
                break;
            }
            for (fact, step, deps) in new {
                derived.entry(fact).or_insert(Some((step, deps)));
            }
        }

        // Reconstruct the path to the goal.
        derived.get(&goal)?;
        let mut steps = Vec::new();
        let mut visited: BTreeSet<Fact> = BTreeSet::new();
        collect_steps(&derived, &goal, &mut steps, &mut visited);
        Some(AttackPath { goal, steps })
    }
}

fn collect_steps(
    derived: &BTreeMap<Fact, Option<(Step, Vec<Fact>)>>,
    fact: &Fact,
    steps: &mut Vec<Step>,
    visited: &mut BTreeSet<Fact>,
) {
    if !visited.insert(fact.clone()) {
        return;
    }
    if let Some(Some((step, deps))) = derived.get(fact) {
        for dep in deps {
            collect_steps(derived, dep, steps, visited);
        }
        steps.push(step.clone());
    }
}

/// The environment variable a sensor class watches (for recipe event
/// triggers).
fn sensor_variable(class: DeviceClass) -> Option<EnvVar> {
    match class {
        DeviceClass::FireAlarm => Some(EnvVar::Smoke),
        DeviceClass::Camera | DeviceClass::MotionSensor => Some(EnvVar::Occupancy),
        DeviceClass::LightSensor => Some(EnvVar::Light),
        DeviceClass::SmartLock => Some(EnvVar::Door),
        _ => None,
    }
}

/// The paper's running break-in example, as a canned deployment: a
/// backdoored Wemo powering the AC, a thermostat, a window actuator, and
/// the "open windows to cool down when the AC is off" IFTTT recipe.
pub fn breakin_deployment() -> (Vec<DeviceSpec>, Vec<Recipe>) {
    use iotdev::proto::ControlAction;
    use iotpolicy::recipe::RecipeAction;
    let specs = vec![
        DeviceSpec {
            id: DeviceId(0),
            class: DeviceClass::SmartPlug,
            load: Some(PlugLoad::AirConditioner),
            remote_vulns: vec!["cloud-bypass-backdoor".into()],
        },
        DeviceSpec {
            id: DeviceId(1),
            class: DeviceClass::Thermostat,
            load: None,
            remote_vulns: vec![],
        },
        DeviceSpec {
            id: DeviceId(2),
            class: DeviceClass::WindowActuator,
            load: None,
            remote_vulns: vec![],
        },
    ];
    let recipes = vec![Recipe {
        id: 0,
        trigger: Trigger::EnvEquals(EnvVar::Temperature, "high"),
        action: RecipeAction { target: DeviceId(2), action: ControlAction::Open },
    }];
    (specs, recipes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_breakin_chain_is_found() {
        let (specs, recipes) = breakin_deployment();
        let graph = AttackGraph::build(specs, recipes);
        let path = graph.find_attack(Fact::Env(EnvVar::Window, "open")).expect("break-in path");
        // Multi-stage: exploit plug → actuate (heat) → recipe opens window.
        assert!(path.stages() >= 3, "path: {:#?}", path.steps);
        assert!(matches!(path.steps[0], Step::Exploit { device: DeviceId(0), .. }));
        assert!(path
            .steps
            .iter()
            .any(|s| matches!(s, Step::Actuate { causes: (EnvVar::Temperature, "high"), .. })));
        assert!(path
            .steps
            .iter()
            .any(|s| matches!(s, Step::RecipeFires { target: DeviceId(2), .. })));
    }

    #[test]
    fn no_path_without_the_recipe() {
        let (specs, _) = breakin_deployment();
        let graph = AttackGraph::build(specs, vec![]);
        assert!(graph.find_attack(Fact::Env(EnvVar::Window, "open")).is_none());
    }

    #[test]
    fn no_path_without_the_vulnerability() {
        let (mut specs, recipes) = breakin_deployment();
        specs[0].remote_vulns.clear();
        let graph = AttackGraph::build(specs, recipes);
        assert!(graph.find_attack(Fact::Env(EnvVar::Window, "open")).is_none());
    }

    #[test]
    fn direct_control_is_single_stage() {
        let (specs, recipes) = breakin_deployment();
        let graph = AttackGraph::build(specs, recipes);
        let path = graph.find_attack(Fact::Controls(DeviceId(0))).unwrap();
        assert_eq!(path.stages(), 1);
    }

    #[test]
    fn event_trigger_recipes_chain_through_sensors() {
        use iotdev::proto::{ControlAction, EventKind};
        use iotpolicy::recipe::RecipeAction;
        // Oven (backdoored) → smoke → fire-alarm event recipe unlocks the
        // door ("let firefighters in") → door unlocked: a 4-stage chain.
        let specs = vec![
            DeviceSpec {
                id: DeviceId(0),
                class: DeviceClass::Oven,
                load: None,
                remote_vulns: vec!["no-auth-control".into()],
            },
            DeviceSpec {
                id: DeviceId(1),
                class: DeviceClass::FireAlarm,
                load: None,
                remote_vulns: vec![],
            },
            DeviceSpec {
                id: DeviceId(2),
                class: DeviceClass::SmartLock,
                load: None,
                remote_vulns: vec![],
            },
        ];
        let recipes = vec![Recipe {
            id: 7,
            trigger: Trigger::Event(DeviceClass::FireAlarm, EventKind::SmokeAlarm),
            action: RecipeAction { target: DeviceId(2), action: ControlAction::Unlock },
        }];
        let graph = AttackGraph::build(specs, recipes);
        let path = graph.find_attack(Fact::Env(EnvVar::Door, "unlocked")).expect("smoke chain");
        assert!(path.stages() >= 3, "{:#?}", path.steps);
        assert!(path.steps.iter().any(|s| matches!(s, Step::RecipeFires { recipe: 7, .. })));
    }

    #[test]
    fn coupling_count_reflects_models() {
        let (specs, recipes) = breakin_deployment();
        let graph = AttackGraph::build(specs, recipes);
        assert!(graph.model_coupling_count() >= 1);
    }
}
