//! SKU fingerprinting from passive traffic observation.
//!
//! The crowdsourced repository is keyed by SKU ("Google Nest version
//! XYZ rather than 'thermostat'", §4), which begs the question the paper
//! leaves open: how does a deployment know *which* SKU just joined its
//! network, so it can subscribe to the right feed and deploy the right
//! chain? This module answers it the way real systems do: a behavioural
//! fingerprint — which protocol planes the device uses, what telemetry
//! it emits and how often — matched against a fingerprint database
//! learned from labelled deployments.

use iotdev::proto::TelemetryKind;
use iotdev::registry::Sku;
use iotnet::time::SimDuration;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// The observable behavioural features of one device.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct Fingerprint {
    /// Destination ports the device *serves* (responds on).
    pub served_ports: BTreeSet<u16>,
    /// Telemetry kinds it emits.
    pub telemetry: BTreeSet<TelemetryKind>,
    /// Telemetry period bucket (rounded to seconds; 0 = none seen).
    pub period_s: u64,
}

impl Fingerprint {
    /// Record that the device answered on a port.
    pub fn serve(&mut self, port: u16) -> &mut Self {
        self.served_ports.insert(port);
        self
    }

    /// Record an emitted telemetry kind.
    pub fn emit(&mut self, kind: TelemetryKind) -> &mut Self {
        self.telemetry.insert(kind);
        self
    }

    /// Record the observed telemetry period.
    pub fn period(&mut self, period: SimDuration) -> &mut Self {
        self.period_s = period.as_nanos() / 1_000_000_000;
        self
    }

    /// Similarity in `[0, 1]`: Jaccard over ports and telemetry, with a
    /// period-agreement bonus term.
    pub fn similarity(&self, other: &Fingerprint) -> f64 {
        let jaccard = |a: &BTreeSet<u16>, b: &BTreeSet<u16>| -> f64 {
            let inter = a.intersection(b).count() as f64;
            let union = a.union(b).count() as f64;
            if union == 0.0 {
                1.0
            } else {
                inter / union
            }
        };
        let ports = jaccard(&self.served_ports, &other.served_ports);
        let tele_inter = self.telemetry.intersection(&other.telemetry).count() as f64;
        let tele_union = self.telemetry.union(&other.telemetry).count() as f64;
        let tele = if tele_union == 0.0 { 1.0 } else { tele_inter / tele_union };
        let period = if self.period_s == other.period_s { 1.0 } else { 0.0 };
        0.45 * ports + 0.45 * tele + 0.1 * period
    }
}

/// A fingerprint classified with its confidence.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Identification {
    /// Best-matching SKU.
    pub sku: Sku,
    /// Similarity score of the best match.
    pub confidence: f64,
}

/// The community fingerprint database (learned from labelled
/// deployments and shared like the signature repository).
#[derive(Debug, Default)]
pub struct FingerprintDb {
    entries: BTreeMap<Sku, Fingerprint>,
}

impl FingerprintDb {
    /// An empty database.
    pub fn new() -> FingerprintDb {
        FingerprintDb::default()
    }

    /// Register/overwrite a SKU's reference fingerprint.
    pub fn learn(&mut self, sku: Sku, fingerprint: Fingerprint) {
        self.entries.insert(sku, fingerprint);
    }

    /// Number of known SKUs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Identify an observed fingerprint; `None` if no SKU clears
    /// `min_confidence`.
    pub fn identify(&self, observed: &Fingerprint, min_confidence: f64) -> Option<Identification> {
        self.entries
            .iter()
            .map(|(sku, reference)| Identification {
                sku: sku.clone(),
                confidence: observed.similarity(reference),
            })
            .max_by(|a, b| a.confidence.total_cmp(&b.confidence))
            .filter(|id| id.confidence >= min_confidence)
    }

    /// The canonical fingerprints for the Table 1 SKUs — what a labelled
    /// reference deployment would contribute.
    pub fn with_table1() -> FingerprintDb {
        use iotdev::proto::ports;
        let mut db = FingerprintDb::new();
        let fp = |served: &[u16], kinds: &[TelemetryKind], period: u64| {
            let mut f = Fingerprint::default();
            for p in served {
                f.serve(*p);
            }
            for k in kinds {
                f.emit(*k);
            }
            f.period_s = period;
            f
        };
        db.learn(
            Sku::new("avtech", "ip-cam", "1.3"),
            fp(&[ports::MGMT, ports::CONTROL], &[TelemetryKind::Motion], 5),
        );
        db.learn(
            Sku::new("generic", "settop-box", "2.0"),
            fp(&[ports::MGMT, ports::CONTROL], &[TelemetryKind::Status], 5),
        );
        db.learn(
            Sku::new("smartchill", "fridge", "0.9"),
            fp(&[ports::MGMT], &[TelemetryKind::Status], 5),
        );
        db.learn(
            Sku::new("cctvcorp", "dvr-cam", "4.1"),
            fp(&[ports::MGMT, ports::CONTROL], &[TelemetryKind::Motion], 10),
        );
        db.learn(
            Sku::new("citysys", "traffic-light", "1.0"),
            fp(&[ports::CONTROL], &[TelemetryKind::Status], 5),
        );
        db.learn(
            Sku::new("belkin", "wemo", "1.0"),
            fp(&[ports::MGMT, ports::CONTROL, ports::DNS], &[TelemetryKind::Power], 5),
        );
        db.learn(
            Sku::new("belkin", "wemo", "1.1"),
            fp(&[ports::MGMT, ports::CONTROL, ports::CLOUD], &[TelemetryKind::Power], 5),
        );
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotdev::proto::ports;

    fn observed_wemo_v10() -> Fingerprint {
        let mut f = Fingerprint::default();
        f.serve(ports::MGMT).serve(ports::CONTROL).serve(ports::DNS).emit(TelemetryKind::Power);
        f.period_s = 5;
        f
    }

    #[test]
    fn identifies_the_right_wemo_firmware() {
        let db = FingerprintDb::with_table1();
        let id = db.identify(&observed_wemo_v10(), 0.8).expect("should identify");
        // The DNS plane distinguishes firmware 1.0 from the cloud-plane 1.1.
        assert_eq!(id.sku, Sku::new("belkin", "wemo", "1.0"));
        assert!(id.confidence > 0.9);
    }

    #[test]
    fn sku_granularity_beats_class_granularity() {
        // Two cameras of different SKUs: distinguished by their telemetry
        // period even though ports and telemetry kinds match.
        let db = FingerprintDb::with_table1();
        let mut avtech = Fingerprint::default();
        avtech.serve(ports::MGMT).serve(ports::CONTROL).emit(TelemetryKind::Motion);
        avtech.period_s = 5;
        let id = db.identify(&avtech, 0.5).unwrap();
        assert_eq!(id.sku, Sku::new("avtech", "ip-cam", "1.3"));
        let mut cctv = avtech.clone();
        cctv.period_s = 10;
        let id = db.identify(&cctv, 0.5).unwrap();
        assert_eq!(id.sku, Sku::new("cctvcorp", "dvr-cam", "4.1"));
    }

    #[test]
    fn unknown_devices_stay_unknown() {
        let db = FingerprintDb::with_table1();
        let mut alien = Fingerprint::default();
        alien.serve(9999).emit(TelemetryKind::Light);
        alien.period_s = 60;
        assert!(db.identify(&alien, 0.8).is_none());
        // With a permissive threshold it returns *something* — the caller
        // owns the precision/recall trade-off.
        assert!(db.identify(&alien, 0.0).is_some());
    }

    #[test]
    fn similarity_is_reflexive_and_bounded() {
        let f = observed_wemo_v10();
        assert!((f.similarity(&f) - 1.0).abs() < 1e-9);
        let empty = Fingerprint::default();
        let s = f.similarity(&empty);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn empty_db_identifies_nothing() {
        let db = FingerprintDb::new();
        assert!(db.is_empty());
        assert!(db.identify(&observed_wemo_v10(), 0.0).is_none());
    }
}
