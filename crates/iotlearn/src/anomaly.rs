//! Behavioural anomaly detection over device traffic.
//!
//! §4's caveat — "applying simple anomaly detection to IoT does not
//! scale since the range of possible normal behaviors is large and
//! potentially very dynamic" — motivates two things this module
//! provides: per-device profiles (IoT devices individually are *very*
//! regular even though the fleet is diverse), and optional
//! **context conditioning** (a profile per occupancy context), which is
//! the knob experiment E12 ablates.
//!
//! The detector learns, per device (and optionally per context): the
//! message rate per protocol plane and the peer set. At detection time a
//! window is flagged if its rate is far outside the learned band or if
//! it contains a never-seen peer.

use iotdev::device::DeviceId;
use iotnet::addr::Ipv4Addr;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// Protocol planes profiled separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Plane {
    /// Management.
    Mgmt,
    /// Control.
    Control,
    /// Telemetry.
    Telemetry,
    /// DNS.
    Dns,
    /// Vendor cloud.
    Cloud,
}

impl Plane {
    /// Classify a destination port.
    pub fn of_port(port: u16) -> Plane {
        use iotdev::proto::ports;
        match port {
            ports::MGMT => Plane::Mgmt,
            ports::CONTROL => Plane::Control,
            ports::DNS => Plane::Dns,
            ports::CLOUD => Plane::Cloud,
            _ => Plane::Telemetry,
        }
    }
}

/// The context key profiles can be conditioned on.
pub type Context = &'static str;

#[derive(Debug, Clone, Default, Serialize)]
struct PlaneStats {
    windows: u64,
    sum: f64,
    sum_sq: f64,
}

impl PlaneStats {
    fn record(&mut self, count: f64) {
        self.windows += 1;
        self.sum += count;
        self.sum_sq += count * count;
    }

    fn mean(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.sum / self.windows as f64
        }
    }

    fn std(&self) -> f64 {
        if self.windows < 2 {
            return 0.0;
        }
        let n = self.windows as f64;
        let var = (self.sum_sq - self.sum * self.sum / n) / (n - 1.0);
        var.max(0.0).sqrt()
    }
}

/// One learned profile (per device, or per device+context).
#[derive(Debug, Clone, Default, Serialize)]
pub struct Profile {
    rates: BTreeMap<Plane, PlaneStats>,
    peers: BTreeSet<Ipv4Addr>,
}

/// One observation window to score: message counts per plane plus the
/// peers seen.
#[derive(Debug, Clone, Default)]
pub struct Window {
    /// Messages per plane in this window.
    pub counts: BTreeMap<Plane, f64>,
    /// Peers seen in this window.
    pub peers: BTreeSet<Ipv4Addr>,
}

impl Window {
    /// Record one message.
    pub fn record(&mut self, plane: Plane, peer: Ipv4Addr) {
        *self.counts.entry(plane).or_insert(0.0) += 1.0;
        self.peers.insert(peer);
    }
}

/// The verdict for one scored window.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AnomalyVerdict {
    /// Anomaly score (0 = nominal; ≥ 1 crosses the alert threshold).
    pub score: f64,
    /// Whether the window is flagged.
    pub flagged: bool,
    /// Explanations for the score.
    pub reasons: Vec<String>,
}

/// Detector configuration.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct AnomalyConfig {
    /// Standard deviations of rate deviation tolerated.
    pub k_sigma: f64,
    /// Extra absolute slack on rates (IoT telemetry is bursty at small
    /// counts).
    pub rate_slack: f64,
    /// Whether profiles are conditioned on context (E12's knob).
    pub context_conditioned: bool,
    /// Score at or above which a window is flagged.
    pub threshold: f64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig { k_sigma: 3.0, rate_slack: 2.0, context_conditioned: true, threshold: 1.0 }
    }
}

/// The per-deployment anomaly detector.
#[derive(Debug)]
pub struct AnomalyDetector {
    config: AnomalyConfig,
    profiles: BTreeMap<(DeviceId, Context), Profile>,
    training: bool,
}

const NO_CONTEXT: Context = "*";

impl AnomalyDetector {
    /// A new detector in training mode.
    pub fn new(config: AnomalyConfig) -> AnomalyDetector {
        AnomalyDetector { config, profiles: BTreeMap::new(), training: true }
    }

    fn key(&self, device: DeviceId, context: Context) -> (DeviceId, Context) {
        if self.config.context_conditioned {
            (device, context)
        } else {
            (device, NO_CONTEXT)
        }
    }

    /// Feed a training window.
    pub fn train(&mut self, device: DeviceId, context: Context, window: &Window) {
        assert!(self.training, "detector already sealed");
        let profile = self.profiles.entry(self.key(device, context)).or_default();
        for plane in [Plane::Mgmt, Plane::Control, Plane::Telemetry, Plane::Dns, Plane::Cloud] {
            let count = window.counts.get(&plane).copied().unwrap_or(0.0);
            profile.rates.entry(plane).or_default().record(count);
        }
        profile.peers.extend(window.peers.iter().copied());
    }

    /// End training; scoring becomes available.
    pub fn seal(&mut self) {
        self.training = false;
    }

    /// Whether still training.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Score a window against the learned profile.
    pub fn score(&self, device: DeviceId, context: Context, window: &Window) -> AnomalyVerdict {
        let mut score: f64 = 0.0;
        let mut reasons = Vec::new();
        let Some(profile) = self.profiles.get(&self.key(device, context)) else {
            // Never-trained device (or context): everything it does is
            // novel. Flag with a moderate score.
            return AnomalyVerdict {
                score: 1.0,
                flagged: true,
                reasons: vec!["no profile for device/context".into()],
            };
        };
        for (plane, stats) in &profile.rates {
            let count = window.counts.get(plane).copied().unwrap_or(0.0);
            let band = self.config.k_sigma * stats.std() + self.config.rate_slack;
            let dev = (count - stats.mean()).abs();
            if dev > band {
                let s = dev / band.max(1e-9);
                score = score.max(s);
                reasons.push(format!(
                    "{plane:?} rate {count:.1} outside {:.1}±{band:.1}",
                    stats.mean()
                ));
            }
        }
        let new_peers: Vec<&Ipv4Addr> =
            window.peers.iter().filter(|p| !profile.peers.contains(*p)).collect();
        if !new_peers.is_empty() {
            score = score.max(1.5);
            reasons.push(format!("{} never-seen peer(s), e.g. {}", new_peers.len(), new_peers[0]));
        }
        AnomalyVerdict { score, flagged: score >= self.config.threshold, reasons }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, n)
    }

    fn typical_window(telemetry: f64) -> Window {
        let mut w = Window::default();
        for _ in 0..telemetry as usize {
            w.record(Plane::Telemetry, peer(1));
        }
        w
    }

    fn trained_detector(config: AnomalyConfig) -> AnomalyDetector {
        let mut d = AnomalyDetector::new(config);
        for i in 0..50 {
            let w = typical_window(10.0 + (i % 3) as f64);
            d.train(DeviceId(0), "present", &w);
        }
        d.seal();
        d
    }

    #[test]
    fn nominal_traffic_passes() {
        let d = trained_detector(AnomalyConfig::default());
        let v = d.score(DeviceId(0), "present", &typical_window(11.0));
        assert!(!v.flagged, "{v:?}");
    }

    #[test]
    fn rate_spike_flags() {
        let d = trained_detector(AnomalyConfig::default());
        let v = d.score(DeviceId(0), "present", &typical_window(300.0));
        assert!(v.flagged);
        assert!(v.reasons.iter().any(|r| r.contains("rate")));
    }

    #[test]
    fn new_peer_flags() {
        let d = trained_detector(AnomalyConfig::default());
        let mut w = typical_window(10.0);
        w.record(Plane::Control, Ipv4Addr::new(100, 64, 0, 66)); // WAN stranger
        let v = d.score(DeviceId(0), "present", &w);
        assert!(v.flagged);
        assert!(v.reasons.iter().any(|r| r.contains("never-seen")));
    }

    #[test]
    fn unknown_device_flags() {
        let d = trained_detector(AnomalyConfig::default());
        let v = d.score(DeviceId(9), "present", &typical_window(1.0));
        assert!(v.flagged);
    }

    #[test]
    fn context_conditioning_separates_modes() {
        // Device sends 10 msg/window when present, 0 when absent. A
        // context-conditioned detector learns both; an unconditioned one
        // smears them and misses the "10 messages while absent" anomaly;
        // here we check the conditioned one
        // flags activity in the wrong context.
        let mut d = AnomalyDetector::new(AnomalyConfig::default());
        for _ in 0..50 {
            d.train(DeviceId(0), "present", &typical_window(10.0));
            d.train(DeviceId(0), "absent", &typical_window(0.0));
        }
        d.seal();
        // 10 messages while absent: conditioned detector flags it.
        let v = d.score(DeviceId(0), "absent", &typical_window(10.0));
        assert!(v.flagged, "{v:?}");
        // The same window is normal in the 'present' context.
        let v = d.score(DeviceId(0), "present", &typical_window(10.0));
        assert!(!v.flagged);
    }

    #[test]
    fn unconditioned_detector_misses_context_anomaly() {
        let mut d = AnomalyDetector::new(AnomalyConfig {
            context_conditioned: false,
            ..AnomalyConfig::default()
        });
        for _ in 0..50 {
            d.train(DeviceId(0), "present", &typical_window(10.0));
            d.train(DeviceId(0), "absent", &typical_window(0.0));
        }
        d.seal();
        // The smeared profile has mean 5 and large variance: 10-while-
        // absent sails through. This is E12's headline contrast.
        let v = d.score(DeviceId(0), "absent", &typical_window(10.0));
        assert!(!v.flagged, "{v:?}");
    }

    #[test]
    fn plane_port_classification() {
        use iotdev::proto::ports;
        assert_eq!(Plane::of_port(ports::MGMT), Plane::Mgmt);
        assert_eq!(Plane::of_port(ports::CONTROL), Plane::Control);
        assert_eq!(Plane::of_port(ports::DNS), Plane::Dns);
        assert_eq!(Plane::of_port(ports::CLOUD), Plane::Cloud);
        assert_eq!(Plane::of_port(ports::TELEMETRY), Plane::Telemetry);
        assert_eq!(Plane::of_port(9999), Plane::Telemetry);
    }
}
