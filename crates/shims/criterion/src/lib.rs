//! Offline shim for the `criterion` crate (see `crates/shims/README.md`).
//!
//! Keeps the `criterion_group!`/`criterion_main!` bench sources compiling
//! and runnable offline: each benchmark is run for a small fixed warm-up
//! plus measured batch and the mean wall-clock time per iteration is
//! printed. No statistics, no plots — just a smoke-run harness.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Measured-iteration driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration of the last `iter` call.
    pub mean_ns: f64,
}

impl Bencher {
    /// Run the benchmarked routine and record its mean time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iters.min(3) {
            black_box(f()); // warm-up
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// Benchmark identifier (name + optional parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Throughput annotation (accepted, not currently reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters, mean_ns: 0.0 };
    f(&mut b);
    if b.mean_ns >= 1_000_000.0 {
        println!("bench {label:<50} {:>12.3} ms/iter", b.mean_ns / 1e6);
    } else if b.mean_ns >= 1_000.0 {
        println!("bench {label:<50} {:>12.3} us/iter", b.mean_ns / 1e3);
    } else {
        println!("bench {label:<50} {:>12.1} ns/iter", b.mean_ns);
    }
}

/// The bench context.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 20 }
    }
}

impl Criterion {
    /// Run a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().0, self.iters, &mut f);
        self
    }

    /// Run a benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().0, self.iters, &mut |b| f(b, input));
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), iters: self.iters, _parent: self }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Adjust the per-bench iteration count (stands in for sample size).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).clamp(1, 100);
        self
    }

    /// Accept a throughput annotation.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into().0), self.iters, &mut f);
        self
    }

    /// Run a benchmark with an input value in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into().0), self.iters, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
