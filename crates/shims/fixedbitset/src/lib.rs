//! Offline shim for the `fixedbitset` crate (see `crates/shims/README.md`).
//!
//! A fixed-capacity dense bitset over `u64` blocks — the visited-set
//! arena of the packed state-space engine. Only the API subset the
//! workspace uses is implemented: capacity-at-construction, single-bit
//! set/test, block-wise union, population count and an ascending
//! set-bit iterator.

/// A fixed-capacity set of bits, indexed `0..capacity`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FixedBitSet {
    blocks: Vec<u64>,
    capacity: usize,
}

const BITS: usize = 64;

impl FixedBitSet {
    /// An empty bitset able to hold `capacity` bits, all zero.
    pub fn with_capacity(capacity: usize) -> FixedBitSet {
        FixedBitSet { blocks: vec![0; capacity.div_ceil(BITS)], capacity }
    }

    /// The number of bits the set can hold.
    pub fn len(&self) -> usize {
        self.capacity
    }

    /// True when the capacity is zero.
    pub fn is_empty(&self) -> bool {
        self.capacity == 0
    }

    /// Set bit `bit` to one. Panics if out of range.
    #[inline]
    pub fn insert(&mut self, bit: usize) {
        assert!(bit < self.capacity, "bit {bit} out of range {}", self.capacity);
        self.blocks[bit / BITS] |= 1 << (bit % BITS);
    }

    /// Set bit `bit` and return its previous value. Panics if out of
    /// range.
    #[inline]
    pub fn put(&mut self, bit: usize) -> bool {
        assert!(bit < self.capacity, "bit {bit} out of range {}", self.capacity);
        let block = &mut self.blocks[bit / BITS];
        let mask = 1u64 << (bit % BITS);
        let was = *block & mask != 0;
        *block |= mask;
        was
    }

    /// Whether bit `bit` is set (false for out-of-range bits).
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        bit < self.capacity && self.blocks[bit / BITS] & (1 << (bit % BITS)) != 0
    }

    /// Clear every bit, keeping the capacity.
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
    }

    /// Block-wise union with `other` (capacities must match).
    pub fn union_with(&mut self, other: &FixedBitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch in union");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Iterator over set bits in ascending order.
    pub fn ones(&self) -> Ones<'_> {
        Ones { set: self, block: 0, bits: self.blocks.first().copied().unwrap_or(0) }
    }
}

/// Ascending iterator over the set bits of a [`FixedBitSet`].
pub struct Ones<'a> {
    set: &'a FixedBitSet,
    block: usize,
    bits: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.bits == 0 {
            self.block += 1;
            if self.block >= self.set.blocks.len() {
                return None;
            }
            self.bits = self.set.blocks[self.block];
        }
        let low = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(self.block * BITS + low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = FixedBitSet::with_capacity(200);
        assert!(!s.contains(0));
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(199);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(199));
        assert!(!s.contains(100));
        assert!(!s.contains(5000));
        assert_eq!(s.count_ones(), 4);
    }

    #[test]
    fn put_reports_previous_value() {
        let mut s = FixedBitSet::with_capacity(10);
        assert!(!s.put(3));
        assert!(s.put(3));
        assert_eq!(s.count_ones(), 1);
    }

    #[test]
    fn ones_iterates_ascending() {
        let mut s = FixedBitSet::with_capacity(300);
        for bit in [5usize, 64, 65, 255, 299] {
            s.insert(bit);
        }
        let got: Vec<usize> = s.ones().collect();
        assert_eq!(got, vec![5, 64, 65, 255, 299]);
    }

    #[test]
    fn union_and_clear() {
        let mut a = FixedBitSet::with_capacity(128);
        let mut b = FixedBitSet::with_capacity(128);
        a.insert(1);
        b.insert(100);
        a.union_with(&b);
        assert!(a.contains(1) && a.contains(100));
        a.clear();
        assert_eq!(a.count_ones(), 0);
        assert_eq!(a.len(), 128);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        FixedBitSet::with_capacity(8).insert(8);
    }
}
