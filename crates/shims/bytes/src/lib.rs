//! Offline shim for the `bytes` crate (see `crates/shims/README.md`).
//!
//! Provides the slice of the API this workspace uses: cheaply cloneable
//! immutable [`Bytes`] (ref-counted), an append-only [`BytesMut`] builder
//! with big-endian `put_*` writers via [`BufMut`], big-endian `get_*`
//! readers via [`Buf`] on `&[u8]`, and `freeze`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// Wrap a static slice.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy out to a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.0[..] == other.0[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.0[..] == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for b in self.0.iter() {
            for esc in std::ascii::escape_default(*b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Bytes {}
#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Bytes {}

/// A growable byte buffer for building wire images.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Convert to an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Big-endian reader methods over a shrinking front-consumed slice (the
/// subset of `bytes::Buf` in use). Reads past the end panic, as upstream.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Discard the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }
    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }
    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
    /// Read a big-endian i16.
    fn get_i16(&mut self) -> i16 {
        self.get_u16() as i16
    }
    /// Read a big-endian f64.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
    /// Copy the next `dst.len()` bytes out.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Big-endian writer methods (the subset of `bytes::BufMut` in use).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16);
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32);
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64);

    /// Append a big-endian i16.
    fn put_i16(&mut self, v: i16) {
        self.put_u16(v as u16);
    }
    /// Append a big-endian f64.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
    /// Append `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_endianness() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(0x01);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_slice(&[0xff]);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3, 4, 5, 6, 7, 0xff]);
        assert_eq!(frozen, Bytes::copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 0xff]));
    }

    #[test]
    fn buf_reads_consume_from_the_front() {
        let data = [1u8, 0x02, 0x03, 0xAA, 0xBB, 0xCC, 0xDD, 9];
        let mut buf: &[u8] = &data;
        assert_eq!(buf.remaining(), 8);
        assert_eq!(buf.get_u8(), 1);
        assert_eq!(buf.get_u16(), 0x0203);
        assert_eq!(buf.get_u32(), 0xAABB_CCDD);
        assert_eq!(buf.remaining(), 1);
        buf.advance(1);
        assert_eq!(buf.remaining(), 0);

        let mut b = BytesMut::new();
        b.put_f64(1.5);
        b.put_i16(-2);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_f64(), 1.5);
        assert_eq!(r.get_i16(), -2);
    }

    #[test]
    fn bytes_constructors() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"hi").len(), 2);
        assert_eq!(Bytes::from(vec![9u8]).to_vec(), vec![9u8]);
    }
}
