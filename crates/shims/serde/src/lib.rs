//! Offline shim for the `serde` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so the workspace carries minimal in-repo substitutes for its external
//! dependencies (see `crates/shims/README.md`). This shim provides the
//! `Serialize`/`Deserialize` *marker* traits plus no-op derive macros —
//! enough for every `#[derive(Serialize, Deserialize)]` in the tree to
//! compile. Nothing in the workspace calls serde's serialization methods
//! (the one JSON exchange format, crowdsourced signatures, has an explicit
//! hand-rolled codec in `iotlearn::signature`), so the traits are empty.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Blanket coverage for std types that appear inside derived containers.
/// (The derives emit empty impls and never bound on field types, so these
/// exist only for code that spells the bound explicitly.)
mod impls {
    use super::{Deserialize, Serialize};

    macro_rules! mark {
        ($($t:ty),* $(,)?) => {
            $(
                impl Serialize for $t {}
                impl<'de> Deserialize<'de> for $t {}
            )*
        };
    }

    mark!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);
    mark!(f32, f64, bool, char, String, &'static str, ());

    impl<T> Serialize for Vec<T> {}
    impl<'de, T> Deserialize<'de> for Vec<T> {}
    impl<T> Serialize for Option<T> {}
    impl<'de, T> Deserialize<'de> for Option<T> {}
    impl<K, V> Serialize for std::collections::HashMap<K, V> {}
    impl<'de, K, V> Deserialize<'de> for std::collections::HashMap<K, V> {}
    impl<K, V> Serialize for std::collections::BTreeMap<K, V> {}
    impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V> {}
    impl<T> Serialize for std::collections::BTreeSet<T> {}
    impl<'de, T> Deserialize<'de> for std::collections::BTreeSet<T> {}
    impl<A, B> Serialize for (A, B) {}
    impl<'de, A, B> Deserialize<'de> for (A, B) {}
    impl<A, B, C> Serialize for (A, B, C) {}
    impl<'de, A, B, C> Deserialize<'de> for (A, B, C) {}
}
